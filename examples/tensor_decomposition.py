#!/usr/bin/env python3
"""Tensor decomposition workloads: CP-ALS (MTTKRP) and the power method (TTV).

The paper motivates MTTKRP as the dominant kernel of CANDECOMP/PARAFAC
decomposition and TTV as the core of the tensor power method
(Sections II-C and II-E).  This example runs both tensor methods on top
of the suite's sparse kernels:

* CP-ALS factorizes an exactly low-rank sparse tensor and reports the
  fit trace, once through COO-MTTKRP and once through HiCOO-MTTKRP;
* the tensor power method recovers the components of an orthogonally
  decomposable symmetric tensor via repeated sparse TTV.

Run:  python examples/tensor_decomposition.py
"""

import numpy as np

from repro.apps import (
    cp_als,
    hooi,
    hosvd,
    orthogonal_decomposition,
    random_low_rank_tensor,
    symmetric_tensor_from_components,
)
from repro.formats import CooTensor


def run_cpd() -> None:
    print("=== CP-ALS on an exactly rank-5 sparse tensor ===")
    x = random_low_rank_tensor((200, 150, 120), rank=5, support=8, seed=42)
    print(f"input: {x}")

    for use_hicoo in (False, True):
        label = "HiCOO-MTTKRP" if use_hicoo else "COO-MTTKRP"
        result = cp_als(
            x, rank=5, max_sweeps=200, tolerance=1e-9, seed=0,
            use_hicoo=use_hicoo, block_size=128,
        )
        trace = " -> ".join(f"{f:.4f}" for f in result.fits[:5])
        print(
            f"{label:13s}: fit {result.final_fit:.6f} after "
            f"{len(result.fits)} sweeps (first sweeps: {trace} ...)"
        )
        print(f"{'':13s}  component weights: {np.sort(result.weights)[::-1].round(2)}")


def run_power_method() -> None:
    print("\n=== Tensor power method on an odeco symmetric tensor ===")
    rng = np.random.default_rng(3)
    q, _ = np.linalg.qr(rng.normal(size=(60, 4)))
    weights = np.array([9.0, 6.0, 3.5, 2.0])
    tensor = symmetric_tensor_from_components(weights, q[:, :4])
    print(f"input: {tensor} (4 orthogonal components, weights {weights})")

    components = orthogonal_decomposition(tensor, 4, seed=1)
    print(f"{'component':>9s} {'eigenvalue':>11s} {'overlap':>8s} {'iters':>6s}")
    for k, comp in enumerate(components):
        overlap = max(abs(comp.eigenvector @ q[:, j]) for j in range(4))
        print(
            f"{k:9d} {comp.eigenvalue:11.4f} {overlap:8.4f} "
            f"{comp.iterations:6d}"
        )
    recovered = sorted((abs(c.eigenvalue) for c in components), reverse=True)
    error = np.abs(np.array(recovered) - weights).max()
    print(f"max eigenvalue error vs ground truth: {error:.2e}")


def run_tucker() -> None:
    print("\n=== Tucker decomposition (TTM chains: HOSVD -> HOOI) ===")
    rng = np.random.default_rng(7)
    core = rng.normal(size=(4, 3, 3))
    dense = core
    for mode, size in enumerate((80, 60, 50)):
        u, _ = np.linalg.qr(rng.normal(size=(size, core.shape[mode])))
        dense = np.moveaxis(
            np.tensordot(dense, u, axes=([mode], [1])), -1, mode
        )
    tensor = CooTensor.from_dense(dense.astype(np.float32))
    print(f"input: {tensor} (exact multilinear rank (4, 3, 3))")

    init = hosvd(tensor, (4, 3, 3))
    print(f"HOSVD fit : {init.final_fit:.6f}")
    refined = hooi(tensor, (4, 3, 3), max_sweeps=10, initialization=init)
    print(f"HOOI fit  : {refined.final_fit:.6f} after {len(refined.fits)} sweeps")
    err = np.abs(refined.reconstruct_dense() - tensor.to_dense()).max()
    print(f"max reconstruction error: {err:.2e}")


if __name__ == "__main__":
    run_cpd()
    run_power_method()
    run_tucker()
