#!/usr/bin/env python3
"""Roofline analysis: regenerate Figure 3 and place real kernels on it.

Builds the ERT-style Roofline model of all four Table III platforms,
prints each platform's ceilings and kernel markers (the content of the
paper's Figure 3), draws an ASCII roofline, and then situates a concrete
tensor's five kernels against their Roofline performance the way
Figures 4-7 do.

Run:  python examples/roofline_analysis.py
"""

from repro.bench.harness import BenchmarkHarness
from repro.platforms import all_platforms, run_ert
from repro.roofline import RooflineModel, roofline_ascii, roofline_text


def main() -> None:
    print("=" * 70)
    print("Figure 3: Roofline models of the four modeled platforms")
    print("=" * 70)
    for spec in all_platforms():
        ert = run_ert(spec)
        model = RooflineModel.for_platform(spec, ert)
        print()
        print(roofline_text(model))

    print()
    print(roofline_ascii(RooflineModel.for_platform("dgx1v")))

    print()
    print("=" * 70)
    print("Placing one tensor's kernels against the roofline (fig. 4 style)")
    print("=" * 70)
    harness = BenchmarkHarness("bluesky", scale_divisor=1024)
    print(
        f"{'kernel':8s} {'format':6s} {'GFLOPS':>8s} {'roofline':>9s} "
        f"{'efficiency':>10s}"
    )
    for fmt in ("COO", "HiCOO"):
        for kernel in ("TEW", "TS", "TTV", "TTM", "MTTKRP"):
            r = harness.run_cell("s2", kernel, fmt)
            print(
                f"{kernel:8s} {fmt:6s} {r.gflops:8.1f} "
                f"{r.roofline_gflops:9.1f} {r.efficiency * 100:9.0f}%"
            )
    print(
        "\nStreaming kernels (TEW/TS) sit near or above the line when the"
        "\nworking set is cache-resident; MTTKRP sits far below it because"
        "\natomic updates and factor-row gathers waste the streamed bound."
    )


if __name__ == "__main__":
    main()
