#!/usr/bin/env python3
"""Quickstart: build a sparse tensor, run every kernel, model a platform.

Walks the public API end to end:

1. generate a synthetic sparse tensor with the Kronecker generator;
2. convert it between COO and HiCOO;
3. run the five benchmark kernels (TEW, TS, TTV, TTM, MTTKRP);
4. extract each kernel's machine schedule and predict its runtime on the
   paper's four modeled platforms;
5. compare against the Roofline performance bound.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A power-law-structured sparse tensor from the Kronecker model.
    x = repro.kronecker_tensor((4096, 4096, 4096), 50_000, seed=7)
    print(f"tensor      : {x}")
    print(f"COO storage : {x.storage_bytes() / 1e6:.2f} MB")

    # 2. HiCOO conversion (block size 128, as in the paper's experiments).
    h = repro.HicooTensor.from_coo(x, 128)
    print(
        f"HiCOO       : {h.num_blocks} blocks, "
        f"{h.storage_bytes() / 1e6:.2f} MB "
        f"(compression ratio {h.compression_ratio():.2f}x)"
    )

    # 3. Run all five kernels through the COO reference implementations.
    y = repro.ts(x, 3.0, "mul")
    print(f"TS          : scaled {y.nnz} values")

    partner = repro.CooTensor(
        x.shape, x.indices, repro.random_vector(x.nnz, seed=1)
    )
    z = repro.tew_coo(x, partner, "add")
    print(f"TEW         : {z.nnz} output nonzeros")

    v = repro.random_vector(x.shape[2], seed=2)
    t_ttv = repro.ttv_coo(x, v, mode=2)
    print(f"TTV         : output {t_ttv}")

    u = repro.random_matrix(x.shape[1], 16, seed=3)
    t_ttm = repro.ttm_coo(x, u, mode=1)
    print(f"TTM         : output fibers {t_ttm.nnz_fibers} (dense rank 16)")

    factors = [repro.random_matrix(s, 16, seed=4 + i) for i, s in enumerate(x.shape)]
    m = repro.mttkrp_coo(x, factors, mode=0)
    print(f"MTTKRP      : output matrix {m.shape}, norm {np.linalg.norm(m):.3g}")

    # 4. Model each kernel on the paper's platforms.
    print("\nModeled GFLOPS (COO algorithms):")
    header = f"{'kernel':8s}" + "".join(
        f"{spec.name:>10s}" for spec in repro.all_platforms()
    )
    print(header)
    for kernel in repro.KERNELS:
        row = f"{kernel:8s}"
        for spec in repro.all_platforms():
            target = "GPU" if spec.is_gpu else "OMP"
            schedule = repro.make_schedule(f"COO-{kernel}-{target}", x, mode=0)
            estimate = repro.predict(spec, schedule)
            row += f"{estimate.gflops:10.1f}"
        print(row)

    # 5. Roofline bound for MTTKRP on the V100.
    model = repro.RooflineModel.for_platform("dgx1v")
    cost = repro.kernel_cost("MTTKRP", x.nnz, rank=16)
    bound = model.roofline_performance(cost)
    schedule = repro.make_schedule("COO-MTTKRP-GPU", x, mode=0)
    achieved = repro.predict("dgx1v", schedule).gflops
    print(
        f"\nMTTKRP on DGX-1V: {achieved:.1f} GFLOPS achieved vs "
        f"{bound:.1f} GFLOPS roofline ({achieved / bound * 100:.0f}%)"
    )


if __name__ == "__main__":
    main()
