#!/usr/bin/env python3
"""Synthetic dataset study: Kronecker vs power-law tensor structure.

Reproduces the paper's Section IV argument that synthetic tensors are
needed for systematic benchmarking: it generates the regular (Kronecker)
and irregular (power-law) families at several sizes, then shows how the
structural features that drive kernel performance differ —

* degree skew (hub concentration) per mode;
* mode-``n`` fiber counts (TTV/TTM parallelism and output size);
* HiCOO block occupancy (the format's compression and the
  HiCOO-MTTKRP-GPU load-imbalance story);
* the resulting modeled TTV performance on a CPU and a GPU.

Run:  python examples/synthetic_dataset_study.py
"""

from repro.core import make_schedule
from repro.formats import HicooTensor
from repro.generators import degree_tail_ratio, kronecker_tensor, powerlaw_tensor
from repro.machine import predict


def describe(name, tensor):
    hicoo = HicooTensor.from_coo(tensor, 128)
    skew = degree_tail_ratio(tensor, 0)
    fibers = tensor.num_fibers(0)
    occupancy = hicoo.average_block_occupancy()

    cpu = predict("bluesky", make_schedule("COO-TTV-OMP", tensor, mode=0))
    gpu = predict("dgx1v", make_schedule("COO-TTV-GPU", tensor, mode=0))
    gpu_mttkrp_coo = predict(
        "dgx1v", make_schedule("COO-MTTKRP-GPU", tensor, mode=0)
    )
    gpu_mttkrp_hicoo = predict(
        "dgx1v", make_schedule("HiCOO-MTTKRP-GPU", tensor, mode=0, hicoo=hicoo)
    )
    print(
        f"{name:10s} nnz={tensor.nnz:>7d} skew={skew:7.1f} "
        f"fibers={fibers:>7d} blockOcc={occupancy:6.2f} "
        f"TTV[cpu/gpu]={cpu.gflops:6.1f}/{gpu.gflops:6.1f} GF "
        f"MTTKRP-GPU[coo/hicoo]={gpu_mttkrp_coo.gflops:6.1f}/"
        f"{gpu_mttkrp_hicoo.gflops:6.1f} GF"
    )


def main() -> None:
    print("Regular (Kronecker) family — equidimensional, fractal hubs:")
    for name, size, nnz in (
        ("kronS", 1 << 14, 20_000),
        ("kronM", 1 << 17, 80_000),
        ("kronL", 1 << 20, 300_000),
    ):
        tensor = kronecker_tensor((size, size, size), nnz, seed=11)
        describe(name, tensor)

    print("\nIrregular (power-law) family — two sparse modes, one short dense:")
    for name, size, dense, nnz in (
        ("plS", 1 << 15, 76, 20_000),
        ("plM", 1 << 18, 126, 80_000),
        ("plL", 1 << 21, 168, 300_000),
    ):
        tensor = powerlaw_tensor(
            (size, size, dense), nnz, dense_modes=(2,), seed=12
        )
        describe(name, tensor)

    print(
        "\nReading the table: power-law tensors concentrate nonzeros on hub"
        "\nindices (large skew), which shortens some fibers and lengthens"
        "\nothers — the load imbalance that hurts fiber-parallel TTV — while"
        "\nhyper-sparse Kronecker tensors leave HiCOO blocks nearly empty"
        "\n(blockOcc ~ 1), which is exactly why HiCOO-MTTKRP-GPU loses to"
        "\nCOO-MTTKRP-GPU in the paper's Observation 4."
    )


if __name__ == "__main__":
    main()
