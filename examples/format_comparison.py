#!/usr/bin/env python3
"""Format comparison: COO vs HiCOO vs gHiCOO vs CSF, plus reordering.

The paper's central formats question — which storage fits which tensor —
played out on three structurally different inputs:

* a *clustered* tensor (power-law hubs): HiCOO blocks fill up, the
  format compresses and its MTTKRP traffic shrinks;
* a *hyper-sparse* tensor (Kronecker at very low density): blocks hold
  one nonzero each, HiCOO's metadata backfires, and gHiCOO (blocking
  only two modes) or plain COO is the better answer;
* a *long-fiber* tensor: CSF's tree reuse wins MTTKRP outright and
  removes atomics.

Run:  python examples/format_comparison.py
"""

from repro.core import (
    make_schedule,
    schedule_mttkrp_csf,
)
from repro.formats import (
    CooTensor,
    GHicooTensor,
    HicooTensor,
    choose_format,
    csf_for_mode,
    degree_relabel,
)
from repro.generators import kronecker_tensor, powerlaw_tensor
from repro.machine import predict


def report(name, tensor):
    hicoo = HicooTensor.from_coo(tensor, 128)
    ghicoo = GHicooTensor.from_coo(tensor, [0, 1], 128)
    csf = csf_for_mode(tensor, 0)
    coo_schedule = make_schedule("COO-MTTKRP-OMP", tensor, mode=0, rank=16)
    hicoo_schedule = make_schedule(
        "HiCOO-MTTKRP-OMP", tensor, mode=0, rank=16, hicoo=hicoo
    )
    csf_schedule = schedule_mttkrp_csf(csf, 0, 16)
    print(f"\n{name}: {tensor}")
    print(f"  recommended general format: {choose_format(tensor)!r}")
    print(f"  {'format':8s} {'storage MB':>11s} {'traffic MB':>11s} {'CPU GFLOPS':>11s}")
    rows = (
        ("COO", tensor.storage_bytes(), coo_schedule),
        ("HiCOO", hicoo.storage_bytes(), hicoo_schedule),
        ("gHiCOO", ghicoo.storage_bytes(), None),
        ("CSF", csf.storage_bytes(), csf_schedule),
    )
    for fmt, storage, schedule in rows:
        if schedule is None:
            print(f"  {fmt:8s} {storage / 1e6:11.3f} {'-':>11s} {'-':>11s}")
            continue
        gflops = predict("bluesky", schedule).gflops
        print(
            f"  {fmt:8s} {storage / 1e6:11.3f} "
            f"{schedule.total_bytes / 1e6:11.2f} {gflops:11.2f}"
        )
    print(
        f"  HiCOO blocks: {hicoo.num_blocks} "
        f"(occupancy {hicoo.average_block_occupancy():.2f}, "
        f"compression {hicoo.compression_ratio():.2f}x); "
        f"CSF nodes/level: {csf.nodes_per_level()}"
    )


def main() -> None:
    clustered = powerlaw_tensor(
        (60_000, 60_000, 96), 120_000, dense_modes=(2,), seed=0
    )
    report("clustered (power-law)", clustered)

    hyper = kronecker_tensor((1 << 21,) * 3, 120_000, seed=1)
    report("hyper-sparse (Kronecker)", hyper)

    # Reordering demo: destroy the clustered tensor's locality with a
    # random relabeling, then restore it with the degree relabeling.
    from repro.formats import random_relabel

    shuffled, _ = random_relabel(clustered, seed=3)
    restored, _ = degree_relabel(shuffled)
    occupancies = [
        HicooTensor.from_coo(t, 128).average_block_occupancy()
        for t in (clustered, shuffled, restored)
    ]
    print(
        f"\nreordering (block occupancy): original {occupancies[0]:.1f} -> "
        f"randomly shuffled {occupancies[1]:.1f} -> "
        f"degree-relabeled {occupancies[2]:.1f}"
    )

    long_fiber = CooTensor.from_dense(
        powerlaw_tensor((3000, 3000, 64), 90_000, dense_modes=(2,), seed=2)
        .to_dense()
    )
    report("long-fiber (dense short mode)", long_fiber)


if __name__ == "__main__":
    main()
