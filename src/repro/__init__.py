"""PASTA-style sparse tensor benchmark suite for CPUs and GPUs.

A reproduction of *"A Sparse Tensor Benchmark Suite for CPUs and GPUs"*
(IISWC 2020): five sparse tensor kernels (TEW, TS, TTV, TTM, MTTKRP) over
COO and HiCOO storage (plus sCOO/gHiCOO/sHiCOO variants), synthetic
tensor generators (stochastic Kronecker, biased power law), the Table II
dataset registry, execution models of the paper's four platforms, and
Roofline analysis — with a benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart::

    import repro

    x = repro.kronecker_tensor((1024, 1024, 1024), 100_000, seed=7)
    v = repro.random_vector(x.shape[2], seed=1)
    y = repro.ttv_coo(x, v, mode=2)

    h = repro.HicooTensor.from_coo(x)
    est = repro.predict("dgx1v", repro.make_schedule("HiCOO-MTTKRP-GPU", x))
    print(est.gflops)
"""

from __future__ import annotations

import numpy as _np

from . import (
    apps,
    bench,
    core,
    datasets,
    formats,
    generators,
    io,
    machine,
    perf,
    platforms,
    roofline,
    serving,
)
from .apps import cp_als, orthogonal_decomposition, power_iteration
from .bench import BenchmarkHarness, BenchResult, run_experiment
from .core import (
    DEFAULT_RANK,
    KERNELS,
    KernelSchedule,
    all_algorithm_names,
    dense_mttkrp,
    dense_ttm,
    dense_ttv,
    khatri_rao,
    kernel_cost,
    make_operands,
    make_schedule,
    mttkrp_coo,
    mttkrp_hicoo,
    run_algorithm,
    table1,
    tew_coo,
    tew_general_coo,
    tew_hicoo,
    ts,
    ttm_coo,
    ttm_hicoo,
    ttv_coo,
    ttv_hicoo,
)
from .datasets import DatasetSpec, get_dataset, realize, table2
from .errors import (
    DatasetError,
    FormatParameterError,
    IncompatibleOperandsError,
    ModeError,
    PastaError,
    PlatformError,
    TensorShapeError,
)
from .formats import (
    CooTensor,
    GHicooTensor,
    HicooTensor,
    SemiSparseCooTensor,
    SHicooTensor,
    convert,
    to_coo,
    to_hicoo,
)
from .generators import kronecker_tensor, lift_tensor, powerlaw_tensor
from .perf import TuneConfig, TuningReport, last_tuning_report, mttkrp, ttm, ttv, tune
from .io import loads_tns, read_tns, write_tns
from .machine import ExecutionEstimate, execution_model, predict
from .platforms import PlatformSpec, all_platforms, get_platform, run_ert, table3
from .roofline import RooflineModel

__version__ = "1.0.0"


def random_vector(size: int, seed: int = 0) -> _np.ndarray:
    """A reproducible dense float32 vector in ``[0.5, 1.5)``."""
    rng = _np.random.default_rng(seed)
    return rng.uniform(0.5, 1.5, size=size).astype(_np.float32)


def random_matrix(rows: int, cols: int = DEFAULT_RANK, seed: int = 0) -> _np.ndarray:
    """A reproducible dense float32 matrix in ``[0.5, 1.5)``."""
    rng = _np.random.default_rng(seed)
    return rng.uniform(0.5, 1.5, size=(rows, cols)).astype(_np.float32)


__all__ = [
    "__version__",
    # subpackages
    "formats", "core", "machine", "platforms", "roofline",
    "generators", "datasets", "io", "bench", "apps", "perf",
    # apps
    "cp_als", "power_iteration", "orthogonal_decomposition",
    # formats
    "CooTensor", "SemiSparseCooTensor", "HicooTensor", "GHicooTensor",
    "SHicooTensor", "convert", "to_coo", "to_hicoo",
    # kernels
    "KERNELS", "DEFAULT_RANK", "tew_coo", "tew_hicoo", "tew_general_coo",
    "ts", "ttv_coo", "ttv_hicoo", "ttm_coo", "ttm_hicoo", "mttkrp_coo",
    "mttkrp_hicoo", "dense_ttv", "dense_ttm", "dense_mttkrp", "khatri_rao",
    "kernel_cost", "table1", "KernelSchedule", "make_schedule",
    "make_operands", "run_algorithm", "all_algorithm_names",
    # machine/platforms/roofline
    "predict", "execution_model", "ExecutionEstimate", "PlatformSpec",
    "get_platform", "all_platforms", "run_ert", "table3", "RooflineModel",
    # generators/datasets/io
    "kronecker_tensor", "powerlaw_tensor", "lift_tensor", "DatasetSpec",
    "get_dataset", "realize", "table2", "read_tns", "write_tns", "loads_tns",
    # bench
    "BenchmarkHarness", "BenchResult", "run_experiment",
    # autotuned dispatch
    "mttkrp", "ttv", "ttm", "tune", "TuneConfig", "TuningReport",
    "last_tuning_report",
    # helpers
    "random_vector", "random_matrix",
    # errors
    "PastaError", "TensorShapeError", "IncompatibleOperandsError",
    "FormatParameterError", "ModeError", "DatasetError", "PlatformError",
]
