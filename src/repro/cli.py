"""Command-line interface: ``python -m repro`` / ``pasta-bench``.

Subcommands mirror the PASTA suite's executables plus the paper's
artifacts:

* ``run`` — run one algorithm on one dataset and report GFLOPS;
* ``table1`` / ``table2`` / ``table3`` — regenerate the paper's tables;
* ``fig3`` ... ``fig7`` — regenerate the paper's figures (text series);
* ``observations`` — evaluate the paper's five observations;
* ``generate`` — emit a synthetic tensor as FROSTT ``.tns`` text;
* ``list`` — list algorithms, datasets, and platforms;
* ``lint`` — static contract checks over the source tree (dtype
  discipline, index widths, densification, parallel-write safety,
  cache hygiene) with a committed-baseline ratchet.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench.experiments import EXPERIMENTS, run_experiment
from .bench.formatting import format_table
from .bench.harness import BenchmarkHarness
from .core.registry import algorithm_descriptions, parse_algorithm_name
from .datasets.registry import DEFAULT_SCALE_DIVISOR, datasets, get_dataset
from .generators.kronecker import kronecker_tensor
from .generators.powerlaw import powerlaw_tensor
from .io.frostt import write_tns
from .platforms.specs import PLATFORMS


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale-divisor",
        type=int,
        default=DEFAULT_SCALE_DIVISOR,
        help="shrink paper dataset sizes by this factor (1 = paper scale)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pasta-bench",
        description="Sparse tensor benchmark suite (IISWC 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one algorithm on one dataset")
    run.add_argument("algorithm", help="e.g. COO-TTV-OMP or HiCOO-MTTKRP-GPU")
    run.add_argument("dataset", help="Table II key (r1-r15, s1-s15) or name")
    run.add_argument("--platform", default=None, help="platform to model")
    run.add_argument("--mode", type=int, default=0)
    run.add_argument("--rank", type=int, default=16)
    run.add_argument(
        "--wallclock", action="store_true", help="also time the numpy kernel"
    )
    run.add_argument(
        "--threads",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for the numpy kernels "
        "(default: REPRO_NUM_THREADS or 1 = serial)",
    )
    run.add_argument(
        "--schedule",
        choices=["static", "dynamic", "guided"],
        default=None,
        help="OpenMP-style chunk schedule for parallel kernels "
        "(default: REPRO_SCHEDULE or dynamic)",
    )
    _add_scale_argument(run)

    for name, fn in EXPERIMENTS.items():
        exp = sub.add_parser(name, help=(fn.__doc__ or "").splitlines()[0])
        if name not in ("table1", "table3", "fig3"):
            _add_scale_argument(exp)
        if name.startswith("fig") and name != "fig3":
            exp.add_argument(
                "--output-json", default=None, metavar="PATH",
                help="also write the figure's results as JSON",
            )
            exp.add_argument(
                "--output-csv", default=None, metavar="PATH",
                help="also write the figure's results as CSV",
            )

    feats = sub.add_parser(
        "features",
        help="extract a tensor's structural features (optionally emit a stand-in)",
    )
    feats.add_argument(
        "source", help="Table II key/name, or a path to a .tns file"
    )
    feats.add_argument(
        "--stand-in", default=None, metavar="PATH",
        help="also synthesize a matching stand-in tensor to this .tns path",
    )
    feats.add_argument("--stand-in-scale", type=float, default=1.0)
    feats.add_argument("--seed", type=int, default=0)
    _add_scale_argument(feats)

    gen = sub.add_parser("generate", help="emit a synthetic tensor (.tns)")
    gen.add_argument("generator", choices=["kronecker", "powerlaw"])
    gen.add_argument("--dims", required=True, help="comma-separated sizes")
    gen.add_argument("--nnz", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--alpha", type=float, default=2.0)
    gen.add_argument("--dense-modes", default="", help="comma-separated modes")
    gen.add_argument("--output", "-o", default="-", help="path or - for stdout")

    conv = sub.add_parser(
        "convert",
        help="convert a FROSTT .tns[.gz] text tensor to the binary "
        "mmap layout (streaming; bounded memory)",
    )
    conv.add_argument("source", help="path to the .tns or .tns.gz input")
    conv.add_argument("output", help="path of the binary file to write")
    conv.add_argument(
        "--chunk-nnz", type=int, default=None, metavar="N",
        help="nonzeros per on-disk chunk (default 1,000,000)",
    )
    conv.add_argument(
        "--shape", default=None, metavar="D1,D2,...",
        help="comma-separated dimension sizes (default: inferred)",
    )
    conv.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )

    insp = sub.add_parser(
        "inspect",
        help="summarize a binary tensor file and verify its checksums",
    )
    insp.add_argument("path", help="path to a binary tensor file")
    insp.add_argument(
        "--no-verify", action="store_true",
        help="skip checksum verification (header and chunk table only)",
    )
    insp.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of text",
    )

    sweep = sub.add_parser(
        "sweep", help="run an ablation sweep on one dataset"
    )
    sweep.add_argument(
        "study", choices=["block-size", "rank", "reorder", "gpus"]
    )
    sweep.add_argument("dataset", help="Table II key (r1-r15, s1-s15) or name")
    sweep.add_argument("--platform", default=None)
    _add_scale_argument(sweep)

    tune = sub.add_parser(
        "tune",
        help="autotune kernel variant / block size / schedule for a tensor",
    )
    tune.add_argument(
        "source", help="Table II key/name, or a path to a .tns file"
    )
    tune.add_argument(
        "--kernel", default="MTTKRP", choices=["MTTKRP", "TTV", "TTM"],
        help="kernel to tune (default MTTKRP)",
    )
    tune.add_argument("--mode", type=int, default=0)
    tune.add_argument("--rank", type=int, default=16)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--no-probe", action="store_true",
        help="model-only selection: skip the measured micro-probes",
    )
    tune.add_argument(
        "--top-k", type=int, default=None, metavar="K",
        help="candidates promoted to the probe stage "
        "(default: REPRO_TUNE_TOPK or 3)",
    )
    tune.add_argument(
        "--budget-ms", type=float, default=None, metavar="MS",
        help="probe time budget per candidate "
        "(default: REPRO_TUNE_BUDGET_MS or 25)",
    )
    tune.add_argument(
        "--no-cache", action="store_true",
        help="ignore the on-disk tuning cache for this run",
    )
    _add_scale_argument(tune)

    jit_cache = sub.add_parser(
        "jit-cache",
        help="inspect or clear the compiled-kernel object cache",
    )
    jit_cache.add_argument(
        "--clear", action="store_true",
        help="delete every cached shared object",
    )

    sub.add_parser("list", help="list algorithms, datasets, platforms")
    sub.add_parser(
        "verify",
        help="cross-check all algorithms' numerics against each other "
        "and the dense references",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential conformance fuzzing across formats, kernels, "
        "caches, and parallel schedules",
    )
    fuzz.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="maximum fuzz iterations (default 100)",
    )
    fuzz.add_argument(
        "--seconds", type=float, default=None, metavar="S",
        help="wall-clock cap; stops early when reached",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--corpus-dir", default="tests/corpus", metavar="DIR",
        help="where shrunk reproducers are written (default tests/corpus)",
    )
    fuzz.add_argument(
        "--no-corpus", action="store_true",
        help="report failures without writing reproducer files",
    )
    fuzz.add_argument("--block-size", type=int, default=8)
    fuzz.add_argument("--rank", type=int, default=4)
    fuzz.add_argument(
        "--threads", default="2,4", metavar="T1,T2",
        help="comma-separated worker counts for the serial-vs-parallel "
        "exactness checks (default 2,4)",
    )
    fuzz.add_argument("--max-failures", type=int, default=5)
    fuzz.add_argument(
        "--quiet", action="store_true", help="suppress per-iteration progress"
    )

    lint = sub.add_parser(
        "lint",
        help="static contract checks: dtype discipline, index widths, "
        "hidden densification, parallel-write safety, cache hygiene",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (e.g. src/repro)",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON document instead of text lines",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="tolerate findings recorded in this baseline file; "
        "fail only on new ones",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--severity", choices=["info", "warning", "error"], default="info",
        help="minimum severity to report (default info = everything)",
    )
    lint.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated rule families to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )

    kcheck = sub.add_parser(
        "kernelcheck",
        help="static verification of generated C kernels: write-range "
        "disjointness, extent/width bounds, serial-vs-parallel store "
        "equivalence",
    )
    kcheck.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON document instead of text lines",
    )
    kcheck.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="tolerate findings recorded in this baseline file; "
        "fail only on new ones",
    )
    kcheck.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline from the current findings and exit 0",
    )
    kcheck.add_argument(
        "--orders", default=None, metavar="O1,O2",
        help="comma-separated tensor orders to check (default: 2,3,4)",
    )
    kcheck.add_argument(
        "--ranks", default=None, metavar="R1,R2",
        help="comma-separated factor ranks to check (default: 1,4,32)",
    )
    kcheck.add_argument(
        "--list-kernels", action="store_true",
        help="print the kernel matrix that would be checked and exit",
    )

    serve = sub.add_parser(
        "serve",
        help="run the asyncio tensor server: NDJSON kernel requests with "
        "batching, per-client quotas, and a JSON metrics endpoint",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7070,
        help="request port (default 7070; 0 = ephemeral)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=7071,
        help="metrics HTTP port (default 7071; -1 disables the endpoint)",
    )
    serve.add_argument(
        "--preload", default="r1", metavar="KEYS",
        help="comma-separated dataset registry keys to realize in RAM "
        "(default r1)",
    )
    serve.add_argument(
        "--bin", action="append", default=[], metavar="NAME=PATH",
        help="register an mmap REPROBIN file (repeatable)",
    )
    serve.add_argument(
        "--synthetic", action="append", default=[],
        metavar="NAME=IxJxK:NNZ[:SEED]",
        help="register a random in-RAM COO tensor (repeatable); e.g. "
        "hot=40x35x30:3000:1",
    )
    serve.add_argument(
        "--scale-divisor", type=int, default=DEFAULT_SCALE_DIVISOR,
        help="dataset down-scaling divisor for --preload entries",
    )
    serve.add_argument("--rate", type=float, default=200.0,
                       help="quota tokens per second per client")
    serve.add_argument("--burst", type=float, default=100.0,
                       help="quota bucket capacity per client")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="max requests fused into one kernel batch")
    serve.add_argument("--no-batch", action="store_true",
                       help="disable batching (unbatched baseline)")
    serve.add_argument("--batch-window", type=float, default=0.0,
                       help="seconds to linger for co-batchable requests")
    serve.add_argument("--threads", type=int, default=2,
                       help="executor threads running kernel batches")
    serve.add_argument("--kernel-threads", type=int, default=1,
                       help="intra-kernel threads per batch")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admitted-job queue cap (503 past it)")
    serve.add_argument(
        "--serve-seconds", type=float, default=None, metavar="S",
        help="shut down gracefully after S seconds (default: run until "
        "SIGINT/SIGTERM)",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.registry import make_schedule
    from .perf.parallel import last_parallel_report, parallel_config

    parsed = parse_algorithm_name(args.algorithm)
    platform = args.platform
    if platform is None:
        platform = "dgx1v" if parsed.target == "GPU" else "bluesky"
    harness = BenchmarkHarness(
        platform,
        scale_divisor=args.scale_divisor,
        rank=args.rank,
        measure_wallclock=args.wallclock,
    )
    if (parsed.target == "GPU") != harness.spec.is_gpu:
        print(
            f"error: algorithm targets {parsed.target} but platform "
            f"{harness.spec.name} is a {'GPU' if harness.spec.is_gpu else 'CPU'}",
            file=sys.stderr,
        )
        return 2
    with parallel_config(num_threads=args.threads, schedule=args.schedule):
        result = harness.run_cell(
            args.dataset, parsed.kernel, parsed.tensor_format
        )
        report = last_parallel_report()
    print(f"algorithm : {args.algorithm}")
    print(f"platform  : {harness.spec.name}")
    print(f"dataset   : {result.dataset} ({result.tensor_name})")
    print(f"modeled   : {result.gflops:.2f} GFLOPS "
          f"({result.modeled.seconds * 1e3:.3f} ms)")
    print(f"roofline  : {result.roofline_gflops:.2f} GFLOPS")
    print(f"efficiency: {result.efficiency * 100:.1f}%")
    if result.measured_seconds is not None:
        print(
            f"wallclock : {result.measured_seconds * 1e3:.3f} ms "
            f"({result.measured_gflops:.3f} GFLOPS on this host's numpy)"
        )
        if report is not None and report.workers > 1:
            # Measured imbalance from the executor next to the machine
            # model's prediction for the same worker count.
            spec = get_dataset(args.dataset)
            x = harness.tensor(spec)
            hicoo = (
                harness.hicoo_tensor(spec)
                if parsed.tensor_format.upper() == "HICOO"
                else None
            )
            modeled_imbalance = make_schedule(
                args.algorithm,
                x,
                mode=args.mode,
                rank=args.rank,
                block_size=harness.block_size,
                hicoo=hicoo,
            ).load_imbalance(report.workers)
            print(
                f"parallel  : {report.workers} workers, "
                f"{report.policy} schedule, {report.num_chunks} chunks"
            )
            print(
                f"imbalance : {report.measured_imbalance:.2f} measured "
                f"/ {modeled_imbalance:.2f} modeled"
            )
    return 0


def _cmd_features(args: argparse.Namespace) -> int:
    import os

    from .datasets.features import extract_features, synthesize_like
    from .io.frostt import read_tns

    if os.path.exists(args.source):
        tensor = read_tns(args.source)
    else:
        tensor = get_dataset(args.source).realize(args.scale_divisor)
    features = extract_features(tensor)
    print(features.summary())
    if args.stand_in:
        stand_in = synthesize_like(
            features, seed=args.seed, scale=args.stand_in_scale
        )
        write_tns(stand_in, args.stand_in)
        print(
            f"\nwrote stand-in with {stand_in.nnz} nonzeros to {args.stand_in}",
            file=sys.stderr,
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import os

    from .io.frostt import read_tns
    from .perf.autotune import tune, tuning_cache_path

    if os.path.exists(args.source):
        tensor = read_tns(args.source)
    else:
        tensor = get_dataset(args.source).realize(args.scale_divisor)
    report = tune(
        tensor,
        args.kernel,
        mode=args.mode,
        rank=args.rank,
        seed=args.seed,
        probe=not args.no_probe,
        top_k=args.top_k,
        budget_ms=args.budget_ms,
        use_disk_cache=not args.no_cache,
    )
    print(
        f"kernel    : {report.kernel} (mode {report.mode}, rank {report.rank})"
    )
    print(f"tensor    : {args.source} "
          f"(nnz {tensor.nnz}, fingerprint {report.fingerprint})")
    print(f"machine   : {report.machine}")
    if report.cache_hit:
        print(f"cache     : hit ({report.cache_hit}, {tuning_cache_path()}) "
              "— probes skipped")
    rows = []
    for cand in report.candidates:
        rows.append(
            {
                "config": cand.config.label(),
                "modeled (ms)": f"{cand.modeled_seconds * 1e3:.3f}",
                "measured (ms)": (
                    "-"
                    if cand.measured_seconds is None
                    else f"{cand.measured_seconds * 1e3:.3f}"
                ),
                "probe reps": cand.probe_reps or "-",
                "chosen": "*" if cand.config == report.chosen else "",
            }
        )
    print(format_table(rows))
    print(f"chosen    : {report.chosen.label()}")
    return 0


def _cmd_jit_cache(args: argparse.Namespace) -> int:
    from datetime import datetime

    from .perf import jit

    if args.clear:
        removed = jit.clear_cache()
        print(f"removed {removed} cached object(s) from {jit.object_cache_dir()}")
        return 0
    enabled = jit.jit_enabled()
    compiler = jit.compiler_path()
    print(f"cache dir : {jit.object_cache_dir()}")
    print(f"compiler  : {compiler or 'none found'}")
    print(
        "status    : "
        + (
            "available"
            if jit.jit_available()
            else ("disabled via REPRO_JIT" if not enabled else "unavailable")
        )
    )
    entries = jit.cache_entries()
    rows = [
        {
            "object": path.name,
            "profile": jit.entry_profile(path),
            "size (KiB)": f"{size / 1024:.1f}",
            "built": datetime.fromtimestamp(mtime).strftime("%Y-%m-%d %H:%M:%S"),
        }
        for path, size, mtime in entries
    ]
    if rows:
        print(format_table(rows))
    print(f"{len(entries)} cached object(s)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    dims = tuple(int(d) for d in args.dims.split(","))
    if args.generator == "kronecker":
        tensor = kronecker_tensor(dims, args.nnz, seed=args.seed)
    else:
        dense = (
            tuple(int(m) for m in args.dense_modes.split(","))
            if args.dense_modes
            else ()
        )
        tensor = powerlaw_tensor(
            dims, args.nnz, alpha=args.alpha, dense_modes=dense, seed=args.seed
        )
    if args.output == "-":
        write_tns(tensor, sys.stdout)
    else:
        write_tns(tensor, args.output)
        print(f"wrote {tensor.nnz} nonzeros to {args.output}", file=sys.stderr)
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .errors import PastaError
    from .io.binfile import DEFAULT_CHUNK_NNZ, import_tns

    shape = None
    if args.shape:
        shape = tuple(int(s) for s in args.shape.split(","))
    chunk_nnz = args.chunk_nnz or DEFAULT_CHUNK_NNZ

    def progress(seen: int) -> None:
        print(f"\r{seen:,} nonzeros", end="", file=sys.stderr, flush=True)

    try:
        header = import_tns(
            args.source,
            args.output,
            shape=shape,
            chunk_nnz=chunk_nnz,
            progress=None if args.quiet else progress,
        )
    except (PastaError, OSError) as exc:
        if not args.quiet:
            print(file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(file=sys.stderr)
    shape_text = "x".join(str(s) for s in header["shape"])
    print(
        f"wrote {args.output}: shape {shape_text}, "
        f"{header['nnz']:,} nonzeros in {len(header['chunks'])} chunk(s)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    import json as json_module

    from .errors import PastaError
    from .io.binfile import inspect_bin

    try:
        report = inspect_bin(args.path, verify=not args.no_verify)
    except (PastaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json_module.dumps(report, indent=2))
    else:
        shape_text = "x".join(str(s) for s in report["shape"])
        print(f"path      : {report['path']}")
        print(f"format    : {report['format']} v{report['version']}")
        print(f"shape     : {shape_text} (order {report['order']})")
        print(f"nnz       : {report['nnz']:,}")
        print(f"chunks    : {report['num_chunks']}")
        print(f"payload   : {report['payload_bytes']:,} bytes "
              f"({report['file_bytes']:,} on disk)")
        if args.no_verify:
            print("checksums : not verified (--no-verify)")
        elif report["checksums_ok"]:
            print("checksums : ok")
        else:
            bad = ", ".join(str(c) for c in report["corrupt_chunks"])
            print(f"checksums : MISMATCH in chunk(s) {bad}")
    if not args.no_verify and not report["checksums_ok"]:
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.sweeps import (
        block_size_sweep,
        gpu_count_sweep,
        rank_sweep,
        reorder_sweep,
        sweep_report,
    )

    tensor = get_dataset(args.dataset).realize(args.scale_divisor)
    study = args.study
    if study == "block-size":
        platform = args.platform or "bluesky"
        rows = block_size_sweep(tensor, platform)
    elif study == "rank":
        platform = args.platform or "dgx1v"
        rows = rank_sweep(tensor, platform)
    elif study == "reorder":
        platform = args.platform or "bluesky"
        rows = reorder_sweep(tensor, platform)
    else:
        platform = args.platform or "dgx1v"
        rows = gpu_count_sweep(tensor, platform)
    print(
        sweep_report(
            rows, title=f"{study} sweep on {args.dataset} ({platform})"
        )
    )
    return 0


def _cmd_list() -> int:
    print("Algorithms:")
    for name, description in algorithm_descriptions().items():
        print(f"  {name:<18} {description}")
    print("\nDatasets (Table II):")
    rows = [
        {
            "key": d.key,
            "name": d.name,
            "collection": d.collection,
            "order": d.order,
            "paper nnz": d.paper_nnz,
        }
        for d in datasets()
    ]
    print(format_table(rows))
    print("\nPlatforms (Table III): " + ", ".join(sorted(PLATFORMS)))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .conformance import fuzz

    threads = tuple(int(t) for t in args.threads.split(",") if t.strip())
    report = fuzz(
        budget=args.budget,
        seconds=args.seconds,
        seed=args.seed,
        corpus_dir=None if args.no_corpus else args.corpus_dir,
        max_failures=args.max_failures,
        block_size=args.block_size,
        rank=args.rank,
        threads=threads,
        progress=None if args.quiet else (lambda line: print(line, file=sys.stderr)),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis import (
        BaselineError,
        apply_baseline,
        lint_paths,
        load_baseline,
        rule_catalog,
        severity_rank,
        write_baseline,
    )
    from .analysis.engine import all_rules

    if args.list_rules:
        for rule, description in rule_catalog().items():
            print(f"{rule:<18} {description}")
        return 0
    if not args.paths:
        print("error: no paths given (try: repro lint src/repro)", file=sys.stderr)
        return 2
    selected = None
    if args.rules:
        wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
        catalog = rule_catalog()
        unknown = wanted - set(catalog)
        if unknown:
            print(
                f"error: unknown rule(s) {sorted(unknown)}; "
                f"known: {sorted(catalog)}",
                file=sys.stderr,
            )
            return 2
        selected = [m for m in all_rules() if m.RULE in wanted]

    report = lint_paths(args.paths)
    if selected is not None:
        kept_rules = {m.RULE for m in selected}
        report.findings = [f for f in report.findings if f.rule in kept_rules]
    min_rank = severity_rank(args.severity)
    findings = [f for f in report.findings if severity_rank(f.severity) <= min_rank]

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline needs --baseline FILE", file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, findings)
        print(f"wrote baseline {args.baseline} with {count} finding(s)")
        return 0

    baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, baseline)

    if args.as_json:
        payload = {
            "files": report.files,
            "findings": [f.to_dict() for f in findings],
            "suppressed": report.suppressed,
            "baselined": baselined,
            "parse_errors": report.parse_errors,
        }
        print(json_module.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.format_text())
        summary = (
            f"{len(findings)} finding(s) in {report.files} file(s)"
            f" ({report.suppressed} suppressed, {baselined} baselined)"
        )
        print(summary, file=sys.stderr)
        for error in report.parse_errors:
            print(f"parse error: {error}", file=sys.stderr)
    return 1 if findings or report.parse_errors else 0


def _cmd_kernelcheck(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis import (
        BaselineError,
        apply_baseline,
        check_kernels,
        load_baseline,
        write_baseline,
    )

    def _parse_ints(spec: Optional[str], what: str) -> Optional[tuple]:
        if spec is None:
            return None
        try:
            values = tuple(int(v) for v in spec.split(",") if v.strip())
        except ValueError:
            print(f"error: --{what} wants comma-separated ints, got {spec!r}",
                  file=sys.stderr)
            raise
        return values or None

    try:
        orders = _parse_ints(args.orders, "orders")
        ranks = _parse_ints(args.ranks, "ranks")
    except ValueError:
        return 2

    if args.list_kernels:
        from .perf.jit import codegen

        for artifact in codegen.registered_artifacts(
            orders=orders or codegen.REGISTERED_ORDERS,
            ranks=ranks or codegen.REGISTERED_RANKS,
        ):
            print(artifact.name)
        return 0

    report = check_kernels(orders=orders, ranks=ranks)
    findings = report.findings

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline needs --baseline FILE", file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, findings)
        print(f"wrote baseline {args.baseline} with {count} finding(s)")
        return 0

    baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, baselined = apply_baseline(findings, baseline)

    if args.as_json:
        payload = {
            "kernels": report.kernels,
            "findings": [f.to_dict() for f in findings],
            "baselined": baselined,
        }
        print(json_module.dumps(payload, indent=2))
    else:
        for finding in findings:
            print(finding.format_text())
        print(
            f"{len(findings)} finding(s) in {report.kernels} kernel(s)"
            f" ({baselined} baselined)",
            file=sys.stderr,
        )
    return 1 if findings else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module
    import signal

    from .serving import ServerConfig, TensorRegistry, TensorServer

    registry = TensorRegistry()
    for key in [k.strip() for k in args.preload.split(",") if k.strip()]:
        spec = get_dataset(key)
        tensor = spec.realize(args.scale_divisor)
        registry.add_ram(key, tensor, source=f"dataset:{spec.name}")
        print(
            f"loaded {key} ({spec.name}): shape {tensor.shape}, "
            f"nnz {tensor.nnz}",
            file=sys.stderr,
        )
    for item in args.bin:
        name, _, path = item.partition("=")
        if not name or not path:
            print(f"error: --bin wants NAME=PATH, got {item!r}", file=sys.stderr)
            return 2
        entry = registry.add_mmap(name, path)
        print(
            f"mapped {name} ({path}): shape {entry.shape}, nnz {entry.nnz}",
            file=sys.stderr,
        )
    for item in args.synthetic:
        import numpy as np

        from .formats import CooTensor

        name, _, spec_str = item.partition("=")
        try:
            shape_str, nnz_str, *seed_part = spec_str.split(":")
            shape = tuple(int(d) for d in shape_str.split("x"))
            nnz = int(nnz_str)
            seed = int(seed_part[0]) if seed_part else 0
        except ValueError:
            print(
                f"error: --synthetic wants NAME=IxJxK:NNZ[:SEED], got {item!r}",
                file=sys.stderr,
            )
            return 2
        tensor = CooTensor.random(shape, nnz, rng=np.random.default_rng(seed))
        registry.add_ram(name, tensor, source=f"synthetic:{spec_str}")
        print(
            f"generated {name}: shape {tensor.shape}, nnz {tensor.nnz}",
            file=sys.stderr,
        )
    if len(registry) == 0:
        print("error: nothing to serve (--preload and --bin empty)", file=sys.stderr)
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        metrics_port=None if args.metrics_port < 0 else args.metrics_port,
        rate=args.rate,
        burst=args.burst,
        max_batch=args.max_batch,
        batch=not args.no_batch,
        batch_window=args.batch_window,
        executor_threads=args.threads,
        kernel_threads=args.kernel_threads,
        max_queue=args.max_queue,
    )

    async def serve() -> None:
        server = TensorServer(registry, config)
        await server.start()
        host, port = server.address
        print(f"serving on {host}:{port}", file=sys.stderr)
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(f"metrics on http://{mhost}:{mport}/metrics", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover — non-POSIX
                pass
        if args.serve_seconds is not None:
            loop.call_later(args.serve_seconds, stop.set)
        await stop.wait()
        print("draining...", file=sys.stderr)
        await server.stop()
        print(
            json_module.dumps(server.metrics.snapshot(), indent=1),
            file=sys.stderr,
        )

    try:
        asyncio.run(serve())
    finally:
        registry.close_all()
    print("shutdown complete", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "kernelcheck":
        return _cmd_kernelcheck(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "features":
        return _cmd_features(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "jit-cache":
        return _cmd_jit_cache(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "convert":
        return _cmd_convert(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "verify":
        from .bench.verify import verify_suite

        report = verify_suite()
        print(report.summary())
        return 0 if report.all_passed else 1
    kwargs = {}
    if hasattr(args, "scale_divisor"):
        kwargs["scale_divisor"] = args.scale_divisor
    result = run_experiment(args.command, **kwargs)
    print(result.report)
    if getattr(args, "output_json", None):
        from .bench.export import write_json

        write_json(
            result.results,
            args.output_json,
            metadata={"experiment": args.command, **kwargs},
        )
        print(f"wrote JSON to {args.output_json}", file=sys.stderr)
    if getattr(args, "output_csv", None):
        from .bench.export import write_csv

        write_csv(result.results, args.output_csv)
        print(f"wrote CSV to {args.output_csv}", file=sys.stderr)
    if args.command == "observations":
        failed = [r for r in result.rows if r["Holds"] != "yes"]
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
