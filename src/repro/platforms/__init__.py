"""Modeled platforms (Table III) and the ERT bandwidth sweep."""

from .ert import ErtResult, run_ert
from .specs import (
    BLUESKY,
    DGX_1P,
    DGX_1V,
    PLATFORMS,
    WINGTIP,
    PlatformSpec,
    all_platforms,
    get_platform,
    table3,
)

__all__ = [
    "PlatformSpec",
    "BLUESKY",
    "WINGTIP",
    "DGX_1P",
    "DGX_1V",
    "PLATFORMS",
    "get_platform",
    "all_platforms",
    "table3",
    "ErtResult",
    "run_ert",
]
