"""Platform parameters — the paper's Table III.

Two Intel CPU machines (Bluesky, Wingtip) and two NVIDIA DGX GPUs
(DGX-1P with a Tesla P100, DGX-1V with a Tesla V100).  These numbers
parameterize the execution models in :mod:`repro.machine`; nothing here
queries the host — the four platforms are *modeled*, as documented in
DESIGN.md's substitution notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import PlatformError

KIND_CPU = "cpu"
KIND_GPU = "gpu"


@dataclass(frozen=True)
class PlatformSpec:
    """One row of Table III plus the microarchitectural details the
    execution models need.

    Attributes
    ----------
    name / processor / microarch / compiler:
        Identification strings straight from Table III.
    kind:
        ``"cpu"`` or ``"gpu"``.
    frequency_ghz:
        Core clock.
    cores:
        Physical CPU cores or CUDA cores.
    sockets:
        NUMA socket count (1 for GPUs).
    sm_count:
        Streaming multiprocessors (0 for CPUs).
    peak_sp_tflops:
        Theoretical single-precision peak.
    llc_bytes:
        Last-level cache capacity.
    mem_bytes / mem_type / mem_freq_ghz:
        Main/global memory capacity, technology, and clock.
    mem_bw_gbs:
        Theoretical peak memory bandwidth in GB/s.
    improved_atomics:
        Volta's faster atomics and the independent int/fp datapaths the
        paper credits for V100 MTTKRP results (Observation 2).
    """

    name: str
    kind: str
    processor: str
    microarch: str
    frequency_ghz: float
    cores: int
    sockets: int
    sm_count: int
    peak_sp_tflops: float
    llc_bytes: int
    mem_bytes: int
    mem_type: str
    mem_freq_ghz: float
    mem_bw_gbs: float
    compiler: str
    improved_atomics: bool = False

    @property
    def peak_sp_gflops(self) -> float:
        """Peak single-precision performance in GFLOPS."""
        return self.peak_sp_tflops * 1000.0

    @property
    def is_gpu(self) -> bool:
        """Whether this platform is modeled with the GPU execution model."""
        return self.kind == KIND_GPU

    def summary_row(self) -> Dict[str, str]:
        """Table III style row for reporting."""
        return {
            "Platform": self.name,
            "Processor": self.processor,
            "Microarch": self.microarch,
            "Frequency": f"{self.frequency_ghz:.2f} GHz",
            "#Cores": str(self.cores),
            "Peak SP Perf.": f"{self.peak_sp_tflops:.1f} TFLOPS",
            "LLC size": f"{self.llc_bytes // (1024 * 1024)} MB",
            "Mem. size": f"{self.mem_bytes // 2**30} GB",
            "Mem. type": self.mem_type,
            "Mem. freq.": f"{self.mem_freq_ghz:.3f} GHz",
            "Mem. BW": f"{self.mem_bw_gbs:.0f} GB/s",
            "Compiler": self.compiler,
        }


BLUESKY = PlatformSpec(
    name="Bluesky",
    kind=KIND_CPU,
    processor="Intel Xeon Gold 6126",
    microarch="Skylake",
    frequency_ghz=2.60,
    cores=24,
    sockets=2,
    sm_count=0,
    peak_sp_tflops=1.0,
    llc_bytes=19 * 1024 * 1024,
    mem_bytes=196 * 2**30,
    mem_type="DDR4",
    mem_freq_ghz=2.666,
    mem_bw_gbs=256.0,
    compiler="gcc 7.1.0",
)

WINGTIP = PlatformSpec(
    name="Wingtip",
    kind=KIND_CPU,
    processor="Intel Xeon E7-4850v3",
    microarch="Haswell",
    frequency_ghz=2.20,
    cores=56,
    sockets=4,
    sm_count=0,
    peak_sp_tflops=2.0,
    llc_bytes=35 * 1024 * 1024,
    mem_bytes=2114 * 2**30,
    mem_type="DDR4",
    mem_freq_ghz=2.133,
    mem_bw_gbs=273.0,
    compiler="gcc 5.5.0",
)

DGX_1P = PlatformSpec(
    name="DGX-1P",
    kind=KIND_GPU,
    processor="NVIDIA Tesla P100",
    microarch="Pascal",
    frequency_ghz=1.48,
    cores=3584,
    sockets=1,
    sm_count=56,
    peak_sp_tflops=10.6,
    llc_bytes=3 * 1024 * 1024,
    mem_bytes=16 * 2**30,
    mem_type="HBM2",
    mem_freq_ghz=0.715,
    mem_bw_gbs=732.0,
    compiler="CUDA Tkit 9.1",
)

DGX_1V = PlatformSpec(
    name="DGX-1V",
    kind=KIND_GPU,
    processor="NVIDIA Tesla V100",
    microarch="Volta",
    frequency_ghz=1.53,
    cores=5120,
    sockets=1,
    sm_count=80,
    peak_sp_tflops=14.9,
    llc_bytes=6 * 1024 * 1024,
    mem_bytes=16 * 2**30,
    mem_type="HBM2",
    mem_freq_ghz=0.877,
    mem_bw_gbs=900.0,
    compiler="CUDA Tkit 9.0",
    improved_atomics=True,
)

PLATFORMS: Dict[str, PlatformSpec] = {
    "bluesky": BLUESKY,
    "wingtip": WINGTIP,
    "dgx1p": DGX_1P,
    "dgx1v": DGX_1V,
}

#: Aliases accepted by :func:`get_platform`.
_ALIASES = {
    "dgx-1p": "dgx1p",
    "dgx-1v": "dgx1v",
    "p100": "dgx1p",
    "v100": "dgx1v",
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by name (case-insensitive, aliases allowed)."""
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    if key not in PLATFORMS:
        raise PlatformError(
            f"unknown platform {name!r}; choose from {sorted(PLATFORMS)}"
        )
    return PLATFORMS[key]


def all_platforms() -> Tuple[PlatformSpec, ...]:
    """All four platforms in Table III order."""
    return (BLUESKY, WINGTIP, DGX_1P, DGX_1V)


def table3() -> Tuple[Dict[str, str], ...]:
    """Reproduce Table III as a tuple of rows."""
    return tuple(spec.summary_row() for spec in all_platforms())
