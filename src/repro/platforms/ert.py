"""Empirical Roofline Tool (ERT) simulation.

The paper runs Berkeley's ERT, which sweeps STREAM-like micro-kernels
over working-set sizes to measure each memory level's obtainable
bandwidth.  We run the same sweep through our execution models: for each
working-set size a triad-style schedule (two loads and a store per
element, two flops) is lowered by the platform's model and the achieved
bandwidth is recorded.  Small sets report the LLC ceiling, large sets the
DRAM/HBM ceiling — the two lines Figure 3 plots as "ERT-LLC" and
"ERT-DRAM".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

import numpy as np

from ..core.schedule import GRAIN_NONZERO, KernelSchedule, uniform_work_units
from .specs import PlatformSpec, get_platform

#: STREAM triad moves 12 bytes and does 2 flops per element.
_TRIAD_BYTES_PER_ELEMENT = 12
_TRIAD_FLOPS_PER_ELEMENT = 2


@dataclass(frozen=True)
class ErtResult:
    """Measured machine ceilings from the ERT sweep.

    ``sweep`` holds ``(working_set_bytes, bandwidth_gbs)`` samples so the
    full bandwidth-vs-size curve can be plotted or inspected.
    """

    platform: str
    dram_bandwidth_gbs: float
    llc_bandwidth_gbs: float
    peak_gflops: float
    sweep: Tuple[Tuple[int, float], ...]


def _triad_schedule(num_elements: int) -> KernelSchedule:
    """A STREAM-triad micro-kernel schedule over ``num_elements``."""
    return KernelSchedule(
        kernel="TS",  # streaming kernel class: no gathers, no atomics
        tensor_format="COO",
        flops=_TRIAD_FLOPS_PER_ELEMENT * num_elements,
        streamed_bytes=_TRIAD_BYTES_PER_ELEMENT * num_elements,
        irregular_bytes=0,
        work_units=uniform_work_units(num_elements),
        parallel_grain=GRAIN_NONZERO,
        working_set_bytes=_TRIAD_BYTES_PER_ELEMENT * num_elements,
    )


def run_ert(
    platform: Union[str, PlatformSpec],
    *,
    min_bytes: int = 64 * 1024,
    max_bytes: int = 4 * 2**30,
    points: int = 24,
) -> ErtResult:
    """Sweep working-set sizes and report obtainable bandwidths.

    The LLC ceiling is the best bandwidth observed (smallest sets); the
    DRAM ceiling is the asymptotic bandwidth at the largest sets.
    """
    # Imported here: repro.machine depends on repro.platforms.specs, so a
    # module-level import would be circular.
    from ..machine import execution_model

    spec = get_platform(platform) if isinstance(platform, str) else platform
    model = execution_model(spec)
    sizes = np.unique(
        np.geomspace(min_bytes, max_bytes, points).astype(np.int64)
    )
    sweep: List[Tuple[int, float]] = []
    for working_set in sizes:
        elements = max(int(working_set) // _TRIAD_BYTES_PER_ELEMENT, 1)
        estimate = model.predict(_triad_schedule(elements))
        bandwidth = (
            _TRIAD_BYTES_PER_ELEMENT * elements / estimate.seconds / 1e9
            if estimate.seconds > 0
            else 0.0
        )
        sweep.append((int(working_set), bandwidth))
    bandwidths = [bw for _, bw in sweep]
    return ErtResult(
        platform=spec.name,
        dram_bandwidth_gbs=min(bandwidths[-3:]),
        llc_bandwidth_gbs=max(bandwidths),
        peak_gflops=spec.peak_sp_gflops,
        sweep=tuple(sweep),
    )
