"""Parameter sweep utilities: the ablation studies as a library API.

The ablation benchmarks in ``benchmarks/`` each inline a small sweep;
this module exposes the same studies programmatically so users can run
them on their own tensors — HiCOO block size, matrix rank, reordering
scheme, GPU count — and get structured rows back (ready for
:mod:`repro.bench.export`'s CSV/JSON writers or the text formatter).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from ..core.analysis import DEFAULT_RANK, kernel_cost
from ..core.registry import make_schedule
from ..formats.coo import CooTensor
from ..formats.hicoo import HicooTensor
from ..formats.reorder import (
    block_density_relabel,
    degree_relabel,
    locality_metrics,
    random_relabel,
)
from ..machine import MultiGpuExecutionModel, execution_model
from ..platforms.specs import PlatformSpec, get_platform
from .formatting import format_table

DEFAULT_BLOCK_SIZES = (4, 16, 64, 128, 256)
DEFAULT_RANKS = (4, 16, 64, 256)
REORDER_SCHEMES = ("original", "random", "degree", "block-density")


def block_size_sweep(
    tensor: CooTensor,
    platform: Union[str, PlatformSpec] = "bluesky",
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    *,
    rank: int = DEFAULT_RANK,
) -> List[Dict[str, object]]:
    """HiCOO block size B vs compression, occupancy, and modeled MTTKRP."""
    spec = get_platform(platform) if isinstance(platform, str) else platform
    model = execution_model(spec)
    target = "GPU" if spec.is_gpu else "OMP"
    rows: List[Dict[str, object]] = []
    for block_size in block_sizes:
        hicoo = HicooTensor.from_coo(tensor, block_size)
        schedule = make_schedule(
            f"HiCOO-MTTKRP-{target}", tensor, mode=0, rank=rank,
            block_size=block_size, hicoo=hicoo,
        )
        estimate = model.predict(schedule)
        rows.append(
            {
                "block_size": block_size,
                "num_blocks": hicoo.num_blocks,
                "occupancy": hicoo.average_block_occupancy(),
                "compression": hicoo.compression_ratio(),
                "mttkrp_gflops": estimate.gflops,
            }
        )
    return rows


def rank_sweep(
    tensor: CooTensor,
    platform: Union[str, PlatformSpec] = "dgx1v",
    ranks: Sequence[int] = DEFAULT_RANKS,
) -> List[Dict[str, object]]:
    """Rank R vs operational intensity and modeled TTM/MTTKRP GFLOPS."""
    spec = get_platform(platform) if isinstance(platform, str) else platform
    model = execution_model(spec)
    target = "GPU" if spec.is_gpu else "OMP"
    fibers = tensor.num_fibers(0)
    rows: List[Dict[str, object]] = []
    for rank in ranks:
        ttm_cost = kernel_cost("TTM", tensor.nnz, num_fibers=fibers, rank=rank)
        mttkrp_cost = kernel_cost("MTTKRP", tensor.nnz, rank=rank)
        ttm = model.predict(
            make_schedule(f"COO-TTM-{target}", tensor, mode=0, rank=rank)
        )
        mttkrp = model.predict(
            make_schedule(f"COO-MTTKRP-{target}", tensor, mode=0, rank=rank)
        )
        rows.append(
            {
                "rank": rank,
                "ttm_oi": ttm_cost.operational_intensity(),
                "ttm_gflops": ttm.gflops,
                "mttkrp_oi": mttkrp_cost.operational_intensity(),
                "mttkrp_gflops": mttkrp.gflops,
            }
        )
    return rows


def reorder_sweep(
    tensor: CooTensor,
    platform: Union[str, PlatformSpec] = "bluesky",
    *,
    block_size: int = 128,
    rank: int = DEFAULT_RANK,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Relabeling scheme vs HiCOO locality and modeled HiCOO-MTTKRP."""
    spec = get_platform(platform) if isinstance(platform, str) else platform
    model = execution_model(spec)
    target = "GPU" if spec.is_gpu else "OMP"
    variants = {
        "original": tensor,
        "random": random_relabel(tensor, seed=seed)[0],
        "degree": degree_relabel(tensor)[0],
        "block-density": block_density_relabel(tensor, block_size)[0],
    }
    rows: List[Dict[str, object]] = []
    for scheme, variant in variants.items():
        metrics = locality_metrics(variant, block_size)
        hicoo = HicooTensor.from_coo(variant, block_size)
        schedule = make_schedule(
            f"HiCOO-MTTKRP-{target}", variant, mode=0, rank=rank,
            block_size=block_size, hicoo=hicoo,
        )
        estimate = model.predict(schedule)
        rows.append(
            {
                "scheme": scheme,
                "occupancy": metrics["block_occupancy"],
                "compression": metrics["storage_ratio"],
                "mttkrp_gflops": estimate.gflops,
            }
        )
    return rows


def gpu_count_sweep(
    tensor: CooTensor,
    platform: Union[str, PlatformSpec] = "dgx1v",
    gpu_counts: Sequence[int] = (1, 2, 4, 8),
    *,
    kernel: str = "MTTKRP",
    rank: int = DEFAULT_RANK,
) -> List[Dict[str, object]]:
    """GPU count vs modeled speedup for one kernel (strong scaling)."""
    spec = get_platform(platform) if isinstance(platform, str) else platform
    schedule = make_schedule(
        f"COO-{kernel.upper()}-GPU", tensor, mode=0, rank=rank
    )
    baseline: Optional[float] = None
    rows: List[Dict[str, object]] = []
    for count in gpu_counts:
        estimate = MultiGpuExecutionModel(spec, count).predict(schedule)
        if baseline is None:
            baseline = estimate.seconds
        rows.append(
            {
                "gpus": count,
                "seconds": estimate.seconds,
                "speedup": baseline / estimate.seconds if estimate.seconds else 0.0,
                "comm_fraction": (
                    estimate.communication_seconds / estimate.seconds
                    if estimate.seconds
                    else 0.0
                ),
            }
        )
    return rows


def sweep_report(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render sweep rows as an aligned text table."""
    formatted = [
        {
            k: (f"{v:.3f}" if isinstance(v, float) else v)
            for k, v in row.items()
        }
        for row in rows
    ]
    return format_table(formatted, title=title)
