"""Export benchmark results to CSV / JSON for external plotting.

The paper's figures are bar charts over (tensor, kernel, format) cells;
this module serializes :class:`~repro.bench.harness.BenchResult` lists in
the layout a plotting script (matplotlib, gnuplot, a spreadsheet) wants,
and round-trips them so sweeps can be archived and re-analyzed without
re-running the models.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Union

from ..machine.result import ExecutionEstimate
from .harness import BenchResult

PathOrFile = Union[str, Path, TextIO]

_CSV_COLUMNS = (
    "dataset",
    "tensor_name",
    "platform",
    "kernel",
    "tensor_format",
    "gflops",
    "roofline_gflops",
    "efficiency",
    "modeled_seconds",
    "measured_seconds",
)


def result_to_record(result: BenchResult) -> Dict[str, object]:
    """Flatten one result into a JSON/CSV-friendly dict."""
    return {
        "dataset": result.dataset,
        "tensor_name": result.tensor_name,
        "platform": result.platform,
        "kernel": result.kernel,
        "tensor_format": result.tensor_format,
        "gflops": result.gflops,
        "roofline_gflops": result.roofline_gflops,
        "efficiency": result.efficiency,
        "modeled_seconds": result.modeled.seconds,
        "measured_seconds": result.measured_seconds,
        "flops": result.modeled.flops,
        "algorithm": result.modeled.algorithm,
    }


def record_to_result(record: Dict[str, object]) -> BenchResult:
    """Rebuild a :class:`BenchResult` from a flattened record."""
    modeled = ExecutionEstimate(
        platform=str(record["platform"]),
        algorithm=str(record.get("algorithm", "")),
        seconds=float(record["modeled_seconds"]),
        flops=int(record.get("flops", 0)),
    )
    measured = record.get("measured_seconds")
    return BenchResult(
        dataset=str(record["dataset"]),
        tensor_name=str(record["tensor_name"]),
        platform=str(record["platform"]),
        kernel=str(record["kernel"]),
        tensor_format=str(record["tensor_format"]),
        modeled=modeled,
        roofline_gflops=float(record["roofline_gflops"]),
        measured_seconds=float(measured) if measured not in (None, "") else None,
    )


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8", newline=""), True
    return target, False


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8", newline=""), True
    return source, False


def write_csv(results: Sequence[BenchResult], target: PathOrFile) -> None:
    """Write results as CSV with a fixed, documented column set."""
    handle, owns = _open_for_write(target)
    try:
        writer = csv.DictWriter(
            handle, fieldnames=_CSV_COLUMNS, extrasaction="ignore"
        )
        writer.writeheader()
        for result in results:
            record = result_to_record(result)
            writer.writerow({k: record.get(k) for k in _CSV_COLUMNS})
    finally:
        if owns:
            handle.close()


def dumps_csv(results: Sequence[BenchResult]) -> str:
    """Serialize results to a CSV string."""
    buffer = io.StringIO()
    write_csv(results, buffer)
    return buffer.getvalue()


def write_json(
    results: Sequence[BenchResult],
    target: PathOrFile,
    *,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write results (plus optional run metadata) as a JSON document."""
    document = {
        "metadata": metadata or {},
        "results": [result_to_record(r) for r in results],
    }
    handle, owns = _open_for_write(target)
    try:
        json.dump(document, handle, indent=2)
    finally:
        if owns:
            handle.close()


def read_json(source: PathOrFile) -> List[BenchResult]:
    """Load results previously written by :func:`write_json`."""
    handle, owns = _open_for_read(source)
    try:
        document = json.load(handle)
    finally:
        if owns:
            handle.close()
    return [record_to_result(r) for r in document["results"]]


def figure_series(
    results: Sequence[BenchResult],
) -> Dict[str, Dict[str, List[float]]]:
    """Group results into plottable series.

    Returns ``{ "<kernel>/<format>": {"labels": [...], "gflops": [...],
    "roofline": [...]} }`` with datasets in their first-seen (Table II)
    order — one series per bar group of Figures 4-7.
    """
    series: Dict[str, Dict[str, List[float]]] = {}
    for result in results:
        key = f"{result.kernel}/{result.tensor_format}"
        bucket = series.setdefault(
            key, {"labels": [], "gflops": [], "roofline": []}
        )
        bucket["labels"].append(result.dataset)
        bucket["gflops"].append(result.gflops)
        bucket["roofline"].append(result.roofline_gflops)
    return series
