"""One entry point per paper table and figure.

Each ``run_*`` function regenerates the rows/series of one artifact from
the paper's evaluation; :data:`EXPERIMENTS` maps experiment ids
(``"table1"`` ... ``"fig7"``, ``"observations"``) to those functions so
the CLI and benchmark files share a single registry.

Every function returns structured data *and* a rendered text report, so
the same code backs tests, benchmarks, and the command line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.analysis import DEFAULT_RANK, table1 as analysis_table1
from ..datasets.registry import DEFAULT_SCALE_DIVISOR, datasets, table2 as registry_table2
from ..platforms.specs import all_platforms, table3 as specs_table3
from ..roofline.model import RooflineModel
from ..roofline.report import roofline_text
from .formatting import format_table, results_table
from .harness import BenchmarkHarness, BenchResult

#: Platform per kernel-performance figure, as in the paper.
FIGURE_PLATFORMS = {
    "fig4": "bluesky",
    "fig5": "wingtip",
    "fig6": "dgx1p",
    "fig7": "dgx1v",
}


@dataclass
class ExperimentResult:
    """Output of one experiment run: data rows plus a text report."""

    experiment: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    results: List[BenchResult] = field(default_factory=list)
    report: str = ""


def run_table1(**_: object) -> ExperimentResult:
    """Table I: per-kernel flops, upper-bound bytes, and OI."""
    costs = analysis_table1()
    rows: List[Dict[str, object]] = []
    for kernel, cost in costs.items():
        rows.append(
            {
                "Kernel": kernel,
                "Work(#Flops)": cost.flops,
                "COO bytes": cost.coo_bytes,
                "HiCOO bytes": cost.hicoo_bytes,
                "OI (COO)": f"{cost.operational_intensity('COO'):.4f}",
                "OI (HiCOO)": f"{cost.operational_intensity('HiCOO'):.4f}",
            }
        )
    report = format_table(
        rows,
        title="Table I: kernel analysis (M = 1e6, M_F = M/8, n_b = M/16, R = 16)",
    )
    return ExperimentResult("table1", rows=rows, report=report)


def run_table2(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR, **_: object
) -> ExperimentResult:
    """Table II: the thirty datasets at reproduction scale."""
    rows = [dict(r) for r in registry_table2(scale_divisor=scale_divisor)]
    report = format_table(
        rows, title=f"Table II: datasets (scale divisor {scale_divisor})"
    )
    return ExperimentResult("table2", rows=rows, report=report)


def run_table3(**_: object) -> ExperimentResult:
    """Table III: modeled platform parameters."""
    rows = [dict(r) for r in specs_table3()]
    report = format_table(rows, title="Table III: platform parameters")
    return ExperimentResult("table3", rows=rows, report=report)


def run_fig3(**_: object) -> ExperimentResult:
    """Figure 3: Roofline models with kernel OI markers, four platforms."""
    rows: List[Dict[str, object]] = []
    reports: List[str] = []
    for spec in all_platforms():
        model = RooflineModel.for_platform(spec)
        reports.append(roofline_text(model))
        for ceiling, bandwidth in model.bandwidth_ceilings_gbs.items():
            rows.append(
                {
                    "Platform": spec.name,
                    "Ceiling": ceiling,
                    "GB/s": f"{bandwidth:.1f}",
                    "Ridge OI": f"{model.ridge_point(ceiling):.2f}",
                }
            )
        for kernel, (oi, gflops) in model.kernel_markers().items():
            rows.append(
                {
                    "Platform": spec.name,
                    "Ceiling": f"marker:{kernel}",
                    "GB/s": f"OI={oi:.3f}",
                    "Ridge OI": f"{gflops:.1f} GFLOPS",
                }
            )
    return ExperimentResult("fig3", rows=rows, report="\n\n".join(reports))


def run_kernel_figure(
    platform: str,
    *,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    rank: int = DEFAULT_RANK,
    collection: Optional[str] = None,
    dataset_keys: Optional[Sequence[str]] = None,
    measure_wallclock: bool = False,
    harness: Optional[BenchmarkHarness] = None,
) -> ExperimentResult:
    """Figures 4-7: five kernels x two formats on one platform.

    Returns one row per (tensor, kernel, format) with modeled GFLOPS and
    the tensor's exact Roofline performance — the bars and the red line.
    """
    if harness is None:
        harness = BenchmarkHarness(
            platform,
            scale_divisor=scale_divisor,
            rank=rank,
            measure_wallclock=measure_wallclock,
        )
    results = harness.run_suite(collection, dataset_keys=dataset_keys)
    name = f"kernel-performance-{harness.spec.name.lower()}"
    report = results_table(
        results,
        title=(
            f"Kernel performance on {harness.spec.name} "
            f"(modeled GFLOPS vs Roofline performance)"
        ),
    )
    rows = [
        {
            "No.": r.dataset,
            "Tensor": r.tensor_name,
            "Kernel": r.kernel,
            "Format": r.tensor_format,
            "GFLOPS": r.gflops,
            "Roofline": r.roofline_gflops,
            "Efficiency": r.efficiency,
        }
        for r in results
    ]
    return ExperimentResult(name, rows=rows, results=results, report=report)


def run_fig4(**kwargs: object) -> ExperimentResult:
    """Figure 4: Bluesky (24-core Skylake)."""
    return run_kernel_figure("bluesky", **kwargs)  # type: ignore[arg-type]


def run_fig5(**kwargs: object) -> ExperimentResult:
    """Figure 5: Wingtip (56-core, four-socket Haswell)."""
    return run_kernel_figure("wingtip", **kwargs)  # type: ignore[arg-type]


def run_fig6(**kwargs: object) -> ExperimentResult:
    """Figure 6: DGX-1P (Tesla P100)."""
    return run_kernel_figure("dgx1p", **kwargs)  # type: ignore[arg-type]


def run_fig7(**kwargs: object) -> ExperimentResult:
    """Figure 7: DGX-1V (Tesla V100)."""
    return run_kernel_figure("dgx1v", **kwargs)  # type: ignore[arg-type]


def run_storage(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR, **_: object
) -> ExperimentResult:
    """Extension: per-format storage across all Table II tensors.

    A "Table IV" the paper doesn't have: bytes for COO, HiCOO, gHiCOO
    (two blocked modes), CSF (mode-0 tree), and F-COO (mode-0) on every
    dataset, normalized to COO.  Quantifies where HiCOO compresses,
    where hyper-sparsity makes it backfire (the gHiCOO motivation), and
    the mode-specific formats' footprint.
    """
    from ..formats.csf import csf_for_mode
    from ..formats.fcoo import FcooTensor
    from ..formats.ghicoo import GHicooTensor
    from ..formats.hicoo import HicooTensor

    rows: List[Dict[str, object]] = []
    for spec in datasets():
        tensor = spec.realize(scale_divisor)
        coo_bytes = tensor.storage_bytes()
        hicoo = HicooTensor.from_coo(tensor, 128)
        ghicoo = GHicooTensor.from_coo(tensor, [0, 1], 128)
        csf = csf_for_mode(tensor, 0)
        fcoo = FcooTensor.from_coo(tensor, 0)
        rows.append(
            {
                "No.": spec.key,
                "Tensor": spec.name,
                "nnz": tensor.nnz,
                "COO MB": f"{coo_bytes / 1e6:.2f}",
                "HiCOO/COO": f"{hicoo.storage_bytes() / coo_bytes:.2f}",
                "gHiCOO/COO": f"{ghicoo.storage_bytes() / coo_bytes:.2f}",
                "CSF/COO": f"{csf.storage_bytes() / coo_bytes:.2f}",
                "F-COO/COO": f"{fcoo.storage_bytes() / coo_bytes:.2f}",
                "blockOcc": f"{hicoo.average_block_occupancy():.2f}",
            }
        )
    report = format_table(
        rows,
        title=(
            "Format storage comparison (ratios vs COO; "
            f"scale divisor {scale_divisor})"
        ),
    )
    return ExperimentResult("storage", rows=rows, report=report)


def run_observations(**kwargs: object) -> ExperimentResult:
    """Section V-C: check the paper's five observations programmatically."""
    from .observations import evaluate_all_observations

    reports = evaluate_all_observations(**kwargs)  # type: ignore[arg-type]
    rows = [
        {
            "Observation": r.observation,
            "Holds": "yes" if r.holds else "NO",
            "Summary": r.summary,
        }
        for r in reports
    ]
    text = "\n\n".join(r.detail for r in reports)
    return ExperimentResult("observations", rows=rows, report=text)


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "observations": run_observations,
    "storage": run_storage,
}


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run a paper artifact by id (``table1``..``table3``, ``fig3``..``fig7``)."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](**kwargs)
