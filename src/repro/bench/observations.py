"""Programmatic checks of the paper's five observations (Section V-C).

Each check turns one qualitative claim from the paper into a predicate
over the modeled benchmark results, so the reproduction's "shape" can be
asserted in tests and reported from the CLI.  The checks intentionally
test direction and ordering, not absolute numbers — our substrate is an
execution model, not the authors' testbed (DESIGN.md substitution #1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..datasets.registry import DEFAULT_SCALE_DIVISOR, get_dataset
from .harness import (
    BenchmarkHarness,
    BenchResult,
    average_efficiency,
    average_gflops,
)

PLATFORM_ORDER = ("bluesky", "wingtip", "dgx1p", "dgx1v")

ResultsByPlatform = Dict[str, List[BenchResult]]


@dataclass(frozen=True)
class ObservationReport:
    """Outcome of one observation check."""

    observation: str
    holds: bool
    summary: str
    detail: str


def collect_results(
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    platforms: Sequence[str] = PLATFORM_ORDER,
) -> ResultsByPlatform:
    """Run the full suite on every platform once, for all checks."""
    results: ResultsByPlatform = {}
    for platform in platforms:
        harness = BenchmarkHarness(platform, scale_divisor=scale_divisor)
        results[platform] = harness.run_suite()
    return results


def _fmt_pairs(values: Dict, scale: float = 1.0, unit: str = "") -> str:
    return ", ".join(
        f"{k[0]}/{k[1]}={v * scale:.1f}{unit}" for k, v in sorted(values.items())
    )


# ----------------------------------------------------------------------
# Observation 1
# ----------------------------------------------------------------------

def check_observation1(results: ResultsByPlatform) -> ObservationReport:
    """Achieved performance is diverse and hard to predict.

    Verified as: on every platform the achieved GFLOPS across all
    (tensor, kernel, format) cells spans at least a factor of 20, and the
    per-kernel averages differ by at least 3x between the fastest and
    slowest kernel (the paper's Bluesky averages span 2.7-40.8 GFLOPS,
    ~15x; GPUs compress the spread because fast atomics lift MTTKRP).
    """
    lines: List[str] = ["Observation 1: performance diversity"]
    holds = True
    for platform, res in results.items():
        gflops = [r.gflops for r in res if r.gflops > 0]
        spread = max(gflops) / min(gflops)
        averages = average_gflops(res)
        kernel_means = {}
        for (kernel, _fmt), value in averages.items():
            kernel_means.setdefault(kernel, []).append(value)
        means = {k: sum(v) / len(v) for k, v in kernel_means.items()}
        kernel_spread = max(means.values()) / min(means.values())
        ok = spread >= 20.0 and kernel_spread >= 3.0
        holds &= ok
        lines.append(
            f"  {platform}: cell spread {spread:.0f}x, "
            f"kernel-average spread {kernel_spread:.1f}x -> "
            f"{'diverse' if ok else 'NOT DIVERSE'}"
        )
    return ObservationReport(
        "obs1-diversity",
        holds,
        "performance varies widely across tensors, kernels, formats, platforms",
        "\n".join(lines),
    )


# ----------------------------------------------------------------------
# Observation 2
# ----------------------------------------------------------------------

def check_observation2(
    results: ResultsByPlatform,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
) -> ObservationReport:
    """Performance sits below the Roofline except cache-friendly cases.

    Verified as: a majority of all cells fall below their Roofline
    performance, and among TEW/TS cells that *exceed* it on CPUs, the
    median tensor size is smaller than the median size of cells below it
    (small tensors fit the cache).
    """
    lines: List[str] = ["Observation 2: Roofline bound and cache effects"]
    holds = True
    for platform, res in results.items():
        below = sum(1 for r in res if r.efficiency <= 1.0)
        frac_below = below / len(res)
        ok = frac_below >= 0.5
        lines.append(
            f"  {platform}: {frac_below * 100:.0f}% of cells below roofline"
        )
        holds &= ok
    # Cache argument on the CPUs.
    for platform in ("bluesky", "wingtip"):
        res = results.get(platform)
        if not res:
            continue
        streaming = [r for r in res if r.kernel in ("TEW", "TS")]
        above = [r for r in streaming if r.efficiency > 1.0]
        at_or_below = [r for r in streaming if r.efficiency <= 1.0]
        if not above or not at_or_below:
            continue
        def median_nnz(cells: List[BenchResult]) -> float:
            sizes = sorted(
                get_dataset(r.dataset).scaled_nnz(scale_divisor) for r in cells
            )
            return float(sizes[len(sizes) // 2])
        above_nnz = median_nnz(above)
        below_nnz = median_nnz(at_or_below)
        ok = above_nnz < below_nnz
        holds &= ok
        lines.append(
            f"  {platform}: above-roofline TEW/TS median nnz {above_nnz:.0f} "
            f"< below-roofline median {below_nnz:.0f}: {'yes' if ok else 'NO'}"
        )
    return ObservationReport(
        "obs2-roofline",
        holds,
        "most cells below roofline; the exceptions are small, cache-resident tensors",
        "\n".join(lines),
    )


# ----------------------------------------------------------------------
# Observation 3
# ----------------------------------------------------------------------

def check_observation3(results: ResultsByPlatform) -> ObservationReport:
    """NUMA hurts non-streaming kernels on multi-socket CPUs.

    Verified as: for TTV and TTM (COO), the four-socket Wingtip's average
    efficiency is strictly lower than two-socket Bluesky's, and at most
    10% above either GPU's (GPU efficiency at reproduction scale carries
    an extra underutilization penalty from the shrunken tensors, so the
    GPU comparison gets slack).
    """
    eff = {p: average_efficiency(r) for p, r in results.items()}
    lines: List[str] = ["Observation 3: NUMA effect on non-streaming kernels"]
    holds = True
    for kernel in ("TTV", "TTM"):
        wingtip = eff["wingtip"][(kernel, "COO")]
        others = {
            p: eff[p][(kernel, "COO")] for p in ("bluesky", "dgx1p", "dgx1v")
        }
        ok = wingtip < others["bluesky"] and all(
            wingtip <= v * 1.1 for v in others.values()
        )
        holds &= ok
        lines.append(
            f"  {kernel}: wingtip {wingtip * 100:.0f}% vs "
            + ", ".join(f"{p} {v * 100:.0f}%" for p, v in others.items())
            + f" -> {'lowest' if ok else 'NOT lowest'}"
        )
    return ObservationReport(
        "obs3-numa",
        holds,
        "four-socket Wingtip has the lowest TTV/TTM efficiency",
        "\n".join(lines),
    )


# ----------------------------------------------------------------------
# Observation 4
# ----------------------------------------------------------------------

def check_observation4(results: ResultsByPlatform) -> ObservationReport:
    """HiCOO beats or matches COO except MTTKRP on GPUs.

    Verified as: on CPUs, HiCOO's average GFLOPS >= COO's for TEW, TS,
    and TTV, and within 40% of COO for TTM and MTTKRP; on GPUs,
    HiCOO-MTTKRP is slower than COO-MTTKRP while the other four kernels
    are within 15% between formats.
    """
    lines: List[str] = ["Observation 4: HiCOO vs COO"]
    holds = True
    for platform in ("bluesky", "wingtip"):
        avg = average_gflops(results[platform])
        for kernel in ("TEW", "TS", "TTV"):
            ok = avg[(kernel, "HiCOO")] >= avg[(kernel, "COO")] * 0.98
            holds &= ok
            lines.append(
                f"  {platform} {kernel}: HiCOO {avg[(kernel, 'HiCOO')]:.1f} vs "
                f"COO {avg[(kernel, 'COO')]:.1f} GF -> "
                f"{'HiCOO >= COO' if ok else 'HiCOO SLOWER'}"
            )
        for kernel in ("TTM", "MTTKRP"):
            ratio = avg[(kernel, "HiCOO")] / avg[(kernel, "COO")]
            ok = ratio >= 0.6
            holds &= ok
            lines.append(
                f"  {platform} {kernel}: HiCOO/COO = {ratio:.2f} -> "
                f"{'similar' if ok else 'TOO SLOW'}"
            )
    for platform in ("dgx1p", "dgx1v"):
        avg = average_gflops(results[platform])
        mttkrp_ratio = avg[("MTTKRP", "HiCOO")] / avg[("MTTKRP", "COO")]
        ok = mttkrp_ratio < 1.0
        holds &= ok
        lines.append(
            f"  {platform} MTTKRP: HiCOO/COO = {mttkrp_ratio:.2f} -> "
            f"{'COO wins (as the paper finds)' if ok else 'UNEXPECTED'}"
        )
        for kernel in ("TEW", "TS", "TTV", "TTM"):
            ratio = avg[(kernel, "HiCOO")] / avg[(kernel, "COO")]
            ok = 0.85 <= ratio <= 1.3
            holds &= ok
            lines.append(
                f"  {platform} {kernel}: HiCOO/COO = {ratio:.2f} -> "
                f"{'similar' if ok else 'DIVERGED'}"
            )
    return ObservationReport(
        "obs4-hicoo",
        holds,
        "HiCOO >= COO for streaming/TTV on CPUs; GPU MTTKRP favors COO",
        "\n".join(lines),
    )


# ----------------------------------------------------------------------
# Observation 5
# ----------------------------------------------------------------------

def check_observation5(results: ResultsByPlatform) -> ObservationReport:
    """Synthetic datasets expose size trends real tensors hide.

    Verified as: on the CPUs, TEW (COO) GFLOPS decrease monotonically
    from small to large within each synthetic family (the paper's
    "period trend" driven by cache size), and large synthetic tensors
    land within an order of magnitude of large real tensors for TEW.
    """
    families = (("s1", "s2", "s3"), ("s4", "s5", "s6"), ("s7", "s8", "s9"),
                ("s10", "s11", "s12"), ("s13", "s14", "s15"))
    lines: List[str] = ["Observation 5: synthetic size trends"]
    holds = True
    for platform in ("bluesky", "wingtip"):
        res = results[platform]
        tew = {
            r.dataset: r.gflops
            for r in res
            if r.kernel == "TEW" and r.tensor_format == "COO"
        }
        for family in families:
            series = [tew[k] for k in family if k in tew]
            ok = all(a >= b for a, b in zip(series, series[1:]))
            holds &= ok
            lines.append(
                f"  {platform} TEW {family}: "
                + " -> ".join(f"{v:.1f}" for v in series)
                + f" {'decreasing' if ok else 'NOT MONOTONE'}"
            )
        large_real = [
            r.gflops
            for r in res
            if r.kernel == "TEW"
            and r.tensor_format == "COO"
            and r.dataset in ("r5", "r6", "r7", "r8", "r9")
        ]
        large_synth = [tew[k] for k in ("s3", "s6", "s9") if k in tew]
        if large_real and large_synth:
            ratio = (sum(large_synth) / len(large_synth)) / (
                sum(large_real) / len(large_real)
            )
            ok = 0.1 <= ratio <= 10.0
            holds &= ok
            lines.append(
                f"  {platform}: large synthetic/real TEW ratio {ratio:.2f} "
                f"-> {'same scale' if ok else 'DIFFERENT SCALE'}"
            )
    return ObservationReport(
        "obs5-synthetic",
        holds,
        "synthetic tensors show the cache-driven size trend; scales match real data",
        "\n".join(lines),
    )


# ----------------------------------------------------------------------

def evaluate_all_observations(
    results: Optional[ResultsByPlatform] = None,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
    **_: object,
) -> List[ObservationReport]:
    """Run every observation check, computing results once if needed."""
    if results is None:
        results = collect_results(scale_divisor)
    return [
        check_observation1(results),
        check_observation2(results, scale_divisor),
        check_observation3(results),
        check_observation4(results),
        check_observation5(results),
    ]
