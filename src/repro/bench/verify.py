"""Suite self-verification: cross-check every algorithm's numerics.

A benchmark suite is only useful if its reference implementations agree
with each other; this module runs every registered algorithm (plus the
CSF extension kernels) on a set of probe tensors and checks:

* COO and HiCOO (and CSF, where applicable) produce identical values;
* OMP and GPU variants produce identical values (they differ only in
  schedule);
* each kernel matches the dense numpy reference implementation.

``python -m repro verify`` runs it from the command line; CI-style usage
is ``verify_suite().all_passed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.csf_kernels import mttkrp_csf, ttv_csf
from ..core.reference import dense_mttkrp, dense_ttm, dense_ttv
from ..core.registry import make_operands, run_algorithm
from ..formats.coo import CooTensor
from ..formats.convert import to_coo
from ..generators.kronecker import kronecker_tensor
from ..generators.powerlaw import powerlaw_tensor

#: Probe tensors: small enough to densify, structurally diverse.
def _probe_tensors() -> List[CooTensor]:
    return [
        CooTensor.random((24, 18, 15), 400, seed=1),
        kronecker_tensor((32, 32, 32), 500, seed=2),
        powerlaw_tensor((40, 40, 8), 300, dense_modes=(2,), seed=3),
        CooTensor.random((12, 10, 8, 6), 250, seed=4),
    ]


@dataclass
class VerificationResult:
    """Outcome of one check."""

    check: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """All checks of a verification run."""

    results: List[VerificationResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether every check succeeded."""
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[VerificationResult]:
        """The failed checks."""
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        """Text report of every check."""
        lines = []
        for r in self.results:
            mark = "ok  " if r.passed else "FAIL"
            lines.append(f"[{mark}] {r.check}" + (f" — {r.detail}" if r.detail else ""))
        passed = sum(r.passed for r in self.results)
        lines.append(f"{passed}/{len(self.results)} checks passed")
        return "\n".join(lines)


def as_comparable(result) -> np.ndarray:
    """Normalize any kernel output to a dense array for comparison."""
    if isinstance(result, np.ndarray):
        return result.astype(np.float64)
    return to_coo(result).to_dense().astype(np.float64)


#: Backwards-compatible alias (pre-conformance name).
_as_comparable = as_comparable


def _close(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(np.allclose(a, b, rtol=1e-3, atol=1e-3))


def verify_suite(
    tensors: Optional[Sequence[CooTensor]] = None,
    *,
    rank: int = 8,
    block_size: int = 8,
) -> VerificationReport:
    """Run all cross-checks; returns a :class:`VerificationReport`."""
    report = VerificationReport()
    if tensors is None:
        tensors = _probe_tensors()
    for t_index, tensor in enumerate(tensors):
        dense = tensor.to_dense().astype(np.float64)
        for kernel in ("TEW", "TS", "TTV", "TTM", "MTTKRP"):
            mode = t_index % tensor.order
            operands = make_operands(
                tensor, kernel, mode=mode, rank=rank, seed=t_index
            )
            outputs = {}
            for fmt in ("COO", "HiCOO"):
                for target in ("OMP", "GPU"):
                    name = f"{fmt}-{kernel}-{target}"
                    outputs[name] = as_comparable(
                        run_algorithm(
                            name, tensor, operands, mode=mode,
                            rank=rank, block_size=block_size,
                        )
                    )
            baseline_name = f"COO-{kernel}-OMP"
            baseline = outputs[baseline_name]
            for name, value in outputs.items():
                if name == baseline_name:
                    continue
                report.results.append(
                    VerificationResult(
                        check=f"t{t_index} {name} == {baseline_name}",
                        passed=_close(value, baseline),
                    )
                )
            reference = dense_reference(kernel, dense, operands, mode)
            if reference is not None:
                report.results.append(
                    VerificationResult(
                        check=f"t{t_index} {baseline_name} == dense reference",
                        passed=_close(baseline, reference),
                    )
                )
            if kernel == "MTTKRP":
                csf_out = mttkrp_csf(tensor, operands.factors, mode)
                report.results.append(
                    VerificationResult(
                        check=f"t{t_index} CSF-MTTKRP == {baseline_name}",
                        passed=_close(csf_out.astype(np.float64), baseline),
                    )
                )
            if kernel == "TTV":
                csf_out = as_comparable(
                    ttv_csf(tensor, operands.vector, mode)
                )
                report.results.append(
                    VerificationResult(
                        check=f"t{t_index} CSF-TTV == {baseline_name}",
                        passed=_close(csf_out, baseline),
                    )
                )
    return report


def dense_reference(kernel, dense, operands, mode):
    """The dense numpy reference output for a kernel, densified.

    ``dense`` is the densified input tensor; ``operands`` the
    :class:`~repro.core.registry.KernelOperands` the kernel consumed.
    Returns ``None`` for kernels without a dense formulation.
    """
    if kernel == "TEW":
        return dense + operands.second_tensor.to_dense().astype(np.float64)
    if kernel == "TS":
        scaled = dense.copy()
        scaled[dense != 0] *= operands.scalar
        return scaled
    if kernel == "TTV":
        return dense_ttv(dense, operands.vector.astype(np.float64), mode)
    if kernel == "TTM":
        return dense_ttm(dense, operands.matrix.astype(np.float64), mode)
    if kernel == "MTTKRP":
        return dense_mttkrp(
            dense, [f.astype(np.float64) for f in operands.factors], mode
        )
    return None
