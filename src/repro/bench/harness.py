"""Benchmark harness: run (kernel × format × platform × tensor) cells.

One :class:`BenchResult` corresponds to one bar of Figures 4-7: a kernel
in a format on a platform fed one Table II tensor, reported in GFLOPS
against the tensor's exact Roofline performance.  Following Section V-A2,
TTV/TTM/MTTKRP results are averaged over all tensor modes, TEW uses
addition and TS multiplication, rank is 16, and the HiCOO block size is
128.

Each cell is produced twice:

* ``modeled`` — the numeric kernel's schedule lowered by the platform's
  execution model (the reproduction of the paper's hardware numbers);
* ``measured_seconds`` (optional) — wall-clock of this package's numpy
  implementation on the host, for pytest-benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.analysis import DEFAULT_RANK, KERNELS, kernel_cost
from ..core.registry import make_operands, make_schedule, run_algorithm
from ..datasets.registry import DEFAULT_SCALE_DIVISOR, DatasetSpec, datasets, get_dataset
from ..formats.coo import CooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..machine import execution_model
from ..machine.result import ExecutionEstimate
from ..perf.timing import min_of_k
from ..platforms.specs import PlatformSpec, get_platform
from ..roofline.model import RooflineModel

#: Kernels whose time is averaged across all tensor modes (Section V-A2).
MODE_AVERAGED_KERNELS = ("TTV", "TTM", "MTTKRP")


@dataclass(frozen=True)
class BenchResult:
    """One figure cell: a kernel+format on a platform for one tensor."""

    dataset: str
    tensor_name: str
    platform: str
    kernel: str
    tensor_format: str
    modeled: ExecutionEstimate
    roofline_gflops: float
    measured_seconds: Optional[float] = None

    @property
    def gflops(self) -> float:
        """Modeled GFLOPS (the figures' y-axis)."""
        return self.modeled.gflops

    @property
    def efficiency(self) -> float:
        """Modeled GFLOPS over Roofline performance (can exceed 1)."""
        return self.modeled.efficiency(self.roofline_gflops)

    @property
    def measured_gflops(self) -> Optional[float]:
        """Wall-clock GFLOPS of the numpy kernel, when measured."""
        if not self.measured_seconds:
            return None
        return self.modeled.flops / self.measured_seconds / 1e9


class BenchmarkHarness:
    """Runs the suite's kernels for one platform at one dataset scale."""

    def __init__(
        self,
        platform: Union[str, PlatformSpec],
        *,
        scale_divisor: int = DEFAULT_SCALE_DIVISOR,
        rank: int = DEFAULT_RANK,
        block_size: int = DEFAULT_BLOCK_SIZE,
        measure_wallclock: bool = False,
        wallclock_repeats: int = 3,
    ) -> None:
        self.spec = get_platform(platform) if isinstance(platform, str) else platform
        self.scale_divisor = scale_divisor
        self.rank = rank
        self.block_size = block_size
        self.measure_wallclock = measure_wallclock
        self.wallclock_repeats = wallclock_repeats
        # Datasets are shrunk by scale_divisor, so the modeled LLC shrinks
        # with them: a tensor that exceeded the cache at paper scale must
        # still exceed it here, or every kernel would look cache-resident
        # (DESIGN.md substitution #2/#3).  Bandwidths and peaks stay at
        # Table III values, so GFLOPS remain comparable to the paper's.
        self.model = execution_model(self._scaled_spec())
        self.roofline = RooflineModel.for_platform(self.spec)
        self._tensor_cache: Dict[str, CooTensor] = {}
        self._hicoo_cache: Dict[str, HicooTensor] = {}

    # ------------------------------------------------------------------

    def _scaled_spec(self) -> PlatformSpec:
        """The platform spec with its LLC scaled down with the datasets."""
        if self.scale_divisor <= 1:
            return self.spec
        scaled_llc = max(self.spec.llc_bytes // self.scale_divisor, 4096)
        return replace(self.spec, llc_bytes=scaled_llc)

    @property
    def target(self) -> str:
        """``"OMP"`` on CPUs, ``"GPU"`` on GPUs — the algorithm suffix."""
        return "GPU" if self.spec.is_gpu else "OMP"

    def tensor(self, spec: DatasetSpec) -> CooTensor:
        """Realize (and cache) a dataset at this harness's scale."""
        if spec.key not in self._tensor_cache:
            self._tensor_cache[spec.key] = spec.realize(self.scale_divisor)
        return self._tensor_cache[spec.key]

    def hicoo_tensor(self, spec: DatasetSpec) -> HicooTensor:
        """HiCOO conversion of a dataset (cached pre-processing)."""
        if spec.key not in self._hicoo_cache:
            self._hicoo_cache[spec.key] = HicooTensor.from_coo(
                self.tensor(spec), self.block_size
            )
        return self._hicoo_cache[spec.key]

    # ------------------------------------------------------------------

    def run_cell(
        self,
        dataset: Union[str, DatasetSpec],
        kernel: str,
        tensor_format: str,
    ) -> BenchResult:
        """Benchmark one kernel+format on one dataset."""
        spec = get_dataset(dataset) if isinstance(dataset, str) else dataset
        kernel = kernel.upper()
        x = self.tensor(spec)
        hicoo = (
            self.hicoo_tensor(spec) if tensor_format.upper() == "HICOO" else None
        )
        algorithm = f"{tensor_format}-{kernel}-{self.target}"
        modes = (
            range(x.order) if kernel in MODE_AVERAGED_KERNELS else (0,)
        )
        second_sum = 0.0
        flops_sum = 0
        measured_sum: Optional[float] = 0.0 if self.measure_wallclock else None
        for mode in modes:
            schedule = make_schedule(
                algorithm,
                x,
                mode=mode,
                rank=self.rank,
                block_size=self.block_size,
                hicoo=hicoo,
            )
            estimate = self.model.predict(schedule)
            second_sum += estimate.seconds
            flops_sum += schedule.flops
            if self.measure_wallclock:
                measured_sum += self._measure(algorithm, x, mode, hicoo)
        count = len(tuple(modes))
        modeled = ExecutionEstimate(
            platform=self.spec.name,
            algorithm=algorithm,
            seconds=second_sum / count,
            flops=flops_sum // count,
            breakdown={},
        )
        roofline = self._roofline_gflops(x, kernel, tensor_format, hicoo)
        return BenchResult(
            dataset=spec.key,
            tensor_name=spec.name,
            platform=self.spec.name,
            kernel=kernel,
            tensor_format=tensor_format,
            modeled=modeled,
            roofline_gflops=roofline,
            measured_seconds=(
                measured_sum / count if measured_sum is not None else None
            ),
        )

    def _measure(
        self,
        algorithm: str,
        x: CooTensor,
        mode: int,
        hicoo: Optional[HicooTensor],
    ) -> float:
        """Best-of-N wall-clock of the numpy kernel implementation."""
        kernel = algorithm.split("-")[1]
        operands = make_operands(x, kernel, mode=mode, rank=self.rank, seed=mode)
        return min_of_k(
            lambda: run_algorithm(
                algorithm,
                x,
                operands,
                mode=mode,
                rank=self.rank,
                block_size=self.block_size,
                hicoo=hicoo,
            ),
            self.wallclock_repeats,
        )

    def _roofline_gflops(
        self,
        x: CooTensor,
        kernel: str,
        tensor_format: str,
        hicoo: Optional[HicooTensor],
    ) -> float:
        """Exact-OI Roofline performance (the figures' red line)."""
        if kernel in ("TTV", "TTM"):
            fiber_counts = [x.num_fibers(m) for m in range(x.order)]
            num_fibers = int(sum(fiber_counts) / len(fiber_counts))
        else:
            num_fibers = None
        num_blocks = hicoo.num_blocks if hicoo is not None else None
        cost = kernel_cost(
            kernel,
            x.nnz,
            num_fibers=num_fibers,
            rank=self.rank,
            num_blocks=num_blocks,
            block_size=self.block_size,
        )
        return self.roofline.roofline_performance(cost, tensor_format)

    # ------------------------------------------------------------------

    def run_dataset(
        self,
        dataset: Union[str, DatasetSpec],
        *,
        kernels: Sequence[str] = KERNELS,
        formats: Sequence[str] = ("COO", "HiCOO"),
    ) -> List[BenchResult]:
        """All kernel+format cells for one dataset."""
        return [
            self.run_cell(dataset, kernel, tensor_format)
            for tensor_format in formats
            for kernel in kernels
        ]

    def run_suite(
        self,
        collection: Optional[str] = None,
        *,
        kernels: Sequence[str] = KERNELS,
        formats: Sequence[str] = ("COO", "HiCOO"),
        dataset_keys: Optional[Sequence[str]] = None,
    ) -> List[BenchResult]:
        """The full figure for this platform: all datasets, all cells."""
        if dataset_keys is not None:
            specs: Tuple[DatasetSpec, ...] = tuple(
                get_dataset(k) for k in dataset_keys
            )
        else:
            specs = datasets(collection)
        results: List[BenchResult] = []
        for spec in specs:
            results.extend(
                self.run_dataset(spec, kernels=kernels, formats=formats)
            )
        return results


def average_gflops(results: Sequence[BenchResult]) -> Dict[Tuple[str, str], float]:
    """Mean GFLOPS per (kernel, format) over a result set."""
    sums: Dict[Tuple[str, str], List[float]] = {}
    for r in results:
        sums.setdefault((r.kernel, r.tensor_format), []).append(r.gflops)
    return {key: sum(v) / len(v) for key, v in sums.items()}


def average_efficiency(results: Sequence[BenchResult]) -> Dict[Tuple[str, str], float]:
    """Mean efficiency per (kernel, format) over a result set."""
    sums: Dict[Tuple[str, str], List[float]] = {}
    for r in results:
        sums.setdefault((r.kernel, r.tensor_format), []).append(r.efficiency)
    return {key: sum(v) / len(v) for key, v in sums.items()}
