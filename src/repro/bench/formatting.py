"""Plain-text table rendering for benchmark and experiment output."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] = (),
    *,
    title: str = "",
) -> str:
    """Render dict rows as an aligned text table.

    ``columns`` fixes the column order; when omitted, the first row's key
    order is used.  Values are stringified; floats keep their repr unless
    pre-formatted by the caller.
    """
    rows = list(rows)
    if not rows:
        return title or "(no rows)"
    cols: List[str] = list(columns) if columns else list(rows[0].keys())
    table: List[List[str]] = [[str(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(cols[i]), max(len(row[i]) for row in table))
        for i in range(len(cols))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_gflops(value: float) -> str:
    """Compact GFLOPS rendering used throughout the reports."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def results_table(results, *, title: str = "") -> str:
    """Render a list of :class:`BenchResult` as a text table."""
    rows: List[Dict[str, str]] = []
    for r in results:
        row = {
            "No.": r.dataset,
            "Tensor": r.tensor_name,
            "Kernel": r.kernel,
            "Format": r.tensor_format,
            "GFLOPS": format_gflops(r.gflops),
            "Roofline": format_gflops(r.roofline_gflops),
            "Eff.": f"{r.efficiency * 100:.0f}%",
        }
        if r.measured_seconds is not None:
            row["Wall(ms)"] = f"{r.measured_seconds * 1e3:.2f}"
        rows.append(row)
    return format_table(rows, title=title)
