"""Benchmark harness, paper-artifact experiments, and observation checks."""

from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_experiment,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_kernel_figure,
    run_observations,
    run_table1,
    run_table2,
    run_table3,
)
from .export import (
    dumps_csv,
    figure_series,
    read_json,
    write_csv,
    write_json,
)
from .formatting import format_gflops, format_table, results_table
from .harness import (
    BenchmarkHarness,
    BenchResult,
    average_efficiency,
    average_gflops,
)
from .observations import (
    ObservationReport,
    collect_results,
    evaluate_all_observations,
)
from .sweeps import (
    block_size_sweep,
    gpu_count_sweep,
    rank_sweep,
    reorder_sweep,
    sweep_report,
)
from .verify import VerificationReport, verify_suite

__all__ = [
    "BenchmarkHarness",
    "BenchResult",
    "average_gflops",
    "average_efficiency",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_kernel_figure",
    "run_observations",
    "ObservationReport",
    "collect_results",
    "evaluate_all_observations",
    "format_table",
    "format_gflops",
    "results_table",
    "write_csv",
    "write_json",
    "read_json",
    "dumps_csv",
    "figure_series",
    "block_size_sweep",
    "rank_sweep",
    "reorder_sweep",
    "gpu_count_sweep",
    "sweep_report",
    "verify_suite",
    "VerificationReport",
]
