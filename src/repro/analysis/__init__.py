"""Static analysis and runtime sanitizers for the repro kernel stack.

Two halves of one contract checker:

* ``repro lint`` (:mod:`.engine`, the ``rules_*`` modules,
  :mod:`.baseline`) — a stdlib-``ast`` linter enforcing the suite's
  numeric and concurrency contracts at the source level: explicit
  dtypes, index-width safety, no hidden densification in hot paths,
  parallel output ownership, and plan-cache invalidation hygiene.
* ``REPRO_SANITIZE=1`` (:mod:`.sanitizer`) — a runtime checked-serial
  mode for the parallel executor that verifies what the linter cannot
  prove statically: that each chunk task writes exactly the output
  region it owns.
* ``repro kernelcheck`` (:mod:`.kernelcheck`) — a static verifier for
  the *generated C* the JIT compiles, proving disjoint writes,
  in-bounds/in-width indexing, and serial/parallel store equivalence
  from the effect summaries codegen emits alongside each kernel.
"""

from .baseline import (
    BASELINE_VERSION,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    LintContext,
    LintReport,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    rule_catalog,
    suppressed_lines,
)
from .kernelcheck import (
    KernelCheckReport,
    RULES as KERNELCHECK_RULES,
    check_artifact,
    check_kernels,
)
from .findings import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Finding,
    severity_rank,
    sort_findings,
)
from .sanitizer import (
    SANITIZE_ENV,
    OverlappingWriteError,
    RegionTracker,
    SanitizerError,
    checked_task,
    sanitizer_enabled,
)

__all__ = [
    "BASELINE_VERSION",
    "BaselineError",
    "Finding",
    "KERNELCHECK_RULES",
    "KernelCheckReport",
    "LintContext",
    "LintReport",
    "OverlappingWriteError",
    "RegionTracker",
    "SANITIZE_ENV",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "SanitizerError",
    "all_rules",
    "apply_baseline",
    "check_artifact",
    "check_kernels",
    "checked_task",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "rule_catalog",
    "sanitizer_enabled",
    "severity_rank",
    "sort_findings",
    "suppressed_lines",
    "write_baseline",
]
