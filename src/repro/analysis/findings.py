"""Lint findings: the one data type every analysis layer exchanges.

A :class:`Finding` is one rule violation at one source location.  Its
``fingerprint`` deliberately excludes the line number — it hashes the
rule, the file, the enclosing scope, and the normalized source of the
statement — so a committed baseline survives unrelated edits that shift
code up or down a file.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

#: Severity names in increasing order of concern.
SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITIES = (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_ERROR)

#: Sort key: errors first in reports.
_SEVERITY_RANK = {name: rank for rank, name in enumerate(reversed(SEVERITIES))}


def severity_rank(severity: str) -> int:
    """Rank for sorting (0 = error, larger = less severe)."""
    return _SEVERITY_RANK.get(severity, len(SEVERITIES))


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule family name (``dtype``, ``index-width``, ``densify``,
        ``parallel-write``, ``cache-invalidation``).
    severity:
        One of :data:`SEVERITIES`.
    path:
        Path of the offending file as given to the linter (posix
        separators, repo-relative when linting a repo tree).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation.
    scope:
        Dotted enclosing scope (``Class.method``) or ``<module>``.
    snippet:
        The stripped source of the offending statement's first line.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    scope: str = "<module>"
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for the baseline ratchet (line-independent).

        Collapses whitespace in the snippet so formatting-only edits do
        not churn the baseline.
        """
        normalized = " ".join(self.snippet.split())
        payload = "\x1f".join((self.rule, self.path, self.scope, normalized))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (the ``repro lint --json`` schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "scope": self.scope,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }

    def format_text(self) -> str:
        """One-line text rendering: ``path:line:col: severity[rule] message``."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


def sort_findings(findings):
    """Deterministic report order: by path, line, column, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
