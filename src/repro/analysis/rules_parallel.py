"""parallel-write safety rule: a static race detector for chunk tasks.

The executor in :mod:`repro.perf.parallel` guarantees bit-exact parallel
results through *output ownership*: a chunk task
``task(chunk, unit_lo, unit_hi, elem_lo, elem_hi)`` may write only the
output slice owned by its units.  Nothing enforced that at the source
level — one stray ``np.add.at`` on a shared array, or a write indexed by
something other than the chunk bounds, reintroduces a data race the
conformance fuzzer can only catch probabilistically.  This rule finds
the task functions statically — any callable passed to a dispatcher:
the task argument of ``run_chunks(...)``, the function handed to an
executor via ``loop.run_in_executor(pool, fn, ...)`` (the serving
tier's kernel-thread hop), or ``pool.submit(fn, ...)`` — resolving
lambdas, local ``def``s, and ``self._method`` references — and flags,
inside their bodies:

* ``np.add.at`` — unordered scatter onto a shared output;
* subscript writes to *closure* arrays whose index expression mentions
  none of the task's parameters (the chunk bounds) — the write target
  is not derived from the ownership partition;
* plan-cache access (``get_plan_cache``, ``invalidate``,
  ``adopt_plans``, ``set_cache_enabled``) — cache mutation from worker
  context races with other workers and with the dispatching thread.

Writes like ``out[e0:e1] = ...`` or ``out[targets[u0:u1]] = ...`` pass:
their indices are functions of the chunk bounds, which the runtime
sanitizer (``REPRO_SANITIZE=1``) then verifies dynamically.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .engine import (
    LintContext,
    attribute_chain_root,
    dotted_name,
    mentions_any,
)
from .findings import SEVERITY_ERROR

RULE = "parallel-write"
DESCRIPTION = (
    "writes in dispatched parallel tasks (run_chunks, run_in_executor, "
    "submit) that bypass the output-ownership protocol (np.add.at, "
    "non-chunk-derived indices, plan-cache mutation)"
)

#: Plan-cache entry points that must never run from worker context.
_CACHE_CALLS = {
    "get_plan_cache",
    "invalidate",
    "adopt_plans",
    "set_cache_enabled",
    "fresh_cache",
}

#: Dispatcher call leaf -> positional index of the callable it runs on
#: another thread.  ``run_chunks(plan, task, ...)`` and
#: ``loop.run_in_executor(pool, fn, ...)`` carry it second;
#: ``pool.submit(fn, ...)`` first.  Anything dispatched through these
#: runs concurrently with the caller, so its writes fall under the
#: ownership protocol — this resolution replaced the old blanket
#: ``SCOPED_ALLOWANCES`` carve-out for ``/perf/jit/``.
_DISPATCH_CALLS = {
    "run_chunks": 1,
    "run_in_executor": 1,
    "submit": 0,
}


def _task_functions(ctx: LintContext) -> List[ast.AST]:
    """Callables dispatched onto worker threads, where resolvable."""
    tasks: List[ast.AST] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        index = _DISPATCH_CALLS.get(name.split(".")[-1])
        if index is None or len(node.args) < index + 1:
            continue
        task_arg = node.args[index]
        if isinstance(task_arg, ast.Lambda):
            tasks.append(task_arg)
        elif isinstance(task_arg, ast.Name):
            resolved = _resolve_local_def(ctx, node, task_arg.id)
            if resolved is not None:
                tasks.append(resolved)
        elif isinstance(task_arg, ast.Attribute):
            resolved = _resolve_method(ctx, node, task_arg)
            if resolved is not None:
                tasks.append(resolved)
    return tasks


def _resolve_method(
    ctx: LintContext, call: ast.Call, attr: ast.Attribute
) -> Optional[ast.FunctionDef]:
    """Resolve a ``self._method`` task to its def in the enclosing class."""
    if not (isinstance(attr.value, ast.Name) and attr.value.id == "self"):
        return None
    for scope in ctx.ancestors(call):
        if isinstance(scope, ast.ClassDef):
            for stmt in scope.body:
                if (
                    isinstance(stmt, ast.FunctionDef)
                    and stmt.name == attr.attr
                ):
                    return stmt
            return None
    return None


def _resolve_local_def(
    ctx: LintContext, call: ast.Call, name: str
) -> Optional[ast.FunctionDef]:
    """Find the ``def name`` nearest to the ``run_chunks`` call site."""
    scopes = [a for a in ctx.ancestors(call)] + [ctx.tree]
    for scope in scopes:
        body = getattr(scope, "body", None)
        if not body:
            continue
        for stmt in body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
                return stmt
    return None


def _local_names(task: ast.AST) -> Set[str]:
    """Parameter and locally-bound names of the task function."""
    names: Set[str] = set()
    args = getattr(task, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            names.add(arg.arg)
    for node in ast.walk(task):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.For,)) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _param_names(task: ast.AST) -> Set[str]:
    args = getattr(task, "args", None)
    if args is None:
        return set()
    return {arg.arg for arg in list(args.posonlyargs) + list(args.args)}


def run(ctx: LintContext) -> None:
    """Analyze every statically-resolvable chunk task in the module."""
    for task in _task_functions(ctx):
        _check_task(ctx, task)


def _check_task(ctx: LintContext, task: ast.AST) -> None:
    locals_ = _local_names(task)
    params = _param_names(task)
    body = task.body if isinstance(task.body, list) else [task.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                _check_call(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    _check_store(ctx, target, locals_, params)


def _check_call(ctx: LintContext, node: ast.Call) -> None:
    name = dotted_name(node.func)
    if name is None:
        return
    if name in ("np.add.at", "numpy.add.at") or name.endswith(".add.at"):
        ctx.add(
            RULE,
            SEVERITY_ERROR,
            node,
            "np.add.at in a parallel chunk task scatters onto a shared "
            "output outside the ownership partition; pre-sort into owned "
            "segments (scatter engine) or accumulate per-chunk",
        )
        return
    leaf = name.split(".")[-1]
    if leaf in _CACHE_CALLS:
        ctx.add(
            RULE,
            SEVERITY_ERROR,
            node,
            f"plan-cache access ({leaf}) from a parallel worker context "
            f"races with other workers; resolve plans before dispatching "
            f"the region",
        )


def _check_store(
    ctx: LintContext, target: ast.AST, locals_: Set[str], params: Set[str]
) -> None:
    if not isinstance(target, ast.Subscript):
        return
    root = attribute_chain_root(target.value)
    if root is None or root in locals_:
        return  # writes to task-local temporaries are private by construction
    if params and mentions_any(target.slice, params):
        return  # index is derived from the chunk bounds: owned write
    ctx.add(
        RULE,
        SEVERITY_ERROR,
        target,
        f"write to shared array {root!r} is not indexed by the chunk "
        f"bounds; every parallel write must target the slice owned by "
        f"units unit_lo:unit_hi",
    )
