"""dtype-discipline rule: no implicit float64 (or int) promotion.

The paper's formats fix value storage at float32 and the suite's
bit-exactness guarantees depend on every accumulation choosing its
precision *on purpose*.  Dtype-less numpy allocations and reductions
default to float64 (or platform int), so each one is either a silent
promotion or an undocumented intent — this rule forces the decision
into the source: pass ``dtype=`` or suppress with a justified
``# repro: ignore[dtype]``.

Flags
-----
* ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full`` / ``np.arange``
  / ``np.sum`` without a ``dtype=`` keyword;
* ``.sum()`` / ``.mean()`` method calls without ``dtype=`` — unless the
  result feeds straight into ``int(...)`` / ``float(...)``, which
  already states the intended result type;
* ``.astype`` inside a loop body (cast churn: hoist it);
* bare Python float literals folded into ``.values`` arrays, whose
  result dtype silently depends on numpy's promotion rules.
"""

from __future__ import annotations

import ast

from .engine import (
    LintContext,
    has_kwarg,
    method_name,
    numpy_func,
    wrapped_in,
)
from .findings import SEVERITY_INFO, SEVERITY_WARNING

RULE = "dtype"
DESCRIPTION = (
    "dtype-less numpy allocations/reductions and cast churn that promote "
    "to float64 implicitly"
)

#: numpy module-level constructors and reductions that take ``dtype=``.
_NP_NEEDS_DTYPE = ("zeros", "empty", "ones", "full", "arange", "sum")

#: Method reductions whose dtype-less default is float64/int64.
_METHOD_NEEDS_DTYPE = ("sum", "mean")

#: Calls that make the result type explicit, excusing an inner reduction.
_SCALAR_WRAPPERS = ("int", "float", "bool")


def _mentions_values(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "values"
        for sub in ast.walk(node)
    )


def run(ctx: LintContext) -> None:
    """Apply the dtype-discipline checks to one module."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            _check_call(ctx, node)
        elif isinstance(node, ast.BinOp):
            _check_float_fold(ctx, node)


def _check_call(ctx: LintContext, node: ast.Call) -> None:
    np_name = numpy_func(node)
    if np_name in _NP_NEEDS_DTYPE and not has_kwarg(node, "dtype"):
        if np_name == "sum" and wrapped_in(ctx, node, _SCALAR_WRAPPERS):
            return
        kind = "reduction" if np_name == "sum" else "allocation"
        ctx.add(
            RULE,
            SEVERITY_WARNING,
            node,
            f"dtype-less np.{np_name} {kind} defaults to float64/int64; "
            f"pass dtype= to make the precision explicit",
        )
        return
    name = method_name(node)
    if np_name is None and name in _METHOD_NEEDS_DTYPE and not has_kwarg(node, "dtype"):
        if not wrapped_in(ctx, node, _SCALAR_WRAPPERS):
            ctx.add(
                RULE,
                SEVERITY_WARNING,
                node,
                f"dtype-less .{name}() accumulates in the array's promoted "
                f"dtype (float64 for float inputs); pass dtype= or wrap in "
                f"int()/float() to state the intent",
            )
        return
    if name == "astype" and ctx.in_loop(node):
        ctx.add(
            RULE,
            SEVERITY_INFO,
            node,
            ".astype inside a loop re-casts every iteration; hoist the "
            "cast out of the loop",
        )


def _check_float_fold(ctx: LintContext, node: ast.BinOp) -> None:
    if not isinstance(node.op, (ast.Mult, ast.Add, ast.Sub, ast.Div)):
        return
    left_float = isinstance(node.left, ast.Constant) and isinstance(
        node.left.value, float
    )
    right_float = isinstance(node.right, ast.Constant) and isinstance(
        node.right.value, float
    )
    if left_float == right_float:  # neither, or a pure-constant fold
        return
    other = node.right if left_float else node.left
    if _mentions_values(other):
        ctx.add(
            RULE,
            SEVERITY_INFO,
            node,
            "bare Python float folded into a value array; the result dtype "
            "depends on numpy promotion rules — use a typed scalar "
            "(e.g. VALUE_DTYPE(c)) or an explicit astype",
        )
