"""cache-invalidation hygiene rule: structural mutation must invalidate.

The plan cache in :mod:`repro.perf.plan_cache` keys chunk plans on a
tensor's *structure* (nnz, shape, sort order, block layout).  Mutating a
structural field in place — replacing ``tensor.indices``, resizing
``tensor.values``, rewriting ``bptr`` — leaves stale plans behind unless
the mutation site calls ``invalidate(tensor)``.  A stale plan does not
crash; it silently partitions against the old structure, which is
exactly the failure mode the conformance fuzzer needs days to hit.

This rule flags functions that assign to (or subscript-mutate) a
structural field of a non-``self`` object without calling ``invalidate``
anywhere in the same function.  Constructors and validators are exempt:
``__init__``/``__post_init__`` build the structure the cache will key
on, and ``_validate`` only reads.
"""

from __future__ import annotations

import ast
from typing import List

from .engine import LintContext, dotted_name
from .findings import SEVERITY_WARNING

RULE = "cache-invalidation"
DESCRIPTION = (
    "in-place mutation of structural tensor fields without a paired "
    "plan-cache invalidate() call"
)

#: Fields the plan cache's structure key is derived from.
_STRUCTURAL_FIELDS = {
    "indices",
    "values",
    "binds",
    "einds",
    "bptr",
    "cinds",
    "bit_flags",
    "shape",
    "block_size",
}

#: Function names allowed to build/rebuild structure without invalidating.
_EXEMPT_FUNCS = {"__init__", "__post_init__", "_validate", "__setstate__"}

#: Call leaf names that count as invalidating the cache for the object.
_INVALIDATORS = {"invalidate", "adopt", "adopt_plans", "fresh_cache"}


def _structural_store(target: ast.AST) -> ast.AST | None:
    """The flaggable node if ``target`` mutates a structural field."""
    # obj.field = ...  (attribute replacement)
    if isinstance(target, ast.Attribute) and target.attr in _STRUCTURAL_FIELDS:
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return None  # methods building their own object are handled
            # by the _EXEMPT_FUNCS check at the function level
        return target
    # obj.field[...] = ...  (in-place structural rewrite)
    if isinstance(target, ast.Subscript):
        inner = target.value
        if isinstance(inner, ast.Attribute) and inner.attr in _STRUCTURAL_FIELDS:
            return target
    return None


def _calls_invalidator(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in _INVALIDATORS:
                return True
    return False


def run(ctx: LintContext) -> None:
    """Check every function for unpaired structural mutation."""
    for func in ast.walk(ctx.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name in _EXEMPT_FUNCS:
            continue
        stores: List[ast.AST] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    hit = _structural_store(target)
                    if hit is not None:
                        stores.append(hit)
            elif isinstance(node, ast.AugAssign):
                hit = _structural_store(node.target)
                if hit is not None:
                    stores.append(hit)
        if not stores or _calls_invalidator(func):
            continue
        for store in stores:
            field = (
                store.attr
                if isinstance(store, ast.Attribute)
                else store.value.attr  # type: ignore[union-attr]
            )
            ctx.add(
                RULE,
                SEVERITY_WARNING,
                store,
                f"mutation of structural field {field!r} without a paired "
                f"plan-cache invalidate(); stale cached chunk plans will "
                f"partition against the old structure",
            )
