"""Runtime parallel-write sanitizer (``REPRO_SANITIZE=1``).

The static ``parallel-write`` lint rule catches ownership violations it
can resolve at the source level; this module catches the rest at
runtime.  When the environment variable ``REPRO_SANITIZE`` is truthy,
:func:`repro.perf.parallel.run_chunks` switches to *checked serial*
execution: chunks run one at a time, in order, on the calling thread,
with two dynamic checks around each chunk:

1. **Interval claims.**  Every chunk claims its unit range
   ``[unit_lo, unit_hi)`` and element range ``[elem_lo, elem_hi)`` in a
   :class:`RegionTracker`; a chunk plan whose chunks overlap — two
   workers owning the same output rows — raises
   :class:`OverlappingWriteError` before any data is corrupted.

2. **Complement snapshots.**  Kernels register their output arrays with
   an ownership spec (``outputs=`` on ``run_chunks``).  Before each
   chunk the sanitizer snapshots every registered output; afterwards it
   verifies the *complement* of the chunk's owned region is unchanged.
   A task that writes rows it does not own — the data race the thread
   schedule may or may not expose — fails deterministically.

Because chunks still execute in plan order with the same float64
accumulations, checked-serial results are bit-identical to both the
serial and the parallel paths, so the conformance fuzzer's
``parallel_exact`` checks pass unchanged under the sanitizer.

Ownership kinds
---------------
``"element"``
    The task writes ``out[elem_lo:elem_hi]`` (TEW/TS nonzero grain).
``"unit"``
    The task writes ``out[unit_lo:unit_hi]`` (TTV/TTM fiber grain).
``("rows", targets)``
    The task writes ``out[targets[unit_lo:unit_hi]]`` — an indirection
    through sorted target rows (MTTKRP's segmented scatter).
``("row_blocks", targets, block_size)``
    The task writes the ``block_size`` output rows starting at
    ``targets[u] * block_size`` for each owned unit ``u`` (clipped to
    the array) — the HiCOO ownership plan's window grain, where each
    unit is one output-mode block window.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Sequence, Tuple

import numpy as np

#: Environment variable that switches the sanitizer on.
SANITIZE_ENV = "REPRO_SANITIZE"

#: Ownership spec: ``(array, kind)`` with kind as documented above.
OutputSpec = Tuple[np.ndarray, Any]


def sanitizer_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` currently asks for checked execution.

    Read dynamically (not cached at import) so tests and harnesses can
    toggle it per run.
    """
    value = os.environ.get(SANITIZE_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


class SanitizerError(RuntimeError):
    """Base class for parallel-write sanitizer violations."""


class OverlappingWriteError(SanitizerError):
    """Two chunks claimed (or wrote) overlapping output regions."""


class RegionTracker:
    """Claimed half-open intervals in one index space.

    Chunk counts are small (a few per worker), so an ordered list with
    linear overlap checks is plenty — the arrays the chunks describe are
    where the real work is.
    """

    def __init__(self, space: str) -> None:
        self.space = space
        self._claims: List[Tuple[int, int, int]] = []  # (lo, hi, chunk)

    def claim(self, chunk: int, lo: int, hi: int) -> None:
        """Claim ``[lo, hi)`` for ``chunk``; raise on any overlap."""
        if hi <= lo:
            return  # empty chunks own nothing
        for other_lo, other_hi, other_chunk in self._claims:
            if lo < other_hi and other_lo < hi:
                raise OverlappingWriteError(
                    f"chunk {chunk} claims {self.space} range [{lo}, {hi}) "
                    f"overlapping chunk {other_chunk}'s [{other_lo}, "
                    f"{other_hi}); chunk plans must partition the output"
                )
        self._claims.append((lo, hi, chunk))


def _owned_rows(
    spec: OutputSpec, unit_lo: int, unit_hi: int, elem_lo: int, elem_hi: int
) -> np.ndarray:
    """Boolean mask over axis 0 of the rows the chunk owns."""
    array, kind = spec
    mask = np.zeros(array.shape[0], dtype=bool)
    if kind == "element":
        mask[elem_lo:elem_hi] = True
    elif kind == "unit":
        mask[unit_lo:unit_hi] = True
    elif isinstance(kind, tuple) and len(kind) == 2 and kind[0] == "rows":
        targets = np.asarray(kind[1])
        mask[targets[unit_lo:unit_hi]] = True
    elif (
        isinstance(kind, tuple) and len(kind) == 3 and kind[0] == "row_blocks"
    ):
        targets = np.asarray(kind[1])
        block = int(kind[2])
        bases = targets[unit_lo:unit_hi].astype(np.int64) * block
        rows = (bases[:, None] + np.arange(block, dtype=np.int64)).reshape(-1)
        mask[rows[rows < array.shape[0]]] = True
    else:
        raise ValueError(
            f"unknown output ownership kind {kind!r}; use 'element', "
            f"'unit', ('rows', targets), or "
            f"('row_blocks', targets, block_size)"
        )
    return mask


def checked_task(
    task: Callable[[int, int, int, int, int], None],
    outputs: Sequence[OutputSpec],
) -> Callable[[int, int, int, int, int], None]:
    """Wrap a chunk task with claim tracking and complement snapshots.

    The wrapper assumes chunks execute one at a time (the checked-serial
    mode ``run_chunks`` switches to under the sanitizer); it is not
    itself thread-safe, by design.
    """
    unit_claims = RegionTracker("unit")
    elem_claims = RegionTracker("element")

    def wrapped(
        chunk: int, unit_lo: int, unit_hi: int, elem_lo: int, elem_hi: int
    ) -> None:
        unit_claims.claim(chunk, unit_lo, unit_hi)
        elem_claims.claim(chunk, elem_lo, elem_hi)
        snapshots = [np.copy(spec[0]) for spec in outputs]
        task(chunk, unit_lo, unit_hi, elem_lo, elem_hi)
        for spec, snapshot in zip(outputs, snapshots):
            array = spec[0]
            owned = _owned_rows(spec, unit_lo, unit_hi, elem_lo, elem_hi)
            before = snapshot[~owned]
            after = array[~owned]
            # Bitwise comparison (NaN-safe): a race detector must not
            # excuse a clobbered NaN payload.
            if before.size and not np.array_equal(
                before.view(np.uint8), after.view(np.uint8)
            ):
                changed = np.flatnonzero(~owned)[
                    np.any(
                        (before != after) | (np.isnan(before) != np.isnan(after))
                        if np.issubdtype(array.dtype, np.floating)
                        else (before != after),
                        axis=tuple(range(1, before.ndim)),
                    )
                ]
                raise OverlappingWriteError(
                    f"chunk {chunk} wrote row(s) {changed[:8].tolist()} of a "
                    f"registered output it does not own (owned "
                    f"units [{unit_lo}, {unit_hi}), elements "
                    f"[{elem_lo}, {elem_hi}))"
                )

    return wrapped
