"""index-width safety rule: int32/uint8 index arithmetic must not wrap.

The formats hard-code narrow index widths — ``INDEX_DTYPE`` (int32)
coordinate and block-index arrays, ``ELEMENT_DTYPE`` (uint8) in-block
element indices — per the paper's storage contracts.  Arithmetic that
stays in those widths wraps silently: a mixed-radix block-key packing or
a Morton shift on int32 inputs near ``2**31`` produces a valid-looking
wrong answer.  This rule performs a light per-function dataflow pass:

* names bound to narrow sources (``.indices`` / ``.binds`` / ``.einds``
  attributes, ``.astype`` to a narrow dtype) are tracked as *narrow*;
* overflow-capable arithmetic (``*``, ``+``, ``-``, ``**``, ``<<``) on a
  narrow operand with no widening operand is flagged;
* ``.astype`` back down to a narrow dtype applied to a *computed* value
  (a ``BinOp``, or a name bound to one) is flagged as a narrowing cast —
  prove the range first (assert-or-upcast) or suppress with a comment
  stating why the range is bounded.

``.astype(np.int64)`` (or any wide dtype) clears narrowness, which is
exactly the fix the rule is asking for.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from .engine import LintContext, dotted_name
from .findings import SEVERITY_WARNING

RULE = "index-width"
DESCRIPTION = (
    "overflow-capable arithmetic on int32/uint8 index arrays and "
    "narrowing casts of computed values"
)

#: Attribute names the formats store in narrow dtypes.
_NARROW_ATTRS = {"indices", "binds", "einds", "cinds"}

#: Dtype spellings that are narrow (can wrap under index arithmetic).
_NARROW_DTYPES = {
    "np.int32", "numpy.int32", "np.uint8", "numpy.uint8",
    "np.int16", "numpy.int16", "np.uint16", "numpy.uint16",
    "np.int8", "numpy.int8", "np.uint32", "numpy.uint32",
    "INDEX_DTYPE", "ELEMENT_DTYPE",
}

#: Dtype spellings wide enough that index arithmetic cannot wrap.
_WIDE_DTYPES = {
    "np.int64", "numpy.int64", "np.uint64", "numpy.uint64",
    "np.intp", "numpy.intp", "np.float64", "numpy.float64",
    "np.float32", "numpy.float32", "BPTR_DTYPE", "VALUE_DTYPE",
}

#: Binary operators under which a narrow integer can overflow.
_OVERFLOW_OPS = (ast.Mult, ast.Add, ast.Sub, ast.Pow, ast.LShift)


def _astype_dtype(node: ast.Call) -> Optional[str]:
    """The dtype argument of an ``.astype`` call, as a dotted string."""
    if not (isinstance(node.func, ast.Attribute) and node.func.attr == "astype"):
        return None
    for arg in node.args[:1]:
        return dotted_name(arg)
    for kw in node.keywords:
        if kw.arg == "dtype":
            return dotted_name(kw.value)
    return None


class _FunctionPass:
    """One function's narrow/computed dataflow and checks."""

    def __init__(self, ctx: LintContext, func: ast.FunctionDef) -> None:
        self.ctx = ctx
        self.func = func
        self.narrow: Set[str] = set()
        self.computed: Set[str] = set()
        self.flagged_lines: Set[int] = set()

    # -- classification ------------------------------------------------

    def is_narrow(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.narrow
        if isinstance(node, ast.Attribute):
            return node.attr in _NARROW_ATTRS
        if isinstance(node, ast.Subscript):
            return self.is_narrow(node.value)
        if isinstance(node, ast.Call):
            dtype = _astype_dtype(node)
            return dtype in _NARROW_DTYPES if dtype else False
        if isinstance(node, ast.BinOp):
            return (self.is_narrow(node.left) or self.is_narrow(node.right)) and not (
                self.is_wide(node.left) or self.is_wide(node.right)
            )
        return False

    def is_wide(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            dtype = _astype_dtype(node)
            if dtype in _WIDE_DTYPES:
                return True
            # int()/float() lift to unbounded Python scalars.
            if isinstance(node.func, ast.Name) and node.func.id in ("int", "float"):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.wide_names
        if isinstance(node, ast.Subscript):
            return self.is_wide(node.value)
        if isinstance(node, ast.BinOp):
            return self.is_wide(node.left) or self.is_wide(node.right)
        return False

    # -- the pass ------------------------------------------------------

    def run(self) -> None:
        self.wide_names: Set[str] = set()
        for stmt in ast.walk(self.func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._record_assignment(target.id, stmt.value)
        for node in ast.walk(self.func):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _OVERFLOW_OPS):
                self._check_arith(node)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _OVERFLOW_OPS
            ):
                if self.is_narrow(node.target) and not self.is_wide(node.value):
                    self._flag_arith(node)
            elif isinstance(node, ast.Call):
                self._check_narrowing_cast(node)

    def _record_assignment(self, name: str, value: ast.AST) -> None:
        if self.is_wide(value):
            self.wide_names.add(name)
            self.narrow.discard(name)
        elif self.is_narrow(value):
            self.narrow.add(name)
        if isinstance(value, ast.BinOp):
            self.computed.add(name)

    def _check_arith(self, node: ast.BinOp) -> None:
        if not (self.is_narrow(node.left) or self.is_narrow(node.right)):
            return
        if self.is_wide(node.left) or self.is_wide(node.right):
            return
        self._flag_arith(node)

    def _flag_arith(self, node: ast.AST) -> None:
        # One finding per source line keeps chained expressions readable.
        line = getattr(node, "lineno", 0)
        if line in self.flagged_lines:
            return
        self.flagged_lines.add(line)
        self.ctx.add(
            RULE,
            SEVERITY_WARNING,
            node,
            "arithmetic on a narrow (int32/uint8) index array can wrap "
            "silently; upcast with .astype(np.int64) before multiplying, "
            "adding, or shifting",
        )

    def _check_narrowing_cast(self, node: ast.Call) -> None:
        dtype = _astype_dtype(node)
        if dtype not in _NARROW_DTYPES:
            return
        receiver = node.func.value  # type: ignore[union-attr]
        computed = isinstance(receiver, ast.BinOp) or (
            isinstance(receiver, ast.Name) and receiver.id in self.computed
        ) or (
            isinstance(receiver, ast.Subscript)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id in self.computed
        )
        if computed:
            self.ctx.add(
                RULE,
                SEVERITY_WARNING,
                node,
                f"narrowing cast to {dtype} of a computed value wraps "
                f"out-of-range results silently; assert the range (or "
                f"guard loudly) before narrowing",
            )


def run(ctx: LintContext) -> None:
    """Apply the index-width pass to every outermost function.

    Nested defs are analyzed as part of their enclosing function (their
    closures see the outer narrow/wide bindings), not as separate
    passes — that would double-report every finding inside them.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(
                isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
                for anc in ctx.ancestors(node)
            ):
                continue
            _FunctionPass(ctx, node).run()
