"""The ``repro lint`` engine: parse, run rules, apply suppressions.

Rules are stdlib-``ast`` passes over one module at a time; each rule
module exposes ``RULE`` (its family name), ``DESCRIPTION``, and a
``run(ctx)`` entry point that reports violations through
:meth:`LintContext.add`.  The engine owns everything rule-agnostic:
parsing, parent links, scope resolution, ``# repro: ignore[...]``
suppression comments, and path scoping.

Suppression semantics
---------------------
A comment of the form ``# repro: ignore`` or ``# repro: ignore[rule]``
(comma-separated rule names allowed) suppresses matching findings for
the **whole statement** it is attached to, not just the physical line
the comment sits on.  A trailing comment anywhere inside a multi-line
numpy call therefore covers the full call expression, and a comment on
its own line covers the next statement.  This is the contract the test
suite pins; anchoring to physical lines silently un-suppresses findings
whenever a call gets reformatted across lines.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .findings import Finding, sort_findings

#: Matches a suppression comment, capturing the optional rule list.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: Sentinel rule set meaning "suppress every rule on this statement".
_ALL_RULES = frozenset({"*"})


class LintContext:
    """Everything one rule needs to analyze one module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.findings: List[Finding] = []
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------------
    # Path scoping
    # ------------------------------------------------------------------

    @property
    def is_hot_path(self) -> bool:
        """Whether this file is in a kernel hot path (``core/``, ``perf/``)."""
        posix = self.path.replace("\\", "/")
        return "/core/" in posix or "/perf/" in posix

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """Immediate parent node, or ``None`` for the module."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Parents from the node outward to the module."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_statement(self, node: ast.AST) -> ast.AST:
        """The outermost simple statement containing ``node``."""
        best = node
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, ast.stmt):
                best = current
                break
            current = self._parents.get(current)
        return best

    def in_loop(self, node: ast.AST) -> bool:
        """Whether the node sits inside a ``for``/``while`` body."""
        child: ast.AST = node
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.For, ast.While)):
                # The loop's iterable/condition is evaluated once; only
                # the body re-executes.
                if child is not getattr(
                    ancestor, "iter", None
                ) and child is not getattr(ancestor, "test", None):
                    return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
            child = ancestor
        return False

    def scope_of(self, node: ast.AST) -> str:
        """Dotted enclosing scope name (``Class.method`` or ``<module>``)."""
        names: List[str] = []
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(ancestor.name)
        return ".".join(reversed(names)) if names else "<module>"

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def add(self, rule: str, severity: str, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                severity=severity,
                path=self.path,
                line=line,
                col=col,
                message=message,
                scope=self.scope_of(node),
                snippet=snippet,
            )
        )


# ----------------------------------------------------------------------
# Shared AST helpers (imported by the rule modules)
# ----------------------------------------------------------------------

#: Names the codebase uses for the numpy module.
NUMPY_NAMES = ("np", "numpy")


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` expressions as a dotted string, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def numpy_func(node: ast.Call) -> Optional[str]:
    """``"zeros"`` for ``np.zeros(...)``/``numpy.zeros(...)``, else ``None``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in NUMPY_NAMES
    ):
        return func.attr
    return None


def method_name(node: ast.Call) -> Optional[str]:
    """The attribute name of a method-style call (``x.sum()`` → ``sum``)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def has_kwarg(node: ast.Call, name: str) -> bool:
    """Whether the call passes keyword argument ``name``."""
    return any(kw.arg == name for kw in node.keywords)


def wrapped_in(ctx: LintContext, node: ast.AST, names: Sequence[str]) -> bool:
    """Whether ``node`` is directly an argument of ``int(...)``-style calls."""
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in names
        and node in parent.args
    )


def mentions_any(node: ast.AST, names: Set[str]) -> bool:
    """Whether any ``Name`` in the subtree is in ``names``."""
    return any(
        isinstance(sub, ast.Name) and sub.id in names for sub in ast.walk(node)
    )


def attribute_chain_root(node: ast.AST) -> Optional[str]:
    """The root ``Name`` of a ``x.a.b[...]`` chain, else ``None``."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def _suppression_comments(source: str) -> Dict[int, frozenset]:
    """Map comment line → suppressed rule names (``{"*"}`` = all)."""
    suppressions: Dict[int, frozenset] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if not match:
                continue
            rules = match.group(1)
            if rules is None:
                suppressions[token.start[0]] = _ALL_RULES
            else:
                names = frozenset(
                    name.strip() for name in rules.split(",") if name.strip()
                )
                suppressions[token.start[0]] = names or _ALL_RULES
    except tokenize.TokenError:
        pass  # best effort: a truncated file still lints its parsed part
    return suppressions


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """``(first_line, last_line)`` of every simple statement, sorted."""
    spans = [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, ast.stmt)
    ]
    spans.sort()
    return spans


def suppressed_lines(source: str, tree: ast.Module) -> Dict[int, frozenset]:
    """Line → suppressed rules, with comments expanded to full statements.

    A suppression comment on any physical line of a multi-line statement
    covers the statement's whole ``lineno..end_lineno`` span; a comment
    on a line of its own covers the next statement that starts below it.
    """
    comments = _suppression_comments(source)
    if not comments:
        return {}
    spans = _statement_spans(tree)
    expanded: Dict[int, Set[str]] = {}

    def cover(first: int, last: int, rules: frozenset) -> None:
        for line in range(first, last + 1):
            expanded.setdefault(line, set()).update(rules)

    for comment_line, rules in comments.items():
        # Innermost statement whose span contains the comment line.
        covering = [
            span for span in spans if span[0] <= comment_line <= span[1]
        ]
        if covering:
            first, last = min(covering, key=lambda span: span[1] - span[0])
            cover(first, last, rules)
            continue
        # Standalone comment line: attach to the next statement below.
        following = [span for span in spans if span[0] > comment_line]
        if following:
            first, last = min(following)
            cover(first, last, rules)
        else:
            cover(comment_line, comment_line, rules)
    return {line: frozenset(rules) for line, rules in expanded.items()}


def _is_suppressed(finding: Finding, suppressions: Dict[int, frozenset]) -> bool:
    rules = suppressions.get(finding.line)
    if rules is None:
        return False
    return "*" in rules or finding.rule in rules


#: Path-scoped rule allowances: ``(path fragment, exempted rule families)``.
#: Currently empty: the blanket ``/perf/jit/`` carve-out for the densify
#: and dtype families is gone — generated C is now verified directly by
#: ``repro kernelcheck``, the ``parallel-write`` rule resolves dispatcher
#: task functions itself, and the one real dtype finding the allowance
#: was hiding (an implicit-dtype Gram-slab reduction) has been fixed at
#: the source.  The mechanism stays so a future exemption is declared
#: here — visible and reviewable — rather than grown into the baseline.
SCOPED_ALLOWANCES: Tuple[Tuple[str, frozenset], ...] = ()


def _allowed_by_scope(finding: Finding) -> bool:
    posix = finding.path.replace("\\", "/")
    return any(
        fragment in posix and finding.rule in rules
        for fragment, rules in SCOPED_ALLOWANCES
    )


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------


def all_rules():
    """The registered rule modules, in catalog order."""
    from . import (
        rules_cache,
        rules_densify,
        rules_dtype,
        rules_index,
        rules_parallel,
    )

    return (
        rules_dtype,
        rules_index,
        rules_densify,
        rules_parallel,
        rules_cache,
    )


def rule_catalog() -> Dict[str, str]:
    """Rule family name → one-line description."""
    return {module.RULE: module.DESCRIPTION for module in all_rules()}


# ----------------------------------------------------------------------
# Running the linter
# ----------------------------------------------------------------------


@dataclass
class LintReport:
    """What one lint run produced, before any baseline is applied."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    parse_errors: List[str] = field(default_factory=list)


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence] = None,
) -> LintReport:
    """Lint one module's source text; suppressions already applied."""
    report = LintReport(files=1)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.parse_errors.append(f"{path}: {exc.msg} (line {exc.lineno})")
        return report
    ctx = LintContext(path, source, tree)
    for module in rules if rules is not None else all_rules():
        module.run(ctx)
    suppressions = suppressed_lines(source, tree)
    kept = []
    for finding in ctx.findings:
        if _is_suppressed(finding, suppressions) or _allowed_by_scope(finding):
            report.suppressed += 1
        else:
            kept.append(finding)
    report.findings = sort_findings(kept)
    return report


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Sequence[str]) -> LintReport:
    """Lint every ``.py`` file under the given files/directories."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        sub = lint_source(source, path=file_path.as_posix())
        report.findings.extend(sub.findings)
        report.suppressed += sub.suppressed
        report.files += 1
        report.parse_errors.extend(sub.parse_errors)
    report.findings = sort_findings(report.findings)
    return report
