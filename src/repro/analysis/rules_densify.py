"""hidden-densification rule: no full-shape materialization in hot paths.

The whole point of the suite is that kernels scale with ``nnz``, not
with the tensor's dense capacity; fuzz tensors deliberately use shapes
whose dense form would not fit in memory.  Inside the kernel hot paths
(``core/`` and ``perf/``) this rule flags constructs that silently
allocate or iterate the full index space:

* ``.to_dense()`` calls (error — a dense round-trip hidden in a kernel);
* ``np.zeros``/``np.empty``/``np.ones``/``np.full`` whose size argument
  is a whole ``.shape`` attribute (a full-capacity allocation — kernel
  outputs should size themselves from rows/fibers/nonzeros);
* ``np.outer`` (materializes a rank-1 update that segmented reductions
  are designed to avoid).

Files outside ``core/`` and ``perf/`` — dense references, verification
oracles, apps — may densify freely; the rule does not fire there.
"""

from __future__ import annotations

import ast

from .engine import LintContext, numpy_func
from .findings import SEVERITY_ERROR, SEVERITY_WARNING

RULE = "densify"
DESCRIPTION = (
    "full-shape allocations, .to_dense() round-trips, and outer-product "
    "materialization inside core/ and perf/ hot paths"
)

_ALLOCATORS = ("zeros", "empty", "ones", "full")


def _is_full_shape(arg: ast.AST) -> bool:
    """Whether an allocation size argument is a whole ``.shape``."""
    if isinstance(arg, ast.Attribute) and arg.attr == "shape":
        return True
    if isinstance(arg, ast.Call):
        # tuple(x.shape) / list(x.shape)
        if (
            isinstance(arg.func, ast.Name)
            and arg.func.id in ("tuple", "list")
            and arg.args
        ):
            return _is_full_shape(arg.args[0])
    return False


def run(ctx: LintContext) -> None:
    """Apply the densification checks to one hot-path module."""
    if not ctx.is_hot_path:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "to_dense"
        ):
            ctx.add(
                RULE,
                SEVERITY_ERROR,
                node,
                ".to_dense() in a kernel hot path materializes the full "
                "index space; operate on the sparse arrays instead",
            )
            continue
        np_name = numpy_func(node)
        if np_name in _ALLOCATORS and node.args and _is_full_shape(node.args[0]):
            ctx.add(
                RULE,
                SEVERITY_ERROR,
                node,
                f"np.{np_name} over a full tensor shape allocates dense "
                f"capacity in a hot path; size the buffer from "
                f"rows/fibers/nonzeros instead",
            )
        elif np_name == "outer":
            ctx.add(
                RULE,
                SEVERITY_WARNING,
                node,
                "np.outer materializes a dense rank-1 update; use the "
                "segmented scatter engine instead",
            )
