"""Baseline ratchet: known findings are tolerated, new ones fail.

A baseline file is a committed JSON snapshot of the fingerprints of all
findings accepted at some point in time.  ``repro lint --baseline FILE``
subtracts those fingerprints from the current report, so CI fails only
on *new* findings — the count can go down (fixing a baselined finding
just leaves a dead entry) but never up.  ``--update-baseline`` rewrites
the file from the current findings, which is how entries are retired.

Fingerprints are line-independent (see :class:`~.findings.Finding`), so
shifting code around a file does not invalidate the baseline; changing
the offending statement itself does, which is the point.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

#: Schema version of the baseline file format.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but is not a valid baseline."""


def load_baseline(path: str) -> Dict[str, Dict[str, str]]:
    """Read a baseline file into ``{fingerprint: entry}``.

    A missing file is an empty baseline (first run bootstraps by
    ``--update-baseline``); a malformed file raises
    :class:`BaselineError` so CI cannot silently pass on garbage.
    """
    file_path = Path(path)
    if not file_path.exists():
        return {}
    try:
        data = json.loads(file_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(f"baseline {path} has no 'findings' key")
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version!r}; this linter "
            f"writes version {BASELINE_VERSION}"
        )
    entries = data["findings"]
    if not isinstance(entries, dict):
        raise BaselineError(f"baseline {path} 'findings' must be an object")
    return entries


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write the current findings as the new baseline; returns the count.

    Entries are keyed by fingerprint and carry just enough context
    (rule, path, scope, snippet) for a reviewer to audit the file in a
    diff without re-running the linter.
    """
    entries = {
        finding.fingerprint: {
            "rule": finding.rule,
            "path": finding.path,
            "scope": finding.scope,
            "snippet": " ".join(finding.snippet.split()),
        }
        for finding in findings
    }
    payload = {
        "version": BASELINE_VERSION,
        "findings": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, str]]
) -> Tuple[List[Finding], int]:
    """Split findings into (new, baselined_count)."""
    fresh: List[Finding] = []
    known = 0
    for finding in findings:
        if finding.fingerprint in baseline:
            known += 1
        else:
            fresh.append(finding)
    return fresh, known
