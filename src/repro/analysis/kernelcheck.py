"""Static race/bounds verifier for generated C kernels.

``repro lint`` reasons about the *Python* that builds tensors; since the
JIT landed, the hottest loops are *generated C* the AST rules never see.
This module closes that gap: every registered kernel template ships an
effect summary (:mod:`repro.perf.jit.effects`) describing its loops,
local index defs, and loads/stores, and kernelcheck proves three
properties per kernel instance:

1. **Disjoint writes** (``kernel-ownership``): every store lands inside
   the region the kernel's ownership declaration grants one chunk —
   unit-indexed slots, strictly-increasing target rows, window-owned
   row blocks, or a per-chunk slab.  Chunk-confined stores are disjoint
   under *any* chunk-to-thread assignment, which covers both the static
   round-robin schedule and the pull queue at once.
2. **In-bounds, in-width indexing** (``kernel-bounds``,
   ``kernel-width``): each index expression provably stays within the
   header-declared extent (symbolically, via a polynomial bound engine
   that knows the formats' value ranges and the HiCOO pair invariant
   ``binds[b]*block_size + einds[e] <= dim - 1``), and no intermediate
   can overflow its C integer width given documented size caps.
3. **Serial/parallel store equivalence** (``kernel-par``): the ``_par``
   entry must be the serial function run over ``[chunk_bounds[c],
   chunk_bounds[c+1])`` with identical pointers (slab rebasing aside),
   which is the bit-exactness precondition the conformance harness
   then tests dynamically.

The summary is *not* trusted blindly (``kernel-summary``): loop headers
and ``const`` index defs are re-parsed out of the C text and must match
the summary; on drift the **source wins** and the analysis proceeds on
the parsed values, so a generator bug that changes only the C (the
planted-bug drills monkeypatch the shared snippet helpers) still
produces a precise finding.

Violations are ordinary :class:`repro.analysis.findings.Finding`
objects — same fingerprints, baseline ratchet, and text/JSON output as
``repro lint`` — surfaced via ``repro kernelcheck``.

Scope: the verifier checks the accesses the summary lists against the
source text; it is a co-generated contract, not a C frontend.  Stack
locals (``acc``, ``row*``) are out of scope, and an access absent from
both summary and source is invisible — the sanitize build profile
(``REPRO_JIT_BUILD=sanitize``) is the dynamic backstop for that.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .findings import Finding, SEVERITY_ERROR, sort_findings

if False:  # imported lazily at call time to keep the analysis package
    # importable from repro.perf.parallel without a cycle through the
    # JIT kernel layer (typing only)
    from ..perf.jit.effects import Access, EffectSummary, KernelArtifact

CAP_I32 = 2**31 - 1  # matches repro.perf.jit.effects.CAP_I32

#: All kernelcheck findings anchor to the generator module: the defect
#: is in what codegen emits, never in a user source file.
CHECK_PATH = "src/repro/perf/jit/codegen.py"

RULE_SUMMARY = "kernel-summary"
RULE_BOUNDS = "kernel-bounds"
RULE_WIDTH = "kernel-width"
RULE_OWNERSHIP = "kernel-ownership"
RULE_PAR = "kernel-par"

RULES: Dict[str, str] = {
    RULE_SUMMARY: (
        "effect summary and generated C disagree "
        "(loops, defs, or listed accesses)"
    ),
    RULE_BOUNDS: "index expression not provably within declared extents",
    RULE_WIDTH: "integer expression can exceed its C width",
    RULE_OWNERSHIP: "store not confined to the declared ownership region",
    RULE_PAR: "serial and parallel entry points not store-equivalent",
}

_CAP_I64 = 2**63 - 1
_WIDTHS = {"i64": "i64", "i32": "i32", "int": "i32", "u8": "i32"}


# --------------------------------------------------------------------------
# Expression mini-parser.  Grammar (no division, no unary minus — the
# generators never emit them):
#   expr    := mul (('+' | '-') mul)*
#   mul     := unary ('*' unary)*
#   unary   := '(' WIDTH ')' unary | primary
#   primary := INT | IDENT ('[' expr ']')? | '(' expr ')'
# AST nodes: ("num", v) ("sym", name) ("idx", array, index_ast)
#            ("cast", width, ast) ("add"|"sub"|"mul", lhs, rhs)
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"\s*(?:(\d+)|([A-Za-z_]\w*)|([()\[\]+\-*]))")


class ExprError(ValueError):
    """Raised when an expression snippet cannot be parsed."""


def _tokenize(text: str) -> List[str]:
    tokens, pos = [], 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip():
                raise ExprError(f"bad token at {text[pos:]!r} in {text!r}")
            break
        tokens.append(match.group(1) or match.group(2) or match.group(3))
        pos = match.end()
    return tokens


def parse_expr(text: str) -> tuple:
    tokens = _tokenize(text)
    pos = 0

    def peek() -> Optional[str]:
        return tokens[pos] if pos < len(tokens) else None

    def take(expected: Optional[str] = None) -> str:
        nonlocal pos
        if pos >= len(tokens):
            raise ExprError(f"unexpected end of {text!r}")
        token = tokens[pos]
        if expected is not None and token != expected:
            raise ExprError(f"expected {expected!r}, got {token!r} in {text!r}")
        pos += 1
        return token

    def expr() -> tuple:
        node = mul()
        while peek() in ("+", "-"):
            op = take()
            node = ("add" if op == "+" else "sub", node, mul())
        return node

    def mul() -> tuple:
        node = unary()
        while peek() == "*":
            take()
            node = ("mul", node, unary())
        return node

    def unary() -> tuple:
        if (
            peek() == "("
            and pos + 2 < len(tokens)
            and tokens[pos + 1] in _WIDTHS
            and tokens[pos + 2] == ")"
        ):
            take("(")
            width = take()
            take(")")
            return ("cast", _WIDTHS[width], unary())
        return primary()

    def primary() -> tuple:
        token = take()
        if token == "(":
            node = expr()
            take(")")
            return node
        if token.isdigit():
            return ("num", int(token))
        if not token[0].isalpha() and token[0] != "_":
            raise ExprError(f"unexpected {token!r} in {text!r}")
        if peek() == "[":
            take("[")
            index = expr()
            take("]")
            return ("idx", token, index)
        return ("sym", token)

    node = expr()
    if pos != len(tokens):
        raise ExprError(f"trailing tokens {tokens[pos:]} in {text!r}")
    return node


def serialize(node: tuple) -> str:
    """Canonical text for an AST — used as the identity of array atoms."""
    kind = node[0]
    if kind == "num":
        return str(node[1])
    if kind == "sym":
        return node[1]
    if kind == "idx":
        return f"{node[1]}[{serialize(node[2])}]"
    if kind == "cast":
        return serialize(node[2])
    op = {"add": "+", "sub": "-", "mul": "*"}[kind]
    return f"({serialize(node[1])} {op} {serialize(node[2])})"


def _collect_atoms(node: tuple, into: List[Tuple[str, tuple]]) -> None:
    kind = node[0]
    if kind == "idx":
        into.append((node[1], node[2]))
        _collect_atoms(node[2], into)
    elif kind == "cast":
        _collect_atoms(node[2], into)
    elif kind in ("add", "sub", "mul"):
        _collect_atoms(node[1], into)
        _collect_atoms(node[2], into)


# --------------------------------------------------------------------------
# Polynomials: Dict[Tuple[str, ...], int] mapping a sorted tuple of
# factor names (symbols, loop vars, or atom strings like "targets[s]")
# to an integer coefficient.  The empty tuple is the constant term.
# --------------------------------------------------------------------------

Poly = Dict[Tuple[str, ...], int]


def _const(value: int) -> Poly:
    return {(): value} if value else {}


def _padd(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for mono, coeff in b.items():
        merged = out.get(mono, 0) + coeff
        if merged:
            out[mono] = merged
        else:
            out.pop(mono, None)
    return out


def _pscale(a: Poly, c: int) -> Poly:
    return {mono: coeff * c for mono, coeff in a.items()} if c else {}


def _psub(a: Poly, b: Poly) -> Poly:
    return _padd(a, _pscale(b, -1))


def _pmul(a: Poly, b: Poly) -> Poly:
    out: Poly = {}
    for mono_a, ca in a.items():
        for mono_b, cb in b.items():
            mono = tuple(sorted(mono_a + mono_b))
            merged = out.get(mono, 0) + ca * cb
            if merged:
                out[mono] = merged
            else:
                out.pop(mono, None)
    return out


def _expand(node: tuple, env: Dict[str, Poly]) -> Poly:
    """Lower an AST to a polynomial, substituting local defs."""
    kind = node[0]
    if kind == "num":
        return _const(node[1])
    if kind == "sym":
        name = node[1]
        if name in env:
            return dict(env[name])
        return {(name,): 1}
    if kind == "idx":
        return {(serialize(node),): 1}
    if kind == "cast":
        return _expand(node[2], env)
    lhs = _expand(node[1], env)
    rhs = _expand(node[2], env)
    if kind == "add":
        return _padd(lhs, rhs)
    if kind == "sub":
        return _psub(lhs, rhs)
    return _pmul(lhs, rhs)


def _format_poly(poly: Poly) -> str:
    if not poly:
        return "0"
    parts = []
    for mono, coeff in sorted(poly.items()):
        term = "*".join(mono) if mono else "1"
        parts.append(f"{coeff}*{term}" if mono else str(coeff))
    return " + ".join(parts)


@dataclass
class _Analysis:
    """Per-kernel bound/width context built from summary + parsed source."""

    summary: EffectSummary
    findings: List[Finding]
    defs: Dict[str, Poly] = field(default_factory=dict)
    def_widths: Dict[str, str] = field(default_factory=dict)
    var_max: Dict[str, Poly] = field(default_factory=dict)
    var_min: Dict[str, Poly] = field(default_factory=dict)
    var_width: Dict[str, str] = field(default_factory=dict)
    effective_loops: List[Loop] = field(default_factory=list)
    effective_defs: List[Tuple[str, str, str]] = field(default_factory=list)

    def fail(self, rule: str, message: str, snippet: str = "") -> None:
        self.findings.append(
            Finding(
                rule=rule,
                severity=SEVERITY_ERROR,
                path=CHECK_PATH,
                line=0,
                col=0,
                message=message,
                scope=self.summary.name,
                snippet=snippet,
            )
        )

    # -- symbolic bounds ---------------------------------------------------

    def _rewrite_pairs(self, poly: Poly) -> Poly:
        """Fold declared format-invariant pairs into their joint bound.

        HiCOO's ``out``/factors are *not* padded to a block multiple, so
        ``binds[b]*block_size`` and ``einds[e]`` must be bounded jointly
        (``<= dim - 1``), never factor-by-factor.
        """
        poly = dict(poly)
        for base_arr, scale_sym, fine_arr, bound_expr in self.summary.pairs:
            base_key = None
            fine_key = None
            for mono in poly:
                if (
                    len(mono) == 2
                    and scale_sym in mono
                    and any(f.startswith(f"{base_arr}[") for f in mono)
                ):
                    base_key = mono
                if len(mono) == 1 and mono[0].startswith(f"{fine_arr}["):
                    fine_key = mono
            if base_key is None or fine_key is None:
                continue
            shared = min(poly[base_key], poly[fine_key])
            if shared <= 0:
                continue
            for key in (base_key, fine_key):
                poly[key] -= shared
                if not poly[key]:
                    del poly[key]
            bound = _expand(parse_expr(bound_expr), {})
            poly = _padd(poly, _pscale(bound, shared))
        return poly

    def _factor_bound(self, name: str, want_max: bool) -> Optional[Poly]:
        summary = self.summary
        if name in summary.symbols:
            return {(name,): 1}
        if name in self.var_max:
            return dict(self.var_max[name] if want_max else self.var_min[name])
        if "[" in name:
            array = name.split("[", 1)[0]
            param = summary.param(array)
            if param is None:
                return None
            limit = param.value_max if want_max else param.value_min
            if limit is None:
                return None
            return _expand(parse_expr(limit), {})
        param = summary.param(name)
        if param is not None:
            limit = param.value_max if want_max else param.value_min
            if limit is None:
                return None
            return self._bound(_expand(parse_expr(limit), {}), want_max)
        return None

    def _bound(
        self, poly: Poly, want_max: bool, use_pairs: bool = False
    ) -> Optional[Poly]:
        """Substitute every non-symbol factor by its extreme value.

        Sound because every quantity involved is nonnegative (the
        summaries declare ``value_min`` of 0 and loop lows of 0), so a
        product's max is the product of maxes and its min the product
        of mins; a negative coefficient flips which side is needed.
        """
        if use_pairs and self.summary.pairs:
            poly = self._rewrite_pairs(poly)
        total: Poly = {}
        for mono, coeff in poly.items():
            want = want_max if coeff > 0 else not want_max
            term = _const(coeff)
            for factor in mono:
                bound = self._factor_bound(factor, want)
                if bound is None:
                    return None
                term = _pmul(term, bound)
            total = _padd(total, term)
        return total

    def _numeric(self, poly: Optional[Poly]) -> Optional[int]:
        """Evaluate a symbol polynomial at the documented size caps."""
        if poly is None:
            return None
        total = 0
        for mono, coeff in poly.items():
            value = coeff
            for factor in mono:
                if factor not in self.summary.symbols:
                    return None
                value *= self.summary.symbols[factor]
            total += value
        return total

    # -- width propagation -------------------------------------------------

    def _width_name(self, name: str) -> Tuple[Optional[str], Optional[int]]:
        summary = self.summary
        if name in self.def_widths:
            return self.def_widths[name], self._numeric(
                self._bound(self.defs[name], True, use_pairs=True)
            )
        if name in self.var_width:
            return self.var_width[name], self._numeric(self.var_max[name])
        if name in summary.symbols:
            return "i64", summary.symbols[name]
        param = summary.param(name)
        if param is not None and param.extent is None:
            limit = param.value_max
            cap = None
            if limit is not None:
                cap = self._numeric(self._bound(
                    _expand(parse_expr(limit), {}), True))
            return _WIDTHS.get(param.ctype, "i64"), cap
        return None, None

    def _width_eval(self, node: tuple, context: str) -> Tuple[str, int]:
        """(width, numeric max) with C promotion; findings on overflow."""
        kind = node[0]
        if kind == "num":
            return ("i32" if node[1] <= CAP_I32 else "i64"), node[1]
        if kind == "sym":
            width, cap = self._width_name(node[1])
            if width is None or cap is None:
                raise ExprError(f"no width/cap for {node[1]!r}")
            return width, cap
        if kind == "idx":
            param = self.summary.param(node[1])
            if param is None or param.value_max is None:
                raise ExprError(f"no value range for array {node[1]!r}")
            self._width_eval(node[2], context)
            elem = next(
                (w for key, w in _WIDTHS.items() if key in param.ctype), "i64"
            )
            cap = self._numeric(self._bound(
                _expand(parse_expr(param.value_max), {}), True))
            if cap is None:
                raise ExprError(f"unbounded values in {node[1]!r}")
            return elem, cap
        if kind == "cast":
            _, cap = self._width_eval(node[2], context)
            if node[1] == "i32" and cap > CAP_I32:
                self.fail(
                    RULE_WIDTH,
                    f"cast to i32 can truncate (max {cap}) in {context}",
                    serialize(node),
                )
            return node[1], cap
        lw, lc = self._width_eval(node[1], context)
        rw, rc = self._width_eval(node[2], context)
        width = "i64" if "i64" in (lw, rw) else "i32"
        if kind == "add":
            cap = lc + rc
        elif kind == "sub":
            cap = lc  # operands are nonnegative, so max(l - r) <= max(l)
        else:
            cap = lc * rc
        limit = CAP_I32 if width == "i32" else _CAP_I64
        if cap > limit:
            self.fail(
                RULE_WIDTH,
                f"{width} arithmetic can reach {cap} (> {limit}) "
                f"in {context}",
                serialize(node),
            )
            cap = limit
        return width, cap

    def check_width(self, node: tuple, context: str) -> None:
        try:
            self._width_eval(node, context)
        except ExprError as exc:
            self.fail(RULE_WIDTH, f"cannot bound {context}: {exc}")

    # -- bounds ------------------------------------------------------------

    def check_range(
        self, expr: tuple, extent: str, span: int, context: str
    ) -> None:
        poly = _expand(expr, self.defs)
        low = self._bound(poly, want_max=False)
        if low is None or any(c < 0 for c in low.values()):
            self.fail(
                RULE_BOUNDS,
                f"cannot prove {context} >= 0 "
                f"(min {_format_poly(low) if low else 'unknown'})",
                serialize(expr),
            )
        high = self._bound(poly, want_max=True, use_pairs=True)
        if high is None:
            self.fail(
                RULE_BOUNDS, f"cannot bound {context} from above",
                serialize(expr),
            )
            return
        try:
            extent_poly = _expand(parse_expr(extent), {})
        except ExprError as exc:
            self.fail(RULE_SUMMARY, f"bad extent {extent!r}: {exc}")
            return
        slack = _psub(extent_poly, _padd(high, _const(span)))
        if any(coeff < 0 for coeff in slack.values()):
            self.fail(
                RULE_BOUNDS,
                f"{context} can exceed extent {extent!r} "
                f"(slack {_format_poly(slack)})",
                serialize(expr),
            )


# --------------------------------------------------------------------------
# Source re-parsing: the C text is the ground truth.
# --------------------------------------------------------------------------

_LOOP_RE = re.compile(
    r"for \((i64|i32|int) ([A-Za-z_]\w*) = ([^;]+); "
    r"\2 (<=|<) ([^;]+); \+\+\2\)"
)
_DEF_RE = re.compile(r"const (i64|i32|int) ([A-Za-z_]\w*) = ([^;]+);")
_TEAM_MARKER = "\ntypedef void (*repro_chunk_fn)"


def _serial_region(source: str) -> str:
    return source.split(_TEAM_MARKER, 1)[0]


def _normalize(text: str) -> str:
    return " ".join(text.split())


def _parse_source_loops(
    region: str,
) -> Dict[str, List[Tuple[str, str, str, str]]]:
    """var -> [(width, lo, comparator, hi)] in source order."""
    loops: Dict[str, List[Tuple[str, str, str, str]]] = {}
    for match in _LOOP_RE.finditer(region):
        width, var, lo, cmp_op, hi = match.groups()
        loops.setdefault(var, []).append(
            (width, lo.strip(), cmp_op, hi.strip())
        )
    return loops


def _parse_source_defs(region: str) -> Dict[str, Tuple[str, str]]:
    """name -> (width, expr) for ``const <int-type>`` locals."""
    defs: Dict[str, Tuple[str, str]] = {}
    for match in _DEF_RE.finditer(region):
        width, name, expr = match.groups()
        defs[name] = (width, _normalize(expr))
    return defs


def _crosscheck_loops(ana: _Analysis, region: str) -> List[Loop]:
    """Reconcile summary loops with parsed headers; source wins.

    Returns the effective loop list: a ``<=`` comparator in the source
    widens the summary's exclusive bound to ``(hi) + 1``.
    """
    from ..perf.jit.effects import Loop

    summary = ana.summary
    parsed = _parse_source_loops(region)
    effective: List[Loop] = []
    for loop in summary.loops:
        occurrences = parsed.pop(loop.var, [])
        if not occurrences:
            ana.fail(
                RULE_SUMMARY,
                f"loop over {loop.var!r} declared in summary but absent "
                f"from generated C",
            )
            effective.append(loop)
            continue
        if len(set(occurrences)) > 1:
            ana.fail(
                RULE_SUMMARY,
                f"loop headers for {loop.var!r} disagree within the "
                f"kernel: {sorted(set(occurrences))}",
            )
        width, lo, cmp_op, hi = occurrences[0]
        if (width, lo, hi) != (loop.width, loop.lo, loop.hi) or cmp_op != "<":
            ana.fail(
                RULE_SUMMARY,
                f"loop over {loop.var!r} drifted from summary: source has "
                f"'for ({width} {loop.var} = {lo}; {loop.var} {cmp_op} "
                f"{hi}; ...)', summary claims [{loop.lo}, {loop.hi})",
            )
        hi_eff = hi if cmp_op == "<" else f"({hi}) + 1"
        effective.append(Loop(loop.var, lo, hi_eff, width))
    for var in parsed:
        ana.fail(
            RULE_SUMMARY,
            f"generated C loops over {var!r} but the summary does not "
            f"declare it",
        )
    return effective


def _crosscheck_defs(ana: _Analysis, region: str) -> List[Tuple[str, str, str]]:
    """Reconcile summary defs with parsed ``const`` locals; source wins."""
    summary = ana.summary
    parsed = _parse_source_defs(region)
    effective: List[Tuple[str, str, str]] = []
    for definition in summary.defs:
        entry = parsed.pop(definition.name, None)
        if entry is None:
            ana.fail(
                RULE_SUMMARY,
                f"local def {definition.name!r} declared in summary but "
                f"absent from generated C",
            )
            effective.append(
                (definition.name, definition.width, definition.expr)
            )
            continue
        width, expr = entry
        if expr != definition.expr or _WIDTHS[width] != _WIDTHS[
            definition.width
        ]:
            ana.fail(
                RULE_SUMMARY,
                f"local def {definition.name!r} drifted from summary: "
                f"source has 'const {width} {definition.name} = {expr}', "
                f"summary claims {definition.expr!r}",
            )
        effective.append((definition.name, width, expr))
    for name in parsed:
        ana.fail(
            RULE_SUMMARY,
            f"generated C defines local {name!r} but the summary does "
            f"not declare it",
        )
    return effective


def _crosscheck_accesses(ana: _Analysis, region: str) -> None:
    """Every listed access must appear verbatim in the serial C."""
    flat = _normalize(region)
    for access in ana.summary.accesses:
        # Row slabs appear as pointer adds, scalar elements as
        # subscripts; a rank-1 slab is spelled either way.
        candidates = (
            f"{access.array} + {access.offset}",
            f"{access.array}[{access.offset}]",
        )
        if not any(_normalize(n) in flat for n in candidates):
            ana.fail(
                RULE_SUMMARY,
                f"summary lists {access.kind} of {candidates[0]!r} but "
                f"the generated C does not contain it",
                candidates[0],
            )


# --------------------------------------------------------------------------
# Ownership: every store must be confined to the chunk's region.
# --------------------------------------------------------------------------

def _atom_index_text(atom: str) -> str:
    return atom.split("[", 1)[1][:-1]


def _check_slab(ana: _Analysis, access: Access, offset_ast: tuple) -> None:
    """A slab store is chunk-private iff the trampoline rebases it far
    enough and the offset involves only loop-local variables."""
    slab_param, elems = access.slab
    override = ana.summary.par_overrides.get(slab_param)
    expected = f"a->{slab_param} + c * {elems}"
    if override != expected:
        ana.fail(
            RULE_OWNERSHIP,
            f"store to {access.array!r} claims per-chunk slab "
            f"{slab_param!r} but the parallel override is "
            f"{override!r}, expected {expected!r}",
            access.offset,
        )
        return
    try:
        poly = _expand(offset_ast, ana.defs)
    except ExprError as exc:
        ana.fail(RULE_SUMMARY, f"bad slab offset: {exc}", access.offset)
        return
    foreign = [
        factor
        for mono in poly
        for factor in mono
        if factor not in ana.var_max
    ]
    if foreign:
        ana.fail(
            RULE_OWNERSHIP,
            f"slab store offset {access.offset!r} depends on "
            f"{sorted(set(foreign))} — not provably chunk-private",
            access.offset,
        )
    cap = ana._numeric(ana._bound(poly, want_max=True))
    if cap is None or cap + access.span > elems:
        ana.fail(
            RULE_OWNERSHIP,
            f"slab {slab_param!r} rebased by {elems} per chunk but the "
            f"store reaches offset {cap} + span {access.span}",
            access.offset,
        )


def _check_row_blocks(ana: _Analysis, access: Access, poly: Poly) -> None:
    """Window ownership: the stored row must be exactly
    ``binds[b]*block_size + einds[e]`` (scaled by span) where ``b``
    walks this chunk's windows via ``block_perm`` positions."""
    summary = ana.summary
    binds_name, scale = summary.ownership[1], summary.ownership[2]
    binds_param = summary.param(binds_name)
    if binds_param is None or "window_row" not in binds_param.props:
        ana.fail(
            RULE_OWNERSHIP,
            f"ownership names {binds_name!r} which is not a window-row "
            f"index array",
        )
        return
    base_mono = fine_mono = None
    for mono, coeff in poly.items():
        if (
            len(mono) == 2
            and scale in mono
            and any(f.startswith(f"{binds_name}[") for f in mono)
            and coeff == access.span
        ):
            base_mono = mono
        elif len(mono) == 1 and "[" in mono[0] and coeff == access.span:
            fine_mono = mono
    if base_mono is None or fine_mono is None or len(poly) != 2:
        ana.fail(
            RULE_OWNERSHIP,
            f"store offset {access.offset!r} is not "
            f"span*({binds_name}[b]*{scale} + eind) "
            f"(got {_format_poly(poly)})",
            access.offset,
        )
        return
    fine_param = summary.param(fine_mono[0].split("[", 1)[0])
    if fine_param is None or fine_param.value_max != f"{scale} - 1":
        ana.fail(
            RULE_OWNERSHIP,
            f"in-block index {fine_mono[0]!r} not bounded by "
            f"{scale} - 1, so rows can escape the owned block",
            access.offset,
        )
    block_var = _atom_index_text(
        next(f for f in base_mono if f != scale)
    )
    definition = ana.defs.get(block_var)
    perm_match = None
    for name, width, expr in ana.effective_defs:
        if name == block_var:
            perm_match = re.fullmatch(r"([A-Za-z_]\w*)\[([A-Za-z_]\w*)\]", expr)
    if definition is None or perm_match is None:
        ana.fail(
            RULE_OWNERSHIP,
            f"block index {block_var!r} is not a permuted-position "
            f"lookup, cannot tie stores to the chunk's windows",
            access.offset,
        )
        return
    pos_var = perm_match.group(2)
    pos_loop = next(
        (l for l in ana.effective_loops if l.var == pos_var), None
    )
    window_ok = False
    if pos_loop is not None:
        lo_match = re.fullmatch(
            r"([A-Za-z_]\w*)\[" + re.escape(summary.unit_var) + r"\]",
            pos_loop.lo,
        )
        if lo_match is not None:
            win_arr = lo_match.group(1)
            win_param = summary.param(win_arr)
            window_ok = (
                pos_loop.hi == f"{win_arr}[{summary.unit_var} + 1]"
                and win_param is not None
                and "nondecreasing" in win_param.props
            )
    if not window_ok:
        ana.fail(
            RULE_OWNERSHIP,
            f"positions {pos_var!r} do not walk "
            f"[win[{summary.unit_var}], win[{summary.unit_var} + 1]) of a "
            f"nondecreasing window table",
            access.offset,
        )


def _check_ownership(ana: _Analysis) -> None:
    summary = ana.summary
    kind = summary.ownership[0]
    if kind == "serial":
        return
    for access in summary.accesses:
        if access.kind != "store":
            continue
        try:
            offset_ast = parse_expr(access.offset)
        except ExprError as exc:
            ana.fail(RULE_SUMMARY, f"bad store offset: {exc}", access.offset)
            continue
        if access.slab is not None:
            _check_slab(ana, access, offset_ast)
            continue
        try:
            poly = _expand(offset_ast, ana.defs)
        except ExprError as exc:
            ana.fail(RULE_SUMMARY, f"bad store offset: {exc}", access.offset)
            continue
        if kind in ("unit", "element"):
            expected = {(summary.unit_var,): access.span}
            if poly != expected:
                ana.fail(
                    RULE_OWNERSHIP,
                    f"store to {access.array!r} at {access.offset!r} is "
                    f"not {access.span}*{summary.unit_var} "
                    f"(got {_format_poly(poly)}) — chunks may collide",
                    access.offset,
                )
        elif kind == "rows":
            targets = summary.ownership[1]
            target_param = summary.param(targets)
            if (
                target_param is None
                or "strictly_increasing" not in target_param.props
            ):
                ana.fail(
                    RULE_OWNERSHIP,
                    f"ownership names {targets!r} which is not declared "
                    f"strictly increasing",
                )
                continue
            expected = {(f"{targets}[{summary.unit_var}]",): access.span}
            if poly != expected:
                ana.fail(
                    RULE_OWNERSHIP,
                    f"store to {access.array!r} at {access.offset!r} is "
                    f"not {access.span}*{targets}[{summary.unit_var}] "
                    f"(got {_format_poly(poly)}) — rows may collide "
                    f"across chunks",
                    access.offset,
                )
        elif kind == "row_blocks":
            _check_row_blocks(ana, access, poly)
        else:
            ana.fail(
                RULE_OWNERSHIP, f"unknown ownership kind {kind!r}"
            )


# --------------------------------------------------------------------------
# Parallel entry: the bit-exactness precondition.
# --------------------------------------------------------------------------

_STATIC_LOOP = "for (i64 c = tid; c < team->num_chunks; c += team->num_threads)"
_PULL_QUEUE = "__atomic_fetch_add(&team->next, 1, __ATOMIC_RELAXED)"


def _check_par(ana: _Analysis, source: str) -> None:
    summary = ana.summary
    name = summary.name
    if summary.par_name is None:
        if f"{name}_par" in source:
            ana.fail(
                RULE_PAR,
                f"kernel is declared serial-only but the source exports "
                f"{name}_par — shared accumulation would race",
            )
        return
    if f"void {summary.par_name}(" not in source:
        ana.fail(
            RULE_PAR, f"summary declares {summary.par_name} but the "
            f"source does not export it",
        )
        return
    for schedule, snippet in (
        ("static round-robin", _STATIC_LOOP),
        ("pull-queue", _PULL_QUEUE),
    ):
        if snippet not in source:
            ana.fail(
                RULE_PAR,
                f"team runner lost its {schedule} schedule — disjointness "
                f"was only proven for both schedules together",
            )
    trampoline = re.search(
        re.escape(name)
        + r"\(a->chunk_bounds\[c\], a->chunk_bounds\[c \+ 1\],\s*(.*?)\);",
        source,
        re.DOTALL,
    )
    if trampoline is None:
        ana.fail(
            RULE_PAR,
            f"chunk trampoline does not call {name} on "
            f"[chunk_bounds[c], chunk_bounds[c + 1]) — store sequences "
            f"cannot match the serial entry",
        )
        return
    passed = [_normalize(arg) for arg in trampoline.group(1).split(",")]
    expected = [
        summary.par_overrides.get(pname, f"a->{pname}")
        for pname in summary.par_params
    ]
    if passed != expected:
        ana.fail(
            RULE_PAR,
            f"trampoline passes {passed} but the summary expects "
            f"{expected} — serial and parallel stores would diverge",
        )
    slab_names = {
        access.slab[0]
        for access in summary.accesses
        if access.slab is not None
    }
    for pname in summary.par_overrides:
        if pname not in slab_names:
            ana.fail(
                RULE_PAR,
                f"parallel override for {pname!r} has no declared slab "
                f"store backing it",
            )
    serial_tail = [
        p.name for p in summary.params[2:]
    ]
    renames = {
        access.array: access.slab[0]
        for access in summary.accesses
        if access.slab is not None
    }
    expected_order = [renames.get(n, n) for n in serial_tail]
    if list(summary.par_params) != expected_order:
        ana.fail(
            RULE_PAR,
            f"parallel ctx fields {list(summary.par_params)} do not "
            f"mirror the serial signature {expected_order}",
        )


# --------------------------------------------------------------------------
# Per-kernel orchestration.
# --------------------------------------------------------------------------

def check_artifact(artifact: KernelArtifact) -> List[Finding]:
    """All findings for one generated kernel (empty list = verified)."""
    summary = artifact.effects
    findings: List[Finding] = []
    ana = _Analysis(summary=summary, findings=findings)
    region = _serial_region(artifact.source)
    if f"void {summary.name}(" not in region:
        ana.fail(
            RULE_SUMMARY,
            f"serial entry void {summary.name}(...) absent from source",
        )
        return findings

    # 1. Reconcile summary with the C text; parsed source is authoritative.
    ana.effective_loops = _crosscheck_loops(ana, region)
    ana.effective_defs = _crosscheck_defs(ana, region)
    _crosscheck_accesses(ana, region)

    # 2. Build the def environment (in declaration order — later defs and
    #    loop bounds reference earlier ones), then loop-var intervals.
    for name, width, expr in ana.effective_defs:
        try:
            ana.defs[name] = _expand(parse_expr(expr), ana.defs)
        except ExprError as exc:
            ana.fail(RULE_SUMMARY, f"bad def {name!r}: {exc}", expr)
            ana.defs[name] = {}
        ana.def_widths[name] = _WIDTHS[width]
    bound_exprs: List[Tuple[tuple, str]] = []
    for loop in ana.effective_loops:
        try:
            lo_ast = parse_expr(loop.lo)
            hi_ast = parse_expr(loop.hi)
        except ExprError as exc:
            ana.fail(
                RULE_SUMMARY, f"bad loop bounds for {loop.var!r}: {exc}"
            )
            continue
        lo_poly = _expand(lo_ast, ana.defs)
        hi_poly = _expand(hi_ast, ana.defs)
        low = ana._bound(lo_poly, want_max=False)
        high = ana._bound(hi_poly, want_max=True)
        if low is None or high is None:
            ana.fail(
                RULE_BOUNDS,
                f"cannot bound loop range of {loop.var!r} "
                f"([{loop.lo}, {loop.hi}))",
            )
            low, high = {}, _const(1)
        ana.var_min[loop.var] = low
        ana.var_max[loop.var] = _psub(high, _const(1))
        ana.var_width[loop.var] = _WIDTHS[loop.width]
        bound_exprs.append((lo_ast, f"loop {loop.var} lower bound"))
        bound_exprs.append((hi_ast, f"loop {loop.var} upper bound"))

    # 3. In-extent + width proofs over every expression the kernel uses.
    seen_atoms: Dict[str, tuple] = {}
    exprs: List[Tuple[tuple, str]] = list(bound_exprs)
    for name, _, expr in ana.effective_defs:
        try:
            exprs.append((parse_expr(expr), f"def {name}"))
        except ExprError:
            pass  # already reported above
    for access in summary.accesses:
        try:
            ast = parse_expr(access.offset)
        except ExprError as exc:
            ana.fail(
                RULE_SUMMARY,
                f"bad {access.kind} offset on {access.array!r}: {exc}",
                access.offset,
            )
            continue
        exprs.append((ast, f"{access.kind} {access.array}"))
        param = summary.param(access.array)
        if param is None or param.extent is None:
            ana.fail(
                RULE_SUMMARY,
                f"{access.kind} targets {access.array!r} which has no "
                f"declared extent",
            )
        else:
            ana.check_range(
                ast, param.extent, access.span,
                f"{access.kind} of {access.array}[{access.offset}]",
            )
    for ast, context in exprs:
        atoms: List[Tuple[str, tuple]] = []
        _collect_atoms(ast, atoms)
        for array, index_ast in atoms:
            key = f"{array}[{serialize(index_ast)}]"
            if key in seen_atoms:
                continue
            seen_atoms[key] = index_ast
            param = summary.param(array)
            if param is None or param.extent is None:
                ana.fail(
                    RULE_SUMMARY,
                    f"{context} reads {key} but {array!r} has no "
                    f"declared extent",
                )
                continue
            ana.check_range(index_ast, param.extent, 1, f"index {key}")
        ana.check_width(ast, context)

    # 4. Ownership and parallel-entry structure.
    _check_ownership(ana)
    _check_par(ana, artifact.source)
    return findings


@dataclass
class KernelCheckReport:
    """Outcome of checking a set of artifacts, mirroring ``LintReport``."""

    findings: List[Finding]
    kernels: int
    names: List[str]

    def to_dict(self) -> dict:
        return {
            "kernels": self.kernels,
            "findings": [f.to_dict() for f in self.findings],
        }


def check_kernels(
    orders: Optional[Sequence[int]] = None,
    ranks: Optional[Sequence[int]] = None,
    artifacts: Optional[Iterable[KernelArtifact]] = None,
) -> KernelCheckReport:
    """Verify the registered kernel matrix (or an explicit artifact set).

    ``orders``/``ranks`` default to the codegen registration matrix;
    both are ignored when ``artifacts`` is given.
    """
    from ..perf.jit import codegen

    if artifacts is None:
        artifacts = codegen.registered_artifacts(
            orders=tuple(orders or codegen.REGISTERED_ORDERS),
            ranks=tuple(ranks or codegen.REGISTERED_RANKS),
        )
    findings: List[Finding] = []
    names: List[str] = []
    for artifact in artifacts:
        names.append(artifact.name)
        findings.extend(check_artifact(artifact))
    return KernelCheckReport(
        findings=sort_findings(findings), kernels=len(names), names=names
    )
