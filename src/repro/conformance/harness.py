"""Differential checks: the conformance matrix one tensor is run through.

A *check* is a small JSON-serializable dict — ``{"check": kind, ...}`` —
and :func:`run_check` executes one of them against a COO tensor,
returning ``None`` on success or a failure message.  Keeping checks as
plain data is what makes the rest of the subsystem composable: the
fuzzer enumerates them, the shrinker re-runs a single failing one on
smaller tensors, and corpus reproducers replay them verbatim from disk.

Check kinds
-----------
``roundtrip``
    Convert through a path of formats (validating the structural
    invariants after every hop) and compare the final expansion against
    the original tensor.
``kernel_oracle``
    Run one kernel on one format serially and compare against the dense
    numpy reference (skipped automatically for tensors too large to
    densify).
``cross_format``
    Run one kernel on every applicable representation — COO, HiCOO, and
    the CSF / F-COO extension kernels — and compare all outputs against
    the COO baseline with float32 tolerances.
``parallel_exact``
    Run one kernel serially and under a parallel schedule and require
    **bit-identical** outputs (the executor's output-ownership
    guarantee).
``cache_exact``
    Run one kernel with the plan cache disabled and with a warm cache
    and compare outputs with float32 tolerances (a cached plan may
    legally reorder float accumulation; only serial-vs-parallel carries
    the bit-identical guarantee).
``auto_dispatch``
    Run one kernel through ``variant="auto"`` (model-only tuning, disk
    cache disabled) and require tolerance agreement with the serial COO
    baseline plus bit-identical agreement with a direct invocation of
    the tuner's chosen configuration.
``jit_tolerance``
    Run every applicable compiled (``repro.perf.jit``) variant and
    compare against the numpy COO baseline and the dense oracle under
    tolerance comparison — compiled accumulation order may legitimately
    differ in the last ulps, so this is never bit-exact.  Passes
    trivially when no compiler is available or ``REPRO_JIT=0``.
``jit_parallel``
    Run the in-kernel multithreaded compiled variants (``*_jit_mt``,
    one ctypes call driving a C thread team) at a requested thread
    count and schedule, and require the output to be **bit-identical**
    to the serial compiled kernel (the ownership partition's guarantee)
    and tolerance-equal to the numpy baseline.  Passes trivially when
    the compiled backend is unavailable.
``jit_sanitize``
    Re-run the ``jit_tolerance`` differential under the
    sanitizer-instrumented JIT build profile
    (``REPRO_JIT_BUILD=sanitize``: ASan + UBSan, ``-O1 -g``) so every
    compiled kernel the fuzzer exercises also runs with memory and
    undefined-behavior checking armed — a sanitizer abort or report
    surfaces as a check failure.  Passes trivially when the compiled
    backend is unavailable or the toolchain lacks sanitizer runtimes
    (``profile_supported`` probes once per process).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.verify import as_comparable, dense_reference
from ..core.csf_kernels import mttkrp_csf, ttv_csf
from ..core.registry import KernelOperands, make_operands, run_algorithm
from ..formats.coo import CooTensor
from ..formats.convert import convert
from ..formats.csf import CsfTensor
from ..formats.fcoo import FcooTensor, ttm_fcoo, ttv_fcoo
from ..perf.parallel import parallel_config
from ..perf.plan_cache import cache_disabled, fresh_cache
from .invariants import validate

#: Mirrors bench.verify's float32 cross-implementation tolerances.
RTOL = 1e-3
ATOL = 1e-3

#: Tensors with more cells than this skip the dense oracle (the
#: differential cross-format check remains, and scales to any size).
MAX_DENSE_CELLS = 200_000

KERNELS = ("TEW", "TS", "TTV", "TTM", "MTTKRP")

#: Kernels that contract a mode need at least two modes to leave an
#: output mode standing.
MODE_KERNELS = ("TTV", "TTM", "MTTKRP")


def _capacity(shape: Sequence[int]) -> int:
    total = 1
    for s in shape:
        total *= int(s)
    return total


def _to_coo(tensor) -> CooTensor:
    """Normalize any suite tensor — including the mmap-backed
    :class:`~repro.io.binfile.MmapCooTensor` — to an in-RAM COO."""
    if isinstance(tensor, CooTensor):
        return tensor
    return tensor.to_coo()


def _convert_hop(current, name: str, config: Dict[str, Any]):
    """One conversion step of a roundtrip path."""
    block_size = int(config.get("block_size", 8))
    if name == "coo":
        return _to_coo(current)
    if name == "hicoo":
        return convert(_to_coo(current), "hicoo", block_size=block_size)
    if name == "ghicoo":
        return convert(
            _to_coo(current),
            "ghicoo",
            compressed_modes=config["compressed_modes"],
            block_size=block_size,
        )
    if name == "scoo":
        return convert(_to_coo(current), "scoo", dense_modes=config["dense_modes"])
    if name == "shicoo":
        return convert(
            _to_coo(current),
            "shicoo",
            dense_modes=config["dense_modes"],
            block_size=block_size,
        )
    if name == "csf":
        return CsfTensor.from_coo(_to_coo(current))
    if name == "fcoo":
        return FcooTensor.from_coo(_to_coo(current), int(config.get("mode", 0)))
    raise ValueError(f"unknown roundtrip format {name!r}")


def _sparse_mismatch(a: CooTensor, b: CooTensor, label: str) -> Optional[str]:
    """Tolerance comparison of two COO tensors without ever densifying.

    Shapes here can exceed memory as dense arrays (the block-boundary
    fuzz tensors force every dimension past the einds uint8 range), so
    the comparison works on the sparse difference ``a - b``: concatenate
    the nonzeros with ``b`` negated, combine duplicates, and bound the
    surviving values against a combined float32 tolerance.
    """
    if a.shape != b.shape:
        return f"{label}: shapes differ ({a.shape} vs {b.shape})"
    diff_indices = np.concatenate([a.indices, b.indices], axis=1)
    diff_values = np.concatenate([a.values, -b.values])
    diff = CooTensor(a.shape, diff_indices, diff_values, validate=False)
    residual = diff.sum_duplicates().values
    if residual.size == 0:
        return None
    scale = max(
        float(np.max(np.abs(a.values), initial=0.0)),
        float(np.max(np.abs(b.values), initial=0.0)),
    )
    worst = float(np.max(np.abs(residual)))
    if worst > ATOL + RTOL * scale:
        return f"{label} (max abs error {worst:.3g})"
    return None


def _run_roundtrip(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    current: Any = tensor
    for hop in config["path"]:
        current = _convert_hop(current, hop, config)
        validate(current)
    back = _to_coo(current)
    return _sparse_mismatch(
        back,
        tensor,
        f"roundtrip through {'->'.join(config['path'])} does not "
        f"reproduce the original tensor",
    )


# ----------------------------------------------------------------------
# Kernel execution helpers
# ----------------------------------------------------------------------


def _operands(tensor: CooTensor, config: Dict[str, Any]) -> KernelOperands:
    return make_operands(
        tensor,
        config["kernel"],
        mode=int(config.get("mode", 0)),
        rank=int(config.get("rank", 4)),
        seed=int(config.get("seed", 0)),
    )


def _execute(
    tensor: CooTensor,
    config: Dict[str, Any],
    operands: KernelOperands,
    *,
    tensor_format: Optional[str] = None,
    num_threads: int = 1,
    schedule: Optional[str] = None,
):
    name = f"{tensor_format or config['format']}-{config['kernel']}-OMP"
    with parallel_config(
        num_threads=num_threads,
        schedule=schedule,
        min_parallel_nnz=0 if num_threads > 1 else None,
    ):
        return run_algorithm(
            name,
            tensor,
            operands,
            mode=int(config.get("mode", 0)),
            rank=int(config.get("rank", 4)),
            block_size=int(config.get("block_size", 8)),
        )


def _exact_mismatch(a, b, label: str) -> Optional[str]:
    """Require two kernel outputs to be bit-identical."""
    if type(a) is not type(b):
        return f"{label}: output types differ ({type(a).__name__} vs {type(b).__name__})"
    if isinstance(a, np.ndarray):
        if not np.array_equal(a, b):
            return f"{label}: dense outputs are not bit-identical"
        return None
    for attr in ("indices", "values", "bptr", "binds", "einds", "cinds"):
        left = getattr(a, attr, None)
        right = getattr(b, attr, None)
        if left is None and right is None:
            continue
        if not np.array_equal(left, right):
            return f"{label}: {attr} arrays are not bit-identical"
    return None


def _tolerance_mismatch(a, b, label: str) -> Optional[str]:
    """Compare two kernel outputs with float32 tolerances.

    Dense outputs (MTTKRP factor matrices) compare directly; sparse
    outputs compare in canonical COO via :func:`_sparse_mismatch`, so no
    output is ever densified — the fuzzer's tensors can be far too large
    for that.
    """
    a_dense = isinstance(a, np.ndarray)
    b_dense = isinstance(b, np.ndarray)
    if a_dense != b_dense:
        return (
            f"{label}: output kinds differ "
            f"({type(a).__name__} vs {type(b).__name__})"
        )
    if a_dense:
        if a.shape != b.shape:
            return f"{label}: shapes differ ({a.shape} vs {b.shape})"
        if not np.allclose(a, b, rtol=RTOL, atol=ATOL):
            worst = float(np.max(np.abs(a.astype(np.float64) - b)))
            return f"{label} (max abs error {worst:.3g})"
        return None
    return _sparse_mismatch(_to_coo(a), _to_coo(b), label)


def _run_kernel_oracle(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    if _capacity(tensor.shape) > MAX_DENSE_CELLS:
        return None
    operands = _operands(tensor, config)
    out = as_comparable(_execute(tensor, config, operands))
    dense = tensor.to_dense().astype(np.float64)
    reference = dense_reference(
        config["kernel"], dense, operands, int(config.get("mode", 0))
    )
    if reference is None:
        return None
    if not np.allclose(out, reference, rtol=RTOL, atol=ATOL):
        worst = float(np.max(np.abs(out - reference)))
        return (
            f"{config['format']}-{config['kernel']} deviates from the dense "
            f"oracle (max abs error {worst:.3g})"
        )
    return None


def _run_cross_format(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    kernel = config["kernel"]
    mode = int(config.get("mode", 0))
    operands = _operands(tensor, config)
    baseline = _execute(tensor, config, operands, tensor_format="COO")
    others: List[Tuple[str, Any]] = [
        ("HiCOO", _execute(tensor, config, operands, tensor_format="HiCOO"))
    ]
    if kernel == "MTTKRP":
        others.append(("CSF", mttkrp_csf(tensor, operands.factors, mode)))
    if kernel == "TTV":
        others.append(("CSF", ttv_csf(tensor, operands.vector, mode)))
        fcoo = FcooTensor.from_coo(tensor, mode)
        validate(fcoo)
        others.append(("F-COO", ttv_fcoo(fcoo, operands.vector)))
    if kernel == "TTM":
        fcoo = FcooTensor.from_coo(tensor, mode)
        validate(fcoo)
        others.append(("F-COO", ttm_fcoo(fcoo, operands.matrix)))
    for label, out in others:
        mismatch = _tolerance_mismatch(
            out, baseline, f"{label}-{kernel} disagrees with COO baseline"
        )
        if mismatch is not None:
            return mismatch
    return None


def _run_parallel_exact(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    operands = _operands(tensor, config)
    serial = _execute(tensor, config, operands, num_threads=1)
    parallel = _execute(
        tensor,
        config,
        operands,
        num_threads=int(config.get("threads", 2)),
        schedule=config.get("schedule", "dynamic"),
    )
    return _exact_mismatch(
        serial,
        parallel,
        f"{config['format']}-{config['kernel']} "
        f"serial vs {config.get('threads', 2)}x{config.get('schedule', 'dynamic')}",
    )


def _run_cache_exact(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    operands = _operands(tensor, config)
    with cache_disabled():
        cold = _execute(tensor, config, operands)
    with fresh_cache():
        _execute(tensor, config, operands)  # populate the plan cache
        warm = _execute(tensor, config, operands)
    return _tolerance_mismatch(
        cold, warm, f"{config['format']}-{config['kernel']} uncached vs cached"
    )


def _run_auto_dispatch(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """``variant="auto"`` differential: serial COO vs the tuned dispatch.

    Model-only selection (no probes) with the disk tuning cache disabled
    keeps the check deterministic and independent of the host's tuning
    file.  Auto-dispatch must agree with the serial COO baseline to
    float32 tolerance AND be bit-identical to a direct invocation of the
    configuration the tuner chose.
    """
    from ..perf import dispatch
    from ..perf.autotune import disk_cache_disabled

    kernel = config["kernel"]
    mode = int(config.get("mode", 0))
    rank = int(config.get("rank", 4))
    seed = int(config.get("seed", 0))
    operands = _operands(tensor, config)
    baseline = _execute(tensor, config, operands, tensor_format="COO")
    with disk_cache_disabled():
        # The same resolution the public variant="auto" entry points use
        # (including their rank derivation), so `chosen` is exactly the
        # config the auto calls below execute.
        resolve_kwargs = {} if kernel == "TTV" else {"rank": rank}
        chosen = dispatch.resolve_config(
            tensor, kernel, variant="auto", mode=mode, seed=seed,
            probe=False, **resolve_kwargs,
        )
        if kernel == "MTTKRP":
            auto = dispatch.mttkrp(
                tensor, operands.factors, mode, variant="auto",
                seed=seed, probe=False,
            )
        elif kernel == "TTV":
            auto = dispatch.ttv(
                tensor, operands.vector, mode, variant="auto",
                seed=seed, probe=False,
            )
        else:
            auto = dispatch.ttm(
                tensor, operands.matrix, mode, variant="auto",
                seed=seed, probe=False,
            )
        direct = dispatch.run_config(tensor, kernel, chosen, operands, mode=mode)
    mismatch = _exact_mismatch(
        auto,
        direct,
        f"{kernel} variant=auto vs direct {chosen.label()}",
    )
    if mismatch is not None:
        return mismatch
    return _tolerance_mismatch(
        auto,
        baseline,
        f"{kernel} variant=auto ({chosen.label()}) disagrees with serial COO",
    )


def _run_jit_tolerance(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """Compiled variants vs the numpy baseline and the dense oracle.

    Enumerated unconditionally; when the compiled backend is unavailable
    (no compiler, ``REPRO_JIT=0``) there is nothing to differentiate and
    the check passes trivially — fallback correctness is covered by the
    dispatch checks, which downgrade to numpy.
    """
    from ..perf import jit

    if not jit.jit_available():
        return None
    kernel = config["kernel"]
    mode = int(config.get("mode", 0))
    operands = _operands(tensor, config)
    baseline = _execute(tensor, config, operands, tensor_format="COO")
    outputs: List[Tuple[str, Any]] = []
    if kernel == "MTTKRP":
        out = jit.mttkrp_coo(tensor, list(operands.factors), mode)
        if out is not None:
            outputs.append(("COO-MTTKRP-JIT", out))
        from ..perf.plans import hicoo_for

        hicoo = hicoo_for(tensor, int(config.get("block_size", 8)))
        out = jit.mttkrp_hicoo(hicoo, list(operands.factors), mode)
        if out is not None:
            outputs.append(("HICOO-MTTKRP-JIT", out))
    elif kernel == "TTV":
        out = jit.ttv_coo(tensor, operands.vector, mode)
        if out is not None:
            outputs.append(("COO-TTV-JIT", out))
    elif kernel == "TTM":
        out = jit.ttm_coo(tensor, operands.matrix, mode)
        if out is not None:
            outputs.append(("COO-TTM-JIT", out))
    use_oracle = _capacity(tensor.shape) <= MAX_DENSE_CELLS
    reference = None
    if use_oracle:
        dense = tensor.to_dense().astype(np.float64)
        reference = dense_reference(kernel, dense, operands, mode)
    for label, out in outputs:
        mismatch = _tolerance_mismatch(
            out, baseline, f"{label} disagrees with the numpy COO baseline"
        )
        if mismatch is not None:
            return mismatch
        if reference is not None:
            comparable = as_comparable(out)
            if not np.allclose(comparable, reference, rtol=RTOL, atol=ATOL):
                worst = float(np.max(np.abs(comparable - reference)))
                return (
                    f"{label} deviates from the dense oracle "
                    f"(max abs error {worst:.3g})"
                )
    return None


def _run_jit_parallel(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """In-kernel multithreaded compiled kernels vs their serial twins.

    The ``*_jit_mt`` entry points hand the whole chunk table to a C
    thread team in one ctypes call; the output-ownership partition makes
    that race-free, so the parallel result must be *bit-identical* to
    the serial compiled kernel at any thread count and schedule.  The
    parallel thresholds are forced to zero so the team actually runs on
    fuzz-sized tensors.  Passes trivially when the compiled backend is
    unavailable (no compiler, ``REPRO_JIT=0``) or a specialization
    declines — fallback correctness is covered by the dispatch checks.
    """
    from ..perf import jit
    from ..perf.plans import hicoo_for

    if not jit.jit_available():
        return None
    kernel = config["kernel"]
    mode = int(config.get("mode", 0))
    threads = int(config.get("threads", 2))
    schedule = config.get("schedule", "static")
    operands = _operands(tensor, config)
    baseline = _execute(tensor, config, operands, tensor_format="COO")
    pairs: List[Tuple[str, Any, Any]] = []
    with parallel_config(num_threads=1):
        if kernel == "MTTKRP":
            serial = jit.mttkrp_coo(tensor, list(operands.factors), mode)
            hicoo = hicoo_for(tensor, int(config.get("block_size", 8)))
            serial_h = jit.mttkrp_hicoo(hicoo, list(operands.factors), mode)
        elif kernel == "TTV":
            serial = jit.ttv_coo(tensor, operands.vector, mode)
        else:
            serial = jit.ttm_coo(tensor, operands.matrix, mode)
    with parallel_config(
        num_threads=threads,
        schedule=schedule,
        min_parallel_nnz=0,
        min_nnz_per_thread=0,
    ):
        if kernel == "MTTKRP":
            if serial is not None:
                mt = jit.mttkrp_coo_mt(tensor, list(operands.factors), mode)
                pairs.append(("coo_jit_mt-MTTKRP", serial, mt))
            if serial_h is not None:
                mt = jit.mttkrp_hicoo_mt(hicoo, list(operands.factors), mode)
                pairs.append(("hicoo_jit_mt-MTTKRP", serial_h, mt))
        elif kernel == "TTV":
            if serial is not None:
                mt = jit.ttv_coo_mt(tensor, operands.vector, mode)
                pairs.append(("coo_jit_mt-TTV", serial, mt))
        else:
            if serial is not None:
                mt = jit.ttm_coo_mt(tensor, operands.matrix, mode)
                pairs.append(("coo_jit_mt-TTM", serial, mt))
    for label, serial_out, mt_out in pairs:
        if mt_out is None:
            continue  # specialization declined; the serial twin covers it
        message = _exact_mismatch(
            serial_out,
            mt_out,
            f"{label} serial vs in-kernel x{threads} {schedule}",
        )
        if message is not None:
            return message
        message = _tolerance_mismatch(
            mt_out, baseline, f"{label} disagrees with the numpy COO baseline"
        )
        if message is not None:
            return message
    return None


def _run_jit_sanitize(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """The jit_tolerance differential under the sanitize build profile.

    Compiles (or reuses from the profile-keyed object cache) every
    applicable kernel with ASan + UBSan instrumentation and runs the
    same compiled-vs-numpy/oracle comparison.  A sanitizer report means
    the generated C has a real memory or UB defect that the tolerance
    comparison alone could miss.  Passes trivially when the backend or
    the sanitizer runtimes are unavailable.
    """
    from ..perf.jit import build

    if not build.jit_enabled() or build.compiler_path() is None:
        return None
    with build.profile_override(build.PROFILE_SANITIZE):
        if not build.profile_supported():
            return None
        return _run_jit_tolerance(tensor, config)


def _run_serving_batch(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """Batched (fused) serving execution must equal sequential, bitwise.

    Builds a small request mix against the tensor — several ranks and
    seeds of one kernel, so the batching layer fuses them into a single
    column-concatenated kernel call — and requires every per-request
    output (and its wire digest) to be bit-identical to the same job
    executed through the unbatched single-request path.
    """
    from ..serving.batching import KernelJob, execute_group, group_jobs
    from ..serving.protocol import result_digest
    from ..serving.registry import TensorRegistry

    kernel = config["kernel"]
    variant = config.get("variant", "coo")
    rank = int(config.get("rank", 4))
    seed = int(config.get("seed", 0))
    registry = TensorRegistry()
    entry = registry.add_ram("conformance", tensor, source="fuzz")
    jobs = [
        KernelJob(
            entry=entry,
            kernel=kernel,
            mode=int(config.get("mode", 0)),
            rank=r,
            seed=seed + i,
            variant=variant,
            block_size=config.get("block_size") if variant == "hicoo" else None,
        )
        for i, r in enumerate((rank, max(1, rank // 2), rank + 1, rank))
    ]
    groups = group_jobs(jobs, max_batch=len(jobs))
    batched = [o for g in groups for o in execute_group(g, batch=True)]
    sequential = [o for g in groups for o in execute_group(g, batch=False)]
    flat_jobs = [j for g in groups for j in g]
    for i, (job, b, s) in enumerate(zip(flat_jobs, batched, sequential)):
        if b.error is not None or s.error is not None:
            return (
                f"serving_batch {kernel} job {i} errored: "
                f"{b.error or s.error}"
            )
        label = (
            f"serving_batch {variant}-{kernel} job {i} "
            f"(rank {job.rank}) batched vs sequential"
        )
        message = _exact_mismatch(b.result, s.result, label)
        if message:
            return message
        if b.digest != s.digest or b.digest != result_digest(s.result):
            return f"{label}: wire digests differ"
    return None


_RUNNERS = {
    "roundtrip": _run_roundtrip,
    "kernel_oracle": _run_kernel_oracle,
    "cross_format": _run_cross_format,
    "parallel_exact": _run_parallel_exact,
    "cache_exact": _run_cache_exact,
    "auto_dispatch": _run_auto_dispatch,
    "jit_tolerance": _run_jit_tolerance,
    "jit_parallel": _run_jit_parallel,
    "jit_sanitize": _run_jit_sanitize,
    "serving_batch": _run_serving_batch,
}


def run_check(tensor: CooTensor, config: Dict[str, Any]) -> Optional[str]:
    """Execute one check config; ``None`` on pass, a message on failure.

    Any exception a conversion or kernel raises is itself a conformance
    failure (fuzz inputs are constructed to be valid), so it is caught
    and reported rather than propagated.
    """
    runner = _RUNNERS.get(config.get("check"))
    if runner is None:
        raise ValueError(f"unknown check kind {config.get('check')!r}")
    try:
        return runner(_to_coo(tensor), config)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return f"{type(exc).__name__}: {exc}"


# ----------------------------------------------------------------------
# Check enumeration
# ----------------------------------------------------------------------


def roundtrip_paths(order: int) -> List[List[str]]:
    """The format conversion paths a tensor of this order supports.

    Single-hop paths cover every format; two-hop paths cross the format
    pairs where conversions compose (the paper's formats all expand
    through COO, so pairs exercise both directions of each conversion).
    """
    singles = ["hicoo", "ghicoo", "csf"]
    if order >= 2:
        singles += ["scoo", "shicoo", "fcoo"]
    paths = [[name] for name in singles]
    pair_chain = ["hicoo", "ghicoo"] if order < 2 else ["hicoo", "scoo", "ghicoo"]
    paths.append(pair_chain)
    if order >= 2:
        paths.append(["fcoo", "hicoo"])
        paths.append(["shicoo", "csf"])
    return paths


def enumerate_checks(
    tensor: CooTensor,
    *,
    block_size: int = 8,
    rank: int = 4,
    seed: int = 0,
    mode: Optional[int] = None,
    threads: Sequence[int] = (2, 4),
    schedule: str = "dynamic",
) -> List[Dict[str, Any]]:
    """The conformance matrix for one tensor, as runnable check configs.

    ``mode`` selects the product/target mode for mode-specific kernels
    (default: rotated from the seed so successive iterations cover all
    modes); ``schedule`` is the parallel policy this enumeration pairs
    with each thread count (the fuzzer rotates it across iterations).
    """
    order = tensor.order
    if mode is None:
        mode = seed % order
    mode = mode % order
    compressed = [m for m in range(order) if m != mode] or [0]
    dense_modes = [min(range(order), key=lambda m: tensor.shape[m])] if order >= 2 else []
    checks: List[Dict[str, Any]] = []
    for path in roundtrip_paths(order):
        checks.append(
            {
                "check": "roundtrip",
                "path": path,
                "block_size": block_size,
                "compressed_modes": compressed,
                "dense_modes": dense_modes,
                "mode": mode,
            }
        )
    kernels = [k for k in KERNELS if order >= 2 or k not in MODE_KERNELS]
    for kernel in kernels:
        base = {
            "kernel": kernel,
            "mode": mode,
            "rank": rank,
            "block_size": block_size,
            "seed": seed,
        }
        checks.append({"check": "cross_format", "format": "COO", **base})
        if kernel in MODE_KERNELS:
            checks.append({"check": "auto_dispatch", "format": "COO", **base})
            checks.append({"check": "jit_tolerance", "format": "COO", **base})
            checks.append({"check": "jit_sanitize", "format": "COO", **base})
            for t in threads:
                checks.append(
                    {
                        "check": "jit_parallel",
                        "format": "COO",
                        "threads": int(t),
                        "schedule": schedule,
                        **base,
                    }
                )
        if kernel in ("MTTKRP", "TTM"):
            for variant in ("coo", "hicoo"):
                checks.append(
                    {"check": "serving_batch", "variant": variant, **base}
                )
        for fmt in ("COO", "HiCOO"):
            checks.append({"check": "kernel_oracle", "format": fmt, **base})
            checks.append({"check": "cache_exact", "format": fmt, **base})
            for t in threads:
                checks.append(
                    {
                        "check": "parallel_exact",
                        "format": fmt,
                        "threads": int(t),
                        "schedule": schedule,
                        **base,
                    }
                )
    return checks


def describe_check(config: Dict[str, Any]) -> str:
    """A short human-readable label for one check config."""
    kind = config.get("check", "?")
    if kind == "roundtrip":
        return f"roundtrip {'->'.join(config.get('path', []))}"
    if kind == "auto_dispatch":
        return f"auto_dispatch {config.get('kernel', '')} (serial vs auto)"
    if kind == "jit_tolerance":
        return f"jit_tolerance {config.get('kernel', '')} (compiled vs numpy/oracle)"
    if kind == "jit_sanitize":
        return (
            f"jit_sanitize {config.get('kernel', '')} "
            f"(compiled under ASan/UBSan vs numpy/oracle)"
        )
    if kind == "jit_parallel":
        return (
            f"jit_parallel {config.get('kernel', '')} "
            f"x{config.get('threads')} {config.get('schedule')} "
            f"(in-kernel team vs serial)"
        )
    if kind == "serving_batch":
        return (
            f"serving_batch {config.get('variant', 'coo')}-"
            f"{config.get('kernel', '')} (fused vs sequential)"
        )
    label = f"{kind} {config.get('format', '')}-{config.get('kernel', '')}"
    if kind == "parallel_exact":
        label += f" x{config.get('threads')} {config.get('schedule')}"
    return label
