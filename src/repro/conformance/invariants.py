"""Structural invariant checkers for every sparse format.

Each format's constructor validates *shape* consistency, but the deeper
contracts that conversions rely on — canonical Morton block order,
element indices strictly below the block size, fiber flags that start a
segment, strictly increasing pointer arrays — were only enforced
implicitly by construction.  The fuzzer calls :func:`validate` after
every conversion so a silently-broken conversion fails loudly at the
format boundary instead of corrupting a kernel result three steps later.

All checkers raise :class:`~repro.errors.ConformanceError` with a
message naming the violated invariant; :func:`validate` dispatches on
the tensor type and is the single entry point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConformanceError
from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from ..formats.csf import CsfTensor
from ..formats.fcoo import FcooTensor
from ..formats.ghicoo import GHicooTensor
from ..formats.hicoo import BPTR_DTYPE, ELEMENT_DTYPE, HicooTensor
from ..formats.morton import morton_encode
from ..formats.scoo import SemiSparseCooTensor
from ..formats.shicoo import SHicooTensor


def _fail(tensor, message: str) -> None:
    raise ConformanceError(f"{type(tensor).__name__}: {message}")


def _check_dtype(tensor, array: np.ndarray, name: str, dtype) -> None:
    if array.dtype != np.dtype(dtype):
        _fail(tensor, f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}")


def _check_bptr(tensor, bptr: np.ndarray, num_blocks: int, nnz: int) -> None:
    _check_dtype(tensor, bptr, "bptr", BPTR_DTYPE)
    if bptr.shape != (num_blocks + 1,):
        _fail(tensor, f"bptr must have length {num_blocks + 1}, got {bptr.shape}")
    if num_blocks == 0:
        return
    if bptr[0] != 0 or bptr[-1] != nnz:
        _fail(tensor, f"bptr must span [0, {nnz}], got ends ({bptr[0]}, {bptr[-1]})")
    if np.any(np.diff(bptr) <= 0):
        _fail(tensor, "bptr must be strictly increasing (no empty blocks)")


def _check_morton_order(tensor, binds: np.ndarray) -> None:
    """Block coordinates must be distinct and in strictly increasing
    Morton (Z-curve) order — the layout every HiCOO-family kernel and
    plan assumes."""
    if binds.shape[1] <= 1:
        return
    codes = morton_encode(binds.astype(np.int64))
    if np.any(np.diff(codes) <= 0):
        _fail(tensor, "blocks must be distinct and in strictly increasing Morton order")


def check_coo(tensor: CooTensor) -> None:
    """COO contracts: dtypes, array shapes, and in-bounds indices."""
    _check_dtype(tensor, tensor.indices, "indices", INDEX_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if tensor.indices.ndim != 2 or tensor.indices.shape[0] != tensor.order:
        _fail(tensor, f"indices must have shape (order, nnz), got {tensor.indices.shape}")
    if tensor.values.shape != (tensor.nnz,):
        _fail(tensor, f"values must have shape ({tensor.nnz},), got {tensor.values.shape}")
    if not all(s > 0 for s in tensor.shape):
        _fail(tensor, f"all dimensions must be positive, got {tensor.shape}")
    for mode, size in enumerate(tensor.shape):
        column = tensor.indices[mode]
        if column.size and (column.min() < 0 or column.max() >= size):
            _fail(tensor, f"mode-{mode} indices out of range [0, {size})")
    if not np.all(np.isfinite(tensor.values)):
        _fail(tensor, "values must be finite")


def check_hicoo(tensor: HicooTensor) -> None:
    """HiCOO contracts: bptr, uint8 element bound, Morton block order."""
    order, nnz, nb = tensor.order, tensor.nnz, tensor.num_blocks
    _check_dtype(tensor, tensor.binds, "binds", INDEX_DTYPE)
    _check_dtype(tensor, tensor.einds, "einds", ELEMENT_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if tensor.binds.shape != (order, nb):
        _fail(tensor, f"binds must have shape ({order}, {nb})")
    if tensor.einds.shape != (order, nnz):
        _fail(tensor, f"einds must have shape ({order}, {nnz})")
    _check_bptr(tensor, tensor.bptr, nb, nnz)
    if nnz and int(tensor.einds.max()) >= tensor.block_size:
        _fail(
            tensor,
            f"element indices must be < block_size={tensor.block_size}, "
            f"got max {int(tensor.einds.max())}",
        )
    _check_morton_order(tensor, tensor.binds)
    for row, size in enumerate(tensor.shape):
        if nb == 0:
            continue
        base = tensor.binds[row].astype(np.int64) * tensor.block_size
        if tensor.binds[row].min() < 0 or base.max() >= size:
            _fail(tensor, f"mode-{row} block indices out of range for dim {size}")
    # Every reconstructed coordinate must land inside the shape.
    if nnz:
        coords = tensor.full_indices()
        for mode, size in enumerate(tensor.shape):
            if coords[mode].min() < 0 or coords[mode].max() >= size:
                _fail(tensor, f"reconstructed mode-{mode} coordinates out of range")


def check_ghicoo(tensor: GHicooTensor) -> None:
    """gHiCOO contracts: HiCOO invariants over the compressed modes plus
    in-bounds plain COO indices for the uncompressed modes."""
    nc = len(tensor.compressed_modes)
    nu = len(tensor.uncompressed_modes)
    nnz, nb = tensor.nnz, tensor.num_blocks
    _check_dtype(tensor, tensor.binds, "binds", INDEX_DTYPE)
    _check_dtype(tensor, tensor.einds, "einds", ELEMENT_DTYPE)
    _check_dtype(tensor, tensor.cinds, "cinds", INDEX_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if tensor.binds.shape != (nc, nb) or tensor.einds.shape != (nc, nnz):
        _fail(tensor, "binds/einds must cover exactly the compressed modes")
    if tensor.cinds.shape != (nu, nnz):
        _fail(tensor, f"cinds must have shape ({nu}, {nnz}), got {tensor.cinds.shape}")
    _check_bptr(tensor, tensor.bptr, nb, nnz)
    if nnz and nc and int(tensor.einds.max()) >= tensor.block_size:
        _fail(tensor, f"element indices must be < block_size={tensor.block_size}")
    _check_morton_order(tensor, tensor.binds)
    for row, mode in enumerate(tensor.uncompressed_modes):
        column = tensor.cinds[row]
        if column.size and (column.min() < 0 or column.max() >= tensor.shape[mode]):
            _fail(tensor, f"uncompressed mode-{mode} indices out of range")


def check_scoo(tensor: SemiSparseCooTensor) -> None:
    """sCOO contracts: disjoint mode split, dense value block shape, and
    distinct lexicographically sorted sparse coordinates (the canonical
    order :meth:`from_coo` emits and TTM consumers assume)."""
    _check_dtype(tensor, tensor.indices, "indices", INDEX_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if set(tensor.dense_modes) & set(tensor.sparse_modes):
        _fail(tensor, "dense and sparse modes must be disjoint")
    if sorted(tensor.dense_modes + tensor.sparse_modes) != list(range(tensor.order)):
        _fail(tensor, "dense + sparse modes must cover every mode exactly once")
    dense_shape = tuple(tensor.shape[m] for m in tensor.dense_modes)
    if tensor.values.shape != (tensor.nnz_fibers,) + dense_shape:
        _fail(
            tensor,
            f"values must have shape (nnz_fibers, *{dense_shape}), "
            f"got {tensor.values.shape}",
        )
    for row, mode in enumerate(tensor.sparse_modes):
        column = tensor.indices[row]
        if column.size and (column.min() < 0 or column.max() >= tensor.shape[mode]):
            _fail(tensor, f"sparse mode-{mode} indices out of range")
    if tensor.nnz_fibers > 1:
        diff = tensor.indices[:, 1:].astype(np.int64) - tensor.indices[:, :-1]
        # Lexicographic strict increase: the first differing row is positive.
        order_sign = np.zeros(tensor.nnz_fibers - 1, dtype=np.int64)
        for row in range(tensor.indices.shape[0] - 1, -1, -1):
            order_sign = np.where(diff[row] != 0, np.sign(diff[row]), order_sign)
        if np.any(order_sign <= 0):
            _fail(tensor, "sparse coordinates must be distinct and sorted")


def check_shicoo(tensor: SHicooTensor) -> None:
    """sHiCOO contracts: HiCOO invariants over the sparse modes plus the
    dense value block shape."""
    ns = len(tensor.sparse_modes)
    fibers, nb = tensor.nnz_fibers, tensor.num_blocks
    _check_dtype(tensor, tensor.binds, "binds", INDEX_DTYPE)
    _check_dtype(tensor, tensor.einds, "einds", ELEMENT_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if tensor.binds.shape != (ns, nb) or tensor.einds.shape != (ns, fibers):
        _fail(tensor, "binds/einds must cover exactly the sparse modes")
    dense_shape = tuple(tensor.shape[m] for m in tensor.dense_modes)
    if tensor.values.shape != (fibers,) + dense_shape:
        _fail(tensor, f"values must have shape (nnz_fibers, *{dense_shape})")
    _check_bptr(tensor, tensor.bptr, nb, fibers)
    if fibers and int(tensor.einds.max()) >= tensor.block_size:
        _fail(tensor, f"element indices must be < block_size={tensor.block_size}")
    _check_morton_order(tensor, tensor.binds)


def check_csf(tensor: CsfTensor) -> None:
    """CSF contracts: per-level pointer spans, in-range fids, and
    strictly increasing sibling index runs (the sorted-children property
    the tree traversals binary-search on)."""
    order = tensor.order
    if sorted(tensor.mode_order) != list(range(order)):
        _fail(tensor, f"mode_order {tensor.mode_order} is not a permutation")
    for level, mode in enumerate(tensor.mode_order):
        fids = tensor.fids[level]
        _check_dtype(tensor, fids, f"fids[{level}]", INDEX_DTYPE)
        if fids.size and (fids.min() < 0 or fids.max() >= tensor.shape[mode]):
            _fail(tensor, f"level-{level} fids out of range for mode {mode}")
    if tensor.values.shape != (tensor.fids[-1].shape[0],):
        _fail(tensor, "values must align with the leaf level")
    for level in range(order - 1):
        nodes = tensor.fids[level].shape[0]
        fptr = tensor.fptr[level]
        if fptr.shape != (nodes + 1,):
            _fail(tensor, f"fptr[{level}] must have length {nodes + 1}")
        if nodes == 0:
            continue
        if fptr[0] != 0 or fptr[-1] != tensor.fids[level + 1].shape[0]:
            _fail(tensor, f"fptr[{level}] must span level {level + 1}")
        if np.any(np.diff(fptr) <= 0):
            _fail(tensor, f"fptr[{level}] must be strictly increasing")
        # Sibling runs at the child level must be strictly increasing.
        child = tensor.fids[level + 1].astype(np.int64)
        within = np.ones(child.shape[0], dtype=bool)
        within[fptr[:-1]] = False
        if np.any((np.diff(child) <= 0) & within[1:]):
            _fail(tensor, f"level-{level + 1} sibling indices must be sorted")
    root = tensor.fids[0].astype(np.int64)
    if root.size > 1 and np.any(np.diff(root) <= 0):
        _fail(tensor, "root-level indices must be strictly increasing")


def check_fcoo(tensor: FcooTensor) -> None:
    """F-COO contracts: segment flags, per-fiber start indices, and
    in-range product-mode coordinates."""
    nnz = tensor.nnz
    _check_dtype(tensor, tensor.product_indices, "product_indices", INDEX_DTYPE)
    _check_dtype(tensor, tensor.start_indices, "start_indices", INDEX_DTYPE)
    _check_dtype(tensor, tensor.values, "values", VALUE_DTYPE)
    if not 0 <= tensor.product_mode < tensor.order:
        _fail(tensor, f"product mode {tensor.product_mode} out of range")
    if nnz and not tensor.bit_flags[0]:
        _fail(tensor, "the first nonzero must start a fiber")
    fibers = int(tensor.bit_flags.sum())
    if tensor.start_indices.shape != (tensor.order - 1, fibers):
        _fail(tensor, f"start_indices must have shape ({tensor.order - 1}, {fibers})")
    size = tensor.shape[tensor.product_mode]
    if nnz and (
        tensor.product_indices.min() < 0 or tensor.product_indices.max() >= size
    ):
        _fail(tensor, "product-mode indices out of range")
    other = [m for m in range(tensor.order) if m != tensor.product_mode]
    for row, mode in enumerate(other):
        column = tensor.start_indices[row]
        if column.size and (column.min() < 0 or column.max() >= tensor.shape[mode]):
            _fail(tensor, f"fiber-start mode-{mode} indices out of range")


_CHECKERS = {
    CooTensor: check_coo,
    HicooTensor: check_hicoo,
    GHicooTensor: check_ghicoo,
    SemiSparseCooTensor: check_scoo,
    SHicooTensor: check_shicoo,
    CsfTensor: check_csf,
    FcooTensor: check_fcoo,
}


def validate(tensor) -> None:
    """Check every structural invariant of a format instance.

    Raises :class:`~repro.errors.ConformanceError` naming the violated
    invariant; returns ``None`` on success.
    """
    checker = _CHECKERS.get(type(tensor))
    if checker is None:
        raise ConformanceError(
            f"no invariant checker for {type(tensor).__name__}"
        )
    checker(tensor)


def validation_error(tensor) -> Optional[str]:
    """Like :func:`validate` but returns the message instead of raising."""
    try:
        validate(tensor)
    except ConformanceError as exc:
        return str(exc)
    return None
