"""Differential conformance & fuzzing subsystem.

The paper's premise is that one set of kernel semantics holds across
every format, schedule, and platform; this package checks that claim
mechanically.  It generates seeded random tensors (including the edge
cases format code historically mishandles), round-trips them through
every format pair with structural-invariant validation, runs every
registered kernel across format x cache x schedule configurations
against the dense oracle and against each other, and shrinks any
failure to a minimal reproducer stored in the ``tests/corpus/``
regression directory.

Entry points: ``repro fuzz`` on the command line, :func:`fuzz` from
code, :func:`validate` for one-off invariant checks, and
:func:`replay_corpus` for regression replay.
"""

from .corpus import (
    DEFAULT_CORPUS_DIR,
    Reproducer,
    iter_corpus,
    load_reproducer,
    replay_corpus,
    save_reproducer,
    tensor_from_payload,
    tensor_to_payload,
)
from .fuzzer import SCHEDULES, FuzzFailure, FuzzReport, fuzz
from .generators import (
    ALL_KINDS,
    EDGE_KINDS,
    SpecGenerator,
    TensorSpec,
    edge_case_specs,
    realize,
)
from .harness import (
    describe_check,
    enumerate_checks,
    roundtrip_paths,
    run_check,
)
from .invariants import validate, validation_error
from .shrink import ShrinkResult, shrink_tensor

__all__ = [
    "ALL_KINDS",
    "EDGE_KINDS",
    "DEFAULT_CORPUS_DIR",
    "FuzzFailure",
    "FuzzReport",
    "Reproducer",
    "SCHEDULES",
    "ShrinkResult",
    "SpecGenerator",
    "TensorSpec",
    "describe_check",
    "edge_case_specs",
    "enumerate_checks",
    "fuzz",
    "iter_corpus",
    "load_reproducer",
    "realize",
    "replay_corpus",
    "roundtrip_paths",
    "run_check",
    "save_reproducer",
    "shrink_tensor",
    "tensor_from_payload",
    "tensor_to_payload",
    "validate",
    "validation_error",
]
