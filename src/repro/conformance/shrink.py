"""Failure minimization: reduce a failing tensor to a minimal reproducer.

Given a tensor and a predicate (``run_check`` against one failing check
config), the shrinker searches for the smallest tensor that still fails:
delta-debugging over the nonzero list (halves, then quarters, then
single removals), followed by shape trimming and value canonicalization.
Every candidate evaluation re-runs the *same* check, so the reproducer
that comes out fails for the same reason the original did — just with a
handful of nonzeros instead of hundreds, which is what makes corpus
entries debuggable by reading them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..formats.coo import VALUE_DTYPE, CooTensor

#: Cap on predicate evaluations; shrinking is best-effort, not exhaustive.
DEFAULT_MAX_EVALS = 150


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    tensor: CooTensor
    evaluations: int
    original_nnz: int

    @property
    def reduced(self) -> bool:
        """Whether the shrinker made the tensor strictly smaller."""
        return self.tensor.nnz < self.original_nnz


def _keep(tensor: CooTensor, mask: np.ndarray) -> CooTensor:
    return CooTensor(
        tensor.shape, tensor.indices[:, mask], tensor.values[mask], validate=False
    )


def shrink_tensor(
    tensor: CooTensor,
    still_fails: Callable[[CooTensor], bool],
    *,
    max_evals: int = DEFAULT_MAX_EVALS,
) -> ShrinkResult:
    """Minimize ``tensor`` while ``still_fails`` keeps returning True.

    ``still_fails`` must be deterministic; it is typically
    ``lambda t: run_check(t, config) is not None`` for the failing
    config.  The input tensor is assumed to fail (it is never
    re-checked) and is returned unchanged when no reduction reproduces
    the failure within the evaluation budget.
    """
    evals = 0

    def fails(candidate: CooTensor) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        return bool(still_fails(candidate))

    best = tensor
    # --- ddmin over the nonzero list: try dropping aligned chunks of
    # shrinking granularity (1/2, 1/4, ... of the current size).
    granularity = 2
    while best.nnz > 1 and evals < max_evals:
        n = best.nnz
        chunk = max(1, n // granularity)
        improved = False
        for start in range(0, n, chunk):
            mask = np.ones(n, dtype=bool)
            mask[start : start + chunk] = False
            if not mask.any():
                continue
            candidate = _keep(best, mask)
            if fails(candidate):
                best = candidate
                improved = True
                break
        if improved:
            granularity = 2
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, best.nnz)
    # --- trim the shape to the occupied bounding box.
    if best.nnz:
        trimmed = tuple(int(best.indices[m].max()) + 1 for m in range(best.order))
        if trimmed != best.shape:
            candidate = CooTensor(trimmed, best.indices, best.values, validate=False)
            if fails(candidate):
                best = candidate
    # --- canonicalize values to 1.0 when the failure is structural.
    if best.nnz:
        ones = np.ones(best.nnz, dtype=VALUE_DTYPE)
        if not np.array_equal(best.values, ones):
            candidate = CooTensor(best.shape, best.indices, ones, validate=False)
            if fails(candidate):
                best = candidate
    return ShrinkResult(tensor=best, evaluations=evals, original_nnz=tensor.nnz)
