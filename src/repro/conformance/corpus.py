"""Regression corpus: failing fuzz cases persisted for replay.

Every failure the fuzzer finds is shrunk and written to a JSON file
under ``tests/corpus/`` containing the exact tensor (shape, indices,
values), the failing check config, and the failure message.  The test
suite replays every corpus file on each run, so a bug found once by the
fuzzer can never silently return — the corpus is the fuzzer's memory.

File names are content-addressed (a short SHA-1 of the canonical JSON),
so re-finding the same minimal reproducer never duplicates an entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

import numpy as np

from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .harness import run_check

FORMAT_VERSION = 1

#: The repository's regression corpus, relative to the repo root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")


def tensor_to_payload(tensor: CooTensor) -> Dict[str, Any]:
    """JSON-friendly encoding of a COO tensor."""
    return {
        "shape": list(tensor.shape),
        "indices": tensor.indices.tolist(),
        "values": [float(v) for v in tensor.values],
    }


def tensor_from_payload(payload: Dict[str, Any]) -> CooTensor:
    """Rebuild a COO tensor from :func:`tensor_to_payload` output."""
    shape = tuple(int(s) for s in payload["shape"])
    indices = np.asarray(payload["indices"], dtype=INDEX_DTYPE)
    if indices.size == 0:
        indices = indices.reshape(len(shape), 0)
    values = np.asarray(payload["values"], dtype=VALUE_DTYPE)
    return CooTensor(shape, indices, values, validate=False)


@dataclass
class Reproducer:
    """One corpus entry: a tensor plus the check it must keep passing.

    ``jit_build`` records the JIT build profile that was active when the
    failure was found (``release``, ``sanitize``, ``tsan``); replay
    restores it so a bug only reproducible under an instrumented build
    is re-run under that build.
    """

    tensor: CooTensor
    config: Dict[str, Any]
    failure: str
    spec: Optional[Dict[str, Any]] = None
    path: Optional[str] = None
    jit_build: Optional[str] = None

    def replay(self) -> Optional[str]:
        """Re-run the stored check; ``None`` means the bug stays fixed."""
        if self.jit_build is not None:
            from ..perf.jit import build

            with build.profile_override(self.jit_build):
                return run_check(self.tensor, self.config)
        return run_check(self.tensor, self.config)


def _entry_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(
        {"tensor": payload["tensor"], "config": payload["config"]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha1(canonical.encode()).hexdigest()[:12]


def save_reproducer(
    corpus_dir: Union[str, Path],
    tensor: CooTensor,
    config: Dict[str, Any],
    failure: str,
    spec: Optional[Dict[str, Any]] = None,
    jit_build: Optional[str] = None,
) -> str:
    """Write one reproducer file; returns its path.

    The directory is created on first failure, and saving the same
    (tensor, config) pair twice is idempotent — ``_entry_digest`` hashes
    only the tensor and check config, so recording the build profile
    does not change an entry's identity.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "failure": failure,
        "config": config,
        "tensor": tensor_to_payload(tensor),
        "spec": spec,
    }
    if jit_build is not None:
        payload["jit_build"] = jit_build
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"repro-{_entry_digest(payload)}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return str(path)


def load_reproducer(path: Union[str, Path]) -> Reproducer:
    """Read one corpus file back into a replayable :class:`Reproducer`."""
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported corpus format version {version!r}"
        )
    return Reproducer(
        tensor=tensor_from_payload(payload["tensor"]),
        config=payload["config"],
        failure=payload.get("failure", ""),
        spec=payload.get("spec"),
        path=str(path),
        jit_build=payload.get("jit_build"),
    )


def iter_corpus(corpus_dir: Union[str, Path] = DEFAULT_CORPUS_DIR) -> Iterator[str]:
    """Paths of every reproducer file in a corpus directory (sorted)."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return
    for path in sorted(corpus_dir.glob("repro-*.json")):
        yield str(path)


def replay_corpus(corpus_dir: Union[str, Path] = DEFAULT_CORPUS_DIR) -> Dict[str, Optional[str]]:
    """Replay every corpus entry; maps path -> failure message (or None)."""
    return {
        path: load_reproducer(path).replay() for path in iter_corpus(corpus_dir)
    }
