"""Seeded random-tensor generation for the conformance fuzzer.

Every fuzz iteration is described by a :class:`TensorSpec` — a small,
JSON-serializable recipe that deterministically reproduces the tensor.
Specs carry not just shape/nnz but also the *structural hazards* that
format-crossing code historically mishandles: duplicate coordinates,
unsorted nonzero order, and coordinates sitting exactly on HiCOO's
``uint8`` element-index boundary.

The generator interleaves fully random specs with a fixed rotation of
edge-case kinds (:data:`EDGE_KINDS`), so every budgeted run — however
short — exercises the empty tensor, order-1 tensors, single-nonzero
tensors, and the ``block_size=256`` boundary at least once per cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor

#: Edge-case kinds the fuzzer is guaranteed to cycle through.
EDGE_KINDS = (
    "empty",
    "order1",
    "single",
    "block_boundary",
    "duplicates",
    "unsorted",
)

#: All spec kinds, edge cases plus the plain random one.
ALL_KINDS = ("random",) + EDGE_KINDS


@dataclass(frozen=True)
class TensorSpec:
    """A reproducible recipe for one fuzz tensor.

    Parameters
    ----------
    shape:
        Dimension sizes.
    nnz:
        Number of *distinct* positions sampled before hazard injection.
    seed:
        RNG seed; together with the other fields it fully determines the
        realized tensor.
    kind:
        One of :data:`ALL_KINDS`; edge kinds override shape/nnz details.
    duplicates:
        How many existing coordinates are appended again (with fresh
        values), producing a tensor with duplicate entries.
    shuffle:
        Whether the nonzeros are left in a seeded random order instead of
        the canonical lexicographic order.
    """

    shape: Tuple[int, ...]
    nnz: int
    seed: int
    kind: str = "random"
    duplicates: int = 0
    shuffle: bool = False

    def to_dict(self) -> Dict:
        """JSON-friendly form (tuples become lists)."""
        d = asdict(self)
        d["shape"] = list(self.shape)
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "TensorSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            shape=tuple(int(s) for s in d["shape"]),
            nnz=int(d["nnz"]),
            seed=int(d["seed"]),
            kind=str(d.get("kind", "random")),
            duplicates=int(d.get("duplicates", 0)),
            shuffle=bool(d.get("shuffle", False)),
        )


def realize(spec: TensorSpec) -> CooTensor:
    """Deterministically build the tensor a spec describes."""
    rng = np.random.default_rng(spec.seed)
    if spec.kind == "empty":
        return CooTensor.empty(spec.shape)
    if spec.kind == "block_boundary":
        return _block_boundary_tensor(spec, rng)
    nnz = spec.nnz
    if spec.kind == "single":
        nnz = 1
    capacity = 1
    for s in spec.shape:
        capacity *= s
    nnz = max(0, min(nnz, capacity))
    if nnz == 0:
        return CooTensor.empty(spec.shape)
    tensor = CooTensor.random(spec.shape, nnz, rng=rng)
    return inject_hazards(tensor, spec, rng)


def inject_hazards(
    tensor: CooTensor, spec: TensorSpec, rng: np.random.Generator
) -> CooTensor:
    """Append duplicate coordinates and/or shuffle the nonzero order."""
    indices = tensor.indices
    values = tensor.values
    if spec.duplicates > 0 and tensor.nnz > 0:
        picks = rng.integers(0, tensor.nnz, size=spec.duplicates)
        extra_values = rng.uniform(0.5, 1.5, size=spec.duplicates).astype(VALUE_DTYPE)
        indices = np.concatenate([indices, indices[:, picks]], axis=1)
        values = np.concatenate([values, extra_values])
    if spec.shuffle and indices.shape[1] > 1:
        perm = rng.permutation(indices.shape[1])
        indices = indices[:, perm]
        values = values[perm]
    return CooTensor(tensor.shape, indices, values, validate=False)


def _block_boundary_tensor(spec: TensorSpec, rng: np.random.Generator) -> CooTensor:
    """A tensor whose coordinates straddle the 255/256 element boundary.

    With ``block_size=256`` these produce element indices of exactly 255
    (the ``uint8`` maximum) next to indices of 0 in the adjacent block —
    the off-by-one hot spot of HiCOO's 8-bit compression.
    """
    shape = tuple(max(int(s), 257) for s in spec.shape)
    boundary = np.array([255, 256, 0, shape[0] - 1], dtype=np.int64)
    columns = [boundary % s for s in shape]
    forced = np.vstack(columns).astype(INDEX_DTYPE)
    # Mode 0 keeps the exact boundary values.
    forced[0] = boundary.astype(INDEX_DTYPE)
    extra = max(0, spec.nnz - forced.shape[1])
    random_cols = np.vstack(
        [rng.integers(0, s, size=extra, dtype=np.int64) for s in shape]
    ).astype(INDEX_DTYPE)
    indices = np.concatenate([forced, random_cols], axis=1)
    values = rng.uniform(0.5, 1.5, size=indices.shape[1]).astype(VALUE_DTYPE)
    return CooTensor(shape, indices, values).sum_duplicates()


@dataclass
class SpecGenerator:
    """Draws the spec stream a fuzz run walks through.

    Iteration ``i`` with master seed ``s`` always yields the same spec,
    so ``repro fuzz --seed S`` runs are exactly reproducible and any
    iteration can be replayed in isolation.
    """

    master_seed: int = 0
    max_order: int = 4
    max_dim: int = 40
    max_nnz: int = 300
    _edge_cursor: int = field(default=0, repr=False)

    def spec_for(self, iteration: int) -> TensorSpec:
        """The spec of one fuzz iteration (pure function of the seed)."""
        seed = int(self.master_seed) * 1_000_003 + int(iteration)
        rng = np.random.default_rng(seed)
        # Every len(ALL_KINDS)-th iteration block revisits each edge kind
        # once; the rest are fully random draws.
        cycle = iteration % (2 * len(ALL_KINDS))
        if cycle < len(EDGE_KINDS):
            kind = EDGE_KINDS[cycle]
        else:
            kind = "random"
        return self._draw(kind, seed, rng)

    def _draw(self, kind: str, seed: int, rng: np.random.Generator) -> TensorSpec:
        if kind == "order1":
            shape: Tuple[int, ...] = (int(rng.integers(2, self.max_dim * 4)),)
            nnz = int(rng.integers(1, max(2, shape[0] // 2)))
            return TensorSpec(shape, nnz, seed, kind="order1")
        order = int(rng.integers(2, self.max_order + 1))
        shape = tuple(int(rng.integers(2, self.max_dim + 1)) for _ in range(order))
        capacity = 1
        for s in shape:
            capacity *= s
        nnz = int(rng.integers(1, min(self.max_nnz, max(2, capacity // 2))))
        if kind == "empty":
            return TensorSpec(shape, 0, seed, kind="empty")
        if kind == "single":
            return TensorSpec(shape, 1, seed, kind="single")
        if kind == "block_boundary":
            return TensorSpec((300,) + shape[1:], min(nnz, 64), seed, kind=kind)
        if kind == "duplicates":
            return TensorSpec(
                shape, nnz, seed, kind=kind, duplicates=int(rng.integers(1, 6))
            )
        if kind == "unsorted":
            return TensorSpec(shape, nnz, seed, kind=kind, shuffle=True)
        # Plain random specs still roll the hazard dice occasionally.
        duplicates = int(rng.integers(0, 4)) if rng.random() < 0.25 else 0
        shuffle = bool(rng.random() < 0.25)
        return TensorSpec(
            shape, nnz, seed, kind="random", duplicates=duplicates, shuffle=shuffle
        )


def edge_case_specs(seed: int = 0) -> Tuple[TensorSpec, ...]:
    """One spec per edge kind — the set unit tests pin coverage against."""
    gen = SpecGenerator(master_seed=seed)
    specs = []
    for i, kind in enumerate(EDGE_KINDS):
        rng = np.random.default_rng(seed * 1_000_003 + i)
        specs.append(gen._draw(kind, seed * 1_000_003 + i, rng))
    return tuple(specs)
