"""The budgeted differential fuzz loop.

Each iteration draws a seeded :class:`~repro.conformance.generators.TensorSpec`,
realizes it, and runs the tensor through the full conformance matrix
(:func:`~repro.conformance.harness.enumerate_checks`): format-pair
roundtrips with invariant validation, every kernel against the dense
oracle and across formats, cached vs uncached, and serial vs each
parallel schedule.  The first failing check of an iteration is shrunk to
a minimal reproducer and written to the regression corpus; fuzzing then
continues with the next iteration until the iteration or wall-clock
budget (or the failure cap) is exhausted.

``repro fuzz`` is the CLI entry; :func:`fuzz` the programmatic one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..formats.coo import CooTensor
from .corpus import save_reproducer
from .generators import SpecGenerator, TensorSpec, realize
from .harness import describe_check, enumerate_checks, run_check
from .shrink import shrink_tensor

#: Parallel policies rotated across iterations so every budgeted run
#: exercises all three schedules.
SCHEDULES = ("dynamic", "static", "guided")


@dataclass
class FuzzFailure:
    """One minimized finding."""

    iteration: int
    spec: Dict[str, Any]
    config: Dict[str, Any]
    message: str
    original_nnz: int
    shrunk_nnz: int
    corpus_path: Optional[str] = None

    def summary(self) -> str:
        """One line: what failed, and where the reproducer lives."""
        line = (
            f"iteration {self.iteration}: {describe_check(self.config)} — "
            f"{self.message} (shrunk {self.original_nnz} -> {self.shrunk_nnz} nnz)"
        )
        if self.corpus_path:
            line += f" [{self.corpus_path}]"
        return line


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int
    iterations: int = 0
    checks_run: int = 0
    elapsed_seconds: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)
    stopped_by: str = "budget"

    @property
    def ok(self) -> bool:
        """Whether every check of every iteration passed."""
        return not self.failures

    def summary(self) -> str:
        """Text report of the run."""
        lines = [
            f"fuzz: {self.iterations} iterations, {self.checks_run} checks, "
            f"{self.elapsed_seconds:.1f}s (seed {self.seed}, "
            f"stopped by {self.stopped_by})"
        ]
        for failure in self.failures:
            lines.append(f"FAIL {failure.summary()}")
        lines.append(
            "all checks passed" if self.ok else f"{len(self.failures)} failure(s)"
        )
        return "\n".join(lines)


def fuzz(
    budget: int = 100,
    *,
    seconds: Optional[float] = None,
    seed: int = 0,
    corpus_dir: Optional[str] = None,
    max_failures: int = 5,
    block_size: int = 8,
    rank: int = 4,
    threads: Sequence[int] = (2, 4),
    generator: Optional[SpecGenerator] = None,
    progress=None,
) -> FuzzReport:
    """Run the differential fuzzer under an iteration/time budget.

    Parameters
    ----------
    budget:
        Maximum fuzz iterations (each runs the full conformance matrix
        on one generated tensor).
    seconds:
        Optional wall-clock cap; whichever budget is hit first stops the
        run (the current iteration always completes).
    seed:
        Master seed; the whole run is a pure function of it.
    corpus_dir:
        Where to write shrunk reproducers (``None`` disables saving).
    max_failures:
        Stop after this many distinct findings.
    threads:
        Worker counts the ``parallel_exact`` checks use.
    progress:
        Optional callable receiving one status line per iteration.
    """
    gen = generator if generator is not None else SpecGenerator(master_seed=seed)
    report = FuzzReport(seed=seed)
    start = time.monotonic()
    for iteration in range(int(budget)):
        if seconds is not None and time.monotonic() - start >= seconds:
            report.stopped_by = "time"
            break
        spec = gen.spec_for(iteration)
        tensor = realize(spec)
        failure = _run_iteration(
            tensor,
            spec,
            iteration,
            report,
            block_size=block_size,
            rank=rank,
            threads=threads,
            corpus_dir=corpus_dir,
        )
        report.iterations += 1
        if progress is not None:
            status = "FAIL" if failure else "ok"
            progress(
                f"[{iteration + 1}/{budget}] {spec.kind} shape={spec.shape} "
                f"nnz={tensor.nnz}: {status}"
            )
        if failure and len(report.failures) >= max_failures:
            report.stopped_by = "failures"
            break
    report.elapsed_seconds = time.monotonic() - start
    return report


def _run_iteration(
    tensor: CooTensor,
    spec: TensorSpec,
    iteration: int,
    report: FuzzReport,
    *,
    block_size: int,
    rank: int,
    threads: Sequence[int],
    corpus_dir: Optional[str],
) -> Optional[FuzzFailure]:
    """All checks for one tensor; shrink + record the first failure."""
    checks = enumerate_checks(
        tensor,
        block_size=block_size,
        rank=rank,
        seed=spec.seed,
        mode=iteration % max(1, tensor.order),
        threads=threads,
        schedule=SCHEDULES[iteration % len(SCHEDULES)],
    )
    for config in checks:
        report.checks_run += 1
        message = run_check(tensor, config)
        if message is None:
            continue
        shrunk = shrink_tensor(
            tensor, lambda t: run_check(t, config) is not None
        )
        final_message = run_check(shrunk.tensor, config) or message
        corpus_path = None
        if corpus_dir is not None:
            from ..perf.jit import build

            corpus_path = save_reproducer(
                corpus_dir,
                shrunk.tensor,
                config,
                final_message,
                spec=spec.to_dict(),
                jit_build=build.build_profile(),
            )
        failure = FuzzFailure(
            iteration=iteration,
            spec=spec.to_dict(),
            config=config,
            message=final_message,
            original_nnz=tensor.nnz,
            shrunk_nnz=shrunk.tensor.nnz,
            corpus_path=corpus_path,
        )
        report.failures.append(failure)
        return failure
    return None
