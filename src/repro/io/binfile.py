"""Binary, memory-mapped on-disk tensor layout (out-of-core COO storage).

The text ``.tns`` path is parse-bound: every cold load re-tokenizes and
re-validates hundreds of megabytes of ASCII.  This module stores the
parsed tensor once, in a chunked binary layout that a later process maps
straight into memory:

::

    +------------------+  0
    | magic (16 B)     |  b"REPROBIN" + u16 version + padding
    +------------------+  64-byte aligned
    | chunk 0 indices  |  int64 little-endian, C-order (order, nnz_0)
    | chunk 0 values   |  float32 little-endian (nnz_0,)
    +------------------+  64-byte aligned
    | chunk 1 ...      |
    +------------------+
    | JSON header      |  shape, dtypes, chunk table, checksums
    +------------------+
    | trailer (24 B)   |  header offset + length + b"RBINEND\\0"
    +------------------+

The header lives at the *end* (located through the fixed-size trailer)
so conversion streams chunks to disk in one pass without knowing the
chunk count — or even the shape — up front.  Truncated files therefore
fail loudly: the trailer is the last thing written.  Every chunk carries
a CRC-32 and the header a whole-content CRC-32, so corruption is
detected rather than silently computed on.

Indices are stored as int64 (the interchange width; the in-RAM formats
narrow to int32 with a range check on materialization) and values as
float32, matching :data:`repro.formats.coo.VALUE_DTYPE`.

:class:`MmapCooTensor` exposes the stored tensor through ``np.memmap``
views without loading it: whole-chunk views, arbitrary element ranges,
and per-chunk :class:`~repro.formats.coo.CooTensor` materialization.
Because two ``MmapCooTensor`` objects opened on the same unchanged file
are interchangeable, the object advertises a ``plan_cache_token`` of
``(path, mtime_ns, size, content_crc32)`` — the plan cache keys on the
token instead of object identity, so kernel plans survive re-opens and
are never resurrected for a rewritten file.
"""

from __future__ import annotations

import json
import mmap as mmap_module
import os
import struct
import zlib
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import BinaryFormatError, TensorShapeError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.modes import ModeValidationMixin

MAGIC = b"REPROBIN"
FORMAT_NAME = "repro-bin-coo"
FORMAT_VERSION = 1
_MAGIC_LEN = 16
_TRAILER = struct.Struct("<qq8s")
_TRAILER_MAGIC = b"RBINEND\x00"
_ALIGN = 64

INDEX_STORAGE_DTYPE = np.dtype("<i8")
VALUE_STORAGE_DTYPE = np.dtype("<f4")

#: Nonzeros per on-disk chunk.  At order 3 a chunk is ~28 MiB — large
#: enough that per-chunk overhead is negligible, small enough that a
#: converter or kernel holding one chunk stays well under typical
#: out-of-core budgets (sub-chunk ranges are still cheap: memmap reads
#: fault only the pages they touch).
DEFAULT_CHUNK_NNZ = 1_000_000

PathLike = Union[str, Path]


def _pack_magic() -> bytes:
    return MAGIC + struct.pack("<H", FORMAT_VERSION) + b"\x00" * 6


class BinWriter:
    """Stream (indices, values) batches into the chunked binary layout.

    Batches of any size may be appended; they are re-chunked to
    ``chunk_nnz`` nonzeros on disk.  When ``shape`` is omitted it is
    inferred at :meth:`close` from the running per-mode maxima.  The
    writer is single-pass: header and trailer are emitted by ``close``.
    """

    def __init__(
        self,
        target: PathLike,
        *,
        shape: Optional[Sequence[int]] = None,
        chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    ) -> None:
        if chunk_nnz < 1:
            raise BinaryFormatError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
        self.path = str(target)
        self.chunk_nnz = int(chunk_nnz)
        self._shape = None if shape is None else tuple(int(s) for s in shape)
        self._order: Optional[int] = None
        self._max_coord: Optional[np.ndarray] = None
        self._pending: List[Tuple[np.ndarray, np.ndarray]] = []
        self._pending_nnz = 0
        self._nnz = 0
        self._chunks: List[Dict[str, int]] = []
        self._content_crc = 0
        self._closed = False
        self._handle = open(self.path, "wb")
        self._handle.write(_pack_magic())

    # ------------------------------------------------------------------

    def append(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Buffer one batch of nonzeros (0-based integer coordinates)."""
        if self._closed:
            raise BinaryFormatError("writer is closed")
        indices = np.asarray(indices)
        values = np.asarray(values)
        if indices.ndim != 2:
            raise TensorShapeError(
                f"indices must have shape (order, nnz), got ndim={indices.ndim}"
            )
        if not np.issubdtype(indices.dtype, np.integer):
            raise TensorShapeError(
                f"indices must be integers, got dtype {indices.dtype}"
            )
        order, count = indices.shape
        if self._order is None:
            if order == 0:
                raise TensorShapeError("tensor must have at least one mode")
            self._order = order
            if self._shape is not None and len(self._shape) != order:
                raise TensorShapeError(
                    f"indices have {order} modes but shape has "
                    f"{len(self._shape)}"
                )
        elif order != self._order:
            raise TensorShapeError(
                f"batch has {order} modes, previous batches had {self._order}"
            )
        if values.shape != (count,):
            raise TensorShapeError(
                f"values must be a vector of length {count}, "
                f"got shape {values.shape}"
            )
        if count == 0:
            return
        idx = np.ascontiguousarray(indices, dtype=INDEX_STORAGE_DTYPE)
        if idx.min() < 0:
            raise TensorShapeError("coordinates must be non-negative")
        batch_max = idx.max(axis=1)
        if self._max_coord is None:
            self._max_coord = batch_max
        else:
            np.maximum(self._max_coord, batch_max, out=self._max_coord)
        self._pending.append(
            (idx, np.ascontiguousarray(values, dtype=VALUE_STORAGE_DTYPE))
        )
        self._pending_nnz += count
        if self._pending_nnz >= self.chunk_nnz:
            self._drain(final=False)

    def _drain(self, *, final: bool) -> None:
        if not self._pending:
            return
        if len(self._pending) == 1:
            idx, vals = self._pending[0]
        else:
            idx = np.concatenate([p[0] for p in self._pending], axis=1)
            vals = np.concatenate([p[1] for p in self._pending])
        self._pending = []
        self._pending_nnz = 0
        start = 0
        total = vals.shape[0]
        while total - start >= self.chunk_nnz:
            end = start + self.chunk_nnz
            self._write_chunk(idx[:, start:end], vals[start:end])
            start = end
        if start < total:
            if final:
                self._write_chunk(idx[:, start:], vals[start:])
            else:
                self._pending.append((idx[:, start:], vals[start:]))
                self._pending_nnz = total - start

    def _write_chunk(self, idx: np.ndarray, vals: np.ndarray) -> None:
        handle = self._handle
        pad = (-handle.tell()) % _ALIGN
        if pad:
            handle.write(b"\x00" * pad)
        offset = handle.tell()
        ibytes = np.ascontiguousarray(idx, dtype=INDEX_STORAGE_DTYPE).tobytes()
        vbytes = np.ascontiguousarray(vals, dtype=VALUE_STORAGE_DTYPE).tobytes()
        crc = zlib.crc32(vbytes, zlib.crc32(ibytes))
        self._content_crc = zlib.crc32(
            vbytes, zlib.crc32(ibytes, self._content_crc)
        )
        handle.write(ibytes)
        handle.write(vbytes)
        self._chunks.append(
            {"nnz": int(vals.shape[0]), "offset": int(offset), "crc32": crc}
        )
        self._nnz += int(vals.shape[0])

    # ------------------------------------------------------------------

    def _resolve_shape(self) -> Tuple[int, ...]:
        if self._shape is not None:
            if self._max_coord is not None:
                for mode, (size, top) in enumerate(
                    zip(self._shape, self._max_coord)
                ):
                    if int(top) >= size:
                        raise TensorShapeError(
                            f"mode-{mode} indices out of range [0, {size})"
                        )
            return self._shape
        if self._max_coord is None:
            raise TensorShapeError(
                "cannot infer the shape of an empty tensor; pass shape="
            )
        return tuple(int(top) + 1 for top in self._max_coord)

    def close(self) -> Dict[str, object]:
        """Flush pending nonzeros, write header + trailer; returns header."""
        if self._closed:
            raise BinaryFormatError("writer is already closed")
        self._drain(final=True)
        shape = self._resolve_shape()
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "shape": list(shape),
            "order": len(shape),
            "nnz": self._nnz,
            "index_dtype": INDEX_STORAGE_DTYPE.str,
            "value_dtype": VALUE_STORAGE_DTYPE.str,
            "chunk_nnz": self.chunk_nnz,
            "chunks": self._chunks,
            "content_crc32": self._content_crc,
        }
        payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
        handle = self._handle
        header_offset = handle.tell()
        handle.write(payload)
        handle.write(
            _TRAILER.pack(header_offset, len(payload), _TRAILER_MAGIC)
        )
        handle.close()
        self._closed = True
        return header

    def abort(self) -> None:
        """Close the file handle and remove the partial file."""
        if not self._closed:
            self._closed = True
            self._handle.close()
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "BinWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._closed:
            self.close()


def write_coo(
    tensor: CooTensor,
    target: PathLike,
    *,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
) -> Dict[str, object]:
    """Write an in-RAM COO tensor to the binary layout; returns the header."""
    writer = BinWriter(target, shape=tensor.shape, chunk_nnz=chunk_nnz)
    try:
        writer.append(tensor.indices.astype(np.int64), tensor.values)
        return writer.close()
    except BaseException:
        writer.abort()
        raise


def import_tns(
    source: PathLike,
    target: PathLike,
    *,
    shape: Optional[Sequence[int]] = None,
    chunk_nnz: int = DEFAULT_CHUNK_NNZ,
    progress: Optional[Callable[[int], None]] = None,
) -> Dict[str, object]:
    """Convert a ``.tns[.gz]`` text tensor to the binary layout, streaming.

    Reuses the vectorized block parser of :func:`repro.io.frostt.read_tns`
    so peak memory is one parse block plus one pending chunk, independent
    of the tensor's size.  ``progress`` (if given) is called with the
    running nonzero count after each parsed block.  Returns the header.
    """
    from .frostt import iter_tns_rows

    writer = BinWriter(target, shape=shape, chunk_nnz=chunk_nnz)
    try:
        seen = 0
        for data in iter_tns_rows(source):
            order = data.shape[1] - 1
            indices = data[:, :order].astype(np.int64).T - 1  # repro: ignore[dtype]
            if indices.size and indices.min() < 0:
                raise TensorShapeError(
                    ".tns indices must be 1-based positive integers"
                )
            writer.append(indices, data[:, order].astype(VALUE_DTYPE))  # repro: ignore[dtype]
            seen += data.shape[0]
            if progress is not None:
                progress(seen)
        return writer.close()
    except BaseException:
        writer.abort()
        raise


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------


def _read_header(path: str) -> Tuple[Dict[str, object], int]:
    """Parse and validate the header; returns ``(header, file_size)``."""
    try:
        size = os.path.getsize(path)
    except OSError as exc:
        raise BinaryFormatError(f"cannot read {path}: {exc}") from None
    if size < _MAGIC_LEN + _TRAILER.size:
        raise BinaryFormatError(
            f"{path}: too small ({size} bytes) to be a repro binary tensor"
        )
    with open(path, "rb") as handle:
        magic = handle.read(_MAGIC_LEN)
        if magic[: len(MAGIC)] != MAGIC:
            raise BinaryFormatError(f"{path}: not a repro binary tensor file")
        (version,) = struct.unpack_from("<H", magic, len(MAGIC))
        if version != FORMAT_VERSION:
            raise BinaryFormatError(
                f"{path}: unsupported format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        handle.seek(size - _TRAILER.size)
        header_offset, header_len, trailer_magic = _TRAILER.unpack(
            handle.read(_TRAILER.size)
        )
        if trailer_magic != _TRAILER_MAGIC:
            raise BinaryFormatError(
                f"{path}: missing end-of-file trailer (truncated or "
                f"interrupted write?)"
            )
        if (
            header_offset < _MAGIC_LEN
            or header_len < 2
            or header_offset + header_len + _TRAILER.size != size
        ):
            raise BinaryFormatError(
                f"{path}: trailer points outside the file (corrupt trailer)"
            )
        handle.seek(header_offset)
        payload = handle.read(header_len)
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BinaryFormatError(f"{path}: corrupt header: {exc}") from None
    _validate_header(path, header, header_offset)
    return header, size


def _validate_header(
    path: str, header: Dict[str, object], header_offset: int
) -> None:
    for field in (
        "format",
        "version",
        "shape",
        "nnz",
        "index_dtype",
        "value_dtype",
        "chunks",
        "content_crc32",
    ):
        if field not in header:
            raise BinaryFormatError(
                f"{path}: corrupt header: missing field {field!r}"
            )
    if header["format"] != FORMAT_NAME:
        raise BinaryFormatError(
            f"{path}: unknown payload format {header['format']!r}"
        )
    if header["index_dtype"] != INDEX_STORAGE_DTYPE.str:
        raise BinaryFormatError(
            f"{path}: unsupported index dtype {header['index_dtype']!r}"
        )
    if header["value_dtype"] != VALUE_STORAGE_DTYPE.str:
        raise BinaryFormatError(
            f"{path}: unsupported value dtype {header['value_dtype']!r}"
        )
    shape = header["shape"]
    if not isinstance(shape, list) or not shape or any(
        not isinstance(s, int) or s <= 0 for s in shape
    ):
        raise BinaryFormatError(f"{path}: corrupt header: bad shape {shape!r}")
    order = len(shape)
    chunks = header["chunks"]
    if not isinstance(chunks, list):
        raise BinaryFormatError(f"{path}: corrupt header: bad chunk table")
    total = 0
    item = INDEX_STORAGE_DTYPE.itemsize * order + VALUE_STORAGE_DTYPE.itemsize
    for i, chunk in enumerate(chunks):
        if (
            not isinstance(chunk, dict)
            or not isinstance(chunk.get("nnz"), int)
            or not isinstance(chunk.get("offset"), int)
            or not isinstance(chunk.get("crc32"), int)
            or chunk["nnz"] <= 0
            or chunk["offset"] < _MAGIC_LEN
        ):
            raise BinaryFormatError(
                f"{path}: corrupt header: bad chunk table entry {i}"
            )
        if chunk["offset"] + chunk["nnz"] * item > header_offset:
            raise BinaryFormatError(
                f"{path}: chunk {i} extends past the data region "
                f"(truncated data or corrupt chunk table)"
            )
        total += chunk["nnz"]
    if total != header["nnz"]:
        raise BinaryFormatError(
            f"{path}: chunk table sums to {total} nonzeros, header says "
            f"{header['nnz']}"
        )


class MmapCooTensor(ModeValidationMixin):
    """A COO tensor exposed over ``np.memmap`` views of a binary file.

    The file's chunks are never loaded eagerly; :meth:`chunk_indices` /
    :meth:`chunk_values` return memmap-backed views and
    :meth:`read_range` materializes an arbitrary element range into
    fresh arrays.  The out-of-core kernels in :mod:`repro.perf.ooc`
    consume those ranges chunk-at-a-time, so resident memory is bounded
    by the configured budget, not the tensor.

    ``plan_cache_token`` identifies the *file state* — ``(path,
    mtime_ns, size, content_crc32)`` — so the plan cache shares plans
    between re-opened handles of the same unchanged file and drops them
    when the file is rewritten.
    """

    def __init__(self, path: PathLike, *, verify: bool = False) -> None:
        self.path = str(path)
        header, size = _read_header(self.path)
        self.header = header
        self.shape: Tuple[int, ...] = tuple(int(s) for s in header["shape"])
        chunks = header["chunks"]
        self._chunk_pos = np.array(
            [c["offset"] for c in chunks], dtype=np.int64
        )
        self._chunk_crc = [int(c["crc32"]) for c in chunks]
        counts = np.array([c["nnz"] for c in chunks], dtype=np.int64)
        self.chunk_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self.content_crc32 = int(header["content_crc32"])
        stat = os.stat(self.path)
        self.plan_cache_token = (
            "mmap-coo",
            os.path.realpath(self.path),
            stat.st_mtime_ns,
            size,
            self.content_crc32,
        )
        self._mm: Optional[np.memmap] = (
            np.memmap(self.path, dtype=np.uint8, mode="r") if size else None
        )
        if verify:
            bad = self.verify_checksums()
            if bad:
                raise BinaryFormatError(
                    f"{self.path}: checksum mismatch in chunk(s) "
                    f"{', '.join(map(str, bad))} — data is corrupt"
                )

    # ------------------------------------------------------------------
    # Basic properties (CooTensor-compatible surface)
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes (dimensions)."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzero entries."""
        return int(self.chunk_offsets[-1])

    @property
    def num_chunks(self) -> int:
        """Number of on-disk chunks."""
        return int(self._chunk_pos.shape[0])

    @property
    def density(self) -> float:
        """Fraction of possible positions that hold a stored nonzero."""
        total = 1.0
        for s in self.shape:
            total *= float(s)
        return self.nnz / total if total else 0.0

    def storage_bytes(self) -> int:
        """On-disk payload bytes (indices + values, excluding metadata)."""
        item = INDEX_STORAGE_DTYPE.itemsize * self.order
        item += VALUE_STORAGE_DTYPE.itemsize
        return item * self.nnz

    # ------------------------------------------------------------------
    # Chunk access
    # ------------------------------------------------------------------

    def _require_open(self) -> np.memmap:
        if self._mm is None:
            raise BinaryFormatError(f"{self.path}: tensor is closed")
        return self._mm

    def _chunk_views(self, c: int) -> Tuple[np.ndarray, np.ndarray]:
        if not 0 <= c < self.num_chunks:
            raise BinaryFormatError(
                f"chunk {c} out of range [0, {self.num_chunks})"
            )
        mm = self._require_open()
        count = int(self.chunk_offsets[c + 1] - self.chunk_offsets[c])
        start = int(self._chunk_pos[c])
        isize = INDEX_STORAGE_DTYPE.itemsize * self.order * count
        vsize = VALUE_STORAGE_DTYPE.itemsize * count
        idx = mm[start : start + isize].view(INDEX_STORAGE_DTYPE)
        vals = mm[start + isize : start + isize + vsize].view(
            VALUE_STORAGE_DTYPE
        )
        return idx.reshape(self.order, count), vals

    def chunk_indices(self, c: int) -> np.ndarray:
        """Memmap-backed int64 ``(order, nnz_c)`` view of chunk ``c``."""
        return self._chunk_views(c)[0]

    def chunk_values(self, c: int) -> np.ndarray:
        """Memmap-backed float32 ``(nnz_c,)`` view of chunk ``c``."""
        return self._chunk_views(c)[1]

    def chunk_coo(self, c: int) -> CooTensor:
        """Materialize chunk ``c`` as an in-RAM :class:`CooTensor`."""
        idx, vals = self._chunk_views(c)
        # int64 handed unnarrowed: the COO range check fails loudly if
        # the stored coordinates exceed the int32 in-RAM index width.
        return CooTensor(self.shape, np.array(idx), np.array(vals))

    def iter_chunks(self) -> Iterator[CooTensor]:
        """Yield each chunk as an in-RAM :class:`CooTensor`."""
        for c in range(self.num_chunks):
            yield self.chunk_coo(c)

    def read_range(self, e0: int, e1: int) -> Tuple[np.ndarray, np.ndarray]:
        """Materialize elements ``[e0, e1)`` as ``(int64 indices, values)``.

        The range may span chunk boundaries; the copies are assembled
        directly into preallocated output arrays.
        """
        e0, e1 = self._check_range(e0, e1)
        count = e1 - e0
        out_idx = np.empty((self.order, count), dtype=np.int64)
        out_vals = np.empty(count, dtype=VALUE_DTYPE)
        for c, lo, hi, pos in self._overlapping(e0, e1):
            idx, vals = self._chunk_views(c)
            out_idx[:, pos : pos + hi - lo] = idx[:, lo:hi]
            out_vals[pos : pos + hi - lo] = vals[lo:hi]
        return out_idx, out_vals

    def read_values(self, e0: int, e1: int) -> np.ndarray:
        """Materialize only the values of elements ``[e0, e1)``.

        Reads a quarter of the bytes of :meth:`read_range` — the warm
        path for out-of-core kernels whose per-range index plans are
        already cached.
        """
        e0, e1 = self._check_range(e0, e1)
        out = np.empty(e1 - e0, dtype=VALUE_DTYPE)
        for c, lo, hi, pos in self._overlapping(e0, e1):
            out[pos : pos + hi - lo] = self._chunk_views(c)[1][lo:hi]
        return out

    def _check_range(self, e0: int, e1: int) -> Tuple[int, int]:
        e0, e1 = int(e0), int(e1)
        if not 0 <= e0 <= e1 <= self.nnz:
            raise BinaryFormatError(
                f"element range [{e0}, {e1}) out of bounds for nnz={self.nnz}"
            )
        return e0, e1

    def _overlapping(
        self, e0: int, e1: int
    ) -> Iterator[Tuple[int, int, int, int]]:
        """Chunks intersecting ``[e0, e1)`` as ``(c, lo, hi, out_pos)``."""
        if e0 == e1:
            return
        first = int(np.searchsorted(self.chunk_offsets, e0, side="right")) - 1
        pos = 0
        for c in range(first, self.num_chunks):
            base = int(self.chunk_offsets[c])
            lo = max(e0 - base, 0)
            hi = min(e1 - base, int(self.chunk_offsets[c + 1]) - base)
            if hi <= lo:
                break
            yield c, lo, hi, pos
            pos += hi - lo

    def to_coo(self) -> CooTensor:
        """Materialize the whole tensor in RAM (small tensors / oracles)."""
        idx, vals = self.read_range(0, self.nnz)
        return CooTensor(self.shape, idx, vals)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def verify_checksums(self) -> List[int]:
        """Recompute every chunk CRC; returns the ids of corrupt chunks."""
        mm = self._require_open()
        bad = []
        content = 0
        item = (
            INDEX_STORAGE_DTYPE.itemsize * self.order
            + VALUE_STORAGE_DTYPE.itemsize
        )
        for c in range(self.num_chunks):
            start = int(self._chunk_pos[c])
            count = int(self.chunk_offsets[c + 1] - self.chunk_offsets[c])
            raw = mm[start : start + count * item]
            crc = zlib.crc32(raw)
            content = zlib.crc32(raw, content)
            if crc != self._chunk_crc[c]:
                bad.append(c)
        if not bad and content != self.content_crc32:
            # Per-chunk CRCs pass but the whole-content CRC does not:
            # the header itself is inconsistent.
            bad = list(range(self.num_chunks))
        return bad

    # ------------------------------------------------------------------

    def release_pages(self) -> bool:
        """Drop the mapping's resident pages (``madvise(DONTNEED)``).

        The out-of-core kernels call this between steps so pages already
        streamed past stop counting toward the process's resident set —
        the data stays in the OS page cache, so re-reads remain cheap.
        Returns ``False`` (and does nothing) where unsupported.
        """
        if self._mm is None:
            return False
        raw = getattr(self._mm, "_mmap", None)
        advise = getattr(raw, "madvise", None)
        flag = getattr(mmap_module, "MADV_DONTNEED", None)
        if advise is None or flag is None:
            return False
        try:
            advise(flag)
        except (OSError, ValueError):
            return False
        return True

    def close(self) -> None:
        """Release the memory map (views become invalid)."""
        self._mm = None

    def __enter__(self) -> "MmapCooTensor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MmapCooTensor(path={self.path!r}, shape={self.shape}, "
            f"nnz={self.nnz}, chunks={self.num_chunks})"
        )


def open_bin(path: PathLike, *, verify: bool = False) -> MmapCooTensor:
    """Open a binary tensor file as a :class:`MmapCooTensor`."""
    return MmapCooTensor(path, verify=verify)


def inspect_bin(path: PathLike, *, verify: bool = True) -> Dict[str, object]:
    """Summarize a binary tensor file: header, chunk table, checksums.

    With ``verify=True`` (the default) every chunk CRC is recomputed;
    the report's ``"checksums_ok"`` field is ``False`` when any chunk —
    or the whole-content checksum — mismatches.
    """
    path = str(path)
    with open_bin(path) as tensor:
        bad = tensor.verify_checksums() if verify else []
        report: Dict[str, object] = {
            "path": path,
            "file_bytes": os.path.getsize(path),
            "format": tensor.header["format"],
            "version": tensor.header["version"],
            "shape": list(tensor.shape),
            "order": tensor.order,
            "nnz": tensor.nnz,
            "num_chunks": tensor.num_chunks,
            "payload_bytes": tensor.storage_bytes(),
            "content_crc32": tensor.content_crc32,
            "chunks": [
                {
                    "nnz": int(
                        tensor.chunk_offsets[c + 1] - tensor.chunk_offsets[c]
                    ),
                    "offset": int(tensor._chunk_pos[c]),
                    "crc32": tensor._chunk_crc[c],
                    "ok": (c not in bad) if verify else None,
                }
                for c in range(tensor.num_chunks)
            ],
            "verified": bool(verify),
            "checksums_ok": not bad if verify else None,
            "corrupt_chunks": bad,
        }
    return report
