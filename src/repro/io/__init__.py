"""Tensor file I/O: FROSTT ``.tns`` text and the binary mmap layout."""

from .binfile import (
    BinWriter,
    MmapCooTensor,
    import_tns,
    inspect_bin,
    open_bin,
    write_coo,
)
from .frostt import (
    dumps_tns,
    loads_tns,
    read_tns,
    read_tns_reference,
    roundtrip_equal,
    write_tns,
)

__all__ = [
    "read_tns",
    "read_tns_reference",
    "write_tns",
    "dumps_tns",
    "loads_tns",
    "roundtrip_equal",
    "BinWriter",
    "MmapCooTensor",
    "import_tns",
    "inspect_bin",
    "open_bin",
    "write_coo",
]
