"""Tensor file I/O (FROSTT ``.tns`` coordinate text format)."""

from .frostt import dumps_tns, loads_tns, read_tns, roundtrip_equal, write_tns

__all__ = ["read_tns", "write_tns", "dumps_tns", "loads_tns", "roundtrip_equal"]
