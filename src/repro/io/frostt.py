"""FROSTT ``.tns`` text format I/O.

The Formidable Repository of Open Sparse Tensors and Tools stores sparse
tensors as whitespace-separated text: one nonzero per line, ``order``
1-based indices followed by the value.  Comment lines start with ``#``.
This is the interchange format the paper's suite consumes ("any set of
tensors provided that they are expressed using coordinate format").
FROSTT ships its downloads gzipped; paths ending in ``.gz`` are read and
written through gzip transparently.

Parsing is block-vectorized: the file is read in multi-megabyte text
blocks cut at line boundaries, each block is tokenized once with
``str.split`` and cast to ``float64`` in a single ``np.array`` call, and
per-line column counts are validated through a byte-level token-to-line
mapping instead of a Python loop over lines.  The original per-line loop
is kept as :func:`read_tns_reference`, the ground truth the tests
compare against.  The streaming binary importer
(:func:`repro.io.binfile.import_tns`) consumes the same block parser, so
text ingestion never materializes more than one block of rows at a time.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterator, Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import VALUE_DTYPE, CooTensor

PathOrFile = Union[str, Path, TextIO]

#: Characters of text per parse block (~8 MiB).  Large enough that the
#: per-block Python overhead vanishes, small enough that the token list
#: and float matrix of one block stay far below any out-of-core budget.
BLOCK_CHARS = 8 * 1024 * 1024


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        if str(source).endswith(".gz"):
            return gzip.open(source, "rt", encoding="utf-8"), True
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        if str(target).endswith(".gz"):
            return gzip.open(target, "wt", encoding="utf-8"), True
        return open(target, "w", encoding="utf-8"), True
    return target, False


# ----------------------------------------------------------------------
# Vectorized block parsing
# ----------------------------------------------------------------------


def _iter_text_blocks(handle: TextIO, block_chars: int) -> Iterator[str]:
    """Yield the stream as text blocks that always end on a line boundary."""
    carry = ""
    while True:
        piece = handle.read(block_chars)
        if not piece:
            break
        piece = carry + piece
        cut = piece.rfind("\n")
        if cut < 0:
            carry = piece
            continue
        carry = piece[cut + 1 :]
        yield piece[: cut + 1]
    if carry:
        yield carry


def _blank_out_comments(text: str) -> str:
    """Replace comment lines with empty lines (keeps line numbering)."""
    lines = text.split("\n")
    return "\n".join(
        "" if ln.lstrip()[:1] in ("#", "%") else ln for ln in lines
    )


def _token_lines(text: str) -> Tuple[np.ndarray, int]:
    """Map each whitespace token of ``text`` to its 0-based line.

    Works on the raw bytes: a token starts at a non-whitespace byte
    preceded by whitespace (or start of text), and its line is the count
    of newlines before it.  Returns ``(line_of_token, num_lines)``.
    """
    raw = np.frombuffer(text.encode("utf-8"), dtype=np.uint8)
    # ASCII whitespace, matching what str.split treats as separators
    # for .tns content: space, \t, \n, \v, \f, \r.
    is_ws = (raw == 0x20) | ((raw >= 0x09) & (raw <= 0x0D))
    starts = ~is_ws
    starts[1:] &= is_ws[:-1]
    token_pos = np.flatnonzero(starts)
    newline_pos = np.flatnonzero(raw == 0x0A)
    line_of_token = np.searchsorted(newline_pos, token_pos)
    num_lines = int(newline_pos.shape[0]) + (
        0 if text.endswith("\n") else 1
    )
    return line_of_token, num_lines


class _BlockParser:
    """Stateful vectorized ``.tns`` parser: text blocks in, row matrices out.

    Carries the column count discovered on the first data line plus file
    line / data row counters so error messages match the per-line
    reference loop.
    """

    def __init__(self) -> None:
        self.cols: Optional[int] = None
        self._line_base = 0
        self._row_base = 0

    def feed(self, text: str) -> Optional[np.ndarray]:
        """Parse one block into a ``(rows, cols)`` float64 matrix."""
        if "#" in text or "%" in text:
            text = _blank_out_comments(text)
        line_of_token, num_lines = _token_lines(text)
        line_base = self._line_base
        self._line_base += num_lines
        if line_of_token.size == 0:
            return None
        counts = np.bincount(line_of_token, minlength=num_lines)
        data_lines = np.flatnonzero(counts)
        if self.cols is None:
            first = int(data_lines[0])
            if counts[first] < 2:
                raise TensorShapeError(
                    f"line {line_base + first + 1}: need at least one "
                    f"index and a value"
                )
            self.cols = int(counts[first])
        bad = data_lines[counts[data_lines] != self.cols]
        if bad.size:
            first_bad = int(bad[0])
            got = int(counts[first_bad])
            if got < 2:
                raise TensorShapeError(
                    f"line {line_base + first_bad + 1}: need at least one "
                    f"index and a value"
                )
            data_row = (
                self._row_base
                + int(np.searchsorted(data_lines, first_bad))
                + 1
            )
            raise TensorShapeError(
                f"inconsistent column count at data row {data_row}: "
                f"expected {self.cols}, got {got}"
            )
        self._row_base += int(data_lines.shape[0])
        parts = text.split()
        try:
            flat = np.array(parts, dtype=np.float64)
        except ValueError as exc:
            raise TensorShapeError(f"non-numeric .tns token: {exc}") from None
        return flat.reshape(-1, self.cols)


def iter_tns_rows(
    source: PathOrFile, *, block_chars: int = BLOCK_CHARS
) -> Iterator[np.ndarray]:
    """Stream a ``.tns`` source as float64 ``(rows, order + 1)`` matrices.

    Each yielded matrix holds one parsed block (1-based indices in the
    first ``order`` columns, values in the last); comments and blank
    lines are skipped and column consistency is enforced exactly as
    :func:`read_tns` does.  This is the shared front end of the text
    reader and the binary importer — peak memory is one block of rows.
    """
    handle, owns = _open_for_read(source)
    try:
        parser = _BlockParser()
        for text in _iter_text_blocks(handle, block_chars):
            data = parser.feed(text)
            if data is not None and data.size:
                yield data
    finally:
        if owns:
            handle.close()


def read_tns(
    source: PathOrFile, shape: Optional[Sequence[int]] = None
) -> CooTensor:
    """Read a FROSTT ``.tns`` file into a COO tensor.

    Indices in the file are 1-based and converted to 0-based.  When
    ``shape`` is omitted, each dimension is the maximum index observed in
    that mode.
    """
    blocks = list(iter_tns_rows(source))
    if not blocks:
        if shape is None:
            raise TensorShapeError("empty .tns input and no shape given")
        return CooTensor.empty(shape)
    data = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
    order = data.shape[1] - 1
    indices = data[:, :order].astype(np.int64).T - 1
    values = data[:, order].astype(VALUE_DTYPE)
    if np.any(indices < 0):
        raise TensorShapeError(".tns indices must be 1-based positive integers")
    if shape is None:
        shape = tuple(int(indices[m].max()) + 1 for m in range(order))
    # Hand the int64 coordinates to the constructor unnarrowed: its
    # range check rejects out-of-int32 input loudly instead of wrapping.
    return CooTensor(shape, indices, values)


def read_tns_reference(
    source: PathOrFile, shape: Optional[Sequence[int]] = None
) -> CooTensor:
    """The original per-line parser; ground truth for the block path."""
    handle, owns = _open_for_read(source)
    try:
        rows = []
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise TensorShapeError(
                    f"line {lineno}: need at least one index and a value"
                )
            rows.append(parts)
    finally:
        if owns:
            handle.close()
    if not rows:
        if shape is None:
            raise TensorShapeError("empty .tns input and no shape given")
        return CooTensor.empty(shape)
    order = len(rows[0]) - 1
    for lineno, parts in enumerate(rows, start=1):
        if len(parts) != order + 1:
            raise TensorShapeError(
                f"inconsistent column count at data row {lineno}: "
                f"expected {order + 1}, got {len(parts)}"
            )
    try:
        data = np.array(rows, dtype=np.float64)
    except ValueError as exc:
        raise TensorShapeError(f"non-numeric .tns token: {exc}") from None
    indices = data[:, :order].astype(np.int64).T - 1
    values = data[:, order].astype(VALUE_DTYPE)
    if np.any(indices < 0):
        raise TensorShapeError(".tns indices must be 1-based positive integers")
    if shape is None:
        shape = tuple(int(indices[m].max()) + 1 for m in range(order))
    return CooTensor(shape, indices, values)


def write_tns(tensor: CooTensor, target: PathOrFile, *, header: bool = True) -> None:
    """Write a COO tensor as FROSTT ``.tns`` text (1-based indices)."""
    handle, owns = _open_for_write(target)
    try:
        if header:
            dims = " ".join(str(s) for s in tensor.shape)
            handle.write(f"# order={tensor.order} dims={dims} nnz={tensor.nnz}\n")
        indices = tensor.indices.astype(np.int64) + 1
        for x in range(tensor.nnz):
            coords = " ".join(str(indices[m, x]) for m in range(tensor.order))
            handle.write(f"{coords} {tensor.values[x]:.9g}\n")
    finally:
        if owns:
            handle.close()


def dumps_tns(tensor: CooTensor, *, header: bool = True) -> str:
    """Serialize a COO tensor to a ``.tns`` string."""
    buffer = io.StringIO()
    write_tns(tensor, buffer, header=header)
    return buffer.getvalue()


def loads_tns(text: str, shape: Optional[Sequence[int]] = None) -> CooTensor:
    """Parse a ``.tns`` string into a COO tensor."""
    return read_tns(io.StringIO(text), shape)


def roundtrip_equal(tensor: CooTensor) -> Tuple[bool, CooTensor]:
    """Serialize then parse; returns (values survived, parsed tensor)."""
    parsed = loads_tns(dumps_tns(tensor), tensor.shape)
    return tensor.allclose(parsed), parsed
