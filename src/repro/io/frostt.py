"""FROSTT ``.tns`` text format I/O.

The Formidable Repository of Open Sparse Tensors and Tools stores sparse
tensors as whitespace-separated text: one nonzero per line, ``order``
1-based indices followed by the value.  Comment lines start with ``#``.
This is the interchange format the paper's suite consumes ("any set of
tensors provided that they are expressed using coordinate format").
FROSTT ships its downloads gzipped; paths ending in ``.gz`` are read and
written through gzip transparently.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Optional, Sequence, TextIO, Tuple, Union

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import VALUE_DTYPE, CooTensor

PathOrFile = Union[str, Path, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        if str(source).endswith(".gz"):
            return gzip.open(source, "rt", encoding="utf-8"), True
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        if str(target).endswith(".gz"):
            return gzip.open(target, "wt", encoding="utf-8"), True
        return open(target, "w", encoding="utf-8"), True
    return target, False


def read_tns(
    source: PathOrFile, shape: Optional[Sequence[int]] = None
) -> CooTensor:
    """Read a FROSTT ``.tns`` file into a COO tensor.

    Indices in the file are 1-based and converted to 0-based.  When
    ``shape`` is omitted, each dimension is the maximum index observed in
    that mode.
    """
    handle, owns = _open_for_read(source)
    try:
        rows = []
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise TensorShapeError(
                    f"line {lineno}: need at least one index and a value"
                )
            rows.append(parts)
    finally:
        if owns:
            handle.close()
    if not rows:
        if shape is None:
            raise TensorShapeError("empty .tns input and no shape given")
        return CooTensor.empty(shape)
    order = len(rows[0]) - 1
    for lineno, parts in enumerate(rows, start=1):
        if len(parts) != order + 1:
            raise TensorShapeError(
                f"inconsistent column count at data row {lineno}: "
                f"expected {order + 1}, got {len(parts)}"
            )
    data = np.array(rows, dtype=np.float64)
    indices = data[:, :order].astype(np.int64).T - 1
    values = data[:, order].astype(VALUE_DTYPE)
    if np.any(indices < 0):
        raise TensorShapeError(".tns indices must be 1-based positive integers")
    if shape is None:
        shape = tuple(int(indices[m].max()) + 1 for m in range(order))
    # Hand the int64 coordinates to the constructor unnarrowed: its
    # range check rejects out-of-int32 input loudly instead of wrapping.
    return CooTensor(shape, indices, values)


def write_tns(tensor: CooTensor, target: PathOrFile, *, header: bool = True) -> None:
    """Write a COO tensor as FROSTT ``.tns`` text (1-based indices)."""
    handle, owns = _open_for_write(target)
    try:
        if header:
            dims = " ".join(str(s) for s in tensor.shape)
            handle.write(f"# order={tensor.order} dims={dims} nnz={tensor.nnz}\n")
        indices = tensor.indices.astype(np.int64) + 1
        for x in range(tensor.nnz):
            coords = " ".join(str(indices[m, x]) for m in range(tensor.order))
            handle.write(f"{coords} {tensor.values[x]:.9g}\n")
    finally:
        if owns:
            handle.close()


def dumps_tns(tensor: CooTensor, *, header: bool = True) -> str:
    """Serialize a COO tensor to a ``.tns`` string."""
    buffer = io.StringIO()
    write_tns(tensor, buffer, header=header)
    return buffer.getvalue()


def loads_tns(text: str, shape: Optional[Sequence[int]] = None) -> CooTensor:
    """Parse a ``.tns`` string into a COO tensor."""
    return read_tns(io.StringIO(text), shape)


def roundtrip_equal(tensor: CooTensor) -> Tuple[bool, CooTensor]:
    """Serialize then parse; returns (values survived, parsed tensor)."""
    parsed = loads_tns(dumps_tns(tensor), tensor.shape)
    return tensor.allclose(parsed), parsed
