"""Tensor feature extraction and synthetic stand-in fitting.

Observation 5 closes: "Extracting features from real tensors as a basis
to create more complete synthetic tensors would be very helpful for
sparse tensor research."  This module does exactly that:

* :func:`extract_features` measures the structural features that drive
  the suite's kernel behavior — density, per-mode fiber counts, degree
  skew (power-law tail), short/dense modes, HiCOO block occupancy;
* :func:`fit_powerlaw_alpha` estimates a mode's power-law exponent from
  its degree distribution (a discrete MLE, Clauset-style);
* :func:`synthesize_like` generates a synthetic tensor whose features
  match a measured profile, using the suite's own generators.

Together they close the loop the paper proposes: measure a (possibly
private) real tensor once, publish its feature vector, and regenerate a
shareable stand-in anywhere.  The registry's real-tensor stand-ins
(DESIGN.md substitution #2) are the manual version of this pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import CooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..generators.powerlaw import mode_degree_distribution, powerlaw_tensor

#: Modes covering at least this fraction of their index range with
#: nonzeros are considered dense-ish (the irregular tensors' short modes).
DENSE_MODE_COVERAGE = 0.9


@dataclass(frozen=True)
class TensorFeatures:
    """Structural profile of a sparse tensor.

    ``degree_skew`` is max-degree over mean-degree per mode (heavy-tail
    indicator); ``alpha`` the fitted power-law exponent per mode (NaN for
    dense-ish modes); ``fiber_counts`` the mode-n fiber counts feeding
    the TTV/TTM work distributions.
    """

    shape: Tuple[int, ...]
    nnz: int
    density: float
    dense_modes: Tuple[int, ...]
    degree_skew: Tuple[float, ...]
    alpha: Tuple[float, ...]
    fiber_counts: Tuple[int, ...]
    block_occupancy: float
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lines = [
            f"order {self.order}, dims {'x'.join(map(str, self.shape))}, "
            f"nnz {self.nnz}, density {self.density:.2E}",
            f"dense modes: {list(self.dense_modes) or 'none'}",
            "per-mode skew: "
            + ", ".join(f"{s:.1f}" for s in self.degree_skew),
            "per-mode alpha: "
            + ", ".join(
                "-" if np.isnan(a) else f"{a:.2f}" for a in self.alpha
            ),
            f"HiCOO block occupancy (B={DEFAULT_BLOCK_SIZE}): "
            f"{self.block_occupancy:.2f}",
        ]
        return "\n".join(lines)


def fit_powerlaw_alpha(degrees: np.ndarray, minimum_degree: int = 2) -> float:
    """MLE of the power-law exponent of a degree sequence.

    Uses the continuous approximation
    ``alpha = 1 + n / sum(ln(d / (d_min - 0.5)))`` over degrees >=
    ``minimum_degree`` (Clauset, Shalizi & Newman 2009).  The
    approximation needs ``minimum_degree >= 2`` to be accurate, hence
    the default.  Returns NaN when fewer than ten qualifying degrees
    exist.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    degrees = degrees[degrees >= minimum_degree]
    if degrees.size < 10:
        return float("nan")
    logs = np.log(degrees / (minimum_degree - 0.5))
    total = logs.sum(dtype=np.float64)
    if total <= 0:
        return float("nan")
    return float(1.0 + degrees.size / total)


def extract_features(
    tensor: CooTensor, block_size: int = DEFAULT_BLOCK_SIZE
) -> TensorFeatures:
    """Measure the structural features of a sparse tensor."""
    dense_modes = []
    skews = []
    alphas = []
    for mode in range(tensor.order):
        degrees = mode_degree_distribution(tensor, mode)
        used = degrees[degrees > 0]
        coverage = used.size / tensor.shape[mode]
        skew = float(used.max() / used.mean(dtype=np.float64)) if used.size else 0.0
        skews.append(skew)
        if coverage >= DENSE_MODE_COVERAGE:
            dense_modes.append(mode)
            alphas.append(float("nan"))
        else:
            alphas.append(fit_powerlaw_alpha(used))
    fiber_counts = tuple(tensor.num_fibers(m) for m in range(tensor.order))
    hicoo = HicooTensor.from_coo(tensor, block_size)
    return TensorFeatures(
        shape=tensor.shape,
        nnz=tensor.nnz,
        density=tensor.density,
        dense_modes=tuple(dense_modes),
        degree_skew=tuple(skews),
        alpha=tuple(alphas),
        fiber_counts=fiber_counts,
        block_occupancy=hicoo.average_block_occupancy(),
        extras={
            "num_blocks": float(hicoo.num_blocks),
            "compression_ratio": hicoo.compression_ratio(),
        },
    )


def synthesize_like(
    features: TensorFeatures,
    *,
    seed: int = 0,
    scale: float = 1.0,
) -> CooTensor:
    """Generate a synthetic tensor matching a measured feature profile.

    Uses the biased power-law generator with the profile's fitted alpha
    (averaged over sparse modes) and its dense-mode set; ``scale``
    shrinks or grows nnz and the sparse dimensions together, preserving
    density ordering.
    """
    if scale <= 0:
        raise TensorShapeError(f"scale must be positive, got {scale}")
    sparse_modes = [
        m for m in range(features.order) if m not in features.dense_modes
    ]
    if not sparse_modes:
        raise TensorShapeError("profile has no sparse modes to synthesize")
    nnz = max(int(features.nnz * scale), 100)
    per_mode = scale ** (1.0 / max(len(sparse_modes), 1))
    dims = []
    for mode, size in enumerate(features.shape):
        if mode in features.dense_modes:
            dims.append(size)
        else:
            dims.append(max(int(round(size * per_mode)), 2))
    fitted = [
        a for m, a in zip(range(features.order), features.alpha)
        if m in sparse_modes and not np.isnan(a)
    ]
    alpha = float(np.mean(fitted)) if fitted else 2.0
    alpha = min(max(alpha, 0.5), 3.5)
    return powerlaw_tensor(
        dims,
        nnz,
        alpha=alpha,
        dense_modes=features.dense_modes,
        seed=seed,
    )


def feature_distance(a: TensorFeatures, b: TensorFeatures) -> float:
    """A scale-free dissimilarity between two profiles (0 is identical).

    Compares log-density, log-skew per mode, dense-mode sets, and log
    block occupancy; used by tests to confirm a synthesized stand-in
    lands near its target.
    """
    if a.order != b.order:
        return float("inf")
    terms = []
    terms.append(abs(np.log10(max(a.density, 1e-30)) - np.log10(max(b.density, 1e-30))))
    for sa, sb in zip(a.degree_skew, b.degree_skew):
        terms.append(abs(np.log10(max(sa, 1.0)) - np.log10(max(sb, 1.0))))
    terms.append(
        abs(
            np.log10(max(a.block_occupancy, 0.1))
            - np.log10(max(b.block_occupancy, 0.1))
        )
    )
    mismatch = len(set(a.dense_modes) ^ set(b.dense_modes))
    terms.append(float(mismatch))
    return float(np.mean(terms))
