"""Dataset registry — the paper's Table II, at configurable scale.

Table II(a)'s fifteen real tensors (FROSTT, HaTen2, CHOA) are multi-GB
downloads and one is private medical data, so this registry realizes
*stand-ins*: power-law tensors with the same order, the same
dimension-ratio profile, and nnz scaled by ``1/scale_divisor`` (DESIGN.md
substitution #2).  Table II(b)'s fifteen synthetic tensors are realized
with the paper's own generators (stochastic Kronecker for the regular
family, biased power law for the irregular families) at the same scale.
Passing ``scale_divisor=1`` requests the paper's full sizes.

Every dataset is deterministic: the seed is derived from the dataset key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import DatasetError
from ..formats.coo import CooTensor
from ..generators.kronecker import kronecker_tensor
from ..generators.powerlaw import powerlaw_tensor

#: Default downscaling of nnz relative to the paper (DESIGN.md #2/#3).
DEFAULT_SCALE_DIVISOR = 512

#: Modes at or below this size are treated as short dense-ish modes and
#: drawn uniformly by the stand-in generator (they are fully covered).
SHORT_MODE_THRESHOLD = 1024

#: Largest scaled dimension; keeps HiCOO block Morton codes in 62 bits
#: for fourth-order tensors.
MAX_SCALED_DIM = 1 << 22


@dataclass(frozen=True)
class DatasetSpec:
    """One Table II row.

    ``generator`` is ``"kron"`` (stochastic Kronecker), ``"pl"`` (biased
    power law), or ``"standin"`` (power-law stand-in for a real tensor).
    ``dense_modes`` marks the short dense modes of the irregular
    families.
    """

    key: str
    name: str
    collection: str  # "real" or "synthetic"
    generator: str
    order: int
    paper_dims: Tuple[int, ...]
    paper_nnz: int
    dense_modes: Tuple[int, ...] = ()
    alpha: float = 2.0

    @property
    def paper_density(self) -> float:
        """Density at the paper's full scale."""
        cells = 1.0
        for d in self.paper_dims:
            cells *= float(d)
        return self.paper_nnz / cells

    def scaled_dims(self, scale_divisor: int) -> Tuple[int, ...]:
        """Shrink large modes so density ordering is roughly preserved.

        Modes at or below :data:`SHORT_MODE_THRESHOLD` keep their paper
        size (they are semantic, e.g. 24 hours); larger modes share the
        nnz scale factor equally on a per-mode basis.
        """
        if scale_divisor <= 1:
            return self.paper_dims
        large = [d for d in self.paper_dims if d > SHORT_MODE_THRESHOLD]
        if not large:
            return self.paper_dims
        per_mode = scale_divisor ** (1.0 / len(large))
        dims = []
        for d in self.paper_dims:
            if d <= SHORT_MODE_THRESHOLD:
                dims.append(d)
            else:
                dims.append(
                    min(max(int(round(d / per_mode)), SHORT_MODE_THRESHOLD + 1),
                        MAX_SCALED_DIM)
                )
        return tuple(dims)

    def scaled_nnz(self, scale_divisor: int) -> int:
        """Scaled nonzero count (at least 1000 so kernels stay meaningful)."""
        if scale_divisor <= 1:
            return self.paper_nnz
        return max(self.paper_nnz // scale_divisor, 1000)

    def seed(self) -> int:
        """Deterministic per-dataset seed."""
        return sum(ord(c) * 131**i for i, c in enumerate(self.key)) % (2**31)

    def realize(
        self, scale_divisor: int = DEFAULT_SCALE_DIVISOR
    ) -> CooTensor:
        """Generate the tensor at the requested scale."""
        dims = self.scaled_dims(scale_divisor)
        nnz = self.scaled_nnz(scale_divisor)
        capacity = 1
        for d in dims:
            capacity *= d
        nnz = min(nnz, max(capacity // 2, 1))
        if self.generator == "kron":
            return kronecker_tensor(dims, nnz, seed=self.seed())
        if self.generator in ("pl", "standin"):
            if self.generator == "standin":
                dense = tuple(
                    m for m, d in enumerate(dims) if d <= SHORT_MODE_THRESHOLD
                )
            else:
                dense = self.dense_modes
            return powerlaw_tensor(
                dims, nnz, alpha=self.alpha, dense_modes=dense, seed=self.seed()
            )
        raise DatasetError(f"unknown generator {self.generator!r} for {self.key}")

    def table_row(self, scale_divisor: int = DEFAULT_SCALE_DIVISOR) -> Dict[str, str]:
        """A Table II style row at the given scale."""
        dims = self.scaled_dims(scale_divisor)
        nnz = self.scaled_nnz(scale_divisor)
        cells = 1.0
        for d in dims:
            cells *= float(d)
        gen = {"kron": "Kron.", "pl": "PL", "standin": "PL (stand-in)"}[self.generator]
        return {
            "No.": self.key,
            "Tensor": self.name,
            "Gen.": gen,
            "Order": str(self.order),
            "Dimensions": "x".join(str(d) for d in dims),
            "#Nnzs": str(nnz),
            "Density": f"{nnz / cells:.2E}",
        }


def _real(key, name, dims, nnz, alpha=2.0):
    return DatasetSpec(
        key=key,
        name=name,
        collection="real",
        generator="standin",
        order=len(dims),
        paper_dims=tuple(dims),
        paper_nnz=nnz,
        alpha=alpha,
    )


def _synth(key, name, gen, dims, nnz, dense_modes=(), alpha=2.0):
    return DatasetSpec(
        key=key,
        name=name,
        collection="synthetic",
        generator=gen,
        order=len(dims),
        paper_dims=tuple(dims),
        paper_nnz=nnz,
        dense_modes=tuple(dense_modes),
        alpha=alpha,
    )


_K = 1000
_M = 1000 * 1000

#: Table II(a): real tensors, in paper order (r1-r15).
REAL_DATASETS: Tuple[DatasetSpec, ...] = (
    _real("r1", "vast", (165 * _K, 11 * _K, 2), 26 * _M),
    _real("r2", "nell2", (12 * _K, 9 * _K, 29 * _K), 77 * _M),
    _real("r3", "choa", (712 * _K, 10 * _K, 767), 27 * _M),
    _real("r4", "darpa", (22 * _K, 22 * _K, 24 * _M), 28 * _M),
    _real("r5", "fb-m", (23 * _M, 23 * _M, 166), 100 * _M),
    _real("r6", "fb-s", (39 * _M, 39 * _M, 532), 140 * _M),
    _real("r7", "flickr", (320 * _K, 28 * _M, 1600 * _K), 113 * _M),
    _real("r8", "deli", (533 * _K, 17 * _M, 2500 * _K), 140 * _M),
    _real("r9", "nell1", (2900 * _K, 2100 * _K, 25 * _M), 144 * _M),
    _real("r10", "crime4d", (6 * _K, 24, 77, 32), 5 * _M),
    _real("r11", "uber4d", (183, 24, 1140, 1717), 3 * _M),
    _real("r12", "nips4d", (2 * _K, 3 * _K, 14 * _K, 17), 3 * _M),
    _real("r13", "enron4d", (6 * _K, 6 * _K, 244 * _K, 1 * _K), 54 * _M),
    _real("r14", "flickr4d", (320 * _K, 28 * _M, 1600 * _K, 731), 113 * _M),
    _real("r15", "deli4d", (533 * _K, 17 * _M, 2500 * _K, 1 * _K), 140 * _M),
)

#: Table II(b): synthetic tensors (s1-s15) with their generators.
SYNTHETIC_DATASETS: Tuple[DatasetSpec, ...] = (
    _synth("s1", "regS", "kron", (65 * _K,) * 3, 1_100 * _K),
    _synth("s2", "regM", "kron", (1100 * _K,) * 3, 11_500 * _K),
    _synth("s3", "regL", "kron", (8300 * _K,) * 3, 94 * _M),
    _synth("s4", "irrS", "pl", (32 * _K, 32 * _K, 76), 1 * _M, dense_modes=(2,)),
    _synth("s5", "irrM", "pl", (524 * _K, 524 * _K, 126), 10 * _M, dense_modes=(2,)),
    _synth("s6", "irrL", "pl", (4200 * _K, 4200 * _K, 168), 84 * _M, dense_modes=(2,)),
    _synth("s7", "regS4d", "kron", (8200,) * 4, 1 * _M),
    _synth("s8", "regM4d", "kron", (2100 * _K,) * 4, 11_200 * _K),
    _synth("s9", "regL4d", "kron", (8300 * _K,) * 4, 110 * _M),
    _synth(
        "s10", "irrS4d", "pl", (1600 * _K,) * 3 + (82,), 1_000 * _K, dense_modes=(3,)
    ),
    _synth(
        "s11", "irrM4d", "pl", (2600 * _K,) * 3 + (144,), 10_800 * _K, dense_modes=(3,)
    ),
    _synth(
        "s12", "irrL4d", "pl", (4200 * _K,) * 3 + (226,), 100 * _M, dense_modes=(3,)
    ),
    _synth(
        "s13",
        "irr2S4d",
        "pl",
        (1000 * _K, 1000 * _K, 122, 436),
        1600 * _K,
        dense_modes=(2, 3),
    ),
    _synth(
        "s14",
        "irr2M4d",
        "pl",
        (4200 * _K, 4200 * _K, 232, 746),
        19_900 * _K,
        dense_modes=(2, 3),
    ),
    _synth(
        "s15",
        "irr2L4d",
        "pl",
        (8300 * _K, 8300 * _K, 952, 324),
        109 * _M,
        dense_modes=(2, 3),
    ),
)

ALL_DATASETS: Tuple[DatasetSpec, ...] = REAL_DATASETS + SYNTHETIC_DATASETS

_BY_KEY: Dict[str, DatasetSpec] = {d.key: d for d in ALL_DATASETS}
_BY_NAME: Dict[str, DatasetSpec] = {d.name: d for d in ALL_DATASETS}


def get_dataset(key_or_name: str) -> DatasetSpec:
    """Look up a dataset by its Table II number (``"r4"``) or name."""
    key = key_or_name.strip()
    if key in _BY_KEY:
        return _BY_KEY[key]
    if key in _BY_NAME:
        return _BY_NAME[key]
    raise DatasetError(
        f"unknown dataset {key_or_name!r}; use r1-r15, s1-s15, or a tensor name"
    )


def datasets(collection: Optional[str] = None) -> Tuple[DatasetSpec, ...]:
    """All datasets, optionally filtered to ``"real"`` or ``"synthetic"``."""
    if collection is None:
        return ALL_DATASETS
    if collection not in ("real", "synthetic"):
        raise DatasetError(f"collection must be 'real' or 'synthetic', got {collection!r}")
    return tuple(d for d in ALL_DATASETS if d.collection == collection)


def realize(
    key_or_name: str, scale_divisor: int = DEFAULT_SCALE_DIVISOR
) -> CooTensor:
    """Generate a Table II tensor by key or name at the given scale."""
    return get_dataset(key_or_name).realize(scale_divisor)


def table2(
    collection: Optional[str] = None,
    scale_divisor: int = DEFAULT_SCALE_DIVISOR,
) -> Tuple[Dict[str, str], ...]:
    """Reproduce Table II rows at the given scale."""
    return tuple(d.table_row(scale_divisor) for d in datasets(collection))
