"""Table II dataset registry (scaled real stand-ins + synthetic recipes),
plus tensor feature extraction and synthetic stand-in fitting."""

from .features import (
    TensorFeatures,
    extract_features,
    feature_distance,
    fit_powerlaw_alpha,
    synthesize_like,
)
from .registry import (
    ALL_DATASETS,
    DEFAULT_SCALE_DIVISOR,
    REAL_DATASETS,
    SYNTHETIC_DATASETS,
    DatasetSpec,
    datasets,
    get_dataset,
    realize,
    table2,
)

__all__ = [
    "DatasetSpec",
    "ALL_DATASETS",
    "REAL_DATASETS",
    "SYNTHETIC_DATASETS",
    "DEFAULT_SCALE_DIVISOR",
    "datasets",
    "get_dataset",
    "realize",
    "table2",
    "TensorFeatures",
    "extract_features",
    "synthesize_like",
    "feature_distance",
    "fit_powerlaw_alpha",
]
