"""Exception hierarchy for the sparse tensor benchmark suite.

Every error raised by this package derives from :class:`PastaError`, so
callers can catch one type to handle anything the suite raises.  The
subclasses separate the three failure domains a user can hit: malformed
tensors, incompatible operands, and invalid format parameters.
"""

from __future__ import annotations


class PastaError(Exception):
    """Base class for all errors raised by the benchmark suite."""


class TensorShapeError(PastaError):
    """A tensor's shape, order, or index arrays are inconsistent."""


class IncompatibleOperandsError(PastaError):
    """Two operands cannot be combined (orders, shapes, or patterns differ)."""


class FormatParameterError(PastaError):
    """A format parameter is out of range (e.g. HiCOO block size > 256)."""


class ModeError(PastaError):
    """A mode index is out of range for the tensor's order."""


class ConformanceError(PastaError):
    """A format instance violates its structural invariants, or two
    implementations of the same kernel semantics disagree."""


class BinaryFormatError(PastaError):
    """A binary tensor file is truncated, corrupt, or fails its checksum."""


class DatasetError(PastaError):
    """A dataset name is unknown or a dataset recipe cannot be realized."""


class PlatformError(PastaError):
    """A platform name is unknown or its parameters are inconsistent."""
