"""Tensor-times-vector (TTV) product in a chosen mode.

Paper Section II-C / III-B/III-D: ``Y = X ×_n v`` contracts mode ``n`` of a
sparse tensor with a dense vector, producing an order-``(N-1)`` sparse
tensor with one nonzero per mode-``n`` fiber of ``X`` (the sparse-dense
property of Li et al.).  The pre-processing stage groups nonzeros into
fibers and pre-allocates the output, exactly as Algorithm 1's lines 1-2;
the value computation then reduces each fiber.

The HiCOO variant represents the input in gHiCOO with the product mode
left *uncompressed*, which lets the kernel read product-mode coordinates
directly and keeps fibers intact across block boundaries (Section III-D1).
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..errors import IncompatibleOperandsError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.ghicoo import GHicooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..formats.modes import check_mode, normalize_mode
from ..perf.parallel import kernel_chunk_plan, run_chunks
from ..perf.plans import (
    build_ghicoo_fiber_plan,
    fiber_fptr,
    ghicoo_fiber_plan,
    ghicoo_for_mode,
)
from .schedule import GRAIN_FIBER, KernelSchedule


def _check_vector(x_shape_mode: int, v: np.ndarray) -> np.ndarray:
    v = np.asarray(v, dtype=VALUE_DTYPE)
    if v.ndim != 1:
        raise IncompatibleOperandsError(f"v must be a vector, got ndim={v.ndim}")
    if v.shape[0] != x_shape_mode:
        raise IncompatibleOperandsError(
            f"vector length {v.shape[0]} does not match mode size {x_shape_mode}"
        )
    return v


def _reduce_fibers(
    ordered: CooTensor, fptr: np.ndarray, mode: int, per_nonzero: np.ndarray
) -> Tuple[Tuple[int, ...], np.ndarray, np.ndarray]:
    """Segment-reduce per-nonzero contributions into fiber outputs.

    Returns the reduced output shape, the retained (non-product-mode)
    indices of each fiber, and the per-fiber sums.
    """
    other_modes = [m for m in range(ordered.order) if m != mode]
    out_shape = tuple(ordered.shape[m] for m in other_modes)
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return out_shape, np.empty((len(other_modes), 0), dtype=ordered.indices.dtype), (
            np.empty(0, dtype=VALUE_DTYPE)
        )
    sums = np.add.reduceat(per_nonzero.astype(np.float64), fptr[:-1])
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return out_shape, out_indices, sums.astype(VALUE_DTYPE)


def ttv_coo(x: CooTensor, v: np.ndarray, mode: int) -> CooTensor:
    """COO-TTV (Algorithm 1): ``Y = X ×_mode v`` with a COO output.

    The output has one nonzero per mode-``mode`` fiber of ``X`` and drops
    that mode from the shape.
    """
    mode = x.check_mode(mode)
    v = _check_vector(x.shape[mode], v)
    ordered, fptr = x.fiber_partition(mode)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttv", mode), element_offsets=fptr
    )
    if chunks is None:
        per_nonzero = ordered.values * v[ordered.indices[mode]]
        out_shape, out_indices, out_values = _reduce_fibers(
            ordered, fptr, mode, per_nonzero
        )
        return CooTensor(out_shape, out_indices, out_values, validate=False)
    # Parallel region: fibers are the units, so every worker owns a
    # disjoint run of output nonzeros.  Each chunk repeats the serial
    # gather-multiply-reduceat on its own element slice — same elements,
    # same order, float64 accumulation — so the result is bit-identical.
    other_modes = [m for m in range(ordered.order) if m != mode]
    out_shape = tuple(ordered.shape[m] for m in other_modes)
    num_fibers = len(fptr) - 1
    sums = np.empty(num_fibers, dtype=np.float64)
    values = ordered.values
    product_indices = ordered.indices[mode]

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        per_nonzero = values[e0:e1] * v[product_indices[e0:e1]]
        sums[u0:u1] = np.add.reduceat(
            per_nonzero.astype(np.float64), fptr[u0:u1] - e0
        )

    run_chunks(
        chunks, task, kernel="TTV-COO", grain="fiber", outputs=((sums, "unit"),)
    )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return CooTensor(
        out_shape, out_indices, sums.astype(VALUE_DTYPE), validate=False
    )


def ttv_hicoo(
    x: Union[CooTensor, HicooTensor, GHicooTensor],
    v: np.ndarray,
    mode: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> HicooTensor:
    """HiCOO-TTV: gHiCOO input (product mode uncompressed), HiCOO output.

    The value computation is identical to COO-TTV (paper: "the same
    computation will be implemented ... as in their COO counterparts");
    only the storage of the input and the pre-allocated output differ.
    The kernel itself runs directly on the gHiCOO arrays
    (:func:`ttv_ghicoo_direct`).
    """
    source: Union[CooTensor, HicooTensor, GHicooTensor] = x
    if isinstance(x, GHicooTensor):
        block_size = x.block_size
        mode = normalize_mode(x.order, mode)
        if tuple(x.uncompressed_modes) == (mode % x.order,):
            return ttv_ghicoo_direct(x, v, mode)
    elif isinstance(x, HicooTensor):
        block_size = x.block_size
    mode = source.check_mode(mode)
    # The gHiCOO representation the kernel consumes: compress all modes
    # except the product mode.  The rebuild is memoized per (mode, block
    # size) on the source tensor, so repeated TTVs pay it once.
    ghicoo = ghicoo_for_mode(source, mode, block_size)
    return ttv_ghicoo_direct(ghicoo, v, mode)


def ttv_ghicoo_direct(
    ghicoo: GHicooTensor, v: np.ndarray, mode: int
) -> HicooTensor:
    """TTV directly on gHiCOO arrays, never materializing COO.

    Exploits the representation's design (paper Section III-D1): with the
    product mode *uncompressed*, every mode-``mode`` fiber lies entirely
    inside one block — fixing the other modes fixes the block — so the
    kernel can (a) group fibers by sorting only within the blocked
    order, (b) reduce each fiber with no data race between blocks, and
    (c) emit the output's HiCOO block structure for free, reusing the
    input's ``binds``.
    """
    order = ghicoo.order
    mode = check_mode(order, mode, exc=IncompatibleOperandsError)
    if tuple(ghicoo.uncompressed_modes) != (mode,):
        raise IncompatibleOperandsError(
            f"direct gHiCOO TTV needs exactly the product mode {mode} "
            f"uncompressed, got uncompressed={ghicoo.uncompressed_modes}"
        )
    v = _check_vector(ghicoo.shape[mode], v)
    nnz = ghicoo.nnz
    out_shape = tuple(
        s for m, s in enumerate(ghicoo.shape) if m != mode
    )
    if nnz == 0:
        empty = CooTensor.empty(out_shape)
        return HicooTensor.from_coo(empty, ghicoo.block_size)
    # Sort nonzeros by (block, element indices of the compressed modes):
    # fibers become contiguous, and blocks stay contiguous.  The sort,
    # fiber boundaries, and output block structure are all index-derived,
    # so they live in a (cached) plan; only the value reduction and the
    # vector gather run per call.
    plan = ghicoo_fiber_plan(ghicoo)
    if plan is None:
        plan = build_ghicoo_fiber_plan(ghicoo)
    chunks = kernel_chunk_plan(
        ghicoo,
        grain="fiber",
        key="ghicoo_ttv",
        element_offsets=plan.fiber_offsets(),
    )
    if chunks is None:
        contributions = ghicoo.values[plan.perm].astype(np.float64) * v[
            plan.product_indices
        ]
        sums = np.add.reduceat(contributions, plan.fiber_starts)
    else:
        num_fibers = plan.fiber_starts.shape[0]
        sums = np.empty(num_fibers, dtype=np.float64)
        values = ghicoo.values
        perm = plan.perm
        product_indices = plan.product_indices
        fiber_starts = plan.fiber_starts

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            contributions = values[perm[e0:e1]].astype(np.float64) * v[
                product_indices[e0:e1]
            ]
            sums[u0:u1] = np.add.reduceat(
                contributions, fiber_starts[u0:u1] - e0
            )

        run_chunks(
            chunks,
            task,
            kernel="TTV-HiCOO",
            grain="fiber",
            outputs=((sums, "unit"),),
        )
    return HicooTensor(
        out_shape,
        ghicoo.block_size,
        plan.out_bptr,
        plan.out_binds,
        plan.fiber_einds,
        sums.astype(VALUE_DTYPE),
        validate=False,
    )


def schedule_ttv(
    x: CooTensor, mode: int, tensor_format: str = "COO"
) -> KernelSchedule:
    """Machine schedule of TTV (Table I row three).

    Parallelized over fibers; ``work_units`` are the actual fiber lengths,
    whose skew produces the load imbalance the paper flags for
    COO-TTV-OMP/GPU.  Traffic: ``8M`` streamed input (values plus
    product-mode indices), ``4M`` irregular vector gathers, and ``12 M_F``
    streamed output entries.
    """
    mode = x.check_mode(mode)
    fiber_lengths = np.diff(fiber_fptr(x, mode))
    nnz = x.nnz
    num_fibers = len(fiber_lengths)
    vector_bytes = 4 * x.shape[mode]
    return KernelSchedule(
        kernel="TTV",
        tensor_format=tensor_format,
        flops=2 * nnz,
        streamed_bytes=8 * nnz + 12 * num_fibers,
        irregular_bytes=4 * nnz,
        work_units=fiber_lengths,
        parallel_grain=GRAIN_FIBER,
        working_set_bytes=8 * nnz + 12 * num_fibers + vector_bytes,
        reuse_bytes=max(4 * nnz - vector_bytes, 0),
        writeallocate_bytes=12 * num_fibers,
        irregular_chunk_bytes=4,
        random_operand_bytes=vector_bytes,
        notes={"num_fibers": float(num_fibers), "vector_bytes": float(vector_bytes)},
    )
