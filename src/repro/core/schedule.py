"""Kernel schedules: the machine-visible footprint of one kernel run.

The paper's observations all hinge on quantities the hardware sees rather
than on the arithmetic itself: how many bytes stream sequentially versus
land on irregular addresses, how evenly work divides across threads or
thread blocks, and how many atomic updates collide.  A
:class:`KernelSchedule` captures exactly those quantities for a concrete
(kernel, format, tensor) triple.  The numeric kernel implementations in
this package produce correct values; their companion ``schedule_*``
functions produce these schedules, which the :mod:`repro.machine` models
lower to predicted runtimes on the paper's four platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

#: Parallelization grains used by the suite's algorithms.
GRAIN_NONZERO = "nonzero"
GRAIN_FIBER = "fiber"
GRAIN_BLOCK = "block"
GRAIN_MATRIX_ROW = "matrix-row"

_VALID_GRAINS = (GRAIN_NONZERO, GRAIN_FIBER, GRAIN_BLOCK, GRAIN_MATRIX_ROW)


@dataclass
class KernelSchedule:
    """What one kernel execution asks of the machine.

    Attributes
    ----------
    kernel / tensor_format:
        Names for reporting, e.g. ``"MTTKRP"`` / ``"HiCOO"``.
    flops:
        Floating-point operations performed.
    streamed_bytes:
        Bytes moved with a sequential (prefetch-friendly) pattern: value
        arrays, index arrays, output streams.
    irregular_bytes:
        Bytes moved through data-dependent addresses: vector/matrix row
        gathers, atomic update targets.  These defeat prefetching and pay
        full memory latency unless they hit in cache.
    work_units:
        Per-parallel-unit work sizes (nonzeros per fiber, per block, or a
        uniform chunking for nonzero-parallel kernels).  The spread of
        this array is the source of load imbalance.
    parallel_grain:
        Which unit ``work_units`` counts: one of ``nonzero``, ``fiber``,
        ``block``, ``matrix-row``.
    atomic_updates:
        Number of atomic read-modify-write operations issued.
    atomic_conflict_fraction:
        Estimated fraction of atomic updates that contend with another
        thread for the same address (0 when no atomics are used).
    working_set_bytes:
        Bytes that must be resident for the kernel to run from cache: the
        reusable operands (input/output values, dense matrices).  Drives
        the cache-residency effects of the paper's Observation 2.
    reuse_bytes:
        The portion of traffic that is *re-referenced* and therefore can be
        served by the LLC when ``working_set_bytes`` fits.
    writeallocate_bytes:
        Output-stream bytes whose stores pay read-for-ownership traffic.
        Table I's upper bounds (and ERT's streaming-store micro-kernels)
        do not count this, which is one reason measured kernels sit below
        the Roofline line at large sizes.
    irregular_chunk_bytes:
        Contiguous bytes fetched per irregular access: 4 for a scalar
        vector gather (TTV), ``4R`` for a matrix-row gather (TTM/MTTKRP).
        Wider chunks coalesce better on GPUs and use cache lines better
        on CPUs.
    random_operand_bytes:
        Size of the dense operand the irregular accesses target (the TTV
        vector, the TTM matrix, the MTTKRP factors).  When it fits in the
        LLC the gathers are served from cache.
    notes:
        Free-form diagnostic counters (fiber count, block count, ...).
    """

    kernel: str
    tensor_format: str
    flops: int
    streamed_bytes: int
    irregular_bytes: int
    work_units: np.ndarray
    parallel_grain: str
    atomic_updates: int = 0
    atomic_conflict_fraction: float = 0.0
    working_set_bytes: int = 0
    reuse_bytes: int = 0
    writeallocate_bytes: int = 0
    irregular_chunk_bytes: int = 4
    random_operand_bytes: int = 0
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.parallel_grain not in _VALID_GRAINS:
            raise ValueError(
                f"parallel_grain must be one of {_VALID_GRAINS}, "
                f"got {self.parallel_grain!r}"
            )
        self.work_units = np.asarray(self.work_units, dtype=np.int64)
        if self.flops < 0 or self.streamed_bytes < 0 or self.irregular_bytes < 0:
            raise ValueError("schedule counters must be non-negative")
        if not 0.0 <= self.atomic_conflict_fraction <= 1.0:
            raise ValueError("atomic_conflict_fraction must be in [0, 1]")

    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """All bytes the kernel moves, streamed plus irregular."""
        return self.streamed_bytes + self.irregular_bytes

    @property
    def operational_intensity(self) -> float:
        """Flops per byte against the upper-bound traffic (Table I's OI)."""
        if self.total_bytes == 0:
            return float("inf") if self.flops else 0.0
        return self.flops / self.total_bytes

    @property
    def num_work_units(self) -> int:
        """Number of independent parallel units."""
        return int(self.work_units.size)

    def load_imbalance(self, workers: int) -> float:
        """Makespan-over-mean ratio when units are greedily scheduled.

        Uses the longest-processing-time bound: with total work ``W``
        spread over ``workers`` and a largest indivisible unit ``u_max``,
        the makespan is at least ``max(W / workers, u_max)``.  This
        matches OpenMP dynamic scheduling and the GPU block scheduler: a
        single giant fiber or tensor block serializes on one worker no
        matter how the rest balance.  Returns 1.0 for perfect balance;
        TTV on skewed fiber lengths and HiCOO-MTTKRP-GPU on skewed block
        occupancies yield larger values.
        """
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if self.work_units.size == 0:
            return 1.0
        total = float(self.work_units.sum())
        if total == 0.0:
            return 1.0
        mean_bin = total / min(workers, self.work_units.size)
        heaviest = float(self.work_units.max())
        return max(mean_bin, heaviest) / mean_bin

    def scaled(self, factor: float) -> "KernelSchedule":
        """A copy with all volume counters scaled (for iteration counts)."""
        return KernelSchedule(
            kernel=self.kernel,
            tensor_format=self.tensor_format,
            flops=int(self.flops * factor),
            streamed_bytes=int(self.streamed_bytes * factor),
            irregular_bytes=int(self.irregular_bytes * factor),
            work_units=self.work_units,
            parallel_grain=self.parallel_grain,
            atomic_updates=int(self.atomic_updates * factor),
            atomic_conflict_fraction=self.atomic_conflict_fraction,
            working_set_bytes=self.working_set_bytes,
            reuse_bytes=int(self.reuse_bytes * factor),
            writeallocate_bytes=int(self.writeallocate_bytes * factor),
            irregular_chunk_bytes=self.irregular_chunk_bytes,
            random_operand_bytes=self.random_operand_bytes,
            notes=dict(self.notes),
        )


def warp_divergence_factor(work_units: np.ndarray, warp_size: int = 32) -> float:
    """Slowdown from intra-warp divergence when one thread owns one unit.

    GPU TTV/TTM assign one thread per fiber; a warp runs as long as its
    longest fiber, so the factor is (sum over warps of the max unit) over
    (sum of all units).  Uniform units give 1.0.
    """
    units = np.asarray(work_units, dtype=np.float64)
    if units.size == 0:
        return 1.0
    total = units.sum(dtype=np.float64)
    if total == 0:
        return 1.0
    pad = (-units.size) % warp_size
    padded = np.concatenate([units, np.zeros(pad, dtype=np.float64)])
    warps = padded.reshape(-1, warp_size)
    warp_time = warps.max(axis=1) * warp_size
    return float(warp_time.sum(dtype=np.float64) / total)


def uniform_work_units(total_work: int, grain_size: int = 256) -> np.ndarray:
    """Split embarrassingly parallel work into near-equal chunks.

    Mirrors the suite's GPU launch of ``M / 256`` one-dimensional thread
    blocks of 256 threads for nonzero-parallel kernels.
    """
    if total_work <= 0:
        return np.zeros(0, dtype=np.int64)
    full, rem = divmod(total_work, grain_size)
    units = [grain_size] * full
    if rem:
        units.append(rem)
    return np.asarray(units, dtype=np.int64)


def estimate_conflict_fraction(
    targets: np.ndarray, num_targets: Optional[int] = None
) -> float:
    """Estimate the fraction of atomic updates that collide.

    Uses the observed multiplicity of each update target: with ``c_i``
    updates landing on target ``i``, every update beyond the first on a
    target is counted as conflicting, so the fraction is
    ``sum(c_i - 1) / sum(c_i)``.  This is an upper bound for time-local
    contention but tracks the paper's point that MTTKRP's data race cost
    "may influence its performance differently depending on the non-zero
    distribution of an input tensor".
    """
    targets = np.asarray(targets)
    if targets.size == 0:
        return 0.0
    counts = np.bincount(
        targets.astype(np.int64),
        minlength=num_targets if num_targets else 0,
    )
    counts = counts[counts > 0]
    total = counts.sum(dtype=np.int64)
    conflicts = (counts - 1).sum(dtype=np.int64)
    return float(conflicts) / float(total) if total else 0.0
