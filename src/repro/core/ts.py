"""Tensor-scalar (TS) operations: TSA, TSS, TSM, TSD.

Paper Section II-B.  The suite implements addition (TSA) and
multiplication (TSM), which suffice for all four operations
(``x - s == x + (-s)``, ``x / s == x * (1/s)``); subtraction and division
are provided here as conveniences built on those two.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import PastaError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.hicoo import HicooTensor
from ..formats.scoo import SemiSparseCooTensor
from ..formats.shicoo import SHicooTensor
from ..perf.parallel import kernel_chunk_plan, run_chunks
from ..perf.plans import adopt_plans
from .schedule import GRAIN_NONZERO, KernelSchedule, uniform_work_units

_SparseTensor = Union[CooTensor, HicooTensor, SemiSparseCooTensor, SHicooTensor]

_SUPPORTED_TYPES = (CooTensor, HicooTensor, SemiSparseCooTensor, SHicooTensor)


def _check_tensor(tensor: _SparseTensor) -> _SparseTensor:
    """Reject operand types TS does not support, with a clear error."""
    if not isinstance(tensor, _SUPPORTED_TYPES):
        raise PastaError(
            f"unsupported tensor type for TS: {type(tensor).__name__}"
        )
    return tensor


def _apply_to_values(tensor: _SparseTensor, values: np.ndarray) -> _SparseTensor:
    """Rebuild a tensor of the same format around new values.

    The result shares the input's index arrays, so any cached structural
    plans (sort permutations, fiber partitions, ...) remain valid and are
    shared with the output.
    """
    values = values.astype(VALUE_DTYPE)
    if isinstance(tensor, CooTensor):
        result: _SparseTensor = CooTensor(
            tensor.shape, tensor.indices, values, validate=False
        )
    elif isinstance(tensor, HicooTensor):
        result = HicooTensor(
            tensor.shape,
            tensor.block_size,
            tensor.bptr,
            tensor.binds,
            tensor.einds,
            values,
            validate=False,
        )
    elif isinstance(tensor, SemiSparseCooTensor):
        result = SemiSparseCooTensor(
            tensor.shape, tensor.dense_modes, tensor.indices, values,
            validate=False,
        )
    elif isinstance(tensor, SHicooTensor):
        result = SHicooTensor(
            tensor.shape,
            tensor.block_size,
            tensor.dense_modes,
            tensor.bptr,
            tensor.binds,
            tensor.einds,
            values,
            validate=False,
        )
    else:
        raise PastaError(f"unsupported tensor type for TS: {type(tensor).__name__}")
    adopt_plans(result, tensor)
    return result


def _ts_values(
    values: np.ndarray, ufunc: np.ufunc, scalar: np.ndarray
) -> np.ndarray:
    """``ufunc(values, scalar)``, chunked over nonzero ranges when parallel."""
    nnz = values.shape[0]
    chunks = kernel_chunk_plan(None, grain="nonzero", total_elements=nnz)
    if chunks is None:
        return ufunc(values, scalar)
    out = np.empty(nnz, dtype=VALUE_DTYPE)

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        ufunc(values[e0:e1], scalar, out=out[e0:e1])

    run_chunks(
        chunks, task, kernel="TS", grain="nonzero", outputs=((out, "element"),)
    )
    return out


def ts_add(tensor: _SparseTensor, scalar: float) -> _SparseTensor:
    """TSA: add ``scalar`` to every stored nonzero value.

    Note the sparse semantics: *absent* entries stay zero, as in the
    paper's suite, which operates on the nonzero values only.
    """
    tensor = _check_tensor(tensor)
    return _apply_to_values(
        tensor, _ts_values(tensor.values, np.add, VALUE_DTYPE(scalar))
    )


def ts_mul(tensor: _SparseTensor, scalar: float) -> _SparseTensor:
    """TSM: multiply every stored nonzero value by ``scalar``."""
    tensor = _check_tensor(tensor)
    return _apply_to_values(
        tensor, _ts_values(tensor.values, np.multiply, VALUE_DTYPE(scalar))
    )


def ts_sub(tensor: _SparseTensor, scalar: float) -> _SparseTensor:
    """TSS, expressed through TSA as the paper prescribes."""
    return ts_add(tensor, -scalar)


def ts_div(tensor: _SparseTensor, scalar: float) -> _SparseTensor:
    """TSD, expressed through TSM as the paper prescribes."""
    if scalar == 0:
        raise PastaError("tensor-scalar division by zero")
    return ts_mul(tensor, 1.0 / scalar)


def ts(tensor: _SparseTensor, scalar: float, op: str = "mul") -> _SparseTensor:
    """Dispatch a tensor-scalar operation by name (add/sub/mul/div)."""
    table = {"add": ts_add, "sub": ts_sub, "mul": ts_mul, "div": ts_div}
    if op not in table:
        raise PastaError(f"unknown TS operation {op!r}; use one of {sorted(table)}")
    return table[op](tensor, scalar)


def schedule_ts(tensor: _SparseTensor, tensor_format: str = "COO") -> KernelSchedule:
    """Machine schedule of TS (Table I row two).

    Streams the value array in and out (``8M`` bytes) with one flop per
    nonzero; embarrassingly parallel.
    """
    nnz = tensor.nnz
    return KernelSchedule(
        kernel="TS",
        tensor_format=tensor_format,
        flops=nnz,
        streamed_bytes=8 * nnz,
        irregular_bytes=0,
        work_units=uniform_work_units(nnz),
        parallel_grain=GRAIN_NONZERO,
        working_set_bytes=8 * nnz,
        reuse_bytes=0,
        writeallocate_bytes=4 * nnz,
    )
