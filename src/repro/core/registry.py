"""Named algorithm registry: "[Format]-[Kernel]-[Parallelization]".

The paper names every algorithm in this pattern (COO-TTV-OMP,
HiCOO-MTTKRP-GPU, ...).  This module is the single place that maps those
names to (a) the numeric kernel implementation, (b) the schedule
extractor the machine models consume, and (c) an operand factory that
builds the dense vector/matrix/factor operands a kernel needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import PastaError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from .analysis import DEFAULT_RANK, KERNELS
from .mttkrp import (
    mttkrp_coo,
    mttkrp_hicoo,
    schedule_mttkrp_coo,
    schedule_mttkrp_hicoo,
)
from .schedule import KernelSchedule
from .tew import schedule_tew, tew_coo, tew_hicoo
from .ts import schedule_ts, ts
from .ttm import schedule_ttm, ttm_coo, ttm_hicoo
from .ttv import schedule_ttv, ttv_coo, ttv_hicoo

FORMATS = ("COO", "HiCOO")
TARGETS = ("OMP", "GPU")


@dataclass(frozen=True)
class AlgorithmName:
    """Parsed "[Format]-[Kernel]-[Parallelization]" algorithm name."""

    tensor_format: str
    kernel: str
    target: str

    def __str__(self) -> str:
        return f"{self.tensor_format}-{self.kernel}-{self.target}"


def parse_algorithm_name(name: str) -> AlgorithmName:
    """Parse e.g. ``"HiCOO-MTTKRP-GPU"`` into its three components."""
    parts = name.split("-")
    if len(parts) != 3:
        raise PastaError(
            f"algorithm name must look like 'COO-TTV-OMP', got {name!r}"
        )
    fmt, kernel, target = parts
    fmt_map = {f.upper(): f for f in FORMATS}
    if fmt.upper() not in fmt_map:
        raise PastaError(f"unknown format {fmt!r}; use one of {FORMATS}")
    if kernel.upper() not in KERNELS:
        raise PastaError(f"unknown kernel {kernel!r}; use one of {KERNELS}")
    if target.upper() not in TARGETS:
        raise PastaError(f"unknown target {target!r}; use one of {TARGETS}")
    return AlgorithmName(fmt_map[fmt.upper()], kernel.upper(), target.upper())


def all_algorithm_names() -> Tuple[str, ...]:
    """Every algorithm the suite implements, in paper order."""
    return tuple(
        f"{fmt}-{kernel}-{target}"
        for target in TARGETS
        for fmt in FORMATS
        for kernel in KERNELS
    )


@dataclass
class KernelOperands:
    """Dense operands for one kernel invocation on one tensor."""

    second_tensor: Optional[CooTensor] = None
    scalar: Optional[float] = None
    vector: Optional[np.ndarray] = None
    matrix: Optional[np.ndarray] = None
    factors: Optional[Tuple[np.ndarray, ...]] = None


def make_operands(
    x: CooTensor,
    kernel: str,
    *,
    mode: int = 0,
    rank: int = DEFAULT_RANK,
    seed: int = 0,
) -> KernelOperands:
    """Build the operands the named kernel needs, deterministically."""
    kernel = kernel.upper()
    rng = np.random.default_rng(seed)
    if kernel == "TEW":
        other_values = rng.uniform(0.5, 1.5, size=x.nnz).astype(VALUE_DTYPE)
        other = CooTensor(x.shape, x.indices, other_values, validate=False)
        return KernelOperands(second_tensor=other)
    if kernel == "TS":
        return KernelOperands(scalar=float(rng.uniform(0.5, 1.5)))
    if kernel == "TTV":
        vector = rng.uniform(0.5, 1.5, size=x.shape[mode]).astype(VALUE_DTYPE)
        return KernelOperands(vector=vector)
    if kernel == "TTM":
        matrix = rng.uniform(0.5, 1.5, size=(x.shape[mode], rank)).astype(VALUE_DTYPE)
        return KernelOperands(matrix=matrix)
    if kernel == "MTTKRP":
        factors = tuple(
            rng.uniform(0.5, 1.5, size=(size, rank)).astype(VALUE_DTYPE)
            for size in x.shape
        )
        return KernelOperands(factors=factors)
    raise PastaError(f"unknown kernel: {kernel!r}")


def run_algorithm(
    name: str,
    x: CooTensor,
    operands: Optional[KernelOperands] = None,
    *,
    mode: int = 0,
    rank: int = DEFAULT_RANK,
    op: str = "add",
    block_size: int = DEFAULT_BLOCK_SIZE,
    hicoo: Optional[HicooTensor] = None,
    seed: int = 0,
) -> Any:
    """Run the named algorithm's numeric implementation.

    ``x`` is always supplied in COO; HiCOO algorithms convert (or reuse a
    pre-converted ``hicoo``, mirroring the suite's format pre-processing
    being outside the timed region).  The OMP and GPU variants of an
    algorithm compute identical values — they differ only in schedule —
    so both names dispatch to the same implementation here.
    """
    parsed = parse_algorithm_name(name)
    if operands is None:
        operands = make_operands(x, parsed.kernel, mode=mode, rank=rank, seed=seed)
    if parsed.kernel == "TEW":
        if parsed.tensor_format == "COO":
            return tew_coo(x, operands.second_tensor, op)
        hx = hicoo if hicoo is not None else HicooTensor.from_coo(x, block_size)
        hy = HicooTensor.from_coo(operands.second_tensor, block_size)
        return tew_hicoo(hx, hy, op)
    if parsed.kernel == "TS":
        if parsed.tensor_format == "COO":
            return ts(x, operands.scalar, "mul")
        hx = hicoo if hicoo is not None else HicooTensor.from_coo(x, block_size)
        return ts(hx, operands.scalar, "mul")
    if parsed.kernel == "TTV":
        if parsed.tensor_format == "COO":
            return ttv_coo(x, operands.vector, mode)
        return ttv_hicoo(x, operands.vector, mode, block_size)
    if parsed.kernel == "TTM":
        if parsed.tensor_format == "COO":
            return ttm_coo(x, operands.matrix, mode)
        return ttm_hicoo(x, operands.matrix, mode, block_size)
    if parsed.kernel == "MTTKRP":
        if parsed.tensor_format == "COO":
            return mttkrp_coo(x, operands.factors, mode)
        hx = hicoo if hicoo is not None else HicooTensor.from_coo(x, block_size)
        return mttkrp_hicoo(hx, operands.factors, mode)
    raise PastaError(f"unhandled kernel {parsed.kernel!r}")


def make_schedule(
    name: str,
    x: CooTensor,
    *,
    mode: int = 0,
    rank: int = DEFAULT_RANK,
    block_size: int = DEFAULT_BLOCK_SIZE,
    hicoo: Optional[HicooTensor] = None,
) -> KernelSchedule:
    """Extract the machine schedule of the named algorithm on ``x``."""
    parsed = parse_algorithm_name(name)
    if parsed.kernel == "TEW":
        return schedule_tew(x, parsed.tensor_format)
    if parsed.kernel == "TS":
        return schedule_ts(x, parsed.tensor_format)
    if parsed.kernel == "TTV":
        return schedule_ttv(x, mode, parsed.tensor_format)
    if parsed.kernel == "TTM":
        return schedule_ttm(x, mode, rank, parsed.tensor_format)
    if parsed.kernel == "MTTKRP":
        if parsed.tensor_format == "COO":
            return schedule_mttkrp_coo(x, mode, rank)
        hx = hicoo if hicoo is not None else HicooTensor.from_coo(x, block_size)
        return schedule_mttkrp_hicoo(hx, mode, rank)
    raise PastaError(f"unhandled kernel {parsed.kernel!r}")


def algorithm_descriptions() -> Dict[str, str]:
    """One-line description of each algorithm, for CLI listings."""
    notes = {
        "TEW": "element-wise op over matching nonzeros",
        "TS": "scalar op over nonzero values",
        "TTV": "fiber-parallel tensor-times-vector",
        "TTM": "fiber-parallel tensor-times-matrix (semi-sparse output)",
        "MTTKRP": "matricized tensor times Khatri-Rao product",
    }
    grain = {
        ("COO", "MTTKRP"): "nonzero-parallel with atomics",
        ("HiCOO", "MTTKRP"): "block-parallel with factor-row reuse",
    }
    out = {}
    for name in all_algorithm_names():
        parsed = parse_algorithm_name(name)
        detail = grain.get((parsed.tensor_format, parsed.kernel), notes[parsed.kernel])
        out[name] = f"{detail} on {parsed.target}"
    return out
