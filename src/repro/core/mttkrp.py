"""Matricized tensor times Khatri-Rao product (MTTKRP).

Paper Section II-E / III-B/III-D: the workhorse of CPD.  For mode ``n``
and factor matrices ``U^(1..N)``, each nonzero ``x`` at coordinates
``(i_1, ..., i_N)`` scales the elementwise product of the *other* modes'
factor rows and accumulates it into row ``i_n`` of the output:

    out[i_n, :] += value * U^(1)[i_1, :] ∘ ... ∘ U^(N)[i_N, :]   (mode n skipped)

The Khatri-Rao product is never materialized — it is fused into the
sparse traversal, as the paper prescribes.  COO-MTTKRP parallelizes over
nonzeros with atomic row updates; HiCOO-MTTKRP (Algorithm 3) parallelizes
over tensor blocks, reusing a window of ``B`` factor rows per block.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..errors import IncompatibleOperandsError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..formats.modes import check_mode
from ..perf.parallel import kernel_chunk_plan, run_chunks, want_parallel
from ..perf.plans import (
    ModeSortPlan,
    build_mode_sort_plan,
    expanded_coo,
    expanded_indices,
    hicoo_for,
    mode_sort_plan,
)
from ..perf.scatter import scatter_cols_segmented, scatter_rows_bincount
from .schedule import (
    GRAIN_BLOCK,
    GRAIN_NONZERO,
    KernelSchedule,
    estimate_conflict_fraction,
    uniform_work_units,
)


def check_factors(
    shape: Sequence[int], factors: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Validate one factor matrix per mode, all with a common rank."""
    if len(factors) != len(shape):
        raise IncompatibleOperandsError(
            f"need {len(shape)} factor matrices, got {len(factors)}"
        )
    checked = []
    rank = None
    for mode, (size, factor) in enumerate(zip(shape, factors)):
        factor = np.asarray(factor, dtype=VALUE_DTYPE)
        if factor.ndim != 2:
            raise IncompatibleOperandsError(f"factor {mode} must be a matrix")
        if factor.shape[0] != size:
            raise IncompatibleOperandsError(
                f"factor {mode} has {factor.shape[0]} rows, mode size is {size}"
            )
        if rank is None:
            rank = factor.shape[1]
        elif factor.shape[1] != rank:
            raise IncompatibleOperandsError(
                f"factor {mode} has rank {factor.shape[1]}, expected {rank}"
            )
        checked.append(factor)
    return checked


def _khatri_rao_rows(
    indices: np.ndarray,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Per-nonzero contribution rows: value times the other factors' rows."""
    rank = factors[0].shape[1]
    rows = np.broadcast_to(
        values[:, None].astype(np.float64), (values.shape[0], rank)
    ).copy()
    for m, factor in enumerate(factors):
        if m == mode:
            continue
        rows *= factor[indices[m]]
    return rows


def _khatri_rao_cols_sorted(
    sorted_indices: np.ndarray,
    sorted_values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """Khatri-Rao products in plan sort order, as ``(rank, nnz)`` columns.

    The segmented scatter accumulates in float64 anyway, so the products
    stay float32 here — the first factor gather doubles as the
    accumulator, saving the float64 broadcast copy of the fallback path.
    The transposed layout makes each reduceat segment contiguous.
    """
    cols = None
    for m, factor in enumerate(factors):
        if m == mode:
            continue
        gathered = np.take(factor.T, sorted_indices[m], axis=1)
        if cols is None:
            cols = gathered
        else:
            cols *= gathered
    if cols is None:  # order-1 tensor: no other factors
        rank = factors[0].shape[1]
        return np.broadcast_to(
            sorted_values, (rank, sorted_values.shape[0])
        ).copy()
    cols *= sorted_values
    return cols


def _mttkrp_segmented(
    owner: object,
    plan: ModeSortPlan,
    values: np.ndarray,
    factors: Sequence[np.ndarray],
    mode: int,
    num_rows: int,
    kernel_label: str,
) -> np.ndarray:
    """Segmented MTTKRP over a mode-sort plan, serial or partitioned.

    The parallel path partitions by *output segments* — contiguous runs
    of sorted nonzeros sharing an output row — so each worker writes a
    disjoint set of output rows and reduces every segment over the same
    elements in the same order as the serial ``reduceat``.  Results are
    bit-identical to the serial segmented path (no atomics; float64
    accumulation either way), and chunked execution keeps the
    ``(rank, chunk)`` Khatri-Rao temporaries cache-resident instead of
    making several full-memory passes over a ``(rank, nnz)`` array.
    """
    sorted_values = plan.sorted_values(values)
    chunks = kernel_chunk_plan(
        owner,
        grain="segment",
        key=plan.mode,
        element_offsets=plan.segment_offsets(),
    )
    if chunks is None:
        cols = _khatri_rao_cols_sorted(
            plan.sorted_indices, sorted_values, factors, mode
        )
        return scatter_cols_segmented(plan, cols, num_rows)
    rank = factors[0].shape[1]
    out = np.zeros((num_rows, rank), dtype=np.float64)
    sorted_indices = plan.sorted_indices
    starts = plan.segment_starts
    targets = plan.unique_targets

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        cols = _khatri_rao_cols_sorted(
            sorted_indices[:, e0:e1], sorted_values[e0:e1], factors, mode
        )
        out[targets[u0:u1]] = np.add.reduceat(
            cols, starts[u0:u1] - e0, axis=1, dtype=np.float64
        ).T

    run_chunks(
        chunks,
        task,
        kernel=kernel_label,
        grain="segment",
        outputs=((out, ("rows", targets)),),
    )
    return out


def mttkrp_coo(
    x: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """COO-MTTKRP: nonzero-parallel with (fused) atomic output updates.

    Returns the updated dense matrix ``out ∈ R^{I_mode × R}``.  The entry
    of ``factors`` at position ``mode`` participates only through its
    shape (it defines the output's row count), matching equation (3).

    With plan caching on, nonzeros are pre-sorted by the output mode
    (once per tensor) and the scatter is a single segmented reduction —
    executed in parallel over output-segment chunks when
    ``repro.perf.parallel`` is configured with more than one thread;
    uncached serial calls keep the seed's bincount path, which needs no
    sort.
    """
    mode = x.check_mode(mode)
    factors = check_factors(x.shape, factors)
    plan = mode_sort_plan(x, mode)
    if plan is None and want_parallel(x.nnz):
        plan = build_mode_sort_plan(x, mode)
    if plan is None:
        rows = _khatri_rao_rows(x.indices, x.values, factors, mode)
        out = scatter_rows_bincount(x.indices[mode], rows, x.shape[mode])
    else:
        out = _mttkrp_segmented(
            x, plan, x.values, factors, mode, x.shape[mode], "MTTKRP-COO"
        )
    return out.astype(VALUE_DTYPE)


def mttkrp_hicoo(
    x: Union[HicooTensor, CooTensor],
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    literal_blocked: bool = False,
) -> np.ndarray:
    """HiCOO-MTTKRP (Algorithm 3): block-parallel with factor-row reuse.

    With ``literal_blocked=True`` the computation follows Algorithm 3
    line-by-line — looping blocks, slicing ``B``-row windows of each
    factor (``A_b``, ``B_b``, ``C_b``), and indexing them with the 8-bit
    element indices — which is useful for small tensors and for testing
    that the blocked arithmetic matches the vectorized path.  The default
    path computes the identical reduction vectorized over all nonzeros.
    """
    if isinstance(x, CooTensor):
        x = hicoo_for(x, DEFAULT_BLOCK_SIZE)
    mode = check_mode(x.order, mode, exc=IncompatibleOperandsError)
    factors = check_factors(x.shape, factors)
    if literal_blocked:
        return _mttkrp_hicoo_blocked(x, factors, mode)
    plan = mode_sort_plan(x, mode)
    if plan is None and want_parallel(x.nnz):
        plan = build_mode_sort_plan(x, mode)
    if plan is None:
        coo = expanded_coo(x)
        rows = _khatri_rao_rows(coo.indices, coo.values, factors, mode)
        out = scatter_rows_bincount(coo.indices[mode], rows, x.shape[mode])
    else:
        out = _mttkrp_segmented(
            x, plan, x.values, factors, mode, x.shape[mode], "MTTKRP-HiCOO"
        )
    return out.astype(VALUE_DTYPE)


def _mttkrp_hicoo_blocked(
    x: HicooTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Literal Algorithm 3: per-block windows of the factor matrices."""
    rank = factors[0].shape[1]
    block = x.block_size
    out = np.zeros((x.shape[mode], rank), dtype=np.float64)
    for b in range(x.num_blocks):
        lo, hi = int(x.bptr[b]), int(x.bptr[b + 1])
        base = [int(x.binds[m, b]) * block for m in range(x.order)]
        windows = [
            factor[base[m] : base[m] + block] for m, factor in enumerate(factors)
        ]
        eind = x.einds[:, lo:hi].astype(np.int64)
        rows = np.broadcast_to(
            x.values[lo:hi, None].astype(np.float64), (hi - lo, rank)
        ).copy()
        for m in range(x.order):
            if m == mode:
                continue
            rows *= windows[m][eind[m]]
        # Scatter into the block's output window with one bincount per
        # rank column.  Element indices stay below the window span, so
        # the bincount length is exactly the window — no ``np.add.at``,
        # whose per-element dispatch made this path unusable beyond toy
        # tensors.
        span = min(block, x.shape[mode] - base[mode])
        window_targets = eind[mode]
        acc = np.empty((span, rank), dtype=np.float64)
        for r in range(rank):
            acc[:, r] = np.bincount(
                window_targets, weights=rows[:, r], minlength=span
            )
        out[base[mode] : base[mode] + span] += acc
    return out.astype(VALUE_DTYPE)


def schedule_mttkrp_coo(
    x: CooTensor, mode: int, rank: int
) -> KernelSchedule:
    """Machine schedule of COO-MTTKRP (Table I row five, COO column).

    Nonzero-parallel.  Per nonzero: ``N`` irregular factor-row accesses of
    ``4R`` bytes each (``N-1`` reads plus the atomic output update) and
    ``4(N+1)`` streamed bytes of indices and value — ``12MR + 16M`` for
    order 3.  Every nonzero issues ``R`` scalar ``omp atomic`` adds (one
    per output column); the conflict fraction is measured from the actual
    output-index multiplicity.
    """
    mode = x.check_mode(mode)
    order = x.order
    nnz = x.nnz
    irregular = 4 * rank * order * nnz
    streamed = 4 * (order + 1) * nnz
    factor_bytes = 4 * rank * sum(x.shape)
    plan = mode_sort_plan(x, mode)
    if plan is not None and nnz:
        # 1 - (distinct rows / nnz) == sum(c_i - 1) / sum(c_i).
        conflict = 1.0 - plan.num_segments / nnz
    else:
        conflict = estimate_conflict_fraction(x.indices[mode], x.shape[mode])
    return KernelSchedule(
        kernel="MTTKRP",
        tensor_format="COO",
        flops=order * nnz * rank,
        streamed_bytes=streamed,
        irregular_bytes=irregular,
        work_units=uniform_work_units(nnz),
        parallel_grain=GRAIN_NONZERO,
        atomic_updates=nnz * rank,
        atomic_conflict_fraction=conflict,
        working_set_bytes=streamed + factor_bytes,
        reuse_bytes=max(irregular - factor_bytes, 0),
        irregular_chunk_bytes=4 * rank,
        random_operand_bytes=factor_bytes,
        notes={"rank": float(rank), "factor_bytes": float(factor_bytes)},
    )


def schedule_mttkrp_hicoo(
    x: HicooTensor, mode: int, rank: int
) -> KernelSchedule:
    """Machine schedule of HiCOO-MTTKRP (Table I row five, HiCOO column).

    Block-parallel; ``work_units`` are the real per-block nonzero counts,
    whose skew is why the paper's HiCOO-MTTKRP-GPU loses to COO.  Factor
    traffic shrinks to ``4R * N * min(n_b * B, M)`` because each block
    touches at most a ``B``-row window per factor; element streams cost
    ``(N + 4)`` bytes per nonzero and block metadata ``(4N + 8)`` bytes
    per block — ``12R min(n_b M_B, M) + 7M + 20 n_b`` for order 3.
    """
    order = x.order
    nnz = x.nnz
    nb = x.num_blocks
    mode = mode % order
    matrix_rows = min(nb * x.block_size, nnz)
    irregular = 4 * rank * order * matrix_rows
    streamed = (order + 4) * nnz + (4 * order + 8) * nb
    factor_bytes = 4 * rank * sum(x.shape)
    counts = x.nnz_per_block()
    # The atomics still land on individual output rows (Algorithm 3 line
    # 8), so contention is measured at element granularity just like COO.
    element_targets = expanded_indices(x)[mode]
    return KernelSchedule(
        kernel="MTTKRP",
        tensor_format="HiCOO",
        flops=order * nnz * rank,
        streamed_bytes=streamed,
        irregular_bytes=irregular,
        work_units=counts,
        parallel_grain=GRAIN_BLOCK,
        atomic_updates=nnz * rank,
        atomic_conflict_fraction=estimate_conflict_fraction(element_targets),
        working_set_bytes=streamed + factor_bytes,
        reuse_bytes=max(irregular - factor_bytes, 0),
        irregular_chunk_bytes=4 * rank,
        random_operand_bytes=factor_bytes,
        notes={
            "rank": float(rank),
            "num_blocks": float(nb),
            "factor_bytes": float(factor_bytes),
        },
    )
