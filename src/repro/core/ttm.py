"""Tensor-times-matrix (TTM, the n-mode product) in a chosen mode.

Paper Section II-D / III-B: ``Y = X ×_n U`` with ``U ∈ R^{I_n × R}``
replaces mode ``n``'s extent by ``R``.  By the sparse-dense property the
product mode of the output is *dense*, so COO-TTM emits an sCOO tensor and
HiCOO-TTM emits an sHiCOO tensor, both pre-allocated with one dense row of
width ``R`` per mode-``n`` fiber of ``X``.  The matrix is stored with
modes transposed relative to Kolda & Bader (rows indexed by ``i_n``) for
row-major efficiency, as the paper's footnote 2 explains.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import IncompatibleOperandsError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.ghicoo import GHicooTensor
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..formats.modes import check_mode
from ..formats.scoo import SemiSparseCooTensor
from ..formats.shicoo import SHicooTensor
from ..perf.parallel import kernel_chunk_plan, run_chunks
from ..perf.plans import (
    build_ghicoo_fiber_plan,
    fiber_fptr,
    ghicoo_fiber_plan,
    ghicoo_for_mode,
)
from .analysis import DEFAULT_RANK
from .schedule import GRAIN_FIBER, KernelSchedule


def _check_matrix(mode_size: int, matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=VALUE_DTYPE)
    if matrix.ndim != 2:
        raise IncompatibleOperandsError(f"U must be a matrix, got ndim={matrix.ndim}")
    if matrix.shape[0] != mode_size:
        raise IncompatibleOperandsError(
            f"matrix has {matrix.shape[0]} rows but mode size is {mode_size}"
        )
    return matrix


def ttm_coo(x: CooTensor, matrix: np.ndarray, mode: int) -> SemiSparseCooTensor:
    """COO-TTM: ``Y = X ×_mode U`` with a semi-sparse (sCOO) output.

    Pre-processing groups nonzeros into mode-``mode`` fibers and
    pre-allocates one dense output row per fiber; the kernel accumulates
    ``value * U[i_n, :]`` into its fiber's row.
    """
    mode = x.check_mode(mode)
    matrix = _check_matrix(x.shape[mode], matrix)
    rank = matrix.shape[1]
    ordered, fptr = x.fiber_partition(mode)
    out_shape = list(x.shape)
    out_shape[mode] = rank
    other_modes = [m for m in range(x.order) if m != mode]
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return SemiSparseCooTensor(
            out_shape,
            [mode],
            np.empty((len(other_modes), 0), dtype=ordered.indices.dtype),
            np.empty((0, rank), dtype=VALUE_DTYPE),
        )
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttm", mode), element_offsets=fptr
    )
    if chunks is None:
        contributions = ordered.values[:, None] * matrix[ordered.indices[mode]]
        rows = np.add.reduceat(
            contributions.astype(np.float64), fptr[:-1], axis=0
        )
    else:
        # Fiber-parallel region: each chunk owns whole fibers, hence a
        # disjoint slice of output rows, and replays the serial
        # gather-multiply-reduceat on its own element slice.
        rows = np.empty((num_fibers, rank), dtype=np.float64)
        values = ordered.values
        product_indices = ordered.indices[mode]

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            contributions = (
                values[e0:e1, None] * matrix[product_indices[e0:e1]]
            )
            rows[u0:u1] = np.add.reduceat(
                contributions.astype(np.float64), fptr[u0:u1] - e0, axis=0
            )

        run_chunks(
            chunks,
            task,
            kernel="TTM-COO",
            grain="fiber",
            outputs=((rows, "unit"),),
        )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return SemiSparseCooTensor(
        out_shape, [mode], out_indices, rows.astype(VALUE_DTYPE)
    )


def ttm_ghicoo_direct(
    ghicoo: GHicooTensor, matrix: np.ndarray, mode: int
) -> SHicooTensor:
    """TTM directly on gHiCOO arrays, never materializing COO.

    Mirrors :func:`repro.core.ttv.ttv_ghicoo_direct`: with the product
    mode uncompressed, every fiber lies inside one block, so fibers are
    grouped by an intra-block sort, each fiber accumulates
    ``value * U[i_n, :]`` rows without cross-block races, and the
    semi-sparse output's block structure is inherited from the input's
    ``binds`` — emitted straight into sHiCOO.
    """
    order = ghicoo.order
    mode = check_mode(order, mode, exc=IncompatibleOperandsError)
    if tuple(ghicoo.uncompressed_modes) != (mode,):
        raise IncompatibleOperandsError(
            f"direct gHiCOO TTM needs exactly the product mode {mode} "
            f"uncompressed, got uncompressed={ghicoo.uncompressed_modes}"
        )
    matrix = _check_matrix(ghicoo.shape[mode], matrix)
    rank = matrix.shape[1]
    out_shape = list(ghicoo.shape)
    out_shape[mode] = rank
    nnz = ghicoo.nnz
    if nnz == 0:
        from ..formats.coo import CooTensor

        return SHicooTensor.from_coo(
            CooTensor.empty(out_shape), [mode], ghicoo.block_size
        )
    # The fiber sort and output block structure come from the same cached
    # plan the direct TTV kernel uses; only the value/matrix work is
    # per-call.
    plan = ghicoo_fiber_plan(ghicoo)
    if plan is None:
        plan = build_ghicoo_fiber_plan(ghicoo)
    chunks = kernel_chunk_plan(
        ghicoo,
        grain="fiber",
        key="ghicoo_ttm",
        element_offsets=plan.fiber_offsets(),
    )
    if chunks is None:
        contributions = (
            ghicoo.values[plan.perm, None].astype(np.float64)
            * matrix[plan.product_indices]
        )
        rows = np.add.reduceat(contributions, plan.fiber_starts, axis=0)
    else:
        num_fibers = plan.fiber_starts.shape[0]
        rows = np.empty((num_fibers, rank), dtype=np.float64)
        values = ghicoo.values
        perm = plan.perm
        product_indices = plan.product_indices
        fiber_starts = plan.fiber_starts

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            contributions = (
                values[perm[e0:e1], None].astype(np.float64)
                * matrix[product_indices[e0:e1]]
            )
            rows[u0:u1] = np.add.reduceat(
                contributions, fiber_starts[u0:u1] - e0, axis=0
            )

        run_chunks(
            chunks,
            task,
            kernel="TTM-HiCOO",
            grain="fiber",
            outputs=((rows, "unit"),),
        )
    return SHicooTensor(
        out_shape,
        ghicoo.block_size,
        [mode],
        plan.out_bptr,
        plan.out_binds,
        plan.fiber_einds,
        rows.astype(VALUE_DTYPE),
        validate=False,
    )


def ttm_hicoo(
    x: Union[CooTensor, HicooTensor, GHicooTensor],
    matrix: np.ndarray,
    mode: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> SHicooTensor:
    """HiCOO-TTM: gHiCOO input (product mode uncompressed), sHiCOO output.

    Value computation matches COO-TTM; the input leaves the product mode
    uncompressed so blocking never splits a fiber, and the semi-sparse
    output is stored with its sparse modes block-compressed.  The kernel
    itself runs directly on the gHiCOO arrays (:func:`ttm_ghicoo_direct`).
    """
    if isinstance(x, GHicooTensor):
        block_size = x.block_size
        if -x.order <= mode < x.order and tuple(x.uncompressed_modes) == (
            mode % x.order,
        ):
            return ttm_ghicoo_direct(x, matrix, mode)
    elif isinstance(x, HicooTensor):
        block_size = x.block_size
    mode = x.check_mode(mode)
    ghicoo = ghicoo_for_mode(x, mode, block_size)
    return ttm_ghicoo_direct(ghicoo, matrix, mode)


def schedule_ttm(
    x: CooTensor,
    mode: int,
    rank: int = DEFAULT_RANK,
    tensor_format: str = "COO",
) -> KernelSchedule:
    """Machine schedule of TTM (Table I row four).

    Fiber-parallel like TTV.  Traffic per Table I: ``4MR`` irregular
    matrix-row gathers, ``4 M_F R`` streamed output rows, ``8M`` streamed
    input values/indices, and ``8 M_F`` output indices (twice for COO's
    extra index copy, once for HiCOO).  The dense matrix (``4 I_n R``
    bytes) is the reusable operand that can live in the LLC.
    """
    mode = x.check_mode(mode)
    fiber_lengths = np.diff(fiber_fptr(x, mode))
    nnz = x.nnz
    num_fibers = len(fiber_lengths)
    matrix_bytes = 4 * x.shape[mode] * rank
    if tensor_format.upper() == "HICOO":
        streamed = 4 * num_fibers * rank + 8 * nnz + 8 * num_fibers
    else:
        streamed = 4 * num_fibers * rank + 8 * nnz + 16 * num_fibers
    return KernelSchedule(
        kernel="TTM",
        tensor_format=tensor_format,
        flops=2 * nnz * rank,
        streamed_bytes=streamed,
        irregular_bytes=4 * nnz * rank,
        work_units=fiber_lengths,
        parallel_grain=GRAIN_FIBER,
        working_set_bytes=streamed + matrix_bytes,
        reuse_bytes=max(4 * nnz * rank - matrix_bytes, 0),
        writeallocate_bytes=4 * num_fibers * rank,
        irregular_chunk_bytes=4 * rank,
        random_operand_bytes=matrix_bytes,
        notes={
            "num_fibers": float(num_fibers),
            "rank": float(rank),
            "matrix_bytes": float(matrix_bytes),
        },
    )
