"""Tensor element-wise (TEW) operations: add, sub, mul, div.

Paper Section II-A / III-B.  The fast path handles two tensors with the
*same nonzero pattern* (the case the paper analyzes: one loop over values,
``M`` flops, ``12M`` bytes).  The general path handles different patterns
and even different shapes of the same order, predicting the output storage
by a sorted coordinate merge, as the paper's suite also supports.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

import numpy as np

from ..errors import IncompatibleOperandsError, PastaError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.hicoo import HicooTensor
from ..perf.parallel import kernel_chunk_plan, run_chunks
from .schedule import GRAIN_NONZERO, KernelSchedule, uniform_work_units

#: Supported element-wise operations and their numpy ufuncs.
OPERATIONS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}

#: Operations whose result at a position is nonzero when either input is
#: present there; ``mul``'s result is only nonzero where both are.
_UNION_OPS = ("add", "sub")
_INTERSECTION_OPS = ("mul", "div")


def _check_op(op: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    if op not in OPERATIONS:
        raise PastaError(f"unknown TEW operation {op!r}; use one of {sorted(OPERATIONS)}")
    return OPERATIONS[op]


def _tew_values(
    ufunc: Callable[..., np.ndarray],
    x_values: np.ndarray,
    y_values: np.ndarray,
    kernel: str,
    op: str = "",
) -> np.ndarray:
    """Apply ``ufunc`` over aligned value arrays, chunked when parallel.

    Elementwise ops have no cross-element dependency, so any nonzero-range
    partition yields the exact serial result.  When a compiled backend is
    available and the region would run in parallel, the op goes through
    :func:`repro.perf.jit.tew_values` — single-precision IEEE ``+ - * /``
    are exactly defined, so the compiled result is bit-identical to the
    ufunc while the ctypes calls release the GIL for the worker pool.
    """
    if op:
        from ..perf.jit import tew_values as jit_tew_values

        jitted = jit_tew_values(op, x_values, y_values, kernel)
        if jitted is not None:
            return jitted
    nnz = x_values.shape[0]
    chunks = kernel_chunk_plan(None, grain="nonzero", total_elements=nnz)
    if chunks is None:
        return ufunc(x_values, y_values).astype(VALUE_DTYPE)
    out = np.empty(nnz, dtype=VALUE_DTYPE)

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        out[e0:e1] = ufunc(x_values[e0:e1], y_values[e0:e1])

    run_chunks(
        chunks, task, kernel=kernel, grain="nonzero", outputs=((out, "element"),)
    )
    return out


def tew_coo(x: CooTensor, y: CooTensor, op: str = "add") -> CooTensor:
    """Element-wise ``x (op) y`` for same-pattern COO tensors.

    This is the paper's benchmarked case.  Raises
    :class:`IncompatibleOperandsError` when the patterns differ — use
    :func:`tew_general_coo` for that case.
    """
    ufunc = _check_op(op)
    if x.shape != y.shape:
        raise IncompatibleOperandsError(
            f"shapes differ: {x.shape} vs {y.shape}; use tew_general_coo"
        )
    if x.nnz != y.nnz or not np.array_equal(x.indices, y.indices):
        if not x.pattern_equals(y):
            raise IncompatibleOperandsError(
                "nonzero patterns differ; use tew_general_coo"
            )
        # Same pattern in a different stored order: align y to x.
        y = y.sorted_lexicographic()
        x_sorted = x.sorted_lexicographic()
        values = _tew_values(ufunc, x_sorted.values, y.values, "TEW-COO", op)
        return CooTensor(x.shape, x_sorted.indices, values, validate=False)
    values = _tew_values(ufunc, x.values, y.values, "TEW-COO", op)
    return CooTensor(x.shape, x.indices, values, validate=False)


def tew_hicoo(x: HicooTensor, y: HicooTensor, op: str = "add") -> HicooTensor:
    """Element-wise ``x (op) y`` for same-pattern HiCOO tensors.

    The pre-processing phase (format conversion) already aligned both
    tensors' nonzeros in Morton order, so the value computation is the
    same single loop as COO (paper Section III-D1).
    """
    ufunc = _check_op(op)
    if x.shape != y.shape or x.block_size != y.block_size:
        raise IncompatibleOperandsError("HiCOO TEW needs matching shape and block size")
    same_layout = (
        x.nnz == y.nnz
        and np.array_equal(x.bptr, y.bptr)
        and np.array_equal(x.binds, y.binds)
        and np.array_equal(x.einds, y.einds)
    )
    if not same_layout:
        raise IncompatibleOperandsError(
            "HiCOO TEW requires identical nonzero patterns; "
            "convert through tew_general_coo instead"
        )
    values = _tew_values(ufunc, x.values, y.values, "TEW-HiCOO", op)
    return HicooTensor(
        x.shape, x.block_size, x.bptr, x.binds, x.einds, values, validate=False
    )


def tew_general_coo(x: CooTensor, y: CooTensor, op: str = "add") -> CooTensor:
    """Element-wise op for COO tensors with different patterns or shapes.

    Tensors must have the same order; the output shape is the per-mode
    maximum.  For ``add``/``sub`` the output pattern is the union of the
    two input patterns (absent entries are zero); for ``mul``/``div`` it
    is the intersection (a product with an absent entry is zero, and a
    division by an absent entry is undefined and excluded, matching the
    sparse semantics of dividing stored entries only).
    """
    ufunc = _check_op(op)
    if x.order != y.order:
        raise IncompatibleOperandsError(
            f"orders differ: {x.order} vs {y.order}"
        )
    shape = tuple(max(a, b) for a, b in zip(x.shape, y.shape))
    xs = x.sum_duplicates().sorted_lexicographic()
    ys = y.sum_duplicates().sorted_lexicographic()
    x_pos, y_pos, x_only, y_only = _match_sorted_patterns(xs.indices, ys.indices)
    matched_values = ufunc(xs.values[x_pos], ys.values[y_pos]).astype(VALUE_DTYPE)
    if op in _INTERSECTION_OPS:
        return CooTensor(shape, xs.indices[:, x_pos], matched_values, validate=False)
    pieces_idx = [xs.indices[:, x_pos], xs.indices[:, x_only], ys.indices[:, y_only]]
    y_unmatched = ys.values[y_only]
    if op == "sub":
        y_unmatched = -y_unmatched
    pieces_val = [matched_values, xs.values[x_only], y_unmatched.astype(VALUE_DTYPE)]
    indices = np.concatenate(pieces_idx, axis=1)
    values = np.concatenate(pieces_val)
    return CooTensor(shape, indices, values, validate=False).sorted_lexicographic()


def _match_sorted_patterns(
    a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Match coordinate columns of two lexicographically sorted index sets.

    Returns positions of matches in ``a`` and ``b`` plus the unmatched
    positions of each, via a vectorized merge on linearized keys.
    """
    key_a = _linearize(a, b)
    key_b = _linearize(b, a)
    _, a_pos, b_pos = np.intersect1d(key_a, key_b, return_indices=True)
    # Unmatched positions fall out of a boolean mask over the matched
    # ones; ``np.setdiff1d`` would re-sort and deduplicate an arange
    # that is already sorted and unique.
    a_only = _unmatched_positions(a.shape[1], a_pos)
    b_only = _unmatched_positions(b.shape[1], b_pos)
    return a_pos, b_pos, a_only, b_only


def _unmatched_positions(count: int, matched: np.ndarray) -> np.ndarray:
    mask = np.ones(count, dtype=bool)
    mask[matched] = False
    return np.flatnonzero(mask)


def _linearize(indices: np.ndarray, other: np.ndarray) -> np.ndarray:
    """Map coordinate columns to unique int64 keys shared by both tensors."""
    order = indices.shape[0]
    strides = np.ones(order, dtype=np.int64)
    for mode in range(order - 2, -1, -1):
        width = 1 + max(
            int(indices[mode + 1].max(initial=0)),
            int(other[mode + 1].max(initial=0)),
        )
        strides[mode] = strides[mode + 1] * width
    return (indices.astype(np.int64) * strides[:, None]).sum(axis=0)


def schedule_tew(
    x: Union[CooTensor, HicooTensor], tensor_format: str = "COO"
) -> KernelSchedule:
    """Machine schedule of same-pattern TEW (Table I row one).

    Streams three value arrays of ``M`` entries (both inputs, the output)
    with one flop per nonzero; fully parallel over nonzeros with no
    atomics and no irregular traffic.
    """
    nnz = x.nnz
    return KernelSchedule(
        kernel="TEW",
        tensor_format=tensor_format,
        flops=nnz,
        streamed_bytes=12 * nnz,
        irregular_bytes=0,
        work_units=uniform_work_units(nnz),
        parallel_grain=GRAIN_NONZERO,
        working_set_bytes=12 * nnz,
        reuse_bytes=0,
        writeallocate_bytes=4 * nnz,
    )
