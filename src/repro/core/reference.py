"""Dense reference implementations used to validate the sparse kernels.

These are deliberately straightforward numpy formulations of the paper's
equations (1)-(3) on dense arrays.  Tests convert sparse operands to
dense, run these, and compare against the sparse kernels' outputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def dense_ttv(x: np.ndarray, v: np.ndarray, mode: int) -> np.ndarray:
    """Equation (1): contract mode ``mode`` of ``x`` with vector ``v``."""
    return np.tensordot(x, v, axes=([mode], [0]))


def dense_ttm(x: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Equation (2): ``Y = X ×_mode U`` with ``U ∈ R^{I_mode × R}``.

    The product mode keeps its position in the output (its extent becomes
    ``R``), matching the paper's row-major ``U`` convention.
    """
    contracted = np.tensordot(x, matrix, axes=([mode], [0]))
    # tensordot appends the R axis last; rotate it back into position.
    return np.moveaxis(contracted, -1, mode)


def dense_mttkrp(
    x: np.ndarray, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Equation (3): mode-``mode`` matricization times the Khatri-Rao product.

    Computed by explicitly materializing the Khatri-Rao product of the
    other factors (reverse mode order, as the matricization convention
    requires) and multiplying — the transformation-based formulation the
    sparse kernels are designed to avoid.
    """
    order = x.ndim
    mode = mode % order
    other = [m for m in range(order) if m != mode]
    unfolded = unfold(x, mode)
    krp = khatri_rao([factors[m] for m in reversed(other)])
    return unfolded @ krp


def unfold(x: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` matricization ``X_(n)`` with the Kolda ordering.

    Rows are indexed by the mode-``mode`` coordinate; columns iterate the
    remaining modes with the *first* remaining mode varying fastest.
    """
    mode = mode % x.ndim
    return np.moveaxis(x, mode, 0).reshape(x.shape[mode], -1, order="F")


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Equation (4): column-matching Kronecker product of matrices."""
    matrices = list(matrices)
    if not matrices:
        raise ValueError("need at least one matrix")
    rank = matrices[0].shape[1]
    for m in matrices:
        if m.shape[1] != rank:
            raise ValueError("all matrices must share a column count")
    result = matrices[0]
    for m in matrices[1:]:
        # Outer product per column, flattened so result rows iterate the
        # later matrix's rows fastest.
        result = (result[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return result


def dense_kronecker(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product of two arbitrary-order dense tensors.

    Generalizes :func:`numpy.kron` to N dimensions; the synthetic
    Kronecker generator's sampling is validated against this.
    """
    if a.ndim != b.ndim:
        raise ValueError("tensors must have the same order")
    expand_a = a.reshape(
        tuple(s for pair in zip(a.shape, (1,) * a.ndim) for s in pair)
    )
    expand_b = b.reshape(
        tuple(s for pair in zip((1,) * b.ndim, b.shape) for s in pair)
    )
    product = expand_a * expand_b
    final_shape = tuple(sa * sb for sa, sb in zip(a.shape, b.shape))
    return product.reshape(final_shape)
