"""Kernels over the CSF format (the paper's named future extension).

CSF-MTTKRP is SPLATT's bottom-up algorithm: leaf contributions are
reduced fiber-by-fiber up the tree, multiplying each level's factor rows
once *per node* instead of once per nonzero.  With long fibers this does
roughly ``2RM`` flops versus COO's ``3RM``, and — because the output row
is owned by the root node — needs **no atomics** when parallelized over
root subtrees.  CSF-TTV contracts the leaf mode by one segmented
reduction.

Both kernels want the target mode in a specific tree position (MTTKRP:
root; TTV: leaf).  Passing a COO tensor builds the right tree on the
fly; passing a :class:`CsfTensor` requires it to be rooted correctly,
mirroring CSF's mode-specific nature.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..errors import IncompatibleOperandsError, ModeError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.csf import CsfTensor, csf_for_mode
from .mttkrp import check_factors
from .schedule import GRAIN_FIBER, KernelSchedule
from .ttv import _check_vector


def _csf_rooted_at(
    x: Union[CooTensor, CsfTensor], mode: int, *, root: bool
) -> CsfTensor:
    """Get a CSF tree with ``mode`` at the root (or at the leaf level)."""
    if isinstance(x, CsfTensor):
        expected = x.mode_order[0] if root else x.mode_order[-1]
        if expected != mode % x.order:
            position = "root" if root else "leaf"
            raise ModeError(
                f"CSF tree has mode order {x.mode_order}; mode {mode} must "
                f"be at the {position} for this kernel — rebuild with "
                f"CsfTensor.from_coo(..., mode_order=...)"
            )
        return x
    if root:
        return csf_for_mode(x, mode)
    mode = x.check_mode(mode)
    rest = [m for m in range(x.order) if m != mode]
    return CsfTensor.from_coo(x, rest + [mode])


def mttkrp_csf(
    x: Union[CooTensor, CsfTensor],
    factors: Sequence[np.ndarray],
    mode: int,
) -> np.ndarray:
    """CSF-MTTKRP (SPLATT): bottom-up fiber reduction, atomic-free.

    Returns the updated dense matrix ``out ∈ R^{I_mode × R}``.
    """
    tree = _csf_rooted_at(x, mode, root=True)
    factors = check_factors(tree.shape, factors)
    rank = factors[0].shape[1]
    # Factors reordered to tree levels; level 0 (root) is the output.
    level_factors = [factors[m] for m in tree.mode_order]
    buffer = (
        tree.values[:, None].astype(np.float64)
        * level_factors[-1][tree.fids[-1]]
    )
    for level in range(tree.order - 2, 0, -1):
        buffer = np.add.reduceat(buffer, tree.fptr[level][:-1], axis=0)
        buffer = buffer * level_factors[level][tree.fids[level]]
    if tree.order >= 2:
        buffer = np.add.reduceat(buffer, tree.fptr[0][:-1], axis=0)
    out = np.zeros((tree.shape[tree.root_mode], rank), dtype=np.float64)
    # Root ids are distinct by construction: plain scatter, no atomics.
    out[tree.fids[0]] = buffer
    return out.astype(VALUE_DTYPE)


def ttv_csf(
    x: Union[CooTensor, CsfTensor],
    vector: np.ndarray,
    mode: int,
) -> CooTensor:
    """CSF-TTV: contract the (leaf-positioned) product mode.

    One multiply per nonzero and one segmented reduction over the leaf
    pointers; the output's nonzeros are the level-``order-2`` nodes.
    """
    tree = _csf_rooted_at(x, mode, root=False)
    mode = mode % tree.order
    vector = _check_vector(tree.shape[mode], vector)
    if tree.order < 2:
        raise IncompatibleOperandsError("TTV needs an order >= 2 tensor")
    scaled = tree.values.astype(np.float64) * vector[tree.fids[-1]]
    sums = np.add.reduceat(scaled, tree.fptr[-1][:-1]) if tree.nnz else scaled
    retained_levels = tree.order - 1
    out_modes = tree.mode_order[:retained_levels]
    out_shape_full = [tree.shape[m] for m in range(tree.order) if m != mode]
    # Build output indices: each retained level expanded to the
    # level-(order-2) granularity.
    num_out = tree.fids[retained_levels - 1].shape[0]
    out_indices = np.empty((retained_levels, num_out), dtype=tree.fids[0].dtype)
    for level in range(retained_levels):
        expanded = tree.fids[level]
        for l in range(level, retained_levels - 1):
            expanded = np.repeat(expanded, np.diff(tree.fptr[l]))
        out_indices[level] = expanded
    # Reorder rows from tree-level order to ascending original modes.
    original = [m for m in range(tree.order) if m != mode]
    row_of_mode = {m: i for i, m in enumerate(out_modes)}
    reordered = np.vstack([out_indices[row_of_mode[m]] for m in original])
    return CooTensor(
        out_shape_full, reordered, sums.astype(VALUE_DTYPE), validate=False
    )


def schedule_mttkrp_csf(
    x: Union[CooTensor, CsfTensor], mode: int, rank: int
) -> KernelSchedule:
    """Machine schedule of CSF-MTTKRP.

    Flops: ``R`` multiplies per leaf plus ``2R`` per internal node
    (multiply + parent add); factor rows are fetched once per *node*
    rather than per nonzero; no atomic updates (root subtrees own their
    output rows); fiber-grain work units are the root subtree sizes.
    """
    tree = _csf_rooted_at(x, mode, root=True)
    nodes = tree.nodes_per_level()
    internal_nodes = sum(nodes[1:-1])
    flops = rank * (2 * tree.nnz + 3 * internal_nodes + nodes[0])
    streamed = tree.storage_bytes()
    irregular = 4 * rank * (sum(nodes[1:]) + nodes[0])
    factor_bytes = 4 * rank * sum(tree.shape)
    return KernelSchedule(
        kernel="MTTKRP",
        tensor_format="CSF",
        flops=flops,
        streamed_bytes=streamed,
        irregular_bytes=irregular,
        work_units=tree.leaf_counts_per_root(),
        parallel_grain=GRAIN_FIBER,
        atomic_updates=0,
        working_set_bytes=streamed + factor_bytes,
        irregular_chunk_bytes=4 * rank,
        random_operand_bytes=factor_bytes,
        notes={
            "rank": float(rank),
            "internal_nodes": float(internal_nodes),
            "root_nodes": float(nodes[0]),
        },
    )
