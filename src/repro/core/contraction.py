"""General sparse x sparse tensor contraction.

The paper's future-work list includes "tensor contraction, a sparse
tensor with a sparse vector/matrix products" (Section VII); TTM itself is
introduced as "a special case of tensor contraction" (Section II-D).
This module implements the general case: contract a sparse COO tensor
with another sparse COO tensor over any pairing of equal-sized modes,
following :func:`numpy.tensordot`'s output convention (free modes of the
first operand, then free modes of the second).

The algorithm is a vectorized sort-merge join: contracted coordinates
are linearized into join keys, matching key groups are paired by a
closed-form Cartesian expansion (no Python loop over keys), and the
resulting coordinate products are combined and deduplicated.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from ..errors import IncompatibleOperandsError
from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor


def _normalize_mode_lists(
    x: CooTensor, y: CooTensor, modes_x: Sequence[int], modes_y: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    modes_x = tuple(x.check_mode(m) for m in modes_x)
    modes_y = tuple(y.check_mode(m) for m in modes_y)
    if len(modes_x) != len(modes_y):
        raise IncompatibleOperandsError(
            f"contract {len(modes_x)} modes of x against {len(modes_y)} of y"
        )
    if len(set(modes_x)) != len(modes_x) or len(set(modes_y)) != len(modes_y):
        raise IncompatibleOperandsError("contracted modes must be distinct")
    for mx, my in zip(modes_x, modes_y):
        if x.shape[mx] != y.shape[my]:
            raise IncompatibleOperandsError(
                f"mode {mx} of x (size {x.shape[mx]}) does not match "
                f"mode {my} of y (size {y.shape[my]})"
            )
    return modes_x, modes_y


def _join_keys(indices: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Linearize coordinate columns into int64 join keys."""
    strides = np.ones(len(dims), dtype=np.int64)
    for i in range(len(dims) - 2, -1, -1):
        strides[i] = strides[i + 1] * int(dims[i + 1])
    return (indices.astype(np.int64) * strides[:, None]).sum(axis=0)


def _segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    if sorted_keys.size == 0:
        return np.empty(0, dtype=np.int64)
    boundary = sorted_keys[1:] != sorted_keys[:-1]
    return np.flatnonzero(np.concatenate(([True], boundary))).astype(np.int64)


def contract(
    x: CooTensor,
    y: CooTensor,
    modes_x: Sequence[int],
    modes_y: Sequence[int],
) -> Union[CooTensor, float]:
    """Contract ``x`` with ``y`` over the paired modes.

    Returns a COO tensor over (free modes of ``x``) + (free modes of
    ``y``); when every mode is contracted (a full inner product), the
    scalar value is returned instead.
    """
    modes_x, modes_y = _normalize_mode_lists(x, y, modes_x, modes_y)
    free_x = [m for m in range(x.order) if m not in modes_x]
    free_y = [m for m in range(y.order) if m not in modes_y]
    shared_dims = [x.shape[m] for m in modes_x]

    key_x = _join_keys(x.indices[list(modes_x)], shared_dims)
    key_y = _join_keys(y.indices[list(modes_y)], shared_dims)
    order_x = np.argsort(key_x, kind="stable")
    order_y = np.argsort(key_y, kind="stable")
    sorted_kx = key_x[order_x]
    sorted_ky = key_y[order_y]
    starts_x = _segment_starts(sorted_kx)
    starts_y = _segment_starts(sorted_ky)
    keys_x = sorted_kx[starts_x] if starts_x.size else sorted_kx
    keys_y = sorted_ky[starts_y] if starts_y.size else sorted_ky
    common, pos_x, pos_y = np.intersect1d(keys_x, keys_y, return_indices=True)

    out_shape = tuple(x.shape[m] for m in free_x) + tuple(
        y.shape[m] for m in free_y
    )
    if common.size == 0:
        if not out_shape:
            return 0.0
        return CooTensor.empty(out_shape)

    counts_x = np.diff(np.concatenate([starts_x, [sorted_kx.size]]))[pos_x]
    counts_y = np.diff(np.concatenate([starts_y, [sorted_ky.size]]))[pos_y]
    seg_x = starts_x[pos_x]
    seg_y = starts_y[pos_y]

    # Cartesian expansion of matched segments, fully vectorized.
    pairs_per_key = counts_x * counts_y
    total = int(pairs_per_key.sum())
    key_of_pair = np.repeat(np.arange(common.size), pairs_per_key)
    offset_of_key = np.concatenate(([0], np.cumsum(pairs_per_key)[:-1]))
    within = np.arange(total) - offset_of_key[key_of_pair]
    cy = counts_y[key_of_pair]
    x_pos = order_x[seg_x[key_of_pair] + within // cy]
    y_pos = order_y[seg_y[key_of_pair] + within % cy]

    values = (
        x.values[x_pos].astype(np.float64) * y.values[y_pos].astype(np.float64)
    )
    if not out_shape:
        return float(values.sum())
    out_indices = np.empty((len(free_x) + len(free_y), total), dtype=INDEX_DTYPE)
    for row, mode in enumerate(free_x):
        out_indices[row] = x.indices[mode][x_pos]
    for row, mode in enumerate(free_y):
        out_indices[len(free_x) + row] = y.indices[mode][y_pos]
    result = CooTensor(
        out_shape, out_indices, values.astype(VALUE_DTYPE), validate=False
    )
    return result.sum_duplicates()


def inner_product(x: CooTensor, y: CooTensor) -> float:
    """Full inner product ``<x, y>`` of same-shaped sparse tensors."""
    if x.shape != y.shape:
        raise IncompatibleOperandsError(
            f"inner product needs equal shapes, got {x.shape} vs {y.shape}"
        )
    result = contract(x, y, range(x.order), range(y.order))
    assert isinstance(result, float)
    return result


def sparse_ttv(x: CooTensor, v: CooTensor, mode: int) -> CooTensor:
    """Sparse tensor times *sparse* vector (order-1 tensor) in ``mode``."""
    if v.order != 1:
        raise IncompatibleOperandsError("v must be an order-1 sparse tensor")
    result = contract(x, v, [mode], [0])
    assert isinstance(result, CooTensor)
    return result


def sparse_ttm(x: CooTensor, matrix: CooTensor, mode: int) -> CooTensor:
    """Sparse tensor times *sparse* matrix in ``mode``.

    The matrix follows the suite's TTM convention (``(I_mode, R)``); its
    second mode becomes the output's last mode, then is rotated into the
    contracted mode's position to match :func:`repro.core.ttm_coo`.
    """
    if matrix.order != 2:
        raise IncompatibleOperandsError("matrix must be an order-2 sparse tensor")
    mode = x.check_mode(mode)
    result = contract(x, matrix, [mode], [0])
    assert isinstance(result, CooTensor)
    # Free modes are (x-free..., R); rotate R back into `mode`'s slot.
    order = result.order
    permutation = list(range(order - 1))
    permutation.insert(mode, order - 1)
    return result.permute_modes(permutation)
