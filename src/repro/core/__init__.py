"""The five benchmark kernels and their analytic/schedule models.

Numeric entry points: :func:`tew_coo`, :func:`tew_hicoo`,
:func:`tew_general_coo`, :func:`ts`, :func:`ttv_coo`, :func:`ttv_hicoo`,
:func:`ttm_coo`, :func:`ttm_hicoo`, :func:`mttkrp_coo`,
:func:`mttkrp_hicoo`; or go through the named registry
(:func:`run_algorithm` with e.g. ``"HiCOO-MTTKRP-GPU"``).
"""

from .analysis import (
    DEFAULT_RANK,
    KERNELS,
    KernelCost,
    kernel_cost,
    mttkrp_cost,
    table1,
    tew_cost,
    ts_cost,
    ttm_cost,
    ttv_cost,
)
from .contraction import contract, inner_product, sparse_ttm, sparse_ttv
from .preprocessing import (
    PreprocessingReport,
    analyze as analyze_preprocessing,
    csf_tree_costs,
    modeled_stage_seconds,
    run_stage,
)
from .csf_kernels import mttkrp_csf, schedule_mttkrp_csf, ttv_csf
from .mttkrp import (
    check_factors,
    mttkrp_coo,
    mttkrp_hicoo,
    schedule_mttkrp_coo,
    schedule_mttkrp_hicoo,
)
from .reference import (
    dense_kronecker,
    dense_mttkrp,
    dense_ttm,
    dense_ttv,
    khatri_rao,
    unfold,
)
from .registry import (
    AlgorithmName,
    KernelOperands,
    algorithm_descriptions,
    all_algorithm_names,
    make_operands,
    make_schedule,
    parse_algorithm_name,
    run_algorithm,
)
from .schedule import (
    GRAIN_BLOCK,
    GRAIN_FIBER,
    GRAIN_NONZERO,
    KernelSchedule,
    estimate_conflict_fraction,
    uniform_work_units,
)
from .tew import OPERATIONS, schedule_tew, tew_coo, tew_general_coo, tew_hicoo
from .ts import schedule_ts, ts, ts_add, ts_div, ts_mul, ts_sub
from .ttm import schedule_ttm, ttm_coo, ttm_ghicoo_direct, ttm_hicoo
from .ttv import schedule_ttv, ttv_coo, ttv_ghicoo_direct, ttv_hicoo

__all__ = [
    "KERNELS",
    "DEFAULT_RANK",
    "KernelCost",
    "kernel_cost",
    "table1",
    "tew_cost",
    "ts_cost",
    "ttv_cost",
    "ttm_cost",
    "mttkrp_cost",
    "tew_coo",
    "tew_hicoo",
    "tew_general_coo",
    "OPERATIONS",
    "ts",
    "ts_add",
    "ts_sub",
    "ts_mul",
    "ts_div",
    "ttv_coo",
    "ttv_hicoo",
    "ttv_ghicoo_direct",
    "ttm_coo",
    "ttm_hicoo",
    "ttm_ghicoo_direct",
    "mttkrp_coo",
    "mttkrp_hicoo",
    "mttkrp_csf",
    "ttv_csf",
    "schedule_mttkrp_csf",
    "contract",
    "inner_product",
    "sparse_ttv",
    "sparse_ttm",
    "PreprocessingReport",
    "analyze_preprocessing",
    "run_stage",
    "modeled_stage_seconds",
    "csf_tree_costs",
    "check_factors",
    "dense_ttv",
    "dense_ttm",
    "dense_mttkrp",
    "dense_kronecker",
    "khatri_rao",
    "unfold",
    "KernelSchedule",
    "GRAIN_NONZERO",
    "GRAIN_FIBER",
    "GRAIN_BLOCK",
    "uniform_work_units",
    "estimate_conflict_fraction",
    "schedule_tew",
    "schedule_ts",
    "schedule_ttv",
    "schedule_ttm",
    "schedule_mttkrp_coo",
    "schedule_mttkrp_hicoo",
    "AlgorithmName",
    "KernelOperands",
    "parse_algorithm_name",
    "all_algorithm_names",
    "make_operands",
    "run_algorithm",
    "make_schedule",
    "algorithm_descriptions",
]
