"""Analytic kernel cost model — the paper's Table I.

For each of the five kernels this module gives the floating-point work and
the *upper-bound* memory access in bytes for COO and HiCOO storage, as a
function of the tensor's measured features: ``M`` nonzeros, ``M_F``
mode-``n`` fibers, ``n_b`` HiCOO blocks, rank ``R``, and block size ``B``.
Indices are 32-bit and values single-precision, as in the paper.

The ratios reproduce Table I's OI column for cubical third-order tensors
(``1/12``, ``1/8``, ``~1/6``, ``~1/2``, ``~1/4``) and, because they take
the actual ``M_F``/``n_b`` of a concrete tensor, also provide the exact
per-tensor OI used for the figures' "Roofline performance" line
(Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import PastaError

KERNELS = ("TEW", "TS", "TTV", "TTM", "MTTKRP")

#: Default dense-matrix column count; the paper uses 16 for TTM and MTTKRP
#: "to reflect the low-rank feature in popular tensor methods".
DEFAULT_RANK = 16


@dataclass(frozen=True)
class KernelCost:
    """Closed-form cost of one kernel on one tensor."""

    kernel: str
    flops: int
    coo_bytes: int
    hicoo_bytes: int

    def operational_intensity(self, tensor_format: str = "COO") -> float:
        """Flops per upper-bound byte for the chosen format."""
        bytes_ = self.bytes_for(tensor_format)
        if bytes_ == 0:
            return float("inf") if self.flops else 0.0
        return self.flops / bytes_

    def bytes_for(self, tensor_format: str) -> int:
        """Upper-bound bytes for ``"COO"`` or ``"HiCOO"`` storage."""
        name = tensor_format.upper()
        if name == "COO":
            return self.coo_bytes
        if name == "HICOO":
            return self.hicoo_bytes
        raise PastaError(f"unknown format for cost analysis: {tensor_format!r}")


def tew_cost(nnz: int) -> KernelCost:
    """TEW (same pattern): ``M`` flops, ``12M`` bytes in either format.

    Reads both input value streams and writes the output value stream;
    indices were materialized during pre-processing.
    """
    return KernelCost("TEW", nnz, 12 * nnz, 12 * nnz)


def ts_cost(nnz: int) -> KernelCost:
    """TS: ``M`` flops, ``8M`` bytes (read values, write values)."""
    return KernelCost("TS", nnz, 8 * nnz, 8 * nnz)


def ttv_cost(nnz: int, num_fibers: int) -> KernelCost:
    """TTV: ``2M`` flops, ``12M + 12 M_F`` bytes in either format.

    Per nonzero: 4-byte value, 4-byte product-mode index, and a 4-byte
    irregular gather from the dense vector; per output fiber: a 12-byte
    output entry (value plus the two retained indices for order 3).
    """
    return KernelCost(
        "TTV", 2 * nnz, 12 * nnz + 12 * num_fibers, 12 * nnz + 12 * num_fibers
    )


def ttm_cost(nnz: int, num_fibers: int, rank: int = DEFAULT_RANK) -> KernelCost:
    """TTM: ``2MR`` flops; Table I row four.

    COO: ``4MR + 4 M_F R + 8 M_F + 8M + 8 M_F`` — matrix-row gathers per
    nonzero, output rows per fiber, plus value/index streams; HiCOO saves
    one ``8 M_F`` term through its compressed output indexing.
    """
    coo = 4 * nnz * rank + 4 * num_fibers * rank + 8 * num_fibers + 8 * nnz + 8 * num_fibers
    hicoo = 4 * nnz * rank + 4 * num_fibers * rank + 8 * nnz + 8 * num_fibers
    return KernelCost("TTM", 2 * nnz * rank, coo, hicoo)


def mttkrp_cost(
    nnz: int,
    rank: int = DEFAULT_RANK,
    *,
    num_blocks: Optional[int] = None,
    block_size: Optional[int] = None,
) -> KernelCost:
    """MTTKRP: ``3MR`` flops; Table I row five.

    COO: ``12MR + 16M`` — per nonzero, three ``4R``-byte matrix-row
    accesses (two reads plus the atomic output update) and four 4-byte
    streams (value and three indices).  HiCOO:
    ``12 R min(n_b * M_B, M) + 7M + 20 n_b`` — matrix rows are reused
    inside each block (``M_B = B`` rows per block per matrix at most),
    each nonzero streams only ``3 + 4 = 7`` bytes of element indices and
    value, and each block carries 20 bytes of metadata.

    When ``num_blocks``/``block_size`` are omitted, the HiCOO bound falls
    back to the COO matrix traffic (no blocking benefit assumed).
    """
    coo = 12 * nnz * rank + 16 * nnz
    if num_blocks is None or block_size is None:
        matrix_rows = nnz
        blocks = 0
    else:
        matrix_rows = min(num_blocks * block_size, nnz)
        blocks = num_blocks
    hicoo = 12 * rank * matrix_rows + 7 * nnz + 20 * blocks
    return KernelCost("MTTKRP", 3 * nnz * rank, coo, hicoo)


def kernel_cost(
    kernel: str,
    nnz: int,
    *,
    num_fibers: Optional[int] = None,
    rank: int = DEFAULT_RANK,
    num_blocks: Optional[int] = None,
    block_size: Optional[int] = None,
) -> KernelCost:
    """Dispatch to the cost function of the named kernel."""
    name = kernel.upper()
    if name == "TEW":
        return tew_cost(nnz)
    if name == "TS":
        return ts_cost(nnz)
    if name == "TTV":
        if num_fibers is None:
            raise PastaError("TTV cost needs num_fibers")
        return ttv_cost(nnz, num_fibers)
    if name == "TTM":
        if num_fibers is None:
            raise PastaError("TTM cost needs num_fibers")
        return ttm_cost(nnz, num_fibers, rank)
    if name == "MTTKRP":
        return mttkrp_cost(nnz, rank, num_blocks=num_blocks, block_size=block_size)
    raise PastaError(f"unknown kernel: {kernel!r}")


def table1(
    nnz: int = 1_000_000,
    num_fibers: Optional[int] = None,
    rank: int = DEFAULT_RANK,
    num_blocks: Optional[int] = None,
    block_size: int = 128,
) -> Dict[str, KernelCost]:
    """Reproduce Table I for a cubical third-order tensor.

    Defaults follow the table's regime ``I << M_F << M``: when not given,
    ``M_F = M / 8`` and ``n_b = M / 16``.
    """
    if num_fibers is None:
        num_fibers = max(nnz // 8, 1)
    if num_blocks is None:
        num_blocks = max(nnz // 16, 1)
    return {
        "TEW": tew_cost(nnz),
        "TS": ts_cost(nnz),
        "TTV": ttv_cost(nnz, num_fibers),
        "TTM": ttm_cost(nnz, num_fibers, rank),
        "MTTKRP": mttkrp_cost(nnz, rank, num_blocks=num_blocks, block_size=block_size),
    }
