"""Pre-processing stages and their cost model.

The suite's design principle (paper Section III): "we use more
pre-processing to trade for less kernel computation time".  Every kernel
has a pre-processing stage executed *outside* the timed region — sorting,
fiber partitioning, output pre-allocation, format conversion.  This
module names those stages, runs them, and models their cost, so the
trade-off itself can be quantified (how many kernel executions amortize
one conversion?).

Stage inventory per algorithm:

* TEW / TS — output allocation with copied indices (COO) or shared block
  structure (HiCOO);
* TTV / TTM — fiber partition of the product mode (sort by the other
  modes) and output pre-allocation via the sparse-dense property;
* MTTKRP (HiCOO) — HiCOO conversion: Morton sort plus block grouping;
* CSF kernels — tree construction per target mode.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import PastaError
from ..formats.coo import CooTensor
from ..formats.csf import csf_for_mode
from ..formats.hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from ..perf.plan_cache import cache_disabled
from ..platforms.specs import PlatformSpec, get_platform
from .registry import parse_algorithm_name

#: Modeled cost of comparison-sorting one nonzero record, expressed as
#: bytes of equivalent memory traffic per log2(M) pass (radix-style
#: multi-pass sorting moves the whole record each pass).
_SORT_BYTES_PER_RECORD_PASS = 8


@dataclass(frozen=True)
class PreprocessingReport:
    """Cost of one algorithm's pre-processing on one tensor.

    ``modeled_seconds`` uses the platform's memory system (sorting and
    grouping are bandwidth-bound); ``measured_seconds`` is the wall-clock
    of actually running the stage with this package's numpy code.
    ``amortization_runs`` is the modeled number of kernel executions
    after which the pre-processing has paid for itself relative to the
    kernel's own modeled time.
    """

    algorithm: str
    stage: str
    modeled_seconds: float
    measured_seconds: float
    kernel_seconds: float

    @property
    def amortization_runs(self) -> float:
        """Pre-processing time over per-run kernel time."""
        if self.kernel_seconds <= 0:
            return float("inf")
        return self.modeled_seconds / self.kernel_seconds


def _stage_for(algorithm_name: str) -> str:
    parsed = parse_algorithm_name(algorithm_name)
    if parsed.kernel in ("TEW", "TS"):
        return "output-allocation"
    if parsed.kernel in ("TTV", "TTM"):
        return "fiber-partition"
    if parsed.tensor_format == "HiCOO":
        return "hicoo-conversion"
    return "output-allocation"


def run_stage(
    algorithm_name: str,
    tensor: CooTensor,
    *,
    mode: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> float:
    """Execute the algorithm's pre-processing stage; returns wall seconds.

    The plan cache is disabled inside the timed region so the measurement
    always reflects the real cost of the stage, not a cache hit.
    """
    parsed = parse_algorithm_name(algorithm_name)
    with cache_disabled():
        start = time.perf_counter()
        if parsed.kernel in ("TEW", "TS"):
            # Output allocation: copy the index structure (HiCOO TEW/TS
            # share the input's block structure, so this is the whole
            # stage there too).
            tensor.indices.copy()
        elif parsed.kernel in ("TTV", "TTM"):
            tensor.fiber_partition(mode)
        elif parsed.tensor_format == "HiCOO":
            HicooTensor.from_coo(tensor, block_size)
        else:
            tensor.indices.copy()
        return time.perf_counter() - start


def modeled_stage_seconds(
    algorithm_name: str,
    tensor: CooTensor,
    platform: PlatformSpec,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> float:
    """Bandwidth-bound model of the pre-processing stage.

    Sorting ``M`` records of ``4(N+1)`` bytes takes ``log2 M`` passes of
    record movement; grouping/allocation is a single pass.  All passes
    move at the platform's obtainable DRAM bandwidth (pre-processing is
    single-socket and not cache-resident for the sizes of interest).
    """
    import math

    from ..machine.params import obtainable_dram_bandwidth_gbs

    stage = _stage_for(algorithm_name)
    record_bytes = 4 * (tensor.order + 1)
    m = max(tensor.nnz, 2)
    bandwidth = obtainable_dram_bandwidth_gbs(platform) * 1e9
    if stage == "output-allocation":
        passes = 1.0
    else:
        passes = math.log2(m)
        if stage == "hicoo-conversion":
            passes += 2.0  # Morton encode pass + block grouping pass
    moved = m * max(record_bytes, _SORT_BYTES_PER_RECORD_PASS) * passes
    return moved / bandwidth


def analyze(
    algorithm_name: str,
    tensor: CooTensor,
    platform: str = "bluesky",
    *,
    mode: int = 0,
    rank: int = 16,
    block_size: int = DEFAULT_BLOCK_SIZE,
    hicoo: Optional[HicooTensor] = None,
) -> PreprocessingReport:
    """Full pre-processing analysis of one algorithm on one tensor."""
    from ..machine import predict
    from .registry import make_schedule

    spec = get_platform(platform)
    parsed = parse_algorithm_name(algorithm_name)
    expected_target = "GPU" if spec.is_gpu else "OMP"
    if parsed.target != expected_target:
        raise PastaError(
            f"{algorithm_name} targets {parsed.target} but {spec.name} "
            f"needs {expected_target}"
        )
    measured = run_stage(
        algorithm_name, tensor, mode=mode, block_size=block_size
    )
    modeled = modeled_stage_seconds(
        algorithm_name, tensor, spec, block_size=block_size
    )
    schedule = make_schedule(
        algorithm_name, tensor, mode=mode, rank=rank,
        block_size=block_size, hicoo=hicoo,
    )
    kernel_seconds = predict(spec, schedule).seconds
    return PreprocessingReport(
        algorithm=algorithm_name,
        stage=_stage_for(algorithm_name),
        modeled_seconds=modeled,
        measured_seconds=measured,
        kernel_seconds=kernel_seconds,
    )


def csf_tree_costs(
    tensor: CooTensor, platform: str = "bluesky"
) -> Dict[int, float]:
    """Modeled seconds to build one CSF tree per mode.

    Quantifies CSF's mode-specific storage tax against the mode-generic
    COO/HiCOO (paper Section III): a tensor method touching all modes
    needs ``order`` trees.
    """
    spec = get_platform(platform)
    return {
        mode: modeled_stage_seconds("COO-TTV-OMP", tensor, spec)
        for mode in range(tensor.order)
    }
