"""Per-client token-bucket quotas for the serving tier.

Each client (keyed by whatever identifier the server chooses — here the
peer address) gets an independent bucket refilled at ``rate`` tokens per
second up to ``burst``.  A request costs one token; an empty bucket
yields a 429-style rejection carrying ``retry_after``, the seconds until
one token will have accrued, so well-behaved clients can back off
precisely instead of hammering.

The clock is injectable for tests; everything is guarded by one lock so
the asyncio loop and executor threads can share a manager.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, Tuple


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> Tuple[bool, float]:
        """Take ``tokens`` if available; ``(ok, retry_after_seconds)``.

        ``retry_after`` is 0 on success, otherwise the time until the
        deficit will have refilled.
        """
        now = self._clock()
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True, 0.0
        deficit = tokens - self._tokens
        return False, deficit / self.rate

    @property
    def available(self) -> float:
        self._refill(self._clock())
        return self._tokens


class QuotaManager:
    """Lazily-created per-client buckets behind one lock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: Dict[Hashable, TokenBucket] = {}
        self._lock = threading.Lock()

    def try_acquire(self, client: Hashable, tokens: float = 1.0) -> Tuple[bool, float]:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
                self._buckets[client] = bucket
            return bucket.try_acquire(tokens)

    def forget(self, client: Hashable) -> None:
        """Drop a client's bucket (e.g. when its connection closes)."""
        with self._lock:
            self._buckets.pop(client, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
