"""Synthetic power-law traffic for the serving tier.

Multi-tenant kernel traffic is famously skewed: a few hot tensors take
most of the requests.  :func:`powerlaw_requests` reproduces that shape
with the same inverse-CDF trick :mod:`repro.generators.powerlaw` uses
for nonzero coordinates — tensor *i* (hotness rank ``i + 1``) is drawn
with probability proportional to ``(i + 1) ** -alpha`` — which is what
makes request batching pay off: compatible requests against the head
tensors arrive close together.

:func:`run_traffic` replays a request list through ``concurrency``
:class:`~repro.serving.client.ServingClient` connections sharing one
work queue, collecting per-request latency and status counts.  It is
the engine behind ``benchmarks/bench_serving.py`` and the CI smoke leg.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .client import ServingClient
from .metrics import percentile

#: Default kernel mix: MTTKRP-heavy, like the decomposition-driven
#: workloads the paper's suite targets.
DEFAULT_KERNEL_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("MTTKRP", 0.55),
    ("TTM", 0.20),
    ("TTV", 0.15),
    ("TS", 0.06),
    ("TEW", 0.04),
)

DEFAULT_RANKS = (2, 4, 8)


def _powerlaw_cdf(count: int, alpha: float) -> np.ndarray:
    weights = np.arange(1, count + 1, dtype=np.float64) ** -float(alpha)
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


def powerlaw_requests(
    tensors: Sequence[Dict[str, Any]],
    count: int,
    *,
    alpha: float = 1.5,
    seed: int = 0,
    kernel_weights: Sequence[Tuple[str, float]] = DEFAULT_KERNEL_WEIGHTS,
    ranks: Sequence[int] = DEFAULT_RANKS,
    variant: str = "coo",
    seeds: int = 4,
    modes: Optional[Sequence[int]] = None,
) -> List[Dict[str, Any]]:
    """Build ``count`` kernel requests with a power-law tensor mix.

    ``tensors`` entries need ``name``, ``order``, and optionally
    ``kernels`` (restricting what that tensor serves — mmap entries
    pass the out-of-core kernel list).  Listing order is hotness order.
    ``modes`` restricts which modes are requested (decomposition-driven
    traffic hammers the mode currently being factorized); by default
    every mode of each tensor is equally likely.  Entries are wrapped
    into each tensor's valid mode range.
    """
    if not tensors:
        raise ValueError("need at least one tensor")
    rng = np.random.default_rng(seed)
    tensor_cdf = _powerlaw_cdf(len(tensors), alpha)
    tensor_picks = np.searchsorted(tensor_cdf, rng.random(count), side="right")
    kernel_names = [k for k, _ in kernel_weights]
    kernel_probs = np.asarray([w for _, w in kernel_weights], dtype=np.float64)
    kernel_probs = kernel_probs / kernel_probs.sum(dtype=np.float64)
    kernel_picks = rng.choice(len(kernel_names), size=count, p=kernel_probs)
    requests: List[Dict[str, Any]] = []
    for i in range(count):
        spec = tensors[int(tensor_picks[i])]
        kernel = kernel_names[int(kernel_picks[i])]
        allowed = spec.get("kernels")
        if allowed and kernel not in allowed:
            kernel = allowed[int(kernel_picks[i]) % len(allowed)]
        if modes:
            mode = int(modes[int(rng.integers(0, len(modes)))]) % spec["order"]
        else:
            mode = int(rng.integers(0, spec["order"]))
        requests.append(
            {
                "op": "kernel",
                "id": i,
                "tensor": spec["name"],
                "kernel": kernel,
                "mode": mode,
                "rank": int(ranks[int(rng.integers(0, len(ranks)))]),
                "seed": int(rng.integers(0, seeds)),
                "variant": variant,
                "block_size": None,
            }
        )
    return requests


async def run_traffic(
    host: str,
    port: int,
    requests: Sequence[Dict[str, Any]],
    *,
    concurrency: int = 8,
    retry_on_quota: bool = True,
    max_retries: int = 50,
) -> Dict[str, Any]:
    """Replay ``requests`` through ``concurrency`` connections.

    Returns per-status counts, wall time, throughput, and client-side
    p50/p99 latency; ``digests`` maps request id → ``result_digest``
    for bit-identity assertions.
    """
    queue: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
    for request in requests:
        queue.put_nowait(dict(request))
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    digests: Dict[Any, Optional[str]] = {}
    retries = 0

    async def worker() -> None:
        nonlocal retries
        async with ServingClient(host, port) as client:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                attempts = 0
                while True:
                    begin = time.monotonic()
                    response = await client.call(request)
                    status = int(response.get("status", 0))
                    if (
                        status == 429
                        and retry_on_quota
                        and attempts < max_retries
                    ):
                        attempts += 1
                        retries += 1
                        statuses[429] = statuses.get(429, 0) + 1
                        await asyncio.sleep(
                            float(response.get("retry_after") or 0.01)
                        )
                        continue
                    break
                latencies.append(time.monotonic() - begin)
                statuses[status] = statuses.get(status, 0) + 1
                if status == 200:
                    digests[request.get("id")] = response.get("result_digest")

    began = time.monotonic()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    elapsed = time.monotonic() - began
    completed = statuses.get(200, 0)
    return {
        "requests": len(requests),
        "completed": completed,
        "statuses": {str(k): v for k, v in sorted(statuses.items())},
        "quota_retries": retries,
        "elapsed_seconds": elapsed,
        "throughput_rps": completed / elapsed if elapsed > 0 else None,
        "latency_p50_seconds": percentile(latencies, 0.50),
        "latency_p99_seconds": percentile(latencies, 0.99),
        "latencies_seconds": latencies,
        "digests": digests,
    }
