"""Asyncio tensor server: admission, batching dispatcher, metrics.

One :class:`TensorServer` owns a :class:`~repro.serving.registry.TensorRegistry`,
a job queue, a small :class:`~concurrent.futures.ThreadPoolExecutor` for
the CPU-bound kernel batches, and two listeners:

* the **request port** speaks the NDJSON protocol of
  :mod:`repro.serving.protocol`; each connection is served
  request-by-request (pipelining across connections, not within one);
* the **metrics port** speaks just enough HTTP/1.1 to serve
  ``GET /metrics`` (the :meth:`ServerMetrics.snapshot` JSON) and
  ``GET /healthz``.

Batching falls out of backpressure: the dispatcher only drains the
queue when an executor slot is free, so while every slot is busy,
compatible requests pile up and leave as one fused group.  Admission
applies per-client token buckets (429 + ``retry_after``) and a global
queue cap (503) *before* enqueueing, so overload is rejected cheaply.

Graceful shutdown (:meth:`TensorServer.stop`) stops accepting new
connections, fails queued-but-unstarted jobs fast with 503, waits for
in-flight batches to complete and deliver their responses, then closes
the executor and both listeners.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set

from ..perf.parallel import parallel_config
from . import batching
from .batching import JobOutcome, KernelJob
from .metrics import ServerMetrics
from .protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_request,
    encode_message,
    validate_request,
)
from .quota import QuotaManager
from .registry import TensorRegistry


@dataclass
class ServerConfig:
    """Knobs for one serving process (see docs/serving.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral
    metrics_port: Optional[int] = 0  # None = metrics endpoint disabled
    rate: float = 200.0  # quota tokens per second per client
    burst: float = 100.0  # quota bucket capacity
    max_batch: int = 32  # jobs per executed group
    batch: bool = True  # False = unbatched baseline (groups of 1)
    batch_window: float = 0.0  # seconds to linger for co-batchable requests
    executor_threads: int = 2  # concurrent kernel batches
    kernel_threads: int = 1  # intra-kernel threads per batch
    max_queue: int = 1024  # admitted-but-unstarted job cap (503 past it)


class _Job:
    """A queued kernel job plus the future its connection awaits."""

    __slots__ = ("kernel_job", "future")

    def __init__(self, kernel_job: KernelJob, future: "asyncio.Future[JobOutcome]"):
        self.kernel_job = kernel_job
        self.future = future


class TensorServer:
    """A long-lived serving process over one tensor registry."""

    def __init__(
        self,
        registry: TensorRegistry,
        config: Optional[ServerConfig] = None,
        *,
        metrics: Optional[ServerMetrics] = None,
    ) -> None:
        self.registry = registry
        self.config = config or ServerConfig()
        self.metrics = metrics or ServerMetrics()
        self.quotas = QuotaManager(self.config.rate, self.config.burst)
        self._pending: Deque[_Job] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._inflight: Set[asyncio.Task] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._started = False
        self.metrics.bind_gauges(
            lambda: len(self._pending), lambda: len(self._inflight)
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Any:
        """The bound ``(host, port)`` of the request listener."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    @property
    def metrics_address(self) -> Optional[Any]:
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(self.config.executor_threads)
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_client,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES + 2,
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.config.host, self.config.metrics_port
            )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Graceful shutdown: reject new work, drain in-flight batches."""
        if not self._started or self._draining:
            return
        self._draining = True
        assert self._server is not None and self._wakeup is not None
        self._server.close()
        # Queued-but-unstarted jobs fail fast; admitted connections get
        # their 503 response before the socket closes under them.
        while self._pending:
            job = self._pending.popleft()
            if not job.future.done():
                job.future.set_result(
                    JobOutcome(error=ProtocolError(503, "server shutting down"))
                )
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Run until ``stop_event`` fires, then stop gracefully."""
        await stop_event.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Admission (asyncio loop)
    # ------------------------------------------------------------------

    def _admit(self, request: Dict[str, Any], client: Any) -> "asyncio.Future[JobOutcome]":
        """Validate, apply quota + queue cap, enqueue; raises ProtocolError."""
        assert self._loop is not None and self._wakeup is not None
        if self._draining:
            raise ProtocolError(503, "server shutting down")
        ok, retry_after = self.quotas.try_acquire(client)
        if not ok:
            raise ProtocolError(
                429, "client quota exceeded", retry_after=retry_after
            )
        if len(self._pending) >= self.config.max_queue:
            raise ProtocolError(503, "job queue full")
        entry = self.registry.get(request["tensor"])
        if entry is None:
            raise ProtocolError(404, f"unknown tensor {request['tensor']!r}")
        batching.check_job(entry, request)
        kernel_job = KernelJob(
            entry=entry,
            kernel=request["kernel"],
            mode=request["mode"],
            rank=request["rank"],
            seed=request["seed"],
            variant=request["variant"],
            block_size=request["block_size"],
            request_id=request.get("id"),
            client=client,
        )
        future: "asyncio.Future[JobOutcome]" = self._loop.create_future()
        self._pending.append(_Job(kernel_job, future))
        self._wakeup.set()
        return future

    # ------------------------------------------------------------------
    # Dispatcher (asyncio loop + executor threads)
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None and self._slots is not None
        while True:
            if not self._pending:
                if self._draining:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            # Hold off draining until an executor slot frees up: while
            # every slot is busy, compatible requests accumulate and
            # leave as one fused group.
            await self._slots.acquire()
            if (
                self.config.batch
                and self.config.batch_window > 0
                and not self._draining
                and (len(self._pending) > 1 or self._inflight)
            ):
                # Micro-batching window: linger briefly so co-batchable
                # requests arriving back-to-back join this drain.  A
                # lone request on an idle server skips the linger — the
                # window only pays when traffic is already overlapping.
                await asyncio.sleep(self.config.batch_window)
            if not self._pending:
                self._slots.release()
                continue
            jobs = list(self._pending)
            self._pending.clear()
            # With batching off, every job dispatches alone — the
            # baseline pays one executor round-trip per request.
            groups = batching.group_jobs(
                [j.kernel_job for j in jobs],
                self.config.max_batch if self.config.batch else 1,
            )
            by_identity = {id(j.kernel_job): j for j in jobs}
            member_groups = [
                [by_identity[id(kj)] for kj in group] for group in groups
            ]
            if self.config.batch:
                # Dispatch batching: the whole drain rides one executor
                # round-trip — groups run back-to-back on the thread.
                task = asyncio.create_task(self._run_groups(member_groups))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)
                continue
            first = True
            for members in member_groups:
                if not first:
                    await self._slots.acquire()
                first = False
                task = asyncio.create_task(self._run_groups([members]))
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _run_groups(self, member_groups: List[List[_Job]]) -> None:
        """Run one executor call covering every group in the drain."""
        assert self._loop is not None and self._pool is not None
        assert self._slots is not None
        groups = [[m.kernel_job for m in members] for members in member_groups]
        try:
            outcome_lists = await self._loop.run_in_executor(
                self._pool, self._execute, groups
            )
        except Exception as exc:  # noqa: BLE001 — executor failure → 500s
            err = ProtocolError(500, f"{type(exc).__name__}: {exc}")
            outcome_lists = [
                [JobOutcome(error=err) for _ in group] for group in groups
            ]
        finally:
            self._slots.release()
        now = time.monotonic()
        for members, outcomes in zip(member_groups, outcome_lists):
            fused = any(o.fused for o in outcomes)
            self.metrics.record_batch(len(outcomes), fused=fused)
            for member, outcome in zip(members, outcomes):
                if outcome.error is None:
                    self.metrics.record_latency(
                        member.kernel_job.kernel,
                        now - member.kernel_job.submitted,
                    )
                if not member.future.done():
                    member.future.set_result(outcome)

    def _execute(self, groups: List[List[KernelJob]]) -> List[List[JobOutcome]]:
        """Executor-thread entry: pin the intra-kernel thread count."""
        with parallel_config(num_threads=self.config.kernel_threads):
            return [
                batching.execute_group(group, batch=self.config.batch)
                for group in groups
            ]

    # ------------------------------------------------------------------
    # Request connections
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = writer.get_extra_info("peername")
        client_key = client[0] if isinstance(client, tuple) else str(client)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line exceeded the stream limit: framing is gone
                    await self._send(
                        writer, ProtocolError(413, "request line too long").to_response()
                    )
                    self.metrics.record_response(413)
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue
                await self._handle_request_line(line, writer, client_key)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; any in-flight job still completes
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request_line(
        self, line: bytes, writer: asyncio.StreamWriter, client_key: Any
    ) -> None:
        self.metrics.record_request()
        request_id = None
        try:
            raw = decode_request(line)
            request_id = raw.get("id")
            request = validate_request(raw)
            if request["op"] == "ping":
                await self._send(
                    writer, {"id": request_id, "ok": True, "status": 200, "pong": True}
                )
                self.metrics.record_response(200)
                return
            if request["op"] == "list":
                await self._send(
                    writer,
                    {
                        "id": request_id,
                        "ok": True,
                        "status": 200,
                        "tensors": self.registry.describe(),
                    },
                )
                self.metrics.record_response(200)
                return
            future = self._admit(request, client_key)
        except ProtocolError as exc:
            self.metrics.record_response(exc.code)
            await self._send(writer, exc.to_response(request_id))
            return
        outcome = await future
        if outcome.error is not None:
            self.metrics.record_response(outcome.error.code)
            await self._send(writer, outcome.error.to_response(request_id))
            return
        self.metrics.record_response(200)
        await self._send(
            writer,
            {
                "id": request_id,
                "ok": True,
                "status": 200,
                "result_digest": outcome.digest,
                "batch_size": outcome.batch_size,
                "fused": outcome.fused,
            },
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, body: Dict[str, Any]) -> None:
        try:
            writer.write(encode_message(body))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            pass  # client disconnected mid-response; nothing to unwind

    # ------------------------------------------------------------------
    # Metrics connections (minimal HTTP/1.1)
    # ------------------------------------------------------------------

    async def _handle_metrics(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            while True:  # drain headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.startswith("/healthz"):
                payload = json.dumps(
                    {"ok": not self._draining, "draining": self._draining}
                ).encode()
            else:
                payload = json.dumps(self.metrics.snapshot(), indent=1).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + payload
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
