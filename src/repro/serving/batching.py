"""Request grouping and fused batch execution.

The server drains its job queue and hands each drained slice to
:func:`group_jobs`, which buckets compatible requests: same tensor, same
kernel, same mode, same variant/block size.  Every job in a group shares
one resolved :class:`~repro.perf.autotune.TuneConfig` and therefore one
mode-sort plan (and HiCOO conversion) out of the plan cache — the
pre-processing the paper amortizes is paid once per group instead of
once per request.

Groups of column-separable kernels go further and **fuse**: MTTKRP and
TTM consume their dense operand column-by-column (elementwise products
plus per-column segmented reductions), so concatenating the per-request
factor/matrix columns into one rank-``sum(r_i)`` operand and slicing the
output columns apart afterwards executes the identical floating-point
operations in the identical order per column.  Fused results are
therefore *bit-identical* to sequential per-request execution — the
property the ``serving_batch`` conformance check and the hypothesis
suite assert.  Chunked parallel execution preserves this too: chunk
plans are built from nonzero offsets only (never the dense rank), so
fused and sequential runs see the same chunk boundaries.

Fusion is deliberately conservative:

* only in-RAM tensors (the out-of-core kernels pick their step plan
  from the memory budget *and the rank*, so a fused rank would change
  partial-sum boundaries);
* only the ``coo`` and ``hicoo`` variants, whose per-column
  independence is guaranteed by the numpy kernels;
* only up to :data:`FUSED_RANK_CAP` total columns, to bound the fused
  intermediate.

Everything else in a group still executes sequentially per request —
amortizing the shared plans — via the exact same single-request path
the unbatched baseline uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..core.registry import KernelOperands, make_operands
from ..core.tew import tew_coo
from ..core.ts import ts
from ..errors import PastaError
from ..formats.scoo import SemiSparseCooTensor
from ..formats.shicoo import SHicooTensor
from ..perf import ooc
from ..perf.dispatch import resolve_config, run_config
from .protocol import ProtocolError, result_digest
from .registry import TensorEntry

#: Cap on the summed rank of one fused kernel call; groups past it are
#: split so the fused dense intermediate stays bounded.
FUSED_RANK_CAP = 256

#: Kernels whose dense operand is consumed column-by-column.
FUSABLE_KERNELS = ("MTTKRP", "TTM")

#: Variants whose numpy kernels are per-column independent (verified).
FUSABLE_VARIANTS = ("coo", "hicoo")

#: Kernels an mmap-backed entry can serve (out-of-core implementations).
MMAP_KERNELS = ("TTV", "TTM", "MTTKRP")


@dataclass
class KernelJob:
    """One admitted kernel request, bound to its registry entry."""

    entry: TensorEntry
    kernel: str
    mode: int
    rank: int
    seed: int
    variant: str
    block_size: Optional[int]
    request_id: Any = None
    client: Any = None
    submitted: float = field(default_factory=time.monotonic)


@dataclass
class JobOutcome:
    """What one job produced: a result + digest, or a protocol error."""

    result: Any = None
    digest: Optional[str] = None
    error: Optional[ProtocolError] = None
    batch_size: int = 1
    fused: bool = False


def check_job(entry: TensorEntry, req: Dict[str, Any]) -> None:
    """Admission checks that need the registry entry; raises 400."""
    kernel = req["kernel"]
    if not 0 <= req["mode"] < entry.order:
        raise ProtocolError(
            400,
            f"mode {req['mode']} out of range for order-{entry.order} "
            f"tensor {entry.name!r}",
        )
    if entry.kind == "mmap":
        if kernel not in MMAP_KERNELS:
            raise ProtocolError(
                400,
                f"kernel {kernel!r} is not available on mmap-backed "
                f"tensors; use one of {MMAP_KERNELS}",
            )
        if req["variant"] != "coo":
            raise ProtocolError(
                400, "mmap-backed tensors serve only the 'coo' variant"
            )
    elif kernel in ("TEW", "TS") and req["variant"] != "coo":
        raise ProtocolError(
            400, f"kernel {kernel!r} serves only the 'coo' variant"
        )


def group_key(job: KernelJob) -> Hashable:
    """Jobs sharing this key can share plans (and possibly fuse)."""
    return (job.entry.name, job.kernel, job.mode, job.variant, job.block_size)


def group_jobs(jobs: List[KernelJob], max_batch: int) -> List[List[KernelJob]]:
    """Bucket jobs by :func:`group_key`, preserving arrival order.

    Groups are split at ``max_batch`` jobs, and fusable groups also at
    :data:`FUSED_RANK_CAP` summed columns.
    """
    buckets: "Dict[Hashable, List[KernelJob]]" = {}
    order: List[Hashable] = []
    for job in jobs:
        key = group_key(job)
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(job)
    groups: List[List[KernelJob]] = []
    for key in order:
        bucket = buckets[key]
        fusable = bucket[0].kernel in FUSABLE_KERNELS
        current: List[KernelJob] = []
        ranks = 0
        for job in bucket:
            over_rank = fusable and current and ranks + job.rank > FUSED_RANK_CAP
            if len(current) >= max_batch or over_rank:
                groups.append(current)
                current, ranks = [], 0
            current.append(job)
            ranks += job.rank
        if current:
            groups.append(current)
    return groups


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _operands(job: KernelJob) -> KernelOperands:
    return make_operands(
        job.entry.tensor,
        job.kernel,
        mode=job.mode,
        rank=job.rank,
        seed=job.seed,
    )


def _execute_one(job: KernelJob) -> Any:
    """The single-request path — also the sequential baseline."""
    tensor = job.entry.tensor
    operands = _operands(job)
    if job.entry.kind == "mmap":
        if job.kernel == "MTTKRP":
            return ooc.mttkrp(tensor, list(operands.factors), job.mode)
        if job.kernel == "TTV":
            return ooc.ttv(tensor, operands.vector, job.mode)
        if job.kernel == "TTM":
            return ooc.ttm(tensor, operands.matrix, job.mode)
        raise ProtocolError(400, f"kernel {job.kernel!r} unsupported on mmap")
    if job.kernel == "TEW":
        return tew_coo(tensor, operands.second_tensor, "add")
    if job.kernel == "TS":
        return ts(tensor, operands.scalar, "mul")
    config = resolve_config(
        tensor,
        job.kernel,
        variant=job.variant,
        block_size=job.block_size,
        mode=job.mode,
        rank=job.rank,
        seed=job.seed,
    )
    return run_config(tensor, job.kernel, config, operands, mode=job.mode)


def _can_fuse(jobs: List[KernelJob]) -> bool:
    head = jobs[0]
    return (
        len(jobs) > 1
        and head.entry.kind == "ram"
        and head.kernel in FUSABLE_KERNELS
        and head.variant in FUSABLE_VARIANTS
        and sum(j.rank for j in jobs) <= FUSED_RANK_CAP
    )


def _column_edges(jobs: List[KernelJob]) -> List[Tuple[int, int]]:
    edges, start = [], 0
    for job in jobs:
        edges.append((start, start + job.rank))
        start += job.rank
    return edges


def _execute_fused(jobs: List[KernelJob]) -> List[Any]:
    """One fused kernel call; outputs sliced back per request.

    Column ``r`` of the fused operand sees exactly the floating-point
    operations column ``r`` of the per-request call would, so each
    slice is bitwise equal to :func:`_execute_one` on that job.
    """
    head = jobs[0]
    tensor = head.entry.tensor
    config = resolve_config(
        tensor,
        head.kernel,
        variant=head.variant,
        block_size=head.block_size,
        mode=head.mode,
        rank=head.rank,
        seed=head.seed,
    )
    per_job = [_operands(job) for job in jobs]
    edges = _column_edges(jobs)
    if head.kernel == "MTTKRP":
        order = head.entry.order
        fused_factors = tuple(
            np.concatenate([ops.factors[m] for ops in per_job], axis=1)
            for m in range(order)
        )
        out = run_config(
            tensor,
            "MTTKRP",
            config,
            KernelOperands(factors=fused_factors),
            mode=head.mode,
        )
        return [np.ascontiguousarray(out[:, a:b]) for a, b in edges]
    # TTM: concatenate matrix columns; rebuild per-request semi-sparse
    # outputs around the shared (rank-independent) index structure.
    fused_matrix = np.concatenate([ops.matrix for ops in per_job], axis=1)
    out = run_config(
        tensor,
        "TTM",
        config,
        KernelOperands(matrix=fused_matrix),
        mode=head.mode,
    )
    results = []
    for job, (a, b) in zip(jobs, edges):
        out_shape = list(head.entry.shape)
        out_shape[job.mode] = job.rank
        values = np.ascontiguousarray(out.values[:, a:b])
        if isinstance(out, SemiSparseCooTensor):
            results.append(
                SemiSparseCooTensor(
                    tuple(out_shape),
                    list(out.dense_modes),
                    out.indices,
                    values,
                    validate=False,
                )
            )
        elif isinstance(out, SHicooTensor):
            results.append(
                SHicooTensor(
                    tuple(out_shape),
                    out.block_size,
                    list(out.dense_modes),
                    out.bptr,
                    out.binds,
                    out.einds,
                    values,
                    validate=False,
                )
            )
        else:  # pragma: no cover — ttm variants return the two above
            raise PastaError(
                f"unexpected fused TTM output {type(out).__name__}"
            )
    return results


def execute_group(
    jobs: List[KernelJob], *, batch: bool = True
) -> List[JobOutcome]:
    """Run one compatible group; one outcome per job, in job order.

    ``batch=False`` is the unbatched baseline: every job takes the
    single-request path.  Exceptions are captured per group (fused) or
    per job (sequential) as 500-style outcomes — a poisoned request
    never takes down its neighbors' connections.
    """
    if batch and _can_fuse(jobs):
        try:
            results = _execute_fused(jobs)
        except ProtocolError as exc:
            return [JobOutcome(error=exc, batch_size=len(jobs)) for _ in jobs]
        except Exception as exc:  # noqa: BLE001 — surfaced as 500s
            err = ProtocolError(500, f"{type(exc).__name__}: {exc}")
            return [JobOutcome(error=err, batch_size=len(jobs)) for _ in jobs]
        return [
            JobOutcome(
                result=result,
                digest=result_digest(result),
                batch_size=len(jobs),
                fused=True,
            )
            for result in results
        ]
    outcomes = []
    for job in jobs:
        try:
            result = _execute_one(job)
        except ProtocolError as exc:
            outcomes.append(JobOutcome(error=exc, batch_size=len(jobs)))
            continue
        except Exception as exc:  # noqa: BLE001 — surfaced as a 500
            err = ProtocolError(500, f"{type(exc).__name__}: {exc}")
            outcomes.append(JobOutcome(error=err, batch_size=len(jobs)))
            continue
        outcomes.append(
            JobOutcome(
                result=result,
                digest=result_digest(result),
                batch_size=len(jobs),
            )
        )
    return outcomes
