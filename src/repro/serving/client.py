"""Clients for the serving protocol: an asyncio class + sync helpers.

:class:`ServingClient` is what the traffic generator, benchmark, and
tests use — one TCP connection, sequential request/response.  The sync
helpers (:func:`request_once`, :func:`fetch_metrics`) exist for CLI
probes and test assertions that don't want an event loop.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
from typing import Any, Dict, Optional

from .protocol import MAX_LINE_BYTES, encode_message


class ServingError(Exception):
    """A non-200 response, with the server's status code attached."""

    def __init__(self, response: Dict[str, Any]) -> None:
        super().__init__(response.get("error", "request failed"))
        self.status = int(response.get("status", 0))
        self.retry_after = response.get("retry_after")
        self.response = response


class ServingClient:
    """One NDJSON connection to a :class:`TensorServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServingClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES + 2
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request object; return the raw response object."""
        assert self._reader is not None and self._writer is not None, (
            "client not connected"
        )
        self._writer.write(encode_message(request))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    async def kernel(
        self,
        tensor: str,
        kernel: str,
        *,
        mode: int = 0,
        rank: int = 8,
        seed: int = 0,
        variant: str = "coo",
        block_size: Optional[int] = None,
        request_id: Any = None,
        check: bool = True,
    ) -> Dict[str, Any]:
        """One kernel request; raises :class:`ServingError` on non-200.

        ``check=False`` returns error responses instead of raising (the
        traffic generator counts 429s rather than treating them as
        failures).
        """
        response = await self.call(
            {
                "op": "kernel",
                "id": request_id,
                "tensor": tensor,
                "kernel": kernel,
                "mode": mode,
                "rank": rank,
                "seed": seed,
                "variant": variant,
                "block_size": block_size,
            }
        )
        if check and not response.get("ok"):
            raise ServingError(response)
        return response

    async def ping(self) -> Dict[str, Any]:
        return await self.call({"op": "ping"})

    async def list_tensors(self) -> Dict[str, Any]:
        return await self.call({"op": "list"})


def request_once(
    host: str, port: int, request: Dict[str, Any], *, timeout: float = 30.0
) -> Dict[str, Any]:
    """Blocking single request over a throwaway socket (tests, probes)."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(encode_message(request))
        chunks = []
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    data = b"".join(chunks)
    if not data:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(data.splitlines()[0].decode("utf-8"))


def fetch_metrics(
    host: str, port: int, *, path: str = "/metrics", timeout: float = 10.0
) -> Dict[str, Any]:
    """Blocking GET against the metrics endpoint; parsed JSON body."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        body = response.read()
    finally:
        conn.close()
    if response.status != 200:
        raise ServingError({"status": response.status, "error": body.decode()})
    return json.loads(body.decode("utf-8"))
