"""Async tensor serving tier: registry, batching server, clients.

See docs/serving.md for the architecture.  The public surface:

* :class:`TensorRegistry` / :func:`check_invariants` — loaded tensors
  (in-RAM and mmap ``REPROBIN`` handles) plus the fuzz-style validator;
* :class:`TensorServer` / :class:`ServerConfig` — the asyncio server
  with request batching, per-client quotas, and graceful shutdown;
* :class:`ServingClient`, :func:`request_once`, :func:`fetch_metrics` —
  protocol clients;
* :func:`powerlaw_requests` / :func:`run_traffic` — synthetic
  multi-tenant traffic;
* :mod:`repro.serving.batching` — the group/fuse executor the
  conformance ``serving_batch`` check drives directly.
"""

from .batching import (
    FUSABLE_KERNELS,
    KernelJob,
    execute_group,
    group_jobs,
    group_key,
)
from .client import ServingClient, ServingError, fetch_metrics, request_once
from .metrics import ServerMetrics, percentile
from .protocol import (
    MAX_LINE_BYTES,
    MAX_RANK,
    ProtocolError,
    decode_request,
    encode_message,
    result_digest,
    validate_request,
)
from .quota import QuotaManager, TokenBucket
from .registry import TensorEntry, TensorRegistry, check_invariants
from .server import ServerConfig, TensorServer
from .traffic import powerlaw_requests, run_traffic

__all__ = [
    "FUSABLE_KERNELS",
    "KernelJob",
    "MAX_LINE_BYTES",
    "MAX_RANK",
    "ProtocolError",
    "QuotaManager",
    "ServerConfig",
    "ServerMetrics",
    "ServingClient",
    "ServingError",
    "TensorEntry",
    "TensorRegistry",
    "TensorServer",
    "TokenBucket",
    "check_invariants",
    "decode_request",
    "encode_message",
    "execute_group",
    "fetch_metrics",
    "group_jobs",
    "group_key",
    "percentile",
    "powerlaw_requests",
    "request_once",
    "result_digest",
    "run_traffic",
    "validate_request",
]
