"""Registry of tensors a serving process has loaded.

The server owns one :class:`TensorRegistry` holding both in-RAM
:class:`~repro.formats.coo.CooTensor` objects (realized dataset entries
or parsed files) and mmap-backed
:class:`~repro.io.binfile.MmapCooTensor` handles over ``REPROBIN``
files.  Lookups are lock-guarded because kernel batches execute on
executor threads while the asyncio loop admits new requests.

:func:`check_invariants` is the ``repro fuzz``-style validator the
fault-injection tests call after every abuse scenario: it returns a
list of violation strings (empty == consistent) instead of raising, so
a single sweep reports every problem at once.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..formats.coo import CooTensor
from ..io.binfile import MmapCooTensor, open_bin
from ..perf.plan_cache import PlanCache, get_plan_cache


@dataclass
class TensorEntry:
    """One registered tensor: the handle plus immutable metadata."""

    name: str
    tensor: Any
    kind: str  # "ram" | "mmap"
    source: str
    shape: Tuple[int, ...]
    nnz: int

    @property
    def order(self) -> int:
        return len(self.shape)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "source": self.source,
            "shape": list(self.shape),
            "nnz": self.nnz,
        }


class TensorRegistry:
    """Named tensors shared by every connection of one server."""

    def __init__(self) -> None:
        self._entries: Dict[str, TensorEntry] = {}
        self._lock = threading.RLock()

    def add_ram(self, name: str, tensor: CooTensor, *, source: str = "ram") -> TensorEntry:
        entry = TensorEntry(
            name=name,
            tensor=tensor,
            kind="ram",
            source=source,
            shape=tuple(int(s) for s in tensor.shape),
            nnz=int(tensor.nnz),
        )
        with self._lock:
            if name in self._entries:
                raise ValueError(f"tensor {name!r} already registered")
            self._entries[name] = entry
        return entry

    def add_mmap(self, name: str, path: str, *, verify: bool = False) -> TensorEntry:
        handle = open_bin(path, verify=verify)
        entry = TensorEntry(
            name=name,
            tensor=handle,
            kind="mmap",
            source=str(path),
            shape=tuple(int(s) for s in handle.shape),
            nnz=int(handle.nnz),
        )
        with self._lock:
            if name in self._entries:
                handle.close()
                raise ValueError(f"tensor {name!r} already registered")
            self._entries[name] = entry
        return entry

    def get(self, name: str) -> Optional[TensorEntry]:
        with self._lock:
            return self._entries.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [e.describe() for e in self._entries.values()]

    def remove(self, name: str) -> bool:
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            return False
        if entry.kind == "mmap":
            entry.tensor.close()
        return True

    def close_all(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            if entry.kind == "mmap":
                entry.tensor.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries


def check_invariants(
    registry: TensorRegistry, cache: Optional[PlanCache] = None
) -> List[str]:
    """Validate registry + plan cache consistency; [] means healthy.

    Mirrors the fuzz harness's style: every violation is collected as a
    message rather than raised, so fault-injection tests can assert
    ``check_invariants(...) == []`` after each abuse scenario.
    """
    cache = cache if cache is not None else get_plan_cache()
    problems: List[str] = []
    for entry in registry.describe():
        name = entry["name"]
        live = registry.get(name)
        if live is None:
            problems.append(f"{name}: vanished between describe() and get()")
            continue
        if tuple(entry["shape"]) != live.shape:
            problems.append(f"{name}: metadata shape drifted from entry")
        if live.nnz < 0:
            problems.append(f"{name}: negative nnz {live.nnz}")
        if len(live.shape) != live.order:
            problems.append(f"{name}: order {live.order} != len(shape)")
        tensor = live.tensor
        if live.kind == "mmap":
            if getattr(tensor, "_closed", False):
                problems.append(f"{name}: mmap handle closed while registered")
            elif int(tensor.nnz) != live.nnz:
                problems.append(f"{name}: mmap nnz drifted from registration")
        else:
            if not isinstance(tensor, CooTensor):
                problems.append(
                    f"{name}: ram entry holds {type(tensor).__name__}"
                )
            elif tensor.indices.shape[1] != tensor.values.shape[0]:
                problems.append(f"{name}: indices/values length mismatch")
    stats = cache.stats()
    if stats.hits < 0 or stats.misses < 0:
        problems.append("plan cache: negative hit/miss counters")
    if stats.entries < 0 or stats.tensors < 0:
        problems.append("plan cache: negative occupancy")
    for kind, (hits, misses) in stats.by_kind.items():
        if hits < 0 or misses < 0:
            problems.append(f"plan cache[{kind}]: negative counters")
    return problems
