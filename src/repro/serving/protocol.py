"""Wire protocol for the tensor serving tier.

Requests and responses are newline-delimited JSON objects (NDJSON) over
a plain TCP stream.  A kernel request names a registered tensor and the
kernel parameters; the server regenerates the dense operands
deterministically from ``(kernel, mode, rank, seed)`` via
:func:`repro.core.registry.make_operands`, so the wire never carries
arrays.  Responses carry a SHA-256 digest of the result
(:func:`result_digest`) instead of the result itself, which keeps
payloads tiny while still letting clients assert bit-identity against a
local computation.

Error handling borrows HTTP status semantics so quota and overload
signals are unambiguous:

====  =================  ===========================================
code  name               meaning
====  =================  ===========================================
400   bad_request        malformed JSON or invalid fields
404   not_found          tensor name not in the registry
413   payload_too_large  request line exceeded :data:`MAX_LINE_BYTES`
429   quota_exceeded     token bucket empty; ``retry_after`` seconds
500   internal           kernel execution raised
503   overloaded         queue full or server draining
====  =================  ===========================================
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

import numpy as np

from ..core.analysis import KERNELS
from ..perf.dispatch import VARIANTS

#: Hard cap on one request line; longer lines are rejected with 413 and
#: the connection is closed (the framing is unrecoverable past this).
MAX_LINE_BYTES = 64 * 1024

#: Largest dense rank a request may ask for (bounds operand memory).
MAX_RANK = 64

#: Request operations the server understands.
OPS = ("kernel", "ping", "list")

#: Sparse-result attributes folded into :func:`result_digest`, in fixed
#: order.  Matches the attribute tuple the conformance harness's exact
#: comparator walks.
_SPARSE_ATTRS = ("indices", "values", "bptr", "binds", "einds", "cinds")


class ProtocolError(Exception):
    """A request the server refuses, with an HTTP-style status code."""

    def __init__(
        self, code: int, message: str, *, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(message)
        self.code = int(code)
        self.retry_after = retry_after

    def to_response(self, request_id: Optional[Any] = None) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "id": request_id,
            "ok": False,
            "status": self.code,
            "error": str(self),
        }
        if self.retry_after is not None:
            body["retry_after"] = round(float(self.retry_after), 6)
        return body


def encode_message(obj: Dict[str, Any]) -> bytes:
    """One NDJSON frame: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` (400/413)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(413, f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(400, f"malformed request: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(400, "request must be a JSON object")
    return obj


def _require_int(obj: Dict[str, Any], key: str, default: int, lo: int, hi: int) -> int:
    value = obj.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(400, f"{key!r} must be an integer")
    if not lo <= value <= hi:
        raise ProtocolError(400, f"{key!r} must be in [{lo}, {hi}]")
    return value


def validate_request(obj: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a decoded request; raises :class:`ProtocolError` (400).

    Kernel requests come back with exactly the fields the batching layer
    keys on: ``tensor``, ``kernel``, ``mode``, ``rank``, ``seed``,
    ``variant``, ``block_size``.
    """
    op = obj.get("op", "kernel")
    if op not in OPS:
        raise ProtocolError(400, f"unknown op {op!r}; use one of {OPS}")
    normalized: Dict[str, Any] = {"op": op, "id": obj.get("id")}
    if op != "kernel":
        return normalized
    tensor = obj.get("tensor")
    if not isinstance(tensor, str) or not tensor:
        raise ProtocolError(400, "'tensor' must be a non-empty string")
    kernel = obj.get("kernel")
    if not isinstance(kernel, str) or kernel.upper() not in KERNELS:
        raise ProtocolError(
            400, f"'kernel' must be one of {KERNELS}, got {kernel!r}"
        )
    variant = obj.get("variant", "coo")
    if not isinstance(variant, str) or variant.lower() not in VARIANTS:
        raise ProtocolError(
            400, f"'variant' must be one of {VARIANTS}, got {variant!r}"
        )
    block_size = obj.get("block_size")
    if block_size is not None:
        if isinstance(block_size, bool) or not isinstance(block_size, int):
            raise ProtocolError(400, "'block_size' must be an integer or null")
        if not 1 <= block_size <= 1024:
            raise ProtocolError(400, "'block_size' must be in [1, 1024]")
    normalized.update(
        tensor=tensor,
        kernel=kernel.upper(),
        mode=_require_int(obj, "mode", 0, 0, 15),
        rank=_require_int(obj, "rank", 8, 1, MAX_RANK),
        seed=_require_int(obj, "seed", 0, 0, 2**31 - 1),
        variant=variant.lower(),
        block_size=block_size,
    )
    return normalized


def result_digest(result: Any) -> str:
    """SHA-256 over a kernel result's exact bytes.

    Dense arrays hash ``(dtype, shape, C-order bytes)``; sparse results
    hash the type name, shape, and every array attribute the exact
    conformance comparator walks, so two results share a digest iff that
    comparator would call them identical.
    """
    h = hashlib.sha256()

    def add_array(tag: str, arr: np.ndarray) -> None:
        a = np.ascontiguousarray(arr)
        h.update(tag.encode())
        h.update(str(a.dtype).encode())
        h.update(repr(a.shape).encode())
        h.update(a.tobytes())

    if isinstance(result, np.ndarray):
        add_array("dense", result)
        return h.hexdigest()
    h.update(type(result).__name__.encode())
    shape = getattr(result, "shape", None)
    if shape is not None:
        h.update(repr(tuple(int(s) for s in shape)).encode())
    for attr in ("dense_modes", "block_size"):
        value = getattr(result, attr, None)
        if value is not None:
            h.update(f"{attr}={value!r}".encode())
    for attr in _SPARSE_ATTRS:
        value = getattr(result, attr, None)
        if value is not None:
            add_array(attr, np.asarray(value))
    return h.hexdigest()
