"""Server-side metrics: counters, latency percentiles, cache health.

One :class:`ServerMetrics` instance is shared by the asyncio loop and
the executor threads, so every mutation takes the lock.  Latencies are
kept in bounded per-kernel reservoirs (the most recent
:data:`RESERVOIR_SIZE` samples) and summarized with nearest-rank
percentiles — enough fidelity for p50/p99 without unbounded growth.

:meth:`ServerMetrics.snapshot` is the JSON body the metrics endpoint
serves; its schema is documented in ``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..perf.parallel import last_parallel_report
from ..perf.plan_cache import PlanCache, get_plan_cache

#: Most recent latency samples kept per kernel.
RESERVOIR_SIZE = 4096


def percentile(samples: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 1])."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class ServerMetrics:
    """Thread-safe counters and reservoirs for one server process."""

    def __init__(self, cache: Optional[PlanCache] = None) -> None:
        self._cache = cache
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests_total = 0
        self._responses_by_status: Dict[int, int] = {}
        self._batches_total = 0
        self._batched_requests_total = 0
        self._fused_requests_total = 0
        self._latency: Dict[str, Deque[float]] = {}
        self._queue_depth_fn: Callable[[], int] = lambda: 0
        self._inflight_fn: Callable[[], int] = lambda: 0

    # ------------------------------------------------------------------
    # Recording (loop and executor threads)
    # ------------------------------------------------------------------

    def bind_gauges(
        self,
        queue_depth: Callable[[], int],
        inflight: Callable[[], int],
    ) -> None:
        """Attach the server's live queue-depth and in-flight gauges."""
        self._queue_depth_fn = queue_depth
        self._inflight_fn = inflight

    def record_request(self) -> None:
        with self._lock:
            self._requests_total += 1

    def record_response(self, status: int) -> None:
        with self._lock:
            self._responses_by_status[status] = (
                self._responses_by_status.get(status, 0) + 1
            )

    def record_batch(self, size: int, *, fused: bool) -> None:
        with self._lock:
            self._batches_total += 1
            self._batched_requests_total += size
            if fused:
                self._fused_requests_total += size

    def record_latency(self, kernel: str, seconds: float) -> None:
        with self._lock:
            reservoir = self._latency.get(kernel)
            if reservoir is None:
                reservoir = deque(maxlen=RESERVOIR_SIZE)
                self._latency[kernel] = reservoir
            reservoir.append(float(seconds))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The metrics document served over HTTP (see docs/serving.md)."""
        cache = self._cache if self._cache is not None else get_plan_cache()
        stats = cache.stats()
        report = last_parallel_report()
        with self._lock:
            latency = {
                kernel: {
                    "count": len(samples),
                    "p50_seconds": percentile(list(samples), 0.50),
                    "p99_seconds": percentile(list(samples), 0.99),
                }
                for kernel, samples in sorted(self._latency.items())
            }
            body: Dict[str, Any] = {
                "uptime_seconds": time.monotonic() - self._started,
                "requests_total": self._requests_total,
                "responses_by_status": {
                    str(code): count
                    for code, count in sorted(self._responses_by_status.items())
                },
                "batches_total": self._batches_total,
                "batched_requests_total": self._batched_requests_total,
                "fused_requests_total": self._fused_requests_total,
                "mean_batch_size": (
                    self._batched_requests_total / self._batches_total
                    if self._batches_total
                    else None
                ),
                "latency": latency,
            }
        body["queue_depth"] = int(self._queue_depth_fn())
        body["inflight_batches"] = int(self._inflight_fn())
        body["plan_cache"] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "hit_rate": stats.hit_rate,
            "entries": stats.entries,
            "tensors": stats.tensors,
            "by_kind": {
                kind: {"hits": h, "misses": m}
                for kind, (h, m) in stats.by_kind.items()
            },
        }
        body["partition_imbalance"] = (
            report.measured_imbalance if report is not None else None
        )
        body["parallel_workers"] = report.workers if report is not None else None
        return body
