"""Two-level memory hierarchy model: LLC over DRAM/HBM.

Both execution models move a kernel's streamed and irregular traffic
through this model.  The central quantity is the *residency fraction* —
how much of a reusable working set the last-level cache can hold — which
blends the LLC and DRAM service rates.  Small tensors therefore run at
cache bandwidth and can exceed the DRAM roofline, exactly the paper's
Observation 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platforms.specs import PlatformSpec
from .params import (
    DEFAULT_CPU_PARAMS,
    DEFAULT_GPU_PARAMS,
    obtainable_dram_bandwidth_gbs,
    obtainable_llc_bandwidth_gbs,
)

_GIGA = 1e9


@dataclass(frozen=True)
class MemoryModel:
    """Bandwidths and capacity of one platform's memory hierarchy.

    Attributes
    ----------
    dram_bandwidth_gbs / llc_bandwidth_gbs:
        Obtainable (ERT-style) bandwidths, already derated from the
        theoretical peak.
    llc_bytes:
        Last-level cache capacity.
    dram_gather_floor / llc_gather_efficiency:
        Worst-case fraction of each level's bandwidth that data-dependent
        accesses attain (see :mod:`repro.machine.params`).
    cache_line_bytes:
        Transfer granularity used to judge how well an irregular chunk
        utilizes a transaction.
    """

    dram_bandwidth_gbs: float
    llc_bandwidth_gbs: float
    llc_bytes: int
    dram_gather_floor: float
    llc_gather_efficiency: float
    cache_line_bytes: int

    @classmethod
    def for_platform(cls, spec: PlatformSpec) -> "MemoryModel":
        """Build the memory model from Table III parameters."""
        params = DEFAULT_GPU_PARAMS if spec.is_gpu else DEFAULT_CPU_PARAMS
        line = params.coalesce_bytes if spec.is_gpu else params.cache_line_bytes
        return cls(
            dram_bandwidth_gbs=obtainable_dram_bandwidth_gbs(spec),
            llc_bandwidth_gbs=obtainable_llc_bandwidth_gbs(spec),
            llc_bytes=spec.llc_bytes,
            dram_gather_floor=params.dram_gather_floor,
            llc_gather_efficiency=params.llc_gather_efficiency,
            cache_line_bytes=line,
        )

    # ------------------------------------------------------------------

    def residency_fraction(self, working_set_bytes: int) -> float:
        """Fraction of a working set the LLC can keep resident.

        1.0 when the set fits entirely; otherwise the capacity ratio
        (a streaming-reuse approximation of the hit rate).
        """
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.llc_bytes / working_set_bytes)

    def streamed_seconds(self, num_bytes: int, working_set_bytes: int) -> float:
        """Time to move sequential traffic, given the kernel's working set.

        Traffic resident in the LLC moves at cache bandwidth; the rest at
        DRAM bandwidth.
        """
        if num_bytes <= 0:
            return 0.0
        resident = self.residency_fraction(working_set_bytes)
        bandwidth = (
            resident * self.llc_bandwidth_gbs
            + (1.0 - resident) * self.dram_bandwidth_gbs
        )
        return num_bytes / (bandwidth * _GIGA)

    def gather_seconds(
        self,
        num_bytes: int,
        operand_bytes: int,
        chunk_bytes: int,
    ) -> float:
        """Time to move irregular traffic targeting a reusable operand.

        ``operand_bytes`` is the dense structure being gathered from
        (vector, matrix, factors): when it fits in the LLC, gathers are
        served from cache.  ``chunk_bytes`` is the contiguous run per
        access — wide chunks (matrix rows) use transactions fully, 4-byte
        scalar gathers waste most of each line.
        """
        if num_bytes <= 0:
            return 0.0
        resident = self.residency_fraction(operand_bytes)
        chunk_utilization = min(1.0, chunk_bytes / self.cache_line_bytes)
        dram_efficiency = max(self.dram_gather_floor, chunk_utilization)
        llc_rate = self.llc_bandwidth_gbs * self.llc_gather_efficiency
        dram_rate = self.dram_bandwidth_gbs * dram_efficiency
        bandwidth = resident * llc_rate + (1.0 - resident) * dram_rate
        return num_bytes / (bandwidth * _GIGA)
