"""Trace-driven cache simulation: cross-validation of the analytic model.

The execution models use a closed-form residency fraction
(:meth:`MemoryModel.residency_fraction`).  This module provides an
actual set-associative LRU cache simulator plus kernel address-trace
generators, so the closed form can be validated against simulation on
small instances (see ``tests/test_trace.py``): streaming working sets
that fit the cache re-hit on the second pass, oversized ones thrash,
and gather hit rates track the operand-size-to-cache ratio.

The simulator is deliberately simple and sequential (a Python loop per
access); it is a validation instrument, not a performance path — traces
are capped accordingly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from ..errors import PlatformError
from ..formats.coo import CooTensor


@dataclass
class CacheStats:
    """Hit/miss counts of one simulation."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total simulated accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class CacheSimulator:
    """A set-associative LRU cache at line granularity."""

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int = 64,
        associativity: int = 8,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise PlatformError("cache parameters must be positive")
        num_lines = capacity_bytes // line_bytes
        if num_lines < associativity:
            raise PlatformError("cache too small for its associativity")
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = max(num_lines // associativity, 1)
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Clear contents and statistics."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on a hit."""
        line = address // self.line_bytes
        cache_set = self._sets[line % self.num_sets]
        if line in cache_set:
            cache_set.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        cache_set[line] = True
        if len(cache_set) > self.associativity:
            cache_set.popitem(last=False)
        return False

    def run(self, addresses: Iterable[int]) -> CacheStats:
        """Simulate an address stream; returns the cumulative stats."""
        for address in addresses:
            self.access(int(address))
        return self.stats


# ----------------------------------------------------------------------
# Kernel trace generators
# ----------------------------------------------------------------------

#: Address-space bases keeping the kernels' arrays disjoint.
_VALUE_BASE = 0
_OPERAND_BASE = 1 << 34
_OUTPUT_BASE = 1 << 35


def streaming_trace(num_bytes: int, passes: int = 1, stride: int = 4) -> np.ndarray:
    """Sequential sweeps over an array (TEW/TS-style traffic)."""
    one_pass = np.arange(0, num_bytes, stride, dtype=np.int64)
    return np.concatenate([one_pass] * passes) + _VALUE_BASE


def ttv_trace(tensor: CooTensor, mode: int) -> np.ndarray:
    """TTV's per-nonzero accesses: value stream + vector gathers."""
    mode = tensor.check_mode(mode)
    ordered, _ = tensor.fiber_partition(mode)
    value_addresses = _VALUE_BASE + 4 * np.arange(ordered.nnz, dtype=np.int64)
    gather_addresses = _OPERAND_BASE + 4 * ordered.indices[mode].astype(np.int64)
    trace = np.empty(2 * ordered.nnz, dtype=np.int64)
    trace[0::2] = value_addresses
    trace[1::2] = gather_addresses
    return trace


def mttkrp_trace(tensor: CooTensor, mode: int, rank: int) -> np.ndarray:
    """MTTKRP's factor-row and output-row accesses (line-sampled rows)."""
    mode = tensor.check_mode(mode)
    pieces = []
    row_bytes = 4 * rank
    offsets = [0]
    for m in range(tensor.order):
        offsets.append(offsets[-1] + tensor.shape[m] * row_bytes)
    for m in range(tensor.order):
        base = _OPERAND_BASE + offsets[m] if m != mode else _OUTPUT_BASE
        rows = tensor.indices[m].astype(np.int64) * row_bytes + base
        pieces.append(rows)
    # Interleave per-nonzero: each nonzero touches one row per mode.
    trace = np.empty(tensor.order * tensor.nnz, dtype=np.int64)
    for m, rows in enumerate(pieces):
        trace[m :: tensor.order] = rows
    return trace


def simulated_gather_hit_rate(
    operand_bytes: int,
    cache_bytes: int,
    num_accesses: int = 20_000,
    *,
    seed: int = 0,
    line_bytes: int = 64,
) -> float:
    """Hit rate of uniform random 4-byte gathers over an operand array.

    The empirical counterpart of the analytic residency fraction: tests
    assert the two agree within a tolerance across the fits/thrashes
    spectrum.
    """
    rng = np.random.default_rng(seed)
    addresses = _OPERAND_BASE + rng.integers(
        0, max(operand_bytes, 4), size=num_accesses, dtype=np.int64
    )
    simulator = CacheSimulator(cache_bytes, line_bytes=line_bytes)
    # Warm up with one pass so cold misses don't dominate the estimate.
    simulator.run(addresses[: num_accesses // 4])
    simulator.stats = CacheStats()
    simulator.run(addresses[num_accesses // 4 :])
    return simulator.stats.hit_rate
