"""Multicore CPU execution model (OpenMP-style).

Lowers a :class:`~repro.core.schedule.KernelSchedule` to a predicted
runtime on an Intel CPU from Table III.  The model captures the effects
the paper's CPU observations rest on:

* **memory-bound streaming** — streamed traffic moves at obtainable
  (ERT-style) bandwidth, or at LLC bandwidth when the working set fits
  (Observation 2's above-roofline small tensors);
* **irregular gathers** — vector/matrix/factor-row gathers run at a
  derated gather bandwidth unless the dense operand is LLC-resident;
* **load imbalance** — per-thread work is the actual fiber/block
  distribution of the input tensor, statically chunked as ``omp for``
  would (Observation 1's diversity);
* **NUMA** — irregular traffic pays a remote-access surcharge per
  additional socket (Observation 3: four-socket Wingtip's non-streaming
  kernels are less efficient than two-socket Bluesky's);
* **atomics** — ``omp atomic`` updates cost fixed time each plus a
  contention term from the measured output-index collision fraction
  (COO-MTTKRP's data race).
"""

from __future__ import annotations

from ..core.schedule import KernelSchedule
from ..errors import PlatformError
from ..platforms.specs import PlatformSpec
from .memory import MemoryModel
from .params import DEFAULT_CPU_PARAMS, CpuParams
from .result import ExecutionEstimate


class CpuExecutionModel:
    """Predicts kernel runtimes for one CPU platform."""

    def __init__(self, spec: PlatformSpec, params: CpuParams = DEFAULT_CPU_PARAMS):
        if spec.is_gpu:
            raise PlatformError(f"{spec.name} is a GPU; use GpuExecutionModel")
        self.spec = spec
        self.params = params
        self.memory = MemoryModel.for_platform(spec)

    # ------------------------------------------------------------------

    def predict(self, schedule: KernelSchedule) -> ExecutionEstimate:
        """Lower a schedule to a runtime estimate on this CPU."""
        params = self.params
        spec = self.spec
        is_hicoo = schedule.tensor_format.upper() == "HICOO"

        stream_bytes = schedule.streamed_bytes + schedule.writeallocate_bytes
        stream_seconds = self.memory.streamed_seconds(
            stream_bytes, schedule.working_set_bytes
        )
        if is_hicoo:
            # Morton-ordered compact layout streams better (Observation 4).
            stream_seconds /= params.hicoo_stream_bonus

        gather_seconds = self.memory.gather_seconds(
            schedule.irregular_bytes,
            schedule.random_operand_bytes,
            schedule.irregular_chunk_bytes,
        )
        # Remote NUMA accesses: irregular addresses land on any socket;
        # non-streaming kernels also scatter their output stream.
        numa_factor = 1.0 + params.numa_penalty_per_socket * (spec.sockets - 1)
        gather_seconds *= numa_factor
        if schedule.irregular_bytes > 0:
            stream_numa = 1.0 + params.numa_stream_fraction * (
                numa_factor - 1.0
            )
            stream_seconds *= stream_numa

        compute_seconds = schedule.flops / (
            spec.peak_sp_gflops * 1e9 * params.compute_efficiency
        )

        atomic_seconds = 0.0
        if schedule.atomic_updates:
            per_atomic = params.atomic_seconds * (
                1.0
                + params.atomic_conflict_multiplier
                * schedule.atomic_conflict_fraction
            )
            atomic_seconds = schedule.atomic_updates * per_atomic / spec.cores
            atomic_seconds *= numa_factor

        imbalance = schedule.load_imbalance(spec.cores)
        memory_seconds = stream_seconds + gather_seconds
        base = max(memory_seconds, compute_seconds)
        seconds = base * imbalance + atomic_seconds

        return ExecutionEstimate(
            platform=spec.name,
            algorithm=f"{schedule.tensor_format}-{schedule.kernel}-OMP",
            seconds=seconds,
            flops=schedule.flops,
            breakdown={
                "stream": stream_seconds,
                "gather": gather_seconds,
                "compute": compute_seconds,
                "atomic": atomic_seconds,
                "imbalance": imbalance,
                "numa": numa_factor,
            },
        )
