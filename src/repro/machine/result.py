"""Execution estimate: the output of lowering a schedule onto a platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class ExecutionEstimate:
    """Predicted execution of one kernel on one platform.

    Attributes
    ----------
    platform / algorithm:
        Names for reporting (e.g. ``"Bluesky"`` / ``"COO-TTV-OMP"``).
    seconds:
        Predicted kernel time (pre-processing excluded, as in the paper's
        timed region).
    flops:
        Floating point operations of the kernel.
    breakdown:
        Component seconds: ``stream``, ``gather``, ``compute``,
        ``atomic``, plus dimensionless factors ``imbalance``, ``numa`` or
        ``divergence``/``utilization`` that scaled them.
    """

    platform: str
    algorithm: str
    seconds: float
    flops: int
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS implied by the estimate."""
        if self.seconds <= 0.0:
            return 0.0
        return self.flops / self.seconds / 1e9

    def efficiency(self, roofline_gflops: float) -> float:
        """Achieved over Roofline performance (can exceed 1 via caches)."""
        if roofline_gflops <= 0.0:
            return 0.0
        return self.gflops / roofline_gflops
