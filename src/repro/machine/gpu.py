"""GPU execution model (CUDA-style grids of thread blocks).

Lowers a :class:`~repro.core.schedule.KernelSchedule` to a predicted
runtime on a Tesla P100/V100 from Table III.  Captured effects:

* **global-memory streaming** at obtainable HBM2 bandwidth, with the much
  smaller L2 giving less cache relief than CPU LLCs (Observation 4: HiCOO
  "does not benefit as much as on CPUs");
* **coalescing** — irregular traffic is derated by how much of each
  32-byte sector a gather chunk uses: TTM/MTTKRP's ``4R``-byte row
  gathers coalesce, TTV's 4-byte vector gathers do not;
* **warp divergence** — fiber-parallel kernels (one thread per fiber)
  run each warp as long as its longest fiber;
* **device saturation** — block-parallel kernels (HiCOO-MTTKRP-GPU maps
  one tensor block to one CUDA block) lose throughput twice: idle SMs
  when blocks are few, and idle threads when a tensor block holds far
  fewer nonzeros than the 256 launched threads;
* **atomics** — fast hardware atomicAdd, further accelerated on Volta
  (``improved_atomics``), with a contention term.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import (
    GRAIN_BLOCK,
    GRAIN_FIBER,
    KernelSchedule,
    warp_divergence_factor,
)
from ..errors import PlatformError
from ..platforms.specs import PlatformSpec
from .memory import MemoryModel
from .params import DEFAULT_GPU_PARAMS, GpuParams
from .result import ExecutionEstimate


class GpuExecutionModel:
    """Predicts kernel runtimes for one GPU platform."""

    def __init__(self, spec: PlatformSpec, params: GpuParams = DEFAULT_GPU_PARAMS):
        if not spec.is_gpu:
            raise PlatformError(f"{spec.name} is a CPU; use CpuExecutionModel")
        self.spec = spec
        self.params = params
        self.memory = MemoryModel.for_platform(spec)

    # ------------------------------------------------------------------

    @property
    def concurrent_blocks(self) -> int:
        """Thread blocks resident across the device at full occupancy."""
        return self.spec.sm_count * self.params.blocks_per_sm

    def _utilization(self, schedule: KernelSchedule) -> float:
        """Fraction of device throughput the launch shape can use."""
        units = schedule.num_work_units
        if units == 0:
            return 1.0
        saturating = self.concurrent_blocks * self.params.min_saturating_blocks_factor
        device_fill = min(1.0, units / saturating)
        if schedule.parallel_grain != GRAIN_BLOCK:
            return device_fill
        # One tensor block per CUDA block: threads beyond the block's
        # nonzero count idle (HiCOO-MTTKRP-GPU's lower parallelism).
        work = np.asarray(schedule.work_units, dtype=np.float64)
        mean_occupancy = float(work.mean()) if work.size else 0.0
        thread_fill = min(1.0, mean_occupancy / self.params.threads_per_block)
        # Idle threads still burn issue slots but memory requests shrink;
        # the square root softens the penalty toward bandwidth, not
        # thread count.
        return device_fill * max(thread_fill, 1e-3) ** 0.5

    def predict(self, schedule: KernelSchedule) -> ExecutionEstimate:
        """Lower a schedule to a runtime estimate on this GPU."""
        params = self.params
        spec = self.spec

        stream_seconds = self.memory.streamed_seconds(
            schedule.streamed_bytes + schedule.writeallocate_bytes,
            schedule.working_set_bytes,
        )
        gather_seconds = self.memory.gather_seconds(
            schedule.irregular_bytes,
            schedule.random_operand_bytes,
            schedule.irregular_chunk_bytes,
        )

        divergence = 1.0
        if schedule.parallel_grain == GRAIN_FIBER:
            # Square root: the warp scheduler hides part of the idle
            # lanes' time behind other resident warps' memory stalls.
            divergence = warp_divergence_factor(schedule.work_units) ** 0.5

        utilization = self._utilization(schedule)

        compute_seconds = schedule.flops / (
            spec.peak_sp_gflops * 1e9 * params.compute_efficiency
        )

        atomic_seconds = 0.0
        if schedule.atomic_updates:
            per_atomic = params.atomic_seconds
            if spec.improved_atomics:
                per_atomic /= params.improved_atomic_speedup
            per_atomic *= (
                1.0
                + params.atomic_conflict_multiplier
                * schedule.atomic_conflict_fraction
            )
            # Atomics retire in parallel across SMs; conflicts serialize.
            atomic_seconds = schedule.atomic_updates * per_atomic / spec.sm_count

        # Square root again: thousands of resident warps absorb most of
        # the tail; only the longest serial chain's residue survives.
        imbalance = schedule.load_imbalance(self.concurrent_blocks) ** 0.5
        memory_seconds = (stream_seconds + gather_seconds) * divergence
        base = max(memory_seconds, compute_seconds)
        seconds = base * imbalance / max(utilization, 1e-6) + atomic_seconds

        return ExecutionEstimate(
            platform=spec.name,
            algorithm=f"{schedule.tensor_format}-{schedule.kernel}-GPU",
            seconds=seconds,
            flops=schedule.flops,
            breakdown={
                "stream": stream_seconds,
                "gather": gather_seconds,
                "compute": compute_seconds,
                "atomic": atomic_seconds,
                "imbalance": imbalance,
                "divergence": divergence,
                "utilization": utilization,
            },
        )
