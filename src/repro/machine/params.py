"""Calibration constants of the execution models.

These are microarchitectural efficiency factors, not per-benchmark fudge
factors: each is a single number describing one hardware mechanism
(obtainable fraction of peak bandwidth, gather efficiency, NUMA remote
penalty, atomic cost) and is shared by *all* kernels on a platform kind.
Values follow commonly measured ranges for the paper's generation of
hardware (STREAM/ERT results for Skylake/Haswell DDR4 and P100/V100 HBM2,
pointer-chase gather rates, omp-atomic microbenchmarks) and are tuned only
so the suite reproduces the paper's qualitative observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platforms.specs import PlatformSpec


@dataclass(frozen=True)
class CpuParams:
    """CPU execution model constants."""

    #: Fraction of theoretical DRAM bandwidth that streaming code attains
    #: (ERT/STREAM typically land at 75-85% on DDR4 Xeons).
    dram_efficiency: float = 0.80
    #: LLC bandwidth relative to obtainable DRAM bandwidth.
    llc_bandwidth_ratio: float = 4.0
    #: Fraction of bandwidth attained by 4-byte irregular gathers that
    #: miss the LLC (one cache line moved per useful element at worst).
    dram_gather_floor: float = 0.125
    #: Fraction of LLC bandwidth attained by irregular LLC-resident loads.
    llc_gather_efficiency: float = 0.55
    #: Extra cost multiplier per additional NUMA socket applied to
    #: irregular traffic (remote accesses cross the interconnect, whose
    #: per-hop latency exceeds local DRAM several-fold on 4-socket rings).
    numa_penalty_per_socket: float = 1.3
    #: Fraction of the irregular NUMA penalty that also hits the streamed
    #: traffic of non-streaming kernels (their output writes scatter
    #: across sockets; streaming kernels interleave cleanly via numactl).
    numa_stream_fraction: float = 0.25
    #: Seconds per scalar atomic add, uncontended ("omp atomic").
    atomic_seconds: float = 8e-9
    #: Extra serialization per conflicting atomic (cache-line ping-pong).
    atomic_conflict_multiplier: float = 4.0
    #: Fraction of peak flops reachable by these scalar-ish sparse loops.
    compute_efficiency: float = 0.35
    #: Streamed-bandwidth bonus for HiCOO's Morton-ordered, more compact
    #: layout on CPUs (Observation 4: better locality, smaller footprint).
    hicoo_stream_bonus: float = 1.25
    #: Cache line size in bytes.
    cache_line_bytes: int = 64


@dataclass(frozen=True)
class GpuParams:
    """GPU execution model constants."""

    #: Obtainable fraction of HBM2 bandwidth (ERT lands near 75-80%).
    dram_efficiency: float = 0.78
    #: L2 bandwidth relative to obtainable DRAM bandwidth.
    llc_bandwidth_ratio: float = 3.0
    #: Gather floor for fully uncoalesced 4-byte accesses from DRAM
    #: (a 32-byte sector per useful word).
    dram_gather_floor: float = 0.125
    #: Fraction of L2 bandwidth for irregular L2-resident loads.
    llc_gather_efficiency: float = 0.5
    #: Seconds per atomicAdd (global memory, Pascal generation); hardware
    #: atomics retire at L2 and are far cheaper than CPU locked ops.
    atomic_seconds: float = 0.5e-9
    #: Extra serialization per conflicting atomic.
    atomic_conflict_multiplier: float = 4.0
    #: Volta's improved atomics divide atomic cost by this factor
    #: (independent int/fp datapaths also hide address arithmetic).
    improved_atomic_speedup: float = 4.0
    #: Fraction of peak flops reachable by these sparse kernels.
    compute_efficiency: float = 0.25
    #: Thread blocks resident per SM (occupancy) for these small kernels.
    blocks_per_sm: int = 8
    #: Threads per block the suite launches.
    threads_per_block: int = 256
    #: Transaction granularity for coalescing in bytes (sector size).
    coalesce_bytes: int = 32
    #: Minimum effective parallel units to saturate the device; fewer
    #: units leave SMs idle (HiCOO-MTTKRP-GPU's low parallelism).
    min_saturating_blocks_factor: float = 1.0


DEFAULT_CPU_PARAMS = CpuParams()
DEFAULT_GPU_PARAMS = GpuParams()


def obtainable_dram_bandwidth_gbs(spec: PlatformSpec) -> float:
    """ERT-style obtainable DRAM/HBM bandwidth for a platform."""
    params = DEFAULT_GPU_PARAMS if spec.is_gpu else DEFAULT_CPU_PARAMS
    return spec.mem_bw_gbs * params.dram_efficiency


def obtainable_llc_bandwidth_gbs(spec: PlatformSpec) -> float:
    """ERT-style obtainable last-level-cache bandwidth for a platform."""
    params = DEFAULT_GPU_PARAMS if spec.is_gpu else DEFAULT_CPU_PARAMS
    return obtainable_dram_bandwidth_gbs(spec) * params.llc_bandwidth_ratio
