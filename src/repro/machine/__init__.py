"""Execution models: lower kernel schedules to per-platform runtimes.

:func:`execution_model` picks the CPU or GPU model for a Table III
platform; :func:`predict` is the one-call path from a schedule to an
:class:`ExecutionEstimate`.
"""

from __future__ import annotations

from typing import Union

from ..core.schedule import KernelSchedule
from ..platforms.specs import PlatformSpec, get_platform
from .cpu import CpuExecutionModel
from .gpu import GpuExecutionModel
from .distributed import DistributedEstimate, DistributedExecutionModel
from .memory import MemoryModel
from .multigpu import (
    DGX_GPU_COUNT,
    MultiGpuEstimate,
    MultiGpuExecutionModel,
    shard_schedule,
)
from .params import (
    DEFAULT_CPU_PARAMS,
    DEFAULT_GPU_PARAMS,
    CpuParams,
    GpuParams,
    obtainable_dram_bandwidth_gbs,
    obtainable_llc_bandwidth_gbs,
)
from .result import ExecutionEstimate

AnyExecutionModel = Union[CpuExecutionModel, GpuExecutionModel]


def execution_model(platform: Union[str, PlatformSpec]) -> AnyExecutionModel:
    """Build the right execution model for a platform name or spec."""
    spec = get_platform(platform) if isinstance(platform, str) else platform
    if spec.is_gpu:
        return GpuExecutionModel(spec)
    return CpuExecutionModel(spec)


def predict(
    platform: Union[str, PlatformSpec], schedule: KernelSchedule
) -> ExecutionEstimate:
    """Predict one kernel's runtime on one platform."""
    return execution_model(platform).predict(schedule)


__all__ = [
    "CpuExecutionModel",
    "GpuExecutionModel",
    "MemoryModel",
    "MultiGpuExecutionModel",
    "MultiGpuEstimate",
    "DGX_GPU_COUNT",
    "shard_schedule",
    "DistributedExecutionModel",
    "DistributedEstimate",
    "ExecutionEstimate",
    "CpuParams",
    "GpuParams",
    "DEFAULT_CPU_PARAMS",
    "DEFAULT_GPU_PARAMS",
    "obtainable_dram_bandwidth_gbs",
    "obtainable_llc_bandwidth_gbs",
    "execution_model",
    "predict",
]
