"""Distributed-memory execution model (paper future work: "distributed
systems").

Models data-parallel execution of one kernel across ``num_nodes``
machines of a homogeneous cluster, each node being one Table III
platform lowered by its own single-node model.  The communication story
mirrors :mod:`repro.machine.multigpu` but over a cluster interconnect
(InfiniBand-class by default, an order of magnitude slower than NVLink):

* dense operands are broadcast once per kernel;
* kernels with atomic output updates (MTTKRP) all-reduce per-node
  partial outputs.

The model's purpose is the qualitative shape a distributed port of the
suite would show: streaming kernels keep scaling across nodes while the
non-streaming kernels hit the interconnect wall much earlier than on
NVLink — the classic reason distributed sparse tensor decompositions
partition by output rows instead of nonzeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from ..core.schedule import KernelSchedule
from ..errors import PlatformError
from ..platforms.specs import PlatformSpec, get_platform
from .cpu import CpuExecutionModel
from .gpu import GpuExecutionModel
from .multigpu import shard_schedule

#: EDR InfiniBand-class effective bandwidth per node (GB/s).
DEFAULT_NETWORK_GBS = 12.0

#: Per-message latency; dominates tiny exchanges.
DEFAULT_NETWORK_LATENCY_S = 2.0e-6

MAX_NODES = 1024


@dataclass(frozen=True)
class DistributedEstimate:
    """Estimate for a multi-node run."""

    platform: str
    algorithm: str
    num_nodes: int
    seconds: float
    compute_seconds: float
    communication_seconds: float
    flops: int

    @property
    def gflops(self) -> float:
        """Aggregate achieved GFLOPS."""
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def parallel_efficiency(self) -> float:
        """Compute share of the total time (1 = no communication cost)."""
        if self.seconds <= 0:
            return 0.0
        return self.compute_seconds / self.seconds


class DistributedExecutionModel:
    """Predicts kernel runtimes across a homogeneous cluster."""

    def __init__(
        self,
        platform: Union[str, PlatformSpec],
        num_nodes: int,
        *,
        network_gbs: float = DEFAULT_NETWORK_GBS,
        network_latency_s: float = DEFAULT_NETWORK_LATENCY_S,
    ) -> None:
        spec = get_platform(platform) if isinstance(platform, str) else platform
        if not 1 <= num_nodes <= MAX_NODES:
            raise PlatformError(
                f"num_nodes must be in [1, {MAX_NODES}], got {num_nodes}"
            )
        if network_gbs <= 0:
            raise PlatformError("network bandwidth must be positive")
        self.spec = spec
        self.num_nodes = num_nodes
        self.network_gbs = network_gbs
        self.network_latency_s = network_latency_s
        self.node_model = (
            GpuExecutionModel(spec) if spec.is_gpu else CpuExecutionModel(spec)
        )

    # ------------------------------------------------------------------

    def _communication_seconds(self, schedule: KernelSchedule) -> float:
        if self.num_nodes == 1:
            return 0.0
        hops = (self.num_nodes - 1) / self.num_nodes
        bytes_moved = schedule.random_operand_bytes * hops
        if schedule.atomic_updates:
            output_bytes = schedule.random_operand_bytes / 3.0
            bytes_moved += 2.0 * output_bytes * hops
        transfer = bytes_moved / (self.network_gbs * 1e9)
        # Ring steps: 2 (p - 1) messages worth of latency.
        latency = 2.0 * (self.num_nodes - 1) * self.network_latency_s
        return transfer + latency

    def predict(self, schedule: KernelSchedule) -> DistributedEstimate:
        """Lower a schedule to a multi-node runtime estimate."""
        shard_seconds: List[float] = []
        for shard in range(self.num_nodes):
            shard_sched = shard_schedule(schedule, self.num_nodes, shard)
            shard_seconds.append(self.node_model.predict(shard_sched).seconds)
        compute = max(shard_seconds) if shard_seconds else 0.0
        communication = self._communication_seconds(schedule)
        return DistributedEstimate(
            platform=f"{self.spec.name} x{self.num_nodes} nodes",
            algorithm=(
                f"{schedule.tensor_format}-{schedule.kernel}-DIST"
                f"x{self.num_nodes}"
            ),
            num_nodes=self.num_nodes,
            seconds=compute + communication,
            compute_seconds=compute,
            communication_seconds=communication,
            flops=schedule.flops,
        )

    def scaling_curve(
        self, schedule: KernelSchedule, node_counts: List[int]
    ) -> List[DistributedEstimate]:
        """Estimates at the given node counts (a strong-scaling study)."""
        return [
            DistributedExecutionModel(
                self.spec,
                n,
                network_gbs=self.network_gbs,
                network_latency_s=self.network_latency_s,
            ).predict(schedule)
            for n in node_counts
        ]
