"""Multi-GPU execution model (paper future work: "multiple GPUs").

The DGX-1 machines in Table III carry eight P100/V100 GPUs linked by
NVLink; the paper models a single GPU and lists multi-GPU among its
future platforms.  This extension models data-parallel execution across
``num_gpus`` devices of one DGX box:

* the kernel's work units are dealt round-robin across devices and each
  shard is lowered by the single-GPU model;
* dense operands (vectors/matrices/factors) are replicated, paying a
  broadcast over NVLink once per kernel;
* kernels with atomic output updates (MTTKRP) additionally pay an
  all-reduce of the output matrix, since cross-device atomics are
  replaced by per-device partials plus a reduction — the standard
  multi-GPU MTTKRP strategy.

The model reproduces the expected shape: streaming kernels scale nearly
linearly until NVLink traffic dominates, while MTTKRP's reduction caps
its speedup well below the device count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.schedule import KernelSchedule
from ..errors import PlatformError
from ..platforms.specs import PlatformSpec
from .gpu import GpuExecutionModel
from .result import ExecutionEstimate

#: NVLink aggregate bandwidth per GPU, by microarchitecture (GB/s).
NVLINK_BANDWIDTH_GBS = {"Pascal": 80.0, "Volta": 150.0}

#: GPUs in a DGX-1 chassis.
DGX_GPU_COUNT = 8


@dataclass(frozen=True)
class MultiGpuEstimate:
    """Estimate for a multi-GPU run, with its scaling context."""

    platform: str
    algorithm: str
    num_gpus: int
    seconds: float
    compute_seconds: float
    communication_seconds: float
    flops: int

    @property
    def gflops(self) -> float:
        """Aggregate achieved GFLOPS."""
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    def speedup_over(self, single: ExecutionEstimate) -> float:
        """Speedup relative to a single-GPU estimate."""
        if self.seconds <= 0:
            return 0.0
        return single.seconds / self.seconds


def shard_schedule(
    schedule: KernelSchedule, num_shards: int, shard: int
) -> KernelSchedule:
    """The work one device receives under round-robin unit dealing."""
    if not 0 <= shard < num_shards:
        raise PlatformError(f"shard {shard} out of range for {num_shards} devices")
    units = schedule.work_units[shard::num_shards]
    total = float(schedule.work_units.sum())
    fraction = float(units.sum()) / total if total else 1.0 / num_shards
    sharded = schedule.scaled(fraction)
    return KernelSchedule(
        kernel=sharded.kernel,
        tensor_format=sharded.tensor_format,
        flops=sharded.flops,
        streamed_bytes=sharded.streamed_bytes,
        irregular_bytes=sharded.irregular_bytes,
        work_units=units,
        parallel_grain=schedule.parallel_grain,
        atomic_updates=sharded.atomic_updates,
        atomic_conflict_fraction=schedule.atomic_conflict_fraction,
        working_set_bytes=int(schedule.working_set_bytes * fraction),
        reuse_bytes=sharded.reuse_bytes,
        writeallocate_bytes=sharded.writeallocate_bytes,
        irregular_chunk_bytes=schedule.irregular_chunk_bytes,
        random_operand_bytes=schedule.random_operand_bytes,
        notes=dict(schedule.notes),
    )


class MultiGpuExecutionModel:
    """Predicts kernel runtimes across several GPUs of one platform."""

    def __init__(self, spec: PlatformSpec, num_gpus: int = DGX_GPU_COUNT):
        if not spec.is_gpu:
            raise PlatformError(f"{spec.name} is not a GPU platform")
        if not 1 <= num_gpus <= DGX_GPU_COUNT:
            raise PlatformError(
                f"num_gpus must be in [1, {DGX_GPU_COUNT}], got {num_gpus}"
            )
        self.spec = spec
        self.num_gpus = num_gpus
        self.single = GpuExecutionModel(spec)
        self.nvlink_gbs = NVLINK_BANDWIDTH_GBS.get(spec.microarch, 80.0)

    # ------------------------------------------------------------------

    def _communication_seconds(self, schedule: KernelSchedule) -> float:
        """Broadcast of dense operands plus output all-reduce (if atomics)."""
        if self.num_gpus == 1:
            return 0.0
        hops = (self.num_gpus - 1) / self.num_gpus
        bytes_moved = schedule.random_operand_bytes * hops
        if schedule.atomic_updates:
            # Ring all-reduce of per-device partial outputs: the output
            # matrix is the atomic target, sized like one of the dense
            # factor operands (approximated as a third of their total).
            output_bytes = schedule.random_operand_bytes / 3.0
            bytes_moved += 2.0 * output_bytes * hops
        return bytes_moved / (self.nvlink_gbs * 1e9)

    def predict(self, schedule: KernelSchedule) -> MultiGpuEstimate:
        """Lower a schedule to a multi-GPU runtime estimate."""
        shard_seconds: List[float] = []
        for shard in range(self.num_gpus):
            shard_sched = shard_schedule(schedule, self.num_gpus, shard)
            shard_seconds.append(self.single.predict(shard_sched).seconds)
        compute = max(shard_seconds) if shard_seconds else 0.0
        communication = self._communication_seconds(schedule)
        return MultiGpuEstimate(
            platform=f"{self.spec.name} x{self.num_gpus}",
            algorithm=(
                f"{schedule.tensor_format}-{schedule.kernel}-GPU"
                f"x{self.num_gpus}"
            ),
            num_gpus=self.num_gpus,
            seconds=compute + communication,
            compute_seconds=compute,
            communication_seconds=communication,
            flops=schedule.flops,
        )

    def scaling_curve(self, schedule: KernelSchedule) -> List[MultiGpuEstimate]:
        """Estimates for 1..num_gpus devices (a strong-scaling study)."""
        return [
            MultiGpuExecutionModel(self.spec, g).predict(schedule)
            for g in range(1, self.num_gpus + 1)
        ]
