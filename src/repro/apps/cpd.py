"""CANDECOMP/PARAFAC decomposition (CPD) by alternating least squares.

The paper calls MTTKRP "the most computational expensive kernel in
CANDECOMP/PARAFAC decomposition (CPD)" (Section II-E).  This module
implements sparse CP-ALS on top of the suite's MTTKRP kernel, both to
exercise the kernel in its real application context and to serve as a
runnable example workload.

Each ALS sweep updates every factor in turn:

    U^(n)  <-  MTTKRP_n(X, U) @ pinv( hadamard_{m != n} (U^(m)T U^(m)) )

with column normalization absorbed into ``weights``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from ..core.mttkrp import check_factors, mttkrp_coo, mttkrp_hicoo
from ..core.reference import khatri_rao
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..formats.hicoo import HicooTensor
from ..perf.parallel import parallel_config

if TYPE_CHECKING:  # pragma: no cover
    from ..io.binfile import MmapCooTensor


@dataclass
class CpdResult:
    """CP model: per-component weights, factor matrices, fit trace."""

    weights: np.ndarray
    factors: List[np.ndarray]
    fits: List[float]

    @property
    def rank(self) -> int:
        """Number of rank-1 components."""
        return int(self.weights.shape[0])

    @property
    def final_fit(self) -> float:
        """Fit of the last sweep (1 is perfect)."""
        return self.fits[-1] if self.fits else 0.0

    def reconstruct_dense(self) -> np.ndarray:
        """Materialize the CP model as a dense tensor (small inputs only)."""
        rank = self.rank
        order = len(self.factors)
        shape = tuple(f.shape[0] for f in self.factors)
        out = np.zeros(shape, dtype=np.float64)
        for r in range(rank):
            component = self.weights[r]
            outer = self.factors[0][:, r]
            for m in range(1, order):
                outer = np.multiply.outer(outer, self.factors[m][:, r])
            out += component * outer
        return out


def _gram_hadamard(factors: Sequence[np.ndarray], skip: int) -> np.ndarray:
    """Hadamard product of the Gram matrices of all factors but ``skip``."""
    rank = factors[0].shape[1]
    v = np.ones((rank, rank), dtype=np.float64)
    for m, factor in enumerate(factors):
        if m == skip:
            continue
        v *= factor.T @ factor
    return v


def _stored_hadamard(grams: Sequence[np.ndarray], skip: int) -> np.ndarray:
    """Hadamard product of maintained Gram matrices, excluding ``skip``."""
    rank = grams[0].shape[0]
    v = np.ones((rank, rank), dtype=np.float64)
    for m, g in enumerate(grams):
        if m != skip:
            v *= g
    return v


def _tensor_norm(tensor: CooTensor) -> float:
    return float(np.linalg.norm(tensor.values.astype(np.float64)))


def _model_inner(tensor: CooTensor, factors, weights) -> float:
    """<X, model> computed sparsely over the nonzeros."""
    rows = np.ones((tensor.nnz, factors[0].shape[1]), dtype=np.float64)
    for m, factor in enumerate(factors):
        rows *= factor[tensor.indices[m]]
    return float((tensor.values.astype(np.float64) * (rows @ weights)).sum())


def _model_norm_sq(factors, weights) -> float:
    rank = weights.shape[0]
    v = np.ones((rank, rank), dtype=np.float64)
    for factor in factors:
        v *= factor.T @ factor
    return float(weights @ v @ weights)


def cp_als(
    tensor: Union[CooTensor, "MmapCooTensor"],
    rank: int,
    *,
    max_sweeps: int = 50,
    tolerance: float = 1e-5,
    seed: int = 0,
    use_hicoo: bool = False,
    block_size: int = 128,
    variant: Optional[str] = None,
    initial_factors: Optional[Sequence[np.ndarray]] = None,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
    fused_gram: Optional[bool] = None,
) -> CpdResult:
    """Sparse CP-ALS driven by the suite's MTTKRP kernel.

    The fit is ``1 - ||X - model|| / ||X||``, evaluated sparsely; sweeps
    stop early when the fit improves by less than ``tolerance``.  With
    ``use_hicoo=True`` each MTTKRP goes through the HiCOO kernel,
    matching the paper's HiCOO-MTTKRP algorithm.  ``variant`` (which
    overrides ``use_hicoo``) routes every MTTKRP through the dispatch
    layer: ``"auto"`` autotunes one configuration per mode before the
    first sweep and reuses it for all sweeps; ``"coo"``/``"hicoo"``/
    ``"csf"`` force that kernel.  ``num_threads`` / ``schedule`` run
    every MTTKRP under that parallel configuration (``None`` keeps the
    process-wide setting); parallel sweeps produce bit-identical factors
    to serial ones.

    An on-disk :class:`~repro.io.binfile.MmapCooTensor` runs the sweeps
    out of core: every MTTKRP and the norm go through
    :mod:`repro.perf.ooc`, so resident memory stays bounded by the
    out-of-core budget plus the factor matrices.  The out-of-core path
    is COO-only — ``use_hicoo`` and ``variant`` raise ``ValueError``.

    ``fused_gram=True`` routes each mode update through the compiled
    fused MTTKRP+Gram kernel (:func:`repro.perf.jit.mttkrp_gram_coo`),
    which produces the MTTKRP result *and* its Gram matrix in one pass
    over the nonzeros; the updated factor's Gram is then recovered
    algebraically (``P.T @ G @ P``) instead of recomputed, eliminating
    one ``factor.T @ factor`` per mode per sweep.  The fused MTTKRP
    output is bit-identical to the unfused kernel; the Gram is
    accumulated in float64 inside the kernel, so factors agree with the
    unfused sweep to floating-point tolerance rather than bitwise.
    Modes the fused kernel declines (no compiler, ``REPRO_JIT=0``,
    unsupported specialization) silently fall back to the unfused
    update.  ``fused_gram`` requires the plain in-memory COO path and
    raises ``ValueError`` with ``use_hicoo``/``variant``/out-of-core
    tensors.  The default (``None``) keeps fusion off, preserving
    bit-reproducible sweeps.
    """
    from ..io.binfile import MmapCooTensor
    from ..perf import ooc

    out_of_core = isinstance(tensor, MmapCooTensor)
    if out_of_core and (use_hicoo or variant is not None):
        raise ValueError(
            "out-of-core CP-ALS supports only the COO kernel; "
            "use_hicoo/variant are unavailable for mmap-backed tensors"
        )
    fused = bool(fused_gram)
    if fused and (out_of_core or use_hicoo or variant is not None):
        raise ValueError(
            "fused_gram requires the plain in-memory COO path; it is "
            "unavailable with use_hicoo, variant, or mmap-backed tensors"
        )
    rng = np.random.default_rng(seed)
    if initial_factors is not None:
        factors = [np.array(f, dtype=np.float64) for f in initial_factors]
        check_factors(tensor.shape, [f.astype(VALUE_DTYPE) for f in factors])
    else:
        factors = [
            rng.uniform(0.1, 1.0, size=(s, rank)) for s in tensor.shape
        ]
    configs = None
    if variant is not None:
        from ..perf.dispatch import resolve_config

        # Tune once per mode, before the sweep loop; every sweep then
        # reuses the committed configuration.  Resolution runs under the
        # caller's parallel configuration so explicit variants adopt it.
        with parallel_config(num_threads=num_threads, schedule=schedule):
            configs = {
                mode: resolve_config(
                    tensor,
                    "MTTKRP",
                    variant=variant,
                    block_size=block_size,
                    mode=mode,
                    rank=rank,
                    seed=seed,
                )
                for mode in range(tensor.order)
            }
    hicoo = (
        HicooTensor.from_coo(tensor, block_size)
        if use_hicoo and configs is None
        else None
    )
    norm_x = ooc.tensor_norm(tensor) if out_of_core else _tensor_norm(tensor)
    fits: List[float] = []
    ones = np.ones(rank, dtype=np.float64)
    previous_fit = 0.0
    # Working float32 copies of the factors, refreshed one factor at a
    # time as each mode is updated — not all N factors N times per sweep.
    f32 = [f.astype(VALUE_DTYPE) for f in factors]
    last = tensor.order - 1
    # Fused mode maintains every factor's Gram matrix across the sweep
    # so V comes from the stored Grams and the updated factor's Gram is
    # recovered from the kernel's fused output instead of recomputed.
    grams = [f.T @ f for f in factors] if fused else None
    with parallel_config(num_threads=num_threads, schedule=schedule):
        for _sweep in range(max_sweeps):
            for mode in range(tensor.order):
                fused_result = None
                if fused:
                    from ..perf import jit

                    fused_result = jit.mttkrp_gram_coo(tensor, f32, mode)
                if fused_result is not None:
                    out, gram_out = fused_result
                    m_new = out.astype(np.float64)  # repro: ignore[dtype]
                    p = np.linalg.pinv(_stored_hadamard(grams, mode))
                    factors[mode] = m_new @ p
                    # Gram of the updated factor, algebraically:
                    # (M P).T (M P) = P.T (M.T M) P = P.T G P.
                    grams[mode] = p.T @ gram_out @ p
                    f32[mode] = factors[mode].astype(VALUE_DTYPE)
                    continue
                if configs is not None:
                    from ..perf.dispatch import mttkrp as mttkrp_dispatch

                    m_new = mttkrp_dispatch(
                        tensor, f32, mode, variant=configs[mode]
                    ).astype(np.float64)
                elif hicoo is not None:
                    m_new = mttkrp_hicoo(hicoo, f32, mode).astype(np.float64)
                elif out_of_core:
                    m_new = ooc.mttkrp(tensor, f32, mode).astype(np.float64)  # repro: ignore[dtype]
                else:
                    m_new = mttkrp_coo(tensor, f32, mode).astype(np.float64)
                gram = (
                    _gram_hadamard(factors, mode)
                    if grams is None
                    else _stored_hadamard(grams, mode)
                )
                factors[mode] = m_new @ np.linalg.pinv(gram)
                f32[mode] = factors[mode].astype(VALUE_DTYPE)
                if grams is not None:
                    grams[mode] = factors[mode].T @ factors[mode]
            # Sparse fit evaluation with the raw (unnormalized) factors.
            # The last mode's MTTKRP already contracted every other mode,
            # so <X, model> is just its elementwise product with that
            # factor — no extra pass over the nonzeros.
            inner = float(np.sum(m_new * factors[last]))
            norm_model_sq = _model_norm_sq(factors, ones)
            residual_sq = max(norm_x**2 - 2 * inner + norm_model_sq, 0.0)
            fit = 1.0 - np.sqrt(residual_sq) / norm_x if norm_x else 1.0
            fits.append(fit)
            if abs(fit - previous_fit) < tolerance:
                break
            previous_fit = fit
    # Pull column norms out into the weight vector.
    weights = np.ones(rank, dtype=np.float64)
    for mode, factor in enumerate(factors):
        norms = np.linalg.norm(factor, axis=0)
        norms[norms == 0] = 1.0
        factors[mode] = factor / norms
        weights = weights * norms
    return CpdResult(weights=weights, factors=factors, fits=fits)


def random_low_rank_tensor(
    shape: Sequence[int],
    rank: int,
    *,
    support: int = 6,
    seed: int = 0,
) -> CooTensor:
    """A sparse tensor that is *exactly* rank-``rank`` (ground truth input).

    Each component's factor vectors are supported on ``support`` random
    rows per mode, so every rank-1 component is a sparse outer product
    and their sum — including all implicit zeros — has CP rank at most
    ``rank``.  CP-ALS at the generating rank should drive the fit to ~1.
    """
    import itertools

    rng = np.random.default_rng(seed)
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    pieces_idx = []
    pieces_val = []
    for _r in range(rank):
        supports = [
            rng.choice(s, size=min(support, s), replace=False) for s in shape
        ]
        coefficients = [
            rng.uniform(0.2, 1.0, size=len(sup)) for sup in supports
        ]
        grids = np.meshgrid(*supports, indexing="ij")
        coords = np.vstack([g.reshape(-1) for g in grids])
        value_grids = np.meshgrid(*coefficients, indexing="ij")
        values = np.ones(coords.shape[1], dtype=np.float64)
        for g in value_grids:
            values = values * g.reshape(-1)
        pieces_idx.append(coords)
        pieces_val.append(values)
    indices = np.concatenate(pieces_idx, axis=1)
    values = np.concatenate(pieces_val).astype(VALUE_DTYPE)
    tensor = CooTensor(shape, indices.astype(np.int32), values, validate=False)
    return tensor.sum_duplicates()
