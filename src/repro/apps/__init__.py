"""Application workloads built on the benchmark kernels.

The paper motivates its kernels through two tensor methods: the tensor
power method (TTV) and CANDECOMP/PARAFAC decomposition (MTTKRP).  This
subpackage implements both on top of the suite's sparse kernels, serving
as realistic end-to-end workloads for the examples and integration tests.
"""

from .cpd import CpdResult, cp_als, random_low_rank_tensor
from .tucker import TuckerResult, hooi, hosvd, ttm_chain
from .power_method import (
    PowerMethodResult,
    deflate,
    orthogonal_decomposition,
    power_iteration,
    rank1_tensor,
    symmetric_tensor_from_components,
    tensor_apply,
)

__all__ = [
    "cp_als",
    "CpdResult",
    "random_low_rank_tensor",
    "hosvd",
    "hooi",
    "ttm_chain",
    "TuckerResult",
    "power_iteration",
    "orthogonal_decomposition",
    "PowerMethodResult",
    "tensor_apply",
    "rank1_tensor",
    "symmetric_tensor_from_components",
    "deflate",
]
