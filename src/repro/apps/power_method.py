"""Tensor power method: orthogonal rank-1 decomposition via repeated TTV.

The paper motivates TTV as "a critical computational kernel of the tensor
power method ... an approach for orthogonal tensor decomposition, that
decomposes a symmetric tensor into a collection of orthogonal vectors
with corresponding weights" (Section II-C, after Anandkumar et al.).

For a symmetric third-order tensor ``T`` the iteration is

    v  <-  T x_2 v x_3 v   (a vector), then normalize,

which converges to the dominant robust eigenvector; deflating
``T - lambda * v ⊗ v ⊗ v`` and repeating extracts further components.
This implementation works on sparse COO tensors using the suite's TTV
kernel and supports arbitrary (cubical) orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.ttv import ttv_coo
from ..errors import IncompatibleOperandsError
from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from ..perf.parallel import parallel_config


@dataclass(frozen=True)
class PowerMethodResult:
    """One extracted component: eigenvalue, eigenvector, iterations used."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool


def _check_cubical(tensor: CooTensor) -> int:
    size = tensor.shape[0]
    if any(s != size for s in tensor.shape):
        raise IncompatibleOperandsError(
            f"the tensor power method needs a cubical tensor, got {tensor.shape}"
        )
    return size


def tensor_apply(tensor: CooTensor, vector: np.ndarray) -> np.ndarray:
    """Contract every mode except the first with ``vector``: ``T(I, v, ..., v)``.

    Implemented as a chain of mode-(last) TTVs, each one shrinking the
    tensor by one order — exactly the suite's sparse TTV kernel applied
    ``order - 1`` times.
    """
    current = tensor
    while current.order > 1:
        current = ttv_coo(current, vector, current.order - 1)
    return current.to_dense()


def power_iteration(
    tensor: CooTensor,
    *,
    start: Optional[np.ndarray] = None,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    seed: int = 0,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
) -> PowerMethodResult:
    """Extract the dominant robust eigenpair of a cubical sparse tensor.

    ``num_threads`` / ``schedule`` run every TTV under that parallel
    configuration (``None`` keeps the process-wide setting).
    """
    size = _check_cubical(tensor)
    rng = np.random.default_rng(seed)
    v = start.astype(np.float64) if start is not None else rng.normal(size=size)
    norm = np.linalg.norm(v)
    if norm == 0:
        raise IncompatibleOperandsError("start vector must be nonzero")
    v = v / norm
    with parallel_config(num_threads=num_threads, schedule=schedule):
        for iteration in range(1, max_iterations + 1):
            w = tensor_apply(tensor, v.astype(np.float32)).astype(np.float64)
            norm = np.linalg.norm(w)
            if norm == 0:
                return PowerMethodResult(0.0, v, iteration, True)
            new_v = w / norm
            if np.linalg.norm(new_v - v) < tolerance or (
                np.linalg.norm(new_v + v) < tolerance
            ):
                # The Rayleigh quotient is only reported, never used to
                # iterate — evaluate it once at the end instead of per
                # step.
                eigenvalue = float(
                    new_v @ tensor_apply(tensor, new_v.astype(np.float32))
                )
                return PowerMethodResult(eigenvalue, new_v, iteration, True)
            v = new_v
        eigenvalue = float(v @ tensor_apply(tensor, v.astype(np.float32)))
    return PowerMethodResult(eigenvalue, v, max_iterations, False)


def rank1_tensor(weight: float, vector: np.ndarray, order: int) -> CooTensor:
    """Dense rank-1 tensor ``weight * v ⊗ ... ⊗ v`` as a COO tensor."""
    dense = np.asarray(vector, dtype=np.float64)
    out = dense
    for _ in range(order - 1):
        out = np.multiply.outer(out, dense)
    return CooTensor.from_dense((weight * out).astype(VALUE_DTYPE))


def symmetric_tensor_from_components(
    weights: np.ndarray, vectors: np.ndarray
) -> CooTensor:
    """Build a symmetric third-order tensor ``sum_k w_k v_k^⊗3``.

    ``vectors`` holds one component per column.  Used to construct
    ground-truth inputs for the power method in tests and examples.
    """
    weights = np.asarray(weights, dtype=np.float64)
    vectors = np.asarray(vectors, dtype=np.float64)
    size, count = vectors.shape
    if weights.shape != (count,):
        raise IncompatibleOperandsError("one weight per component required")
    dense = np.zeros((size, size, size), dtype=np.float64)
    for k in range(count):
        v = vectors[:, k]
        dense += weights[k] * np.einsum("i,j,k->ijk", v, v, v)
    return CooTensor.from_dense(dense.astype(VALUE_DTYPE))


def deflate(tensor: CooTensor, result: PowerMethodResult) -> CooTensor:
    """Subtract an extracted rank-1 component (densifying the pattern)."""
    component = rank1_tensor(
        result.eigenvalue, result.eigenvector, tensor.order
    )
    from ..core.tew import tew_general_coo

    return tew_general_coo(tensor, component, "sub").sum_duplicates()


def orthogonal_decomposition(
    tensor: CooTensor,
    num_components: int,
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-6,
    restarts: int = 5,
    seed: int = 0,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
) -> List[PowerMethodResult]:
    """Greedy power-method decomposition with deflation.

    Each round runs several random restarts, keeps the eigenpair with
    the largest eigenvalue magnitude, and deflates.  For a tensor built
    from orthogonal components this recovers them (up to sign) in
    decreasing weight order.  ``num_threads`` / ``schedule`` apply to
    every TTV and deflation TEW (``None`` keeps the process-wide
    setting).
    """
    components: List[PowerMethodResult] = []
    current = tensor
    with parallel_config(num_threads=num_threads, schedule=schedule):
        for round_index in range(num_components):
            best: Optional[PowerMethodResult] = None
            for restart in range(restarts):
                candidate = power_iteration(
                    current,
                    max_iterations=max_iterations,
                    tolerance=tolerance,
                    seed=seed + 1000 * round_index + restart,
                )
                if best is None or abs(candidate.eigenvalue) > abs(
                    best.eigenvalue
                ):
                    best = candidate
            assert best is not None
            components.append(best)
            current = deflate(current, best)
    return components
