"""Tucker decomposition via TTM chains (HOSVD / HOOI).

The paper's future-work list opens with "TTM-chain in Tucker
decomposition" (Section VII), and motivates TTM itself through the
Tucker method (Section II-D).  This module implements:

* :func:`ttm_chain` — successive sparse/semi-sparse TTMs over several
  modes, the composite operation Tucker sweeps execute;
* :func:`hosvd` — truncated higher-order SVD initialization;
* :func:`hooi` — higher-order orthogonal iteration, each sweep being a
  TTM chain over all-but-one mode followed by an SVD of the unfolding.

The factor convention matches the suite's TTM: ``U^(n)`` has shape
``(I_n, R_n)`` and ``ttm(x, U, n)`` contracts ``sum_i x[.., i, ..] *
U[i, r]`` — i.e. projection onto the factor columns, which is exactly
the contraction HOOI needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.reference import unfold
from ..core.ttm import ttm_coo
from ..errors import IncompatibleOperandsError
from ..formats.coo import VALUE_DTYPE, CooTensor
from ..perf.parallel import parallel_config


@dataclass
class TuckerResult:
    """Tucker model: core tensor plus one orthonormal factor per mode."""

    core: np.ndarray
    factors: List[np.ndarray]
    fits: List[float]

    @property
    def ranks(self) -> tuple:
        """The multilinear rank (core shape)."""
        return self.core.shape

    @property
    def final_fit(self) -> float:
        """Fit of the last sweep (1 is perfect)."""
        return self.fits[-1] if self.fits else 0.0

    def reconstruct_dense(self) -> np.ndarray:
        """Materialize the model: ``core x_1 U1 x_2 U2 ...`` (dense)."""
        out = self.core
        for mode, factor in enumerate(self.factors):
            out = np.moveaxis(
                np.tensordot(out, factor, axes=([mode], [1])), -1, mode
            )
        return out


def _check_ranks(tensor: CooTensor, ranks: Sequence[int]) -> List[int]:
    if len(ranks) != tensor.order:
        raise IncompatibleOperandsError(
            f"need one rank per mode ({tensor.order}), got {len(ranks)}"
        )
    checked = []
    for mode, (rank, size) in enumerate(zip(ranks, tensor.shape)):
        if not 1 <= rank <= size:
            raise IncompatibleOperandsError(
                f"rank {rank} invalid for mode {mode} of size {size}"
            )
        checked.append(int(rank))
    return checked


def ttm_chain(
    tensor: CooTensor,
    matrices: Dict[int, np.ndarray],
    configs: Optional[Dict[int, object]] = None,
) -> CooTensor:
    """Apply TTM in several modes successively (a Tucker sweep's core op).

    ``matrices[mode]`` has shape ``(I_mode, R_mode)``.  Each step uses
    the suite's sparse TTM; the semi-sparse intermediate is re-sparsified
    between steps.  Contracting the largest modes first keeps the
    intermediates smallest, so modes are processed in decreasing size.
    ``configs`` optionally maps a mode to a
    :class:`~repro.perf.autotune.TuneConfig` that routes that step
    through the dispatch layer's chosen kernel variant.
    """
    current = tensor
    for mode in sorted(matrices, key=lambda m: -tensor.shape[m]):
        matrix = np.asarray(matrices[mode], dtype=VALUE_DTYPE)
        if configs is not None and mode in configs:
            from ..perf.dispatch import ttm as ttm_dispatch

            semi = ttm_dispatch(current, matrix, mode, variant=configs[mode])
        else:
            semi = ttm_coo(current, matrix, mode)
        current = semi.to_coo(drop_zeros=True)
    return current


def _ttm_configs(
    tensor: CooTensor, ranks: Sequence[int], variant: Optional[str]
) -> Optional[Dict[int, object]]:
    """Resolve one TTM dispatch config per mode (None when not dispatching)."""
    if variant is None:
        return None
    from ..perf.dispatch import resolve_config

    return {
        mode: resolve_config(
            tensor, "TTM", variant=variant, mode=mode, rank=int(ranks[mode])
        )
        for mode in range(tensor.order)
    }


def hosvd(
    tensor: CooTensor,
    ranks: Sequence[int],
    *,
    variant: Optional[str] = None,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
) -> TuckerResult:
    """Truncated HOSVD: per-mode SVD of the unfolding, then core by TTM.

    Materializes per-mode Gram matrices ``X_(n) X_(n)^T`` sparsely (size
    ``I_n x I_n``), so it is practical whenever every dimension fits in
    memory squared.  ``variant`` routes each TTM through the dispatch
    layer (``"auto"`` tunes once per mode on the input tensor).
    ``num_threads`` / ``schedule`` run the TTM chain under that parallel
    configuration (``None`` keeps the process-wide setting).
    """
    ranks = _check_ranks(tensor, ranks)
    with parallel_config(num_threads=num_threads, schedule=schedule):
        configs = _ttm_configs(tensor, ranks, variant)
        factors: List[np.ndarray] = []
        for mode, rank in enumerate(ranks):
            gram = _mode_gram(tensor, mode)
            eigenvalues, eigenvectors = np.linalg.eigh(gram)
            top = np.argsort(eigenvalues)[::-1][:rank]
            factors.append(np.ascontiguousarray(eigenvectors[:, top]))
        core_sparse = ttm_chain(tensor, dict(enumerate(factors)), configs)
        core = core_sparse.to_dense().astype(np.float64)
    fit = _fit(tensor, core)
    return TuckerResult(core=core, factors=factors, fits=[fit])


def hooi(
    tensor: CooTensor,
    ranks: Sequence[int],
    *,
    max_sweeps: int = 25,
    tolerance: float = 1e-6,
    initialization: Optional[TuckerResult] = None,
    variant: Optional[str] = None,
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
) -> TuckerResult:
    """Higher-order orthogonal iteration (HOOI) for sparse tensors.

    Each sweep updates every factor: project onto all *other* factors
    with a TTM chain, unfold the (now small) result in the target mode,
    and take its top left singular vectors.  Initialized by HOSVD unless
    ``initialization`` is given.  The fit is
    ``||core|| / ||X||`` (orthonormal factors make this exact).
    ``variant`` routes every TTM through the dispatch layer; ``"auto"``
    tunes once per mode before the first sweep and reuses the decision
    across sweeps.  ``num_threads`` / ``schedule`` run every TTM under
    that parallel configuration (``None`` keeps the process-wide
    setting).
    """
    ranks = _check_ranks(tensor, ranks)
    with parallel_config(num_threads=num_threads, schedule=schedule):
        start = (
            initialization
            if initialization is not None
            else hosvd(tensor, ranks, variant=variant)
        )
        configs = _ttm_configs(tensor, ranks, variant)
        factors = [f.copy() for f in start.factors]
        fits: List[float] = []
        previous_fit = -1.0
        for _sweep in range(max_sweeps):
            for mode in range(tensor.order):
                others = {
                    m: factors[m] for m in range(tensor.order) if m != mode
                }
                projected = ttm_chain(tensor, others, configs)
                unfolded = unfold(projected.to_dense().astype(np.float64), mode)
                u, _s, _vt = np.linalg.svd(unfolded, full_matrices=False)
                factors[mode] = np.ascontiguousarray(u[:, : ranks[mode]])
            core_sparse = ttm_chain(tensor, dict(enumerate(factors)), configs)
            core = core_sparse.to_dense().astype(np.float64)
            fit = _fit(tensor, core)
            fits.append(fit)
            if abs(fit - previous_fit) < tolerance:
                break
            previous_fit = fit
    return TuckerResult(core=core, factors=factors, fits=fits)


def _mode_gram(tensor: CooTensor, mode: int) -> np.ndarray:
    """Sparse ``X_(n) X_(n)^T``: Gram matrix of the mode-``n`` unfolding."""
    from ..perf.plans import build_fiber_plan, fiber_plan

    plan = fiber_plan(tensor, mode)
    if plan is None:
        plan = build_fiber_plan(tensor, mode)
    fptr = plan.fptr
    size = tensor.shape[mode]
    gram = np.zeros((size, size), dtype=np.float64)
    ids = plan.sorted_indices[mode]
    values = tensor.values[plan.perm].astype(np.float64)
    for f in range(len(fptr) - 1):
        lo, hi = fptr[f], fptr[f + 1]
        rows = ids[lo:hi]
        vals = values[lo:hi]
        gram[np.ix_(rows, rows)] += np.outer(vals, vals)
    return gram


def _fit(tensor: CooTensor, core: np.ndarray) -> float:
    """Tucker fit with orthonormal factors: ||core|| / ||X||."""
    norm_x = float(np.linalg.norm(tensor.values.astype(np.float64)))
    if norm_x == 0.0:
        return 1.0
    captured = min(float(np.linalg.norm(core)), norm_x)
    residual = np.sqrt(max(norm_x**2 - captured**2, 0.0))
    return 1.0 - residual / norm_x
