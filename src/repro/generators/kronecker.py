"""Stochastic Kronecker tensor generator (paper Section IV-B1).

Extends the stochastic Kronecker graph model (Leskovec et al.) to order-N
tensors: an N-mode *initiator* tensor of cell probabilities is Kronecker-
multiplied with itself ``levels`` times, and nonzeros are Bernoulli
samples of the resulting probability tensor.  Sampling never materializes
the product — each nonzero descends the recursion, choosing one initiator
cell per level with probability proportional to the initiator values and
accumulating digits of its coordinates (the Graph500 R-MAT scheme,
generalized to N modes).

The paper's trick for arbitrary dimension sizes is also implemented: run
one extra Kronecker level and strip coordinates falling outside the
requested shape.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor


def default_initiator(order: int) -> np.ndarray:
    """The canonical skewed 2-per-mode initiator.

    Generalizes the Graph500 R-MAT parameters (a=0.57, b=c=0.19, d=0.05)
    to order ``N``: cell probability decays geometrically with the number
    of '1' digits in the cell's coordinates, normalized to sum to 1.
    """
    if order < 1:
        raise TensorShapeError(f"order must be >= 1, got {order}")
    high, low = 0.7, 0.3
    cells = np.ones((2,) * order, dtype=np.float64)
    for axis in range(order):
        shape = [1] * order
        shape[axis] = 2
        cells = cells * np.array([high, low]).reshape(shape)
    return cells / cells.sum(dtype=np.float64)


def _check_initiator(initiator: np.ndarray) -> np.ndarray:
    initiator = np.asarray(initiator, dtype=np.float64)
    if initiator.ndim < 1:
        raise TensorShapeError("initiator must be a tensor")
    if np.any(initiator < 0):
        raise TensorShapeError("initiator probabilities must be non-negative")
    total = initiator.sum(dtype=np.float64)
    if total <= 0:
        raise TensorShapeError("initiator must have positive mass")
    return initiator / total


def sample_kronecker_coordinates(
    initiator: np.ndarray,
    levels: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``count`` coordinates from the ``levels``-fold Kronecker power.

    Returns an ``(order, count)`` int64 array.  Coordinates follow the
    exact cell probabilities of the Kronecker product of ``initiator``
    with itself ``levels`` times.
    """
    initiator = _check_initiator(initiator)
    order = initiator.ndim
    base = np.asarray(initiator.shape, dtype=np.int64)
    flat_probs = initiator.reshape(-1)
    coords = np.zeros((order, count), dtype=np.int64)
    for _ in range(levels):
        cells = rng.choice(flat_probs.size, size=count, p=flat_probs)
        digits = np.asarray(np.unravel_index(cells, initiator.shape), dtype=np.int64)
        coords = coords * base[:, None] + digits
    return coords


def kronecker_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    initiator: Optional[np.ndarray] = None,
    seed: Optional[int] = None,
    max_attempts: int = 64,
) -> CooTensor:
    """Generate a sparse tensor from the stochastic Kronecker model.

    Parameters
    ----------
    shape:
        Requested dimension sizes.  When a size is not a power of the
        initiator's edge length, an extra Kronecker level is run and
        out-of-range coordinates are stripped (paper Section IV-B1).
    nnz:
        Number of distinct nonzeros to produce.
    initiator:
        N-mode probability tensor; defaults to the skewed R-MAT-style
        initiator of matching order.
    seed:
        Random seed for reproducibility.
    """
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    if initiator is None:
        initiator = default_initiator(order)
    initiator = _check_initiator(initiator)
    if initiator.ndim != order:
        raise TensorShapeError(
            f"initiator order {initiator.ndim} != tensor order {order}"
        )
    capacity = 1
    for s in shape:
        capacity *= s
    if nnz > capacity:
        raise TensorShapeError(f"cannot fit {nnz} nonzeros into shape {shape}")
    rng = np.random.default_rng(seed)
    # Levels so that every mode covers its dimension (plus the extra
    # iteration when sizes are not exact powers).
    levels = max(
        int(math.ceil(math.log(size, edge))) if size > 1 else 1
        for size, edge in zip(shape, initiator.shape)
    )
    unique: np.ndarray = np.empty((order, 0), dtype=np.int64)
    for _ in range(max_attempts):
        need = nnz - unique.shape[1]
        if need <= 0:
            break
        batch = sample_kronecker_coordinates(
            initiator, levels, max(2 * need, 1024), rng
        )
        in_range = np.ones(batch.shape[1], dtype=bool)
        for mode, size in enumerate(shape):
            in_range &= batch[mode] < size
        batch = batch[:, in_range]
        combined = np.concatenate([unique, batch], axis=1)
        unique = np.unique(combined, axis=1)
    if unique.shape[1] < nnz:
        raise TensorShapeError(
            f"could not sample {nnz} distinct coordinates in shape {shape}; "
            f"got {unique.shape[1]} after {max_attempts} attempts"
        )
    keep = rng.permutation(unique.shape[1])[:nnz]
    indices = unique[:, keep].astype(INDEX_DTYPE)
    values = rng.uniform(0.5, 1.5, size=nnz).astype(VALUE_DTYPE)
    return CooTensor(shape, indices, values).sorted_lexicographic()


def expected_cell_probabilities(
    initiator: np.ndarray, levels: int
) -> np.ndarray:
    """Dense probability tensor of the ``levels``-fold Kronecker power.

    Exponential in ``levels`` — only for validating the sampler on tiny
    instances (tests compare the sampler's empirical distribution to
    this exact product).
    """
    from ..core.reference import dense_kronecker

    initiator = _check_initiator(initiator)
    result = initiator
    for _ in range(levels - 1):
        result = dense_kronecker(result, initiator)
    return result


def kronecker_levels_for_shape(
    shape: Sequence[int], initiator_shape: Tuple[int, ...]
) -> int:
    """Kronecker levels needed to cover ``shape`` (with the strip trick)."""
    return max(
        int(math.ceil(math.log(size, edge))) if size > 1 else 1
        for size, edge in zip(shape, initiator_shape)
    )
