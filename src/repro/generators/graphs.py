"""Graph-property validators for the synthetic generators.

Section IV justifies the two generator choices because the resulting
graphs "follow the power law distribution, exhibit a small diameter, and
have a high average clustering coefficient" — and notes that "the power
law generated graphs do not possess a high average clustering
coefficient", which is why Kronecker sizes are constrained and power-law
sizes are free.  This module measures those three properties on the
graph induced by two modes of a sparse tensor, so tests can hold the
generators to the paper's claims.

All measures treat the mode pair as a bipartite adjacency and analyze
its one-mode projection implicitly through sampling, keeping the
estimators near-linear in nnz.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import CooTensor
from .powerlaw import mode_degree_distribution


def mode_pair_edges(
    tensor: CooTensor, mode_a: int = 0, mode_b: int = 1
) -> np.ndarray:
    """Distinct edges of the graph induced by two modes' coordinates."""
    mode_a = tensor.check_mode(mode_a)
    mode_b = tensor.check_mode(mode_b)
    if mode_a == mode_b:
        raise TensorShapeError("need two distinct modes")
    edges = tensor.indices[[mode_a, mode_b]]
    return np.unique(edges, axis=1)


def degree_powerlaw_pvalue_proxy(degrees: np.ndarray) -> float:
    """A cheap heavy-tail indicator in [0, 1]: tail mass concentration.

    Fraction of all incidence owned by the top 1% busiest vertices; a
    uniform random graph concentrates ~1%, a power-law graph far more.
    """
    degrees = np.asarray(degrees)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return 0.0
    top = max(int(np.ceil(degrees.size * 0.01)), 1)
    sorted_degrees = np.sort(degrees)[::-1]
    return float(
        sorted_degrees[:top].sum(dtype=np.float64)
        / degrees.sum(dtype=np.float64)
    )


def sampled_clustering_coefficient(
    tensor: CooTensor,
    mode_a: int = 0,
    mode_b: int = 1,
    *,
    samples: int = 300,
    seed: int = 0,
) -> float:
    """Estimated average clustering coefficient of the induced graph.

    Treats the two modes' union as an undirected simple graph (useful for
    the equidimensional modes of the generators) and samples vertices,
    measuring the fraction of their neighbor pairs that are themselves
    connected.  Returns 0 for graphs with no vertex of degree >= 2.
    """
    edges = mode_pair_edges(tensor, mode_a, mode_b)
    if edges.shape[1] == 0:
        return 0.0
    # Undirected simple graph on the union of both modes' vertex sets.
    a = np.concatenate([edges[0], edges[1]]).astype(np.int64)
    b = np.concatenate([edges[1], edges[0]]).astype(np.int64)
    keep = a != b
    a, b = a[keep], b[keep]
    order = np.lexsort((b, a))
    a, b = a[order], b[order]
    dedup = np.concatenate(([True], (a[1:] != a[:-1]) | (b[1:] != b[:-1])))
    a, b = a[dedup], b[dedup]
    if a.size == 0:
        return 0.0
    # Adjacency as sorted CSR-ish arrays plus a hash set of edges.
    starts = np.flatnonzero(np.concatenate(([True], a[1:] != a[:-1])))
    vertex_of_segment = a[starts]
    boundaries = np.concatenate([starts, [a.size]])
    neighbor_lists = {
        int(vertex_of_segment[i]): b[boundaries[i] : boundaries[i + 1]]
        for i in range(len(vertex_of_segment))
    }
    edge_set = set(zip(a.tolist(), b.tolist()))
    rng = np.random.default_rng(seed)
    candidates = [v for v, nbrs in neighbor_lists.items() if nbrs.size >= 2]
    if not candidates:
        return 0.0
    chosen = rng.choice(
        np.asarray(candidates), size=min(samples, len(candidates)), replace=False
    )
    coefficients = []
    for vertex in chosen:
        neighbors = neighbor_lists[int(vertex)]
        if neighbors.size > 30:
            neighbors = rng.choice(neighbors, size=30, replace=False)
        degree = neighbors.size
        links = 0
        pairs = 0
        for i in range(degree):
            for j in range(i + 1, degree):
                pairs += 1
                if (int(neighbors[i]), int(neighbors[j])) in edge_set:
                    links += 1
        if pairs:
            coefficients.append(links / pairs)
    return float(np.mean(coefficients)) if coefficients else 0.0


def sampled_effective_diameter(
    tensor: CooTensor,
    mode_a: int = 0,
    mode_b: int = 1,
    *,
    sources: int = 8,
    percentile: float = 0.9,
    seed: int = 0,
) -> float:
    """Estimated effective diameter (the ``percentile`` hop distance).

    BFS from sampled sources over the induced undirected graph; the
    effective diameter is the hop count within which ``percentile`` of
    reachable pairs fall — the standard small-world measure the
    Kronecker-graph literature reports.  Returns ``inf`` when the
    sampled sources reach fewer than two vertices.
    """
    edges = mode_pair_edges(tensor, mode_a, mode_b)
    if edges.shape[1] == 0:
        return float("inf")
    a = np.concatenate([edges[0], edges[1]]).astype(np.int64)
    b = np.concatenate([edges[1], edges[0]]).astype(np.int64)
    vertices, remap = np.unique(np.concatenate([a, b]), return_inverse=True)
    n = vertices.size
    a_r = remap[: a.size]
    b_r = remap[a.size :]
    order = np.argsort(a_r, kind="stable")
    a_sorted = a_r[order]
    b_sorted = b_r[order]
    starts = np.searchsorted(a_sorted, np.arange(n))
    ends = np.searchsorted(a_sorted, np.arange(n) + 1)
    rng = np.random.default_rng(seed)
    all_distances = []
    for source in rng.choice(n, size=min(sources, n), replace=False):
        distance = np.full(n, -1, dtype=np.int64)
        distance[source] = 0
        frontier = np.array([source], dtype=np.int64)
        hops = 0
        while frontier.size:
            hops += 1
            neighbor_chunks = [
                b_sorted[starts[v] : ends[v]] for v in frontier
            ]
            if not neighbor_chunks:
                break
            candidates = np.unique(np.concatenate(neighbor_chunks))
            fresh = candidates[distance[candidates] < 0]
            distance[fresh] = hops
            frontier = fresh
        reached = distance[distance > 0]
        all_distances.extend(reached.tolist())
    if len(all_distances) < 2:
        return float("inf")
    return float(np.quantile(np.asarray(all_distances), percentile))


def generator_profile(
    tensor: CooTensor,
    mode_a: int = 0,
    mode_b: int = 1,
    *,
    seed: int = 0,
) -> Dict[str, float]:
    """The paper's three generator properties, measured together."""
    degrees = mode_degree_distribution(tensor, mode_a)
    return {
        "tail_concentration": degree_powerlaw_pvalue_proxy(degrees),
        "clustering": sampled_clustering_coefficient(
            tensor, mode_a, mode_b, seed=seed
        ),
        "effective_diameter": sampled_effective_diameter(
            tensor, mode_a, mode_b, seed=seed
        ),
    }
