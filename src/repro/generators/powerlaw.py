"""Biased power-law tensor generator (paper Section IV-B2).

Modeled on the FireHose streaming benchmark's biased power-law generator:
a stream of edges whose endpoint popularity follows a power law.  Rooted
at a graph (a sparse matrix), slices are combined into a third-order
hypergraph, and repeating the lift on an (N-1)-order tensor yields order
N.  In this implementation each *sparse* mode draws its coordinates from
a truncated power-law (Zipf-like) distribution while the paper's
"completely dense and much smaller" modes draw uniformly from their small
range, which is what makes the irregular synthetic tensors (irr*/irr2*)
have dense short modes.

Unlike the Kronecker model, power-law tensors have no clustering
constraint, so any requested shape can be generated directly
(Section IV-B2's closing remark).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import TensorShapeError
from ..formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor

#: Default power-law exponent; web/social graphs commonly measure 2-3.
DEFAULT_ALPHA = 2.0


def powerlaw_indices(
    size: int,
    count: int,
    alpha: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` indices in ``[0, size)`` with power-law popularity.

    Inverse-CDF sampling of the continuous truncated power law
    ``p(k) ∝ k^-alpha`` on ``[1, size]``, floored to integers; index 0
    ends up the most popular "hub".  ``alpha == 1`` uses the log-uniform
    limit form.
    """
    if size < 1:
        raise TensorShapeError(f"size must be >= 1, got {size}")
    if alpha <= 0:
        raise TensorShapeError(f"alpha must be positive, got {alpha}")
    if size == 1:
        return np.zeros(count, dtype=np.int64)
    u = rng.random(count)
    if abs(alpha - 1.0) < 1e-12:
        samples = np.exp(u * np.log(size))
    else:
        one_minus = 1.0 - alpha
        samples = (u * (size**one_minus - 1.0) + 1.0) ** (1.0 / one_minus)
    return np.clip(samples.astype(np.int64) - 1, 0, size - 1)


def powerlaw_edge_stream(
    shape: Sequence[int],
    count: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    dense_modes: Sequence[int] = (),
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """The raw generator: a stream of ``count`` coordinates (with repeats).

    Sparse modes follow the biased power law; ``dense_modes`` draw
    uniformly so their small ranges are fully covered.  Returns an
    ``(order, count)`` int64 array — the tensor analog of FireHose's
    edge stream, duplicates included.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    dense = {m % order for m in dense_modes}
    coords = np.empty((order, count), dtype=np.int64)
    for mode, size in enumerate(shape):
        if mode in dense:
            coords[mode] = rng.integers(0, size, size=count)
        else:
            coords[mode] = powerlaw_indices(size, count, alpha, rng)
    return coords


def powerlaw_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    dense_modes: Sequence[int] = (),
    seed: Optional[int] = None,
    max_attempts: int = 64,
) -> CooTensor:
    """Generate a sparse tensor with power-law mode popularity.

    Parameters
    ----------
    shape:
        Requested dimension sizes (any sizes; no growth constraint).
    nnz:
        Number of distinct nonzeros.
    alpha:
        Power-law exponent of the sparse modes.
    dense_modes:
        Modes drawn uniformly over a small range (the irregular synthetic
        tensors' short dense modes).
    seed:
        Random seed for reproducibility.
    """
    shape = tuple(int(s) for s in shape)
    capacity = 1
    for s in shape:
        capacity *= s
    if nnz > capacity:
        raise TensorShapeError(f"cannot fit {nnz} nonzeros into shape {shape}")
    rng = np.random.default_rng(seed)
    unique: np.ndarray = np.empty((len(shape), 0), dtype=np.int64)
    current_alpha = alpha
    for _ in range(max_attempts):
        need = nnz - unique.shape[1]
        if need <= 0:
            break
        batch_size = max(2 * need, 1024)
        batch = powerlaw_edge_stream(
            shape,
            batch_size,
            alpha=current_alpha,
            dense_modes=dense_modes,
            rng=rng,
        )
        before = unique.shape[1]
        unique = np.unique(np.concatenate([unique, batch], axis=1), axis=1)
        gained = unique.shape[1] - before
        if gained < batch_size // 8:
            # The bias is too concentrated for this density: the hubs are
            # saturated, so new draws mostly repeat existing coordinates.
            # Flatten the tail, as FireHose's generator rotates its active
            # set to keep the stream producing fresh keys.
            current_alpha = max(current_alpha * 0.8, 0.05)
    if unique.shape[1] < nnz:
        raise TensorShapeError(
            f"could not sample {nnz} distinct coordinates in shape {shape} "
            f"(power law too concentrated; got {unique.shape[1]})"
        )
    keep = rng.permutation(unique.shape[1])[:nnz]
    indices = unique[:, keep].astype(INDEX_DTYPE)
    values = rng.uniform(0.5, 1.5, size=nnz).astype(VALUE_DTYPE)
    return CooTensor(shape, indices, values).sorted_lexicographic()


def lift_tensor(
    base: CooTensor,
    new_mode_size: int,
    num_slices: int,
    *,
    seed: Optional[int] = None,
) -> CooTensor:
    """Lift an (N-1)-order tensor to order N by stacking perturbed slices.

    The paper's construction "combines graphs together to form slices of
    a hypergraph": each of ``num_slices`` slices along the new last mode
    reuses the base tensor's pattern with an independently subsampled
    nonzero set, so slices are related but not identical.
    """
    if num_slices < 1 or num_slices > new_mode_size:
        raise TensorShapeError(
            f"num_slices must be in [1, {new_mode_size}], got {num_slices}"
        )
    rng = np.random.default_rng(seed)
    pieces_idx = []
    pieces_val = []
    slice_ids = rng.choice(new_mode_size, size=num_slices, replace=False)
    for slice_id in slice_ids:
        keep = rng.random(base.nnz) < rng.uniform(0.4, 0.9)
        idx = base.indices[:, keep]
        k_row = np.full((1, idx.shape[1]), slice_id, dtype=INDEX_DTYPE)
        pieces_idx.append(np.vstack([idx, k_row]))
        pieces_val.append(
            (base.values[keep] * rng.uniform(0.5, 1.5)).astype(VALUE_DTYPE)
        )
    indices = np.concatenate(pieces_idx, axis=1)
    values = np.concatenate(pieces_val)
    shape = base.shape + (new_mode_size,)
    return CooTensor(shape, indices, values).sum_duplicates()


def mode_degree_distribution(tensor: CooTensor, mode: int) -> np.ndarray:
    """Nonzero count per index of a mode (the mode's "degree" sequence).

    Power-law tensors show heavy tails here; tests assert the skew.
    """
    mode = tensor.check_mode(mode)
    return np.bincount(tensor.indices[mode], minlength=tensor.shape[mode])


def degree_tail_ratio(tensor: CooTensor, mode: int) -> float:
    """Max mode degree over mean nonzero degree — a cheap skew measure."""
    degrees = mode_degree_distribution(tensor, mode)
    nonzero = degrees[degrees > 0]
    if nonzero.size == 0:
        return 0.0
    return float(nonzero.max() / nonzero.mean())
