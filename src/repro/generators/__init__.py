"""Synthetic tensor generators: stochastic Kronecker and biased power law."""

from .graphs import (
    degree_powerlaw_pvalue_proxy,
    generator_profile,
    mode_pair_edges,
    sampled_clustering_coefficient,
    sampled_effective_diameter,
)
from .kronecker import (
    default_initiator,
    expected_cell_probabilities,
    kronecker_levels_for_shape,
    kronecker_tensor,
    sample_kronecker_coordinates,
)
from .powerlaw import (
    DEFAULT_ALPHA,
    degree_tail_ratio,
    lift_tensor,
    mode_degree_distribution,
    powerlaw_edge_stream,
    powerlaw_indices,
    powerlaw_tensor,
)

__all__ = [
    "kronecker_tensor",
    "default_initiator",
    "sample_kronecker_coordinates",
    "expected_cell_probabilities",
    "kronecker_levels_for_shape",
    "powerlaw_tensor",
    "powerlaw_indices",
    "powerlaw_edge_stream",
    "lift_tensor",
    "mode_degree_distribution",
    "degree_tail_ratio",
    "DEFAULT_ALPHA",
    "generator_profile",
    "mode_pair_edges",
    "sampled_clustering_coefficient",
    "sampled_effective_diameter",
    "degree_powerlaw_pvalue_proxy",
]
