"""Out-of-core kernel execution over mmap-backed tensors.

The paper's suite assumes the tensor fits in RAM; real FROSTT inputs
often do not.  This module runs the suite's segmented kernels
chunk-at-a-time over a :class:`~repro.io.binfile.MmapCooTensor`, keeping
resident memory bounded by a configurable *budget* instead of the
tensor size:

* the **budget** (:func:`get_memory_budget`, default 64 MiB, env
  ``REPRO_OOC_BUDGET`` with ``K``/``M``/``G`` suffixes) caps the bytes a
  single kernel step may materialize;
* the **iteration plan** (:func:`iteration_plan`) reuses the OpenMP
  ``dynamic`` partitioner from :mod:`repro.perf.partition` — fixed-size
  element chunks sized so one step's read buffers, sort artifacts, and
  Khatri-Rao temporaries fit in about half the budget;
* each step's mode-sort plan is memoized in the plan cache under the
  structural kind ``"ooc_chunk"``, keyed ``(mode, e0, e1)`` on top of
  the tensor's file-state token.  A step whose plan is warm reads only
  the *values* of its range (:meth:`MmapCooTensor.read_values` — a
  quarter of the bytes), which is what makes multi-sweep CP-ALS cheap.
  A module-level LRU bounds the resident bytes of those plans to one
  budget, evicting the oldest via :meth:`PlanCache.evict`.

The kernels accumulate in float64 exactly like their in-RAM
counterparts; only the *association* of the per-step partial sums
differs, so results match the in-RAM kernels to floating-point
tolerance (bit-for-bit when a single step covers the tensor).  Outputs
(a dense factor-sized matrix for MTTKRP, the reduced sparse tensor for
TTV/TTM) are assumed to fit in RAM — out-of-core applies to the *input*
nonzeros.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Hashable, Iterator, List, Optional, Tuple, Union

import numpy as np

from .partition import KIND_PARTITION, ChunkPlan, build_element_chunk_plan
from .plan_cache import cache_enabled, get_plan_cache
from .plans import ModeSortPlan, _build_mode_sort

#: Environment variable overriding the default memory budget.
ENV_BUDGET = "REPRO_OOC_BUDGET"

#: Default per-kernel resident-memory budget (bytes).
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024

#: Plan-cache kind of the per-step mode-sort plans (structural).
KIND_OOC_CHUNK = "ooc_chunk"

#: Floor on the step size: below this the per-step numpy dispatch
#: overhead dominates and shrinking steps buys no memory that matters.
MIN_STEP_NNZ = 1024

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_budget(text: Union[str, int]) -> int:
    """Parse a byte budget: a plain integer or ``K``/``M``/``G`` suffix."""
    if isinstance(text, int):
        value = text
    else:
        raw = str(text).strip().lower()
        if raw and raw[-1] in _SUFFIXES:
            try:
                value = int(float(raw[:-1]) * _SUFFIXES[raw[-1]])
            except ValueError:
                raise ValueError(f"bad memory budget {text!r}") from None
        else:
            try:
                value = int(raw)
            except ValueError:
                raise ValueError(f"bad memory budget {text!r}") from None
    if value <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return value


_BUDGET: Optional[int] = None


def get_memory_budget() -> int:
    """The active out-of-core budget in bytes.

    Resolution order: the last :func:`set_memory_budget`, then the
    ``REPRO_OOC_BUDGET`` environment variable, then
    :data:`DEFAULT_BUDGET_BYTES`.
    """
    global _BUDGET
    if _BUDGET is None:
        env = os.environ.get(ENV_BUDGET)
        _BUDGET = parse_budget(env) if env else DEFAULT_BUDGET_BYTES
    return _BUDGET


def set_memory_budget(budget: Union[str, int, None]) -> Optional[int]:
    """Set the budget (bytes or a suffixed string); returns the previous.

    ``None`` resets to the environment/default resolution.
    """
    global _BUDGET
    previous = _BUDGET
    _BUDGET = None if budget is None else parse_budget(budget)
    return previous


@contextmanager
def memory_budget(budget: Union[str, int]) -> Iterator[int]:
    """Run a block under a temporary out-of-core budget."""
    global _BUDGET
    previous = set_memory_budget(budget)
    try:
        yield get_memory_budget()
    finally:
        _BUDGET = previous


# ----------------------------------------------------------------------
# Iteration plan (how much of the tensor one step materializes)
# ----------------------------------------------------------------------


def step_bytes_per_nnz(order: int, rank: int) -> int:
    """Resident bytes one nonzero costs a kernel step.

    Read buffers (int64 indices + float32 value), the mode-sort plan's
    permutation and sorted copy, and the ``(rank, step)`` float32
    Khatri-Rao columns with their float64 reduction.
    """
    read = 8 * order + 4
    plan = 8 + 8 * order + 4
    temporaries = 4 * rank + 8 * rank
    return read + plan + temporaries


def step_nnz_for(order: int, rank: int, budget: Optional[int] = None) -> int:
    """Elements per step so one step uses about half the budget.

    Half, because a step's plan may be cached while the next step
    builds its own — two steps' artifacts briefly coexist.
    """
    budget = get_memory_budget() if budget is None else int(budget)
    per_nnz = step_bytes_per_nnz(order, max(1, int(rank)))
    return max(MIN_STEP_NNZ, budget // 2 // per_nnz)


def iteration_plan(
    x: object, rank: int = 1, *, budget: Optional[int] = None
) -> ChunkPlan:
    """Fixed-size element chunking of ``x`` honoring the memory budget.

    Reuses the ``dynamic`` OpenMP partitioner with an explicit
    ``chunk_units``, memoized under the structural ``"partition"`` kind —
    for a :class:`MmapCooTensor` the file-state token keys the cache, so
    re-opened handles of the same file share the plan.
    """
    step = step_nnz_for(len(x.shape), rank, budget)

    def build() -> ChunkPlan:
        return build_element_chunk_plan(
            x.nnz, workers=1, policy="dynamic", chunk_units=step
        )

    if not cache_enabled():
        return build()
    return get_plan_cache().get(x, KIND_PARTITION, ("ooc", step), build)


# ----------------------------------------------------------------------
# Per-step plan cache with budget-bounded residency
# ----------------------------------------------------------------------


class _TokenHandle:
    """A stand-in carrying only a plan-cache token (for LRU eviction)."""

    __slots__ = ("plan_cache_token",)

    def __init__(self, token: Hashable) -> None:
        self.plan_cache_token = token


_PLAN_LRU: "OrderedDict[Tuple[Hashable, Tuple[int, int, int]], int]"
_PLAN_LRU = OrderedDict()
_PLAN_LRU_BYTES = 0


def reset_plan_lru() -> None:
    """Forget the LRU bookkeeping (tests; cached plans are untouched)."""
    global _PLAN_LRU_BYTES
    _PLAN_LRU.clear()
    _PLAN_LRU_BYTES = 0


def plan_lru_bytes() -> int:
    """Resident bytes currently attributed to ``"ooc_chunk"`` plans."""
    return _PLAN_LRU_BYTES


def _plan_nbytes(plan: ModeSortPlan) -> int:
    return (
        plan.perm.nbytes
        + plan.sorted_indices.nbytes
        + plan.segment_starts.nbytes
        + plan.unique_targets.nbytes
    )


def _lru_note(
    token: Hashable, key: Tuple[int, int, int], nbytes: int, budget: int
) -> None:
    """Record a cached step plan; evict the oldest past one budget."""
    global _PLAN_LRU_BYTES
    entry = (token, key)
    if entry in _PLAN_LRU:
        _PLAN_LRU.move_to_end(entry)
        return
    _PLAN_LRU[entry] = nbytes
    _PLAN_LRU_BYTES += nbytes
    cache = get_plan_cache()
    while _PLAN_LRU_BYTES > budget and len(_PLAN_LRU) > 1:
        (old_token, old_key), old_bytes = _PLAN_LRU.popitem(last=False)
        _PLAN_LRU_BYTES -= old_bytes
        cache.evict(_TokenHandle(old_token), KIND_OOC_CHUNK, old_key)


def _step_mode_sort(
    x: object, mode: int, e0: int, e1: int, budget: int
) -> Tuple[ModeSortPlan, np.ndarray]:
    """The step's mode-sort plan plus its values in plan sort order.

    On a plan-cache hit only the values of ``[e0, e1)`` are read from
    disk; a miss reads the full range and builds (and caches) the plan.
    """
    if not cache_enabled():
        idx, raw = x.read_range(e0, e1)
        plan = _build_mode_sort(idx, mode)
        return plan, plan.sorted_values(raw)
    cache = get_plan_cache()
    key = (mode, e0, e1)
    fresh: Dict[str, np.ndarray] = {}

    def build() -> ModeSortPlan:
        idx, raw = x.read_range(e0, e1)
        fresh["values"] = raw
        return _build_mode_sort(idx, mode)

    plan = cache.get(x, KIND_OOC_CHUNK, key, build)
    raw = fresh.get("values")
    if raw is None:
        raw = x.read_values(e0, e1)
    token = getattr(x, "plan_cache_token", None)
    if token is not None:
        _lru_note(token, key, _plan_nbytes(plan), budget)
    return plan, plan.sorted_values(raw)


def _steps(x: object, plan: ChunkPlan) -> Iterator[Tuple[int, int]]:
    """Yield element ranges, dropping resident file pages between steps.

    ``release_pages`` (when the source supports it) evicts the mapping's
    pages after each step, so nonzeros already streamed past stop
    counting toward the resident set — that, plus the bounded step size,
    is the out-of-core memory guarantee.
    """
    release = getattr(x, "release_pages", None)
    for s in range(plan.num_chunks):
        yield int(plan.offsets[s]), int(plan.offsets[s + 1])
        if release is not None:
            release()


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def mttkrp(x: object, factors, mode: int) -> np.ndarray:
    """Out-of-core MTTKRP: segmented reduction one bounded step at a time.

    Per step: gather the Khatri-Rao columns of the step's nonzeros in
    mode-sorted order, ``reduceat`` them in float64, and add the partial
    into the dense output — additive over any partition of the nonzeros,
    so the result matches the in-RAM kernel to float tolerance.
    """
    from ..core.mttkrp import _khatri_rao_cols_sorted, check_factors
    from ..formats.coo import VALUE_DTYPE
    from ..formats.modes import check_mode

    mode = check_mode(len(x.shape), mode)
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    budget = get_memory_budget()
    out = np.zeros((x.shape[mode], rank), dtype=np.float64)
    for e0, e1 in _steps(x, iteration_plan(x, rank, budget=budget)):
        plan, svals = _step_mode_sort(x, mode, e0, e1, budget)
        cols = _khatri_rao_cols_sorted(
            plan.sorted_indices, svals, factors, mode
        )
        out[plan.unique_targets] += np.add.reduceat(
            cols, plan.segment_starts, axis=1, dtype=np.float64
        ).T
    return out.astype(VALUE_DTYPE)


def _step_coo(x: object, e0: int, e1: int):
    from ..formats.coo import CooTensor

    idx, raw = x.read_range(e0, e1)
    return CooTensor(x.shape, idx, raw)


def ttv(x: object, v: np.ndarray, mode: int):
    """Out-of-core TTV: per-step COO-TTV partials merged by coordinate.

    Each step's partial holds one nonzero per fiber *of the step*; the
    running merge concatenates and re-deduplicates, so resident state is
    the output plus one step — the output itself must fit in RAM.
    """
    from ..core.ttv import _check_vector, ttv_coo
    from ..formats.coo import CooTensor, concatenate_tensors
    from ..formats.modes import check_mode

    mode = check_mode(len(x.shape), mode)
    v = _check_vector(x.shape[mode], v)
    budget = get_memory_budget()
    merged = None
    for e0, e1 in _steps(x, iteration_plan(x, 1, budget=budget)):
        partial = ttv_coo(_step_coo(x, e0, e1), v, mode)
        if merged is None:
            merged = partial
        else:
            merged = concatenate_tensors([merged, partial])
    if merged is None:
        out_shape = tuple(s for m, s in enumerate(x.shape) if m != mode)
        return CooTensor.empty(out_shape)
    return merged.sum_duplicates()


def ttm(x: object, matrix: np.ndarray, mode: int):
    """Out-of-core TTM: per-step sCOO partials merged by sparse coordinate.

    Value *rows* are summed (float64) wherever two steps produced the
    same sparse coordinate, then the merged rows are re-sorted into the
    canonical fiber order — the same grouping ``ttm_coo`` emits.
    """
    from ..core.ttm import _check_matrix, ttm_coo
    from ..formats.modes import check_mode
    from ..formats.scoo import SemiSparseCooTensor

    mode = check_mode(len(x.shape), mode)
    matrix = _check_matrix(x.shape[mode], matrix)
    budget = get_memory_budget()
    partials: List[SemiSparseCooTensor] = []
    for e0, e1 in _steps(x, iteration_plan(x, matrix.shape[1], budget=budget)):
        partials.append(ttm_coo(_step_coo(x, e0, e1), matrix, mode))
        if len(partials) > 1:
            partials = [_merge_scoo(partials)]
    if not partials:
        return ttm_coo(_empty_coo(x.shape), matrix, mode)
    return partials[0]


def _empty_coo(shape):
    from ..formats.coo import CooTensor

    return CooTensor.empty(shape)


def _merge_scoo(partials):
    """Sum sCOO partials that share shape/dense modes, deduplicating."""
    from ..formats.coo import VALUE_DTYPE
    from ..formats.scoo import SemiSparseCooTensor

    first = partials[0]
    indices = np.concatenate([p.indices for p in partials], axis=1)
    values = np.concatenate([p.values for p in partials], axis=0)
    # Canonical order: lexicographic by sparse coordinate (row 0 most
    # significant), matching the fiber order ttm_coo emits.
    perm = np.lexsort(tuple(indices[::-1]))
    indices = indices[:, perm]
    values = values[perm]
    if indices.shape[1] == 0:
        return first
    boundary = np.any(indices[:, 1:] != indices[:, :-1], axis=0)
    starts = np.flatnonzero(np.concatenate(([True], boundary)))
    summed = np.add.reduceat(values.astype(np.float64), starts, axis=0)
    return SemiSparseCooTensor(
        first.shape,
        first.dense_modes,
        indices[:, starts],
        summed.astype(VALUE_DTYPE),
        validate=False,
    )


def tensor_norm(x: object) -> float:
    """Frobenius norm accumulated in float64 over bounded value reads."""
    total = 0.0
    for e0, e1 in _steps(x, iteration_plan(x, 1)):
        vals = x.read_values(e0, e1).astype(np.float64)  # repro: ignore[dtype]
        total += float(np.dot(vals, vals))
    return float(np.sqrt(total))


__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "ENV_BUDGET",
    "KIND_OOC_CHUNK",
    "get_memory_budget",
    "set_memory_budget",
    "memory_budget",
    "parse_budget",
    "iteration_plan",
    "step_nnz_for",
    "plan_lru_bytes",
    "reset_plan_lru",
    "mttkrp",
    "ttv",
    "ttm",
    "tensor_norm",
]
