"""Empirical two-stage autotuner for sparse kernel configurations.

The paper's central observation is that no single format wins: COO vs
HiCOO (and the HiCOO block size ``B``) flips winner per tensor and per
kernel.  This module turns that observation into a mechanism:

1. **Model stage** — enumerate candidate configurations (kernel variant,
   HiCOO block size, schedule policy, thread count) and rank them with
   the analytic :class:`~repro.core.schedule.KernelSchedule` cost model
   plus the tensor's measured :class:`~repro.datasets.features.TensorFeatures`
   (block occupancy drives the HiCOO metadata estimate, so the model
   stage never performs a format conversion).
2. **Probe stage** — run short, time-budgeted, warm-cache micro-probes
   of the top-``k`` modeled candidates with deterministic seeded
   operands, and commit the measured winner.

Decisions are memoized at two levels: in-process under the plan cache
(kind ``"autotune"``, so a tensor's decision dies with the tensor) and
on disk in a JSON tuning cache keyed by a structural fingerprint of the
tensor (shape, nnz, per-mode fiber counts, block occupancy) plus kernel
and machine signature.  A disk hit skips the probe stage entirely, which
is what makes ``variant="auto"`` cheap on repeated runs.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import PastaError
from .cachedir import machine_signature  # noqa: F401 — re-exported API
from .parallel import get_min_nnz_per_thread, get_num_threads, last_parallel_report
from .partition import POLICIES, POLICY_DYNAMIC
from .plan_cache import cache_enabled, get_plan_cache
from .timing import budgeted_min_seconds

#: Plan-cache kind for in-memory tuning decisions (structural: safe to
#: transfer between tensors that share index structure).
KIND_AUTOTUNE = "autotune"

#: Kernels the tuner knows how to dispatch.
TUNED_KERNELS = ("MTTKRP", "TTV", "TTM")

#: HiCOO block sizes explored by the tuner (paper Section V sweeps B).
BLOCK_SIZES = (16, 32, 64, 128)

#: Kernel variants with a CSF implementation.
CSF_KERNELS = ("MTTKRP", "TTV")

#: Kernels each compiled (JIT) variant can execute.  ``coo_jit`` chunks
#: exactly like the numpy COO kernels, so it spans every tuned kernel;
#: ``hicoo_jit`` is the literal blocked Algorithm 3 loop nest, which
#: exists for MTTKRP only and runs serial (blocks sharing an output
#: window would race under a block partition).  The ``*_jit_mt``
#: variants run the same compiled bodies *inside* a C thread team — one
#: ctypes call per kernel invocation — with ``hicoo_jit_mt`` using the
#: ownership partition (windows grouped by output block row) that makes
#: the blocked nest safe to parallelize.
JIT_VARIANT_KERNELS = {
    "coo_jit": ("MTTKRP", "TTV", "TTM"),
    "hicoo_jit": ("MTTKRP",),
    "coo_jit_mt": ("MTTKRP", "TTV", "TTM"),
    "hicoo_jit_mt": ("MTTKRP",),
}

ENV_CACHE = "REPRO_TUNE_CACHE"
ENV_BUDGET_MS = "REPRO_TUNE_BUDGET_MS"
ENV_TOPK = "REPRO_TUNE_TOPK"

#: Per-candidate probe budget (milliseconds) when the env knob is unset.
DEFAULT_BUDGET_MS = 25.0

#: How many model-ranked candidates reach the probe stage by default.
DEFAULT_TOP_K = 3

DEFAULT_RANK = 16

# ----------------------------------------------------------------------
# Host cost-model constants.  Absolute values only need to be plausible;
# the tuner consumes the *ranking*, and the probe stage corrects it.
# ----------------------------------------------------------------------

_STREAM_BANDWIDTH = 2.0e10  # bytes/s, contiguous
_IRREGULAR_BANDWIDTH = 2.5e9  # bytes/s, gather/scatter
_PEAK_FLOPS = 5.0e10  # flop/s
_ATOMIC_SECONDS = 2.0e-8  # per conflicting atomic update
_DISPATCH_SECONDS = 5.0e-5  # per extra worker, fork/join overhead
_SORT_SECONDS_PER_KEY = 2.0e-8  # per (mode, nonzero) key of a rebuild sort
#: Modeled advantage of a compiled loop nest over the numpy path: the
#: fused C loop makes one pass where numpy gathers/multiplies in several
#: full-array sweeps.  The probe stage measures the real ratio.
_JIT_MODEL_SPEEDUP = 3.0
_JIT_CALL_SECONDS = 2.0e-6  # ctypes marshalling overhead per call
#: Parallel-efficiency factors for compiled kernels: the fraction of an
#: extra worker's capacity that turns into speedup.  In-kernel teams
#: (``*_jit_mt``) share one address space with no interpreter in the
#: loop, so they scale near-linearly; per-chunk ctypes calls from Python
#: threads (``coo_jit`` at T>1) serialize on marshalling and the chunk
#: loop, so most of each extra worker is lost.
_MT_THREAD_EFFICIENCY = 0.85
_CHUNK_THREAD_EFFICIENCY = 0.45
_TEAM_SPAWN_SECONDS = 1.0e-5  # per extra thread, C team spawn/join


@dataclass(frozen=True)
class TuneConfig:
    """One concrete way to execute a kernel."""

    variant: str  # "coo" | "hicoo" | "csf"
    block_size: Optional[int]  # HiCOO B; None for coo/csf
    num_threads: int
    schedule: str  # partition policy name

    def label(self) -> str:
        """Short human-readable form, e.g. ``hicoo[B=32] 4T dynamic``."""
        fmt = self.variant
        if self.variant.startswith("hicoo") and self.block_size is not None:
            fmt = f"{self.variant}[B={self.block_size}]"
        if self.num_threads == 1:
            return f"{fmt} serial"
        return f"{fmt} {self.num_threads}T {self.schedule}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "block_size": self.block_size,
            "num_threads": self.num_threads,
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneConfig":
        block = data.get("block_size")
        return cls(
            variant=str(data["variant"]),
            block_size=None if block is None else int(block),
            num_threads=int(data.get("num_threads", 1)),
            schedule=str(data.get("schedule", POLICY_DYNAMIC)),
        )


@dataclass(frozen=True)
class CandidateReport:
    """Model and (optional) probe outcome for one candidate."""

    config: TuneConfig
    modeled_seconds: float
    measured_seconds: Optional[float] = None
    probe_reps: int = 0
    execution: Optional[Dict[str, Any]] = None  # parallel ExecutionReport summary


@dataclass(frozen=True)
class TuningReport:
    """Everything one :func:`tune` call decided and why."""

    kernel: str
    mode: int
    rank: int
    seed: int
    fingerprint: str
    machine: str
    chosen: TuneConfig
    candidates: Tuple[CandidateReport, ...]
    probes_run: int
    cache_hit: Optional[str]  # None | "disk"
    budget_ms: float
    top_k: int
    notes: Dict[str, Any] = field(default_factory=dict)


_LAST_TUNING_REPORT: Optional[TuningReport] = None
_PROBE_CALLS = 0
_DISK_ENABLED = True
#: In-process view of each tuning-cache file, keyed by path.
_DISK_STATE: Dict[str, Dict[str, Any]] = {}


def last_tuning_report() -> Optional[TuningReport]:
    """The report of the most recent :func:`tune` call, if any."""
    return _LAST_TUNING_REPORT


def probe_count() -> int:
    """Total micro-probes executed since import (or the last reset)."""
    return _PROBE_CALLS


def reset_probe_count() -> int:
    """Zero the probe counter; returns the previous value."""
    global _PROBE_CALLS
    previous = _PROBE_CALLS
    _PROBE_CALLS = 0
    return previous


@contextmanager
def disk_cache_disabled() -> Iterator[None]:
    """Context manager: neither read nor write the on-disk tuning cache.

    The fuzzer runs its ``variant="auto"`` differential checks under this
    so results never depend on (or pollute) the user's tuning file.
    """
    global _DISK_ENABLED
    previous = _DISK_ENABLED
    _DISK_ENABLED = False
    try:
        yield
    finally:
        _DISK_ENABLED = previous


def reload_disk_cache() -> None:
    """Drop the in-process view of the tuning file; next use re-reads it."""
    _DISK_STATE.clear()


# ----------------------------------------------------------------------
# Tensor fingerprint (machine_signature lives in perf.cachedir and is
# re-exported above — the JIT object cache keys on the same identity)
# ----------------------------------------------------------------------


def _features_for(tensor: Any):
    """Tensor features, memoized under the plan cache."""
    from ..datasets.features import extract_features

    coo = _as_coo(tensor)

    def build():
        return extract_features(coo)

    if not cache_enabled():
        return build()
    return get_plan_cache().get(tensor, KIND_AUTOTUNE, ("features",), build)


def tensor_fingerprint(tensor: Any) -> str:
    """Structural fingerprint: shape, nnz, fiber counts, block occupancy.

    Two tensors with the same fingerprint have (statistically) the same
    best configuration, which is what lets disk-cached decisions carry
    across processes without re-probing.
    """
    features = _features_for(tensor)
    payload = "|".join(
        [
            "x".join(str(s) for s in features.shape),
            str(features.nnz),
            ",".join(str(f) for f in features.fiber_counts),
            f"{features.block_occupancy:.4f}",
        ]
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


def _as_coo(tensor: Any):
    from ..formats.coo import CooTensor
    from ..formats.hicoo import HicooTensor

    if isinstance(tensor, CooTensor):
        return tensor
    if isinstance(tensor, HicooTensor):
        from .plans import expanded_coo

        return expanded_coo(tensor)
    raise PastaError(
        f"autotuner needs a COO or HiCOO tensor, got {type(tensor).__name__}"
    )


# ----------------------------------------------------------------------
# Candidate enumeration
# ----------------------------------------------------------------------


def _thread_candidates(max_threads: Optional[int] = None) -> Tuple[int, ...]:
    if max_threads is None:
        # Respect an ambient REPRO_NUM_THREADS above the visible core
        # count: an oversubscribed-on-purpose run (or a cgroup-limited
        # container) should still see multithreaded candidates.
        limit = max(os.cpu_count() or 1, get_num_threads())
    else:
        limit = max_threads
    limit = max(1, int(limit))
    out = [1]
    t = 2
    while t <= limit:
        out.append(t)
        t *= 2
    return tuple(out)


def candidate_configs(
    kernel: str, *, max_threads: Optional[int] = None
) -> Tuple[TuneConfig, ...]:
    """Every configuration the tuner considers for ``kernel``.

    Enumeration order is deterministic; the model stage sorts stably, so
    ties keep this order and selection is reproducible.
    """
    kernel = kernel.upper()
    if kernel not in TUNED_KERNELS:
        raise PastaError(
            f"kernel {kernel!r} is not tunable; use one of {TUNED_KERNELS}"
        )
    threads = _thread_candidates(max_threads)
    configs: List[TuneConfig] = []
    for variant, blocks in (("coo", (None,)), ("hicoo", BLOCK_SIZES)):
        for block in blocks:
            for t in threads:
                if t == 1:
                    configs.append(TuneConfig(variant, block, 1, POLICY_DYNAMIC))
                else:
                    for policy in POLICIES:
                        configs.append(TuneConfig(variant, block, t, policy))
    if kernel in CSF_KERNELS:
        # CSF kernels are tree-walks with no shared-memory execution
        # path, so only the serial variant is a candidate.
        configs.append(TuneConfig("csf", None, 1, POLICY_DYNAMIC))
    configs.extend(_jit_candidates(kernel, threads))
    return tuple(configs)


def _jit_candidates(
    kernel: str, threads: Tuple[int, ...]
) -> List[TuneConfig]:
    """Compiled-variant candidates, present only when JIT can run here.

    ``coo_jit`` spans the full thread/policy grid — the ctypes call
    releases the GIL, so it is precisely the variant where extra workers
    pay off.  ``hicoo_jit`` is serial-only, like ``csf``, but sweeps the
    block size the blocked loop nest is generated for.  The ``*_jit_mt``
    variants only exist multithreaded (their T=1 execution is exactly
    the serial ``*_jit`` candidate): ``coo_jit_mt`` sweeps the full
    thread/policy grid, ``hicoo_jit_mt`` additionally sweeps the block
    size because the ownership partition's window count depends on it.
    """
    from . import jit

    if not jit.jit_available():
        return []
    configs: List[TuneConfig] = []
    if kernel in JIT_VARIANT_KERNELS["coo_jit"]:
        for t in threads:
            if t == 1:
                configs.append(TuneConfig("coo_jit", None, 1, POLICY_DYNAMIC))
            else:
                for policy in POLICIES:
                    configs.append(TuneConfig("coo_jit", None, t, policy))
    if kernel in JIT_VARIANT_KERNELS["hicoo_jit"]:
        for block in BLOCK_SIZES:
            configs.append(TuneConfig("hicoo_jit", block, 1, POLICY_DYNAMIC))
    if kernel in JIT_VARIANT_KERNELS["coo_jit_mt"]:
        for t in threads:
            if t == 1:
                continue
            for policy in POLICIES:
                configs.append(TuneConfig("coo_jit_mt", None, t, policy))
    if kernel in JIT_VARIANT_KERNELS["hicoo_jit_mt"]:
        for block in BLOCK_SIZES:
            for t in threads:
                if t == 1:
                    continue
                for policy in POLICIES:
                    configs.append(TuneConfig("hicoo_jit_mt", block, t, policy))
    return configs


# ----------------------------------------------------------------------
# Model stage
# ----------------------------------------------------------------------


def _est_blocks(features: Any, block_size: int) -> int:
    """Estimated HiCOO block count at ``block_size``.

    Anchored on the measured occupancy at the reference block size
    (B=128, from :class:`TensorFeatures`) and scaled linearly: halving B
    roughly halves occupancy until blocks hold a single nonzero.  Crude,
    but conversion-free — the probe stage corrects mis-rankings.
    """
    occupancy = max(float(features.block_occupancy), 1.0)
    scaled = max(occupancy * block_size / 128.0, 1.0)
    return min(int(features.nnz), int(features.nnz / scaled) + 1)


def _base_schedule(coo: Any, kernel: str, mode: int, rank: int, variant: str):
    from ..core.mttkrp import schedule_mttkrp_coo
    from ..core.ttm import schedule_ttm
    from ..core.ttv import schedule_ttv

    fmt = {"coo": "COO", "hicoo": "HiCOO", "csf": "COO"}[variant]
    if kernel == "MTTKRP":
        if variant == "csf":
            from ..core.csf_kernels import schedule_mttkrp_csf

            return schedule_mttkrp_csf(coo, mode, rank)
        return schedule_mttkrp_coo(coo, mode, rank)
    if kernel == "TTV":
        return schedule_ttv(coo, mode, fmt)
    if kernel == "TTM":
        return schedule_ttm(coo, mode, rank, fmt)
    raise PastaError(f"kernel {kernel!r} is not tunable")


def modeled_seconds(
    schedule: Any, num_threads: int, extra_streamed_bytes: float = 0.0
) -> float:
    """Analytic wall-time estimate for a schedule at a thread count.

    Max of the bandwidth and compute rooflines, scaled by the measured
    load imbalance at ``num_threads`` workers, plus atomic-conflict and
    fork/join overhead terms.
    """
    streamed = max(0.0, schedule.streamed_bytes + extra_streamed_bytes)
    bytes_seconds = (
        streamed / _STREAM_BANDWIDTH + schedule.irregular_bytes / _IRREGULAR_BANDWIDTH
    )
    flop_seconds = schedule.flops / _PEAK_FLOPS
    serial = max(bytes_seconds, flop_seconds)
    atomic = (
        schedule.atomic_updates * schedule.atomic_conflict_fraction * _ATOMIC_SECONDS
    )
    t = max(1, int(num_threads))
    imbalance = schedule.load_imbalance(t) if t > 1 else 1.0
    return (serial + atomic) * imbalance / t + (t - 1) * _DISPATCH_SECONDS


def _modeled_candidate_seconds(
    coo: Any, features: Any, kernel: str, mode: int, rank: int, config: TuneConfig
) -> float:
    is_jit = config.variant in JIT_VARIANT_KERNELS
    is_mt = config.variant.endswith("_jit_mt")
    base_variant = config.variant
    if is_jit:
        base_variant = base_variant.removesuffix("_mt").removesuffix("_jit")
    schedule = _base_schedule(coo, kernel, mode, rank, base_variant)
    order = coo.order
    nnz = coo.nnz
    extra = 0.0
    if base_variant == "hicoo":
        block = config.block_size or 128
        # Block metadata stream (binds + bptr) minus the einds savings of
        # storing 1-byte element indices instead of 4-byte coordinates.
        extra = (4.0 * order + 8.0) * _est_blocks(features, block) - 3.0 * order * nnz
    if is_jit:
        # Same traffic/flops as the numpy variant, minus the interpreter
        # orchestration the fused loop eliminates.  Compile cost is not
        # modeled: the object cache makes it a once-per-machine event.
        seconds = modeled_seconds(schedule, 1, extra)
        seconds = seconds / _JIT_MODEL_SPEEDUP + _JIT_CALL_SECONDS
        t = max(1, int(config.num_threads))
        if t > 1:
            # In-kernel teams amortize one spawn over the whole kernel
            # and scale near-linearly; per-chunk ctypes calls pay the
            # Python dispatch loop and marshalling per chunk.
            eff = _MT_THREAD_EFFICIENCY if is_mt else _CHUNK_THREAD_EFFICIENCY
            overhead = _TEAM_SPAWN_SECONDS if is_mt else _DISPATCH_SECONDS
            seconds = (
                seconds * schedule.load_imbalance(t) / (1.0 + (t - 1) * eff)
                + (t - 1) * overhead
            )
    else:
        seconds = modeled_seconds(schedule, config.num_threads, extra)
    if config.variant == "csf":
        # csf_for_mode rebuilds the fiber tree on every kernel call; the
        # lexsort over (order, nnz) keys is a real per-call cost.
        seconds += _SORT_SECONDS_PER_KEY * order * nnz * math.log2(max(nnz, 2))
    return seconds


# ----------------------------------------------------------------------
# Probe stage
# ----------------------------------------------------------------------


def _probe_candidate(
    coo: Any,
    kernel: str,
    mode: int,
    rank: int,
    operands: Any,
    config: TuneConfig,
    budget_seconds: float,
) -> Tuple[float, int, Optional[Dict[str, Any]]]:
    """Warm-cache, budgeted micro-probe of one candidate configuration."""
    global _PROBE_CALLS
    from .dispatch import run_config

    def call() -> Any:
        return run_config(coo, kernel, config, operands, mode=mode, rank=rank)

    _PROBE_CALLS += 1
    before = last_parallel_report()
    call()  # warm-up: pays conversion/plan costs outside the timed region
    best, reps = budgeted_min_seconds(call, budget_seconds, min_reps=2)
    report = last_parallel_report()
    execution: Optional[Dict[str, Any]] = None
    if report is not None and report is not before:
        execution = {
            "kernel": report.kernel,
            "policy": report.policy,
            "workers": report.workers,
            "num_chunks": report.num_chunks,
            "measured_imbalance": report.measured_imbalance,
        }
    return best, reps, execution


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------


def tuning_cache_path() -> Path:
    """Location of the persistent tuning cache."""
    override = os.environ.get(ENV_CACHE)
    if override:
        return Path(override)
    from .cachedir import cache_root

    return cache_root() / "tuning.json"


def _disk_entries(path: Path) -> Dict[str, Any]:
    """Entries of the tuning file, tolerating absent or corrupt files."""
    key = str(path)
    state = _DISK_STATE.get(key)
    if state is None:
        state = {}
        try:
            raw = json.loads(path.read_text())
            entries = raw.get("entries") if isinstance(raw, dict) else None
            if isinstance(entries, dict):
                state = entries
        except (OSError, ValueError):
            state = {}
        _DISK_STATE[key] = state
    return state


def _disk_key(fingerprint: str, machine: str, kernel: str, mode: int, rank: int) -> str:
    return f"{fingerprint}|{machine}|{kernel}|mode={mode}|rank={rank}"


def _disk_lookup(path: Path, key: str) -> Optional[Dict[str, Any]]:
    entry = _disk_entries(path).get(key)
    if not isinstance(entry, dict) or "config" not in entry:
        return None
    try:
        TuneConfig.from_dict(entry["config"])
    except (KeyError, TypeError, ValueError):
        return None
    return entry


def _disk_store(path: Path, key: str, record: Dict[str, Any]) -> None:
    entries = _disk_entries(path)
    entries[key] = record
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps({"version": 1, "entries": entries}, indent=2, sort_keys=True)
        )
    except OSError:
        pass  # a read-only cache location degrades to in-process memoization


# ----------------------------------------------------------------------
# Tuning entry points
# ----------------------------------------------------------------------


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ[name])
    except (KeyError, ValueError):
        return default


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


def tune(
    tensor: Any,
    kernel: str,
    *,
    mode: int = 0,
    rank: int = DEFAULT_RANK,
    seed: int = 0,
    probe: bool = True,
    top_k: Optional[int] = None,
    budget_ms: Optional[float] = None,
    use_disk_cache: bool = True,
    max_threads: Optional[int] = None,
) -> TuningReport:
    """Select the best configuration for ``kernel`` on ``tensor``.

    Runs the model stage over every candidate, then (unless ``probe`` is
    false) micro-probes the ``top_k`` modeled candidates with a
    ``budget_ms`` time budget each and commits the measured winner.
    Consults and updates the on-disk tuning cache unless disabled.
    """
    global _LAST_TUNING_REPORT
    kernel = kernel.upper()
    if kernel not in TUNED_KERNELS:
        raise PastaError(
            f"kernel {kernel!r} is not tunable; use one of {TUNED_KERNELS}"
        )
    coo = _as_coo(tensor)
    mode = coo.check_mode(mode)
    rank = int(rank)
    top_k = _env_int(ENV_TOPK, DEFAULT_TOP_K) if top_k is None else max(1, int(top_k))
    budget_ms = (
        _env_float(ENV_BUDGET_MS, DEFAULT_BUDGET_MS)
        if budget_ms is None
        else max(0.0, float(budget_ms))
    )

    features = _features_for(tensor)
    fingerprint = tensor_fingerprint(tensor)
    machine = machine_signature()
    disk_on = use_disk_cache and _DISK_ENABLED
    disk_key = _disk_key(fingerprint, machine, kernel, mode, rank)
    path = tuning_cache_path()

    if disk_on:
        entry = _disk_lookup(path, disk_key)
        if entry is not None:
            chosen = TuneConfig.from_dict(entry["config"])
            cached = CandidateReport(
                config=chosen,
                modeled_seconds=float(entry.get("modeled_seconds", float("nan"))),
                measured_seconds=entry.get("measured_seconds"),
                probe_reps=int(entry.get("probe_reps", 0)),
            )
            report = TuningReport(
                kernel=kernel,
                mode=mode,
                rank=rank,
                seed=int(seed),
                fingerprint=fingerprint,
                machine=machine,
                chosen=chosen,
                candidates=(cached,),
                probes_run=0,
                cache_hit="disk",
                budget_ms=budget_ms,
                top_k=top_k,
            )
            _LAST_TUNING_REPORT = report
            return report

    notes: Dict[str, Any] = {}
    candidates = candidate_configs(kernel, max_threads=max_threads)
    cutover = get_min_nnz_per_thread()
    if cutover > 0:
        # Parallel cutover: a candidate that would leave each worker
        # fewer than ``cutover`` nonzeros is a predicted loser (thread
        # overhead swamps the shrunken per-worker share) — drop it so
        # small tensors fall back to serial without wasting probes.
        kept = tuple(
            config
            for config in candidates
            if config.num_threads <= 1
            or features.nnz >= config.num_threads * cutover
        )
        if len(kept) < len(candidates):
            notes["cutover_dropped"] = len(candidates) - len(kept)
            notes["min_nnz_per_thread"] = cutover
            candidates = kept

    ranked = sorted(
        (
            CandidateReport(
                config=config,
                modeled_seconds=_modeled_candidate_seconds(
                    coo, features, kernel, mode, rank, config
                ),
            )
            for config in candidates
        ),
        key=lambda cand: cand.modeled_seconds,
    )

    probes_run = 0
    if probe and top_k > 0:
        from ..core.registry import make_operands

        operands = make_operands(coo, kernel, mode=mode, rank=rank, seed=int(seed))
        probed: List[CandidateReport] = []
        for cand in ranked[:top_k]:
            measured, reps, execution = _probe_candidate(
                coo, kernel, mode, rank, operands, cand.config, budget_ms / 1000.0
            )
            probes_run += 1
            probed.append(
                CandidateReport(
                    config=cand.config,
                    modeled_seconds=cand.modeled_seconds,
                    measured_seconds=measured,
                    probe_reps=reps,
                    execution=execution,
                )
            )
        ranked = probed + ranked[top_k:]
        winner = min(probed, key=lambda cand: cand.measured_seconds)
    else:
        winner = ranked[0]

    report = TuningReport(
        kernel=kernel,
        mode=mode,
        rank=rank,
        seed=int(seed),
        fingerprint=fingerprint,
        machine=machine,
        chosen=winner.config,
        candidates=tuple(ranked),
        probes_run=probes_run,
        cache_hit=None,
        budget_ms=budget_ms,
        top_k=top_k,
        notes=notes,
    )
    if disk_on and probes_run:
        _disk_store(
            path,
            disk_key,
            {
                "config": winner.config.to_dict(),
                "modeled_seconds": winner.modeled_seconds,
                "measured_seconds": winner.measured_seconds,
                "probe_reps": winner.probe_reps,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            },
        )
    _LAST_TUNING_REPORT = report
    return report


def decide(
    tensor: Any,
    kernel: str,
    *,
    mode: int = 0,
    rank: int = DEFAULT_RANK,
    seed: int = 0,
    probe: bool = True,
    top_k: Optional[int] = None,
    budget_ms: Optional[float] = None,
    use_disk_cache: bool = True,
) -> TuneConfig:
    """The tuned configuration, memoized in-process under the plan cache.

    Repeat calls for the same live tensor object return the stored
    decision without touching disk, features, or probes — this is the
    fast path ``variant="auto"`` kernels hit inside iteration loops.
    """
    kernel = kernel.upper()
    coo = _as_coo(tensor)
    mode = coo.check_mode(mode)

    def build() -> TuningReport:
        return tune(
            tensor,
            kernel,
            mode=mode,
            rank=rank,
            seed=seed,
            probe=probe,
            top_k=top_k,
            budget_ms=budget_ms,
            use_disk_cache=use_disk_cache,
        )

    if not cache_enabled():
        return build().chosen
    key = ("decision", kernel, mode, int(rank))
    report = get_plan_cache().get(tensor, KIND_AUTOTUNE, key, build)
    return report.chosen
