"""Per-tensor kernel plan cache with explicit invalidation and counters.

The paper separates *pre-processing* (sorting, fiber partitioning, format
conversion) from the timed kernel computation, and its suite amortizes
the former across kernel executions.  The seed kernels redid the full
pre-processing on every call; this cache memoizes the reusable artifacts
— mode sort permutations, fiber partitions, HiCOO expansions, Morton
permutations, gHiCOO rebuilds — keyed on tensor *identity* plus a
``(kind, key)`` pair, so repeated kernels over the same tensor pay the
pre-processing once.

Design points:

* Keys are held through a :class:`weakref.WeakKeyDictionary`, so a
  tensor's plans disappear with the tensor — no unbounded growth from
  short-lived intermediates.
* Tensors that expose a ``plan_cache_token`` attribute (the mmap-backed
  :class:`~repro.io.binfile.MmapCooTensor`) are keyed on that token —
  ``(path, mtime_ns, size, checksum)`` — instead of object identity.
  Two handles opened on the same unchanged file share plans, and a
  rewritten file (new mtime/checksum) can never resurrect stale ones.
  Token entries are strong references, so they live in a small LRU
  (:data:`TOKEN_LRU_CAPACITY` files) rather than forever.
* Tensors are treated as immutable.  Code that mutates a tensor's index
  or value arrays in place must call :meth:`PlanCache.invalidate` (or
  the module-level :func:`invalidate`) first.
* Hit/miss counters are kept per plan kind, so tests and benchmarks can
  assert "the warm path issued no re-sort".
* The cache is thread-safe: every structural mutation and lookup holds
  one re-entrant lock, sized for the serving tier's executor threads
  hammering the same tensors concurrently.  Plan *builders* run outside
  the lock — a slow build must not block unrelated lookups — so two
  threads racing a cold ``(kind, key)`` may both build; the insert is
  last-write-wins and both products are identical by construction
  (builders are deterministic functions of the tensor), so neither
  thread can observe a torn or stale plan.
* The module-level enable flag (:func:`set_cache_enabled`,
  :func:`cache_disabled`) turns every plan helper into a no-op, which
  restores the seed's one-shot behavior — benchmarks use it as the
  uncached baseline.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple

#: How many distinct token-keyed tensors (on-disk files) keep plans at
#: once.  Token entries are strong references — unlike the weakref path
#: there is no object lifetime to bound them — so the least recently
#: used file's plans are dropped past this cap.
TOKEN_LRU_CAPACITY = 16

#: Plan kinds whose payloads are derived from index structure only (no
#: nonzero values baked in).  These transfer safely between tensors that
#: share the exact same index arrays — e.g. the output of a tensor-scalar
#: operation, which rebuilds the tensor around new values.
STRUCTURAL_KINDS = frozenset(
    {
        "mode_sort",
        "fiber_partition",
        "hicoo_expansion",
        "morton_perm",
        "ghicoo_fiber_sort",
        "partition",
        "autotune",
        "ooc_chunk",
    }
)

#: Plan kinds that embed nonzero values (cached converted tensors and the
#: dispatch layer's HiCOO→COO expansion wrapper).  They are never
#: transferred by :meth:`PlanCache.adopt`.
VALUE_BEARING_KINDS = frozenset({"ghicoo_build", "hicoo_build", "expanded_coo"})


@dataclass
class CacheStats:
    """Snapshot of cache effectiveness, overall and per plan kind."""

    hits: int
    misses: int
    entries: int
    tensors: int
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """Memoize kernel plans per (tensor identity, kind, key)."""

    def __init__(self, *, token_capacity: int = TOKEN_LRU_CAPACITY) -> None:
        if token_capacity < 1:
            raise ValueError("token_capacity must be at least 1")
        self._plans: "weakref.WeakKeyDictionary[Any, Dict[Tuple[str, Hashable], Any]]"
        self._plans = weakref.WeakKeyDictionary()
        self._token_plans: "OrderedDict[Hashable, Dict[Tuple[str, Hashable], Any]]"
        self._token_plans = OrderedDict()
        self._token_capacity = int(token_capacity)
        self._hits: Dict[str, int] = {}
        self._misses: Dict[str, int] = {}
        self._invalidations = 0
        self._lock = threading.RLock()

    @property
    def token_capacity(self) -> int:
        """How many token-keyed (on-disk) tensors keep plans at once."""
        return self._token_capacity

    def set_token_capacity(self, capacity: int) -> None:
        """Resize the token LRU; excess least-recently-used files drop.

        The serving tier raises this when it hosts more concurrent
        mmap-backed tenants than the default capacity.
        """
        if capacity < 1:
            raise ValueError("token_capacity must be at least 1")
        with self._lock:
            self._token_capacity = int(capacity)
            while len(self._token_plans) > self._token_capacity:
                self._token_plans.popitem(last=False)

    # ------------------------------------------------------------------
    # Store resolution (object identity vs file-state token)
    # ------------------------------------------------------------------

    @staticmethod
    def _token_of(tensor: Any) -> Optional[Hashable]:
        return getattr(tensor, "plan_cache_token", None)

    def _lookup(self, tensor: Any) -> Optional[Dict[Tuple[str, Hashable], Any]]:
        """The tensor's plan dict, or ``None`` (caller holds the lock)."""
        token = self._token_of(tensor)
        if token is not None:
            per = self._token_plans.get(token)
            if per is not None:
                self._token_plans.move_to_end(token)
            return per
        try:
            return self._plans.get(tensor)
        except TypeError:  # unhashable or non-weakrefable key
            return None

    def _ensure(self, tensor: Any) -> Optional[Dict[Tuple[str, Hashable], Any]]:
        """The tensor's plan dict, created if needed (caller holds the lock)."""
        token = self._token_of(tensor)
        if token is not None:
            per = self._token_plans.get(token)
            if per is None:
                per = {}
                self._token_plans[token] = per
                while len(self._token_plans) > self._token_capacity:
                    self._token_plans.popitem(last=False)
            else:
                self._token_plans.move_to_end(token)
            return per
        try:
            per = self._plans.get(tensor)
            if per is None:
                per = {}
                self._plans[tensor] = per
            return per
        except TypeError:
            return None

    # ------------------------------------------------------------------
    # Lookup / build
    # ------------------------------------------------------------------

    def get(
        self,
        tensor: Any,
        kind: str,
        key: Hashable,
        builder: Callable[[], Any],
    ) -> Any:
        """Return the cached plan, building and storing it on a miss.

        Tensors that cannot be weak-referenced are never stored; the plan
        is built fresh (counted as a miss) so callers need no fallback.
        Tensors exposing ``plan_cache_token`` are stored under the token.

        The builder runs *outside* the lock: concurrent cold lookups may
        both build, and the insert is last-write-wins — safe because
        builders are deterministic, so the racers' plans are equal.
        """
        with self._lock:
            per_tensor = self._lookup(tensor)
            if per_tensor is not None:
                plan = per_tensor.get((kind, key))
                if plan is not None:
                    self._hits[kind] = self._hits.get(kind, 0) + 1
                    return plan
            self._misses[kind] = self._misses.get(kind, 0) + 1
        plan = builder()
        with self._lock:
            per_tensor = self._ensure(tensor)
            if per_tensor is not None:
                per_tensor[(kind, key)] = plan
        return plan

    def peek(self, tensor: Any, kind: str, key: Hashable) -> Optional[Any]:
        """Return the cached plan without building or counting anything."""
        with self._lock:
            per_tensor = self._lookup(tensor)
            if per_tensor is None:
                return None
            return per_tensor.get((kind, key))

    # ------------------------------------------------------------------
    # Invalidation and plan transfer
    # ------------------------------------------------------------------

    def invalidate(self, tensor: Any) -> int:
        """Drop every plan for ``tensor``; returns how many were dropped.

        Call this after mutating a tensor's arrays in place.
        """
        with self._lock:
            token = self._token_of(tensor)
            if token is not None:
                per_tensor = self._token_plans.pop(token, None)
            else:
                try:
                    per_tensor = self._plans.pop(tensor, None)
                except TypeError:
                    return 0
            if per_tensor is None:
                return 0
            self._invalidations += len(per_tensor)
            return len(per_tensor)

    def evict(self, tensor: Any, kind: str, key: Hashable) -> bool:
        """Drop one ``(kind, key)`` plan for ``tensor``; was it present?

        The out-of-core kernels use this to bound the resident bytes of
        their per-range ``"ooc_chunk"`` plans without discarding the
        tensor's other plans.
        """
        with self._lock:
            per_tensor = self._lookup(tensor)
            if per_tensor is None:
                return False
            return per_tensor.pop((kind, key), None) is not None

    def clear(self) -> None:
        """Drop every plan for every tensor (counters are kept)."""
        with self._lock:
            self._plans.clear()
            self._token_plans.clear()

    def adopt(self, child: Any, parent: Any) -> int:
        """Share the parent's *structural* plans with ``child``.

        Safe only when both tensors have identical index structure (same
        coordinates in the same storage order) — e.g. a tensor-scalar
        result, which differs from its input in values alone.  Plans in
        :data:`VALUE_BEARING_KINDS` are never transferred.  Returns the
        number of plans shared.
        """
        with self._lock:
            source = self._lookup(parent)
            if not source:
                return 0
            shared = {
                k: plan for k, plan in source.items() if k[0] in STRUCTURAL_KINDS
            }
            if not shared:
                return 0
            per_child = self._ensure(child)
            if per_child is None:
                return 0
            per_child.update(shared)
            return len(shared)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def hits(self, kind: Optional[str] = None) -> int:
        """Total hits, or hits for one plan kind."""
        with self._lock:
            if kind is not None:
                return self._hits.get(kind, 0)
            return sum(self._hits.values())

    def misses(self, kind: Optional[str] = None) -> int:
        """Total misses, or misses for one plan kind."""
        with self._lock:
            if kind is not None:
                return self._misses.get(kind, 0)
            return sum(self._misses.values())

    def stats(self) -> CacheStats:
        """A snapshot of counters and current occupancy."""
        with self._lock:
            kinds = sorted(set(self._hits) | set(self._misses))
            by_kind = {
                k: (self._hits.get(k, 0), self._misses.get(k, 0)) for k in kinds
            }
            entries = sum(len(v) for v in self._plans.values())
            entries += sum(len(v) for v in self._token_plans.values())
            return CacheStats(
                hits=sum(self._hits.values()),
                misses=sum(self._misses.values()),
                entries=entries,
                tensors=len(self._plans) + len(self._token_plans),
                by_kind=by_kind,
            )

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (cached plans are kept)."""
        with self._lock:
            self._hits.clear()
            self._misses.clear()
            self._invalidations = 0


# ----------------------------------------------------------------------
# Global cache and enable switch
# ----------------------------------------------------------------------

_GLOBAL_CACHE = PlanCache()
_ENABLED = True


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache the kernels consult."""
    return _GLOBAL_CACHE


def cache_enabled() -> bool:
    """Whether the kernels currently consult the plan cache."""
    return _ENABLED


def set_cache_enabled(enabled: bool) -> bool:
    """Enable/disable plan caching globally; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Run a block with plan caching off (the seed's one-shot behavior)."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


@contextmanager
def fresh_cache() -> Iterator[PlanCache]:
    """Run a block against a brand-new global cache (tests, cold timing)."""
    global _GLOBAL_CACHE
    previous = _GLOBAL_CACHE
    _GLOBAL_CACHE = PlanCache()
    try:
        yield _GLOBAL_CACHE
    finally:
        _GLOBAL_CACHE = previous


def invalidate(tensor: Any) -> int:
    """Drop the global cache's plans for one tensor."""
    return _GLOBAL_CACHE.invalidate(tensor)
