"""Format-agnostic kernel dispatch with autotuned ``variant="auto"``.

Generic :func:`mttkrp` / :func:`ttv` / :func:`ttm` entry points that
accept a *variant* — ``"coo"``, ``"hicoo"``, ``"csf"``, a compiled
``"coo_jit"`` / ``"hicoo_jit"``, an in-kernel multithreaded
``"coo_jit_mt"`` / ``"hicoo_jit_mt"`` (see :mod:`repro.perf.jit`), an
explicit
:class:`~repro.perf.autotune.TuneConfig`, or ``"auto"`` to delegate the
choice to the autotuner.  The auto path and a direct invocation of the
winning configuration execute byte-identical code (:func:`run_config` is
the single executor both go through), so ``variant="auto"`` results are
exactly equal to the chosen variant's results by construction.

Core kernels are imported inside functions: ``repro.core`` modules import
``repro.perf.parallel`` at module scope, so importing them here at module
scope would create an import cycle.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

import numpy as np

from ..errors import PastaError
from .autotune import CSF_KERNELS, TUNED_KERNELS, TuneConfig, decide
from .parallel import get_num_threads, get_schedule, parallel_config

VARIANTS = (
    "auto",
    "coo",
    "hicoo",
    "csf",
    "coo_jit",
    "hicoo_jit",
    "coo_jit_mt",
    "hicoo_jit_mt",
)

#: Downgrade target of each compiled variant when the JIT declines (no
#: compiler, ``REPRO_JIT=0``, unsupported specialization), so stale
#: cached tuning decisions stay runnable.  The multithreaded variants
#: chain: ``coo_jit_mt -> coo_jit -> coo`` (an ``_mt`` config on a
#: JIT-less machine lands on numpy after two steps).
JIT_FALLBACK = {
    "coo_jit_mt": "coo_jit",
    "hicoo_jit_mt": "hicoo_jit",
    "coo_jit": "coo",
    "hicoo_jit": "hicoo",
}

VariantLike = Union[str, TuneConfig]


def _as_coo(x: Any):
    from ..formats.coo import CooTensor
    from ..formats.hicoo import HicooTensor

    if isinstance(x, CooTensor):
        return x
    if isinstance(x, HicooTensor):
        from .plans import expanded_coo

        # Memoized per tensor (plan-cache kind "expanded_coo"), so
        # repeated dispatch on the same HiCOO tensor reuses both the
        # expansion and every downstream plan keyed on the wrapper.
        return expanded_coo(x)
    raise PastaError(
        f"dispatch needs a COO or HiCOO tensor, got {type(x).__name__}"
    )


def resolve_config(
    x: Any,
    kernel: str,
    *,
    variant: VariantLike = "auto",
    block_size: Optional[int] = None,
    mode: int = 0,
    rank: int = 16,
    seed: int = 0,
    probe: bool = True,
) -> TuneConfig:
    """Turn a ``variant`` argument into a concrete :class:`TuneConfig`.

    ``"auto"`` consults the autotuner (memoized per tensor under the
    plan cache); explicit variants adopt the ambient thread count and
    schedule so they behave exactly like a direct kernel call.
    """
    if isinstance(variant, TuneConfig):
        return variant
    kernel = kernel.upper()
    if kernel not in TUNED_KERNELS:
        raise PastaError(
            f"kernel {kernel!r} is not dispatchable; use one of {TUNED_KERNELS}"
        )
    name = str(variant).lower()
    if name not in VARIANTS:
        raise PastaError(f"unknown variant {name!r}; use one of {VARIANTS}")
    if name == "auto":
        return decide(x, kernel, mode=mode, rank=rank, seed=seed, probe=probe)
    if name == "csf" and kernel not in CSF_KERNELS:
        raise PastaError(f"kernel {kernel!r} has no CSF implementation")
    if name in JIT_FALLBACK:
        from .autotune import JIT_VARIANT_KERNELS

        if kernel not in JIT_VARIANT_KERNELS.get(name, ()):
            raise PastaError(
                f"kernel {kernel!r} has no {name} implementation"
            )
    policy, _ = get_schedule()
    if name in ("hicoo", "hicoo_jit", "hicoo_jit_mt"):
        from ..formats.hicoo import DEFAULT_BLOCK_SIZE, check_block_size

        block = check_block_size(block_size or DEFAULT_BLOCK_SIZE)
        return TuneConfig(name, block, get_num_threads(), policy)
    return TuneConfig(name, None, get_num_threads(), policy)


def run_config(
    x: Any,
    kernel: str,
    config: TuneConfig,
    operands: Any,
    *,
    mode: int = 0,
    rank: Optional[int] = None,
) -> Any:
    """Execute ``kernel`` exactly as ``config`` prescribes.

    This is the single executor behind both ``variant="auto"`` and the
    tuner's micro-probes, which is what makes auto-dispatch results
    bit-identical to a direct invocation of the winning configuration.
    """
    kernel = kernel.upper()
    coo = _as_coo(x)
    variant = config.variant
    with parallel_config(num_threads=config.num_threads, schedule=config.schedule):
        if kernel == "MTTKRP":
            factors = operands.factors
            if factors is None:
                raise PastaError("MTTKRP dispatch needs factor matrices")
            if variant == "coo_jit_mt":
                from . import jit

                result = jit.mttkrp_coo_mt(coo, list(factors), mode)
                if result is not None:
                    return result
                variant = "coo_jit"
            if variant == "hicoo_jit_mt":
                from . import jit

                result = jit.mttkrp_hicoo_mt(
                    _hicoo(coo, config), list(factors), mode
                )
                if result is not None:
                    return result
                variant = "hicoo_jit"
            if variant == "coo_jit":
                from . import jit

                result = jit.mttkrp_coo(coo, list(factors), mode)
                if result is not None:
                    return result
                variant = "coo"
            if variant == "hicoo_jit":
                from . import jit

                result = jit.mttkrp_hicoo(
                    _hicoo(coo, config), list(factors), mode
                )
                if result is not None:
                    return result
                variant = "hicoo"
            if variant == "coo":
                from ..core.mttkrp import mttkrp_coo

                return mttkrp_coo(coo, list(factors), mode)
            if variant == "hicoo":
                from ..core.mttkrp import mttkrp_hicoo

                return mttkrp_hicoo(_hicoo(coo, config), list(factors), mode)
            if variant == "csf":
                from ..core.csf_kernels import mttkrp_csf

                return mttkrp_csf(coo, list(factors), mode)
        elif kernel == "TTV":
            if operands.vector is None:
                raise PastaError("TTV dispatch needs a vector operand")
            if variant == "coo_jit_mt":
                from . import jit

                result = jit.ttv_coo_mt(coo, operands.vector, mode)
                if result is not None:
                    return result
                variant = "coo_jit"
            if variant == "coo_jit":
                from . import jit

                result = jit.ttv_coo(coo, operands.vector, mode)
                if result is not None:
                    return result
                variant = "coo"
            if variant == "coo":
                from ..core.ttv import ttv_coo

                return ttv_coo(coo, operands.vector, mode)
            if variant == "hicoo":
                from ..core.ttv import ttv_hicoo

                return ttv_hicoo(
                    coo, operands.vector, mode, block_size=_block(config)
                )
            if variant == "csf":
                from ..core.csf_kernels import ttv_csf

                return ttv_csf(coo, operands.vector, mode)
        elif kernel == "TTM":
            if operands.matrix is None:
                raise PastaError("TTM dispatch needs a matrix operand")
            if variant == "coo_jit_mt":
                from . import jit

                result = jit.ttm_coo_mt(coo, operands.matrix, mode)
                if result is not None:
                    return result
                variant = "coo_jit"
            if variant == "coo_jit":
                from . import jit

                result = jit.ttm_coo(coo, operands.matrix, mode)
                if result is not None:
                    return result
                variant = "coo"
            if variant == "coo":
                from ..core.ttm import ttm_coo

                return ttm_coo(coo, operands.matrix, mode)
            if variant == "hicoo":
                from ..core.ttm import ttm_hicoo

                return ttm_hicoo(
                    coo, operands.matrix, mode, block_size=_block(config)
                )
    raise PastaError(
        f"no implementation for kernel {kernel!r} variant {variant!r}"
    )


def _block(config: TuneConfig) -> int:
    from ..formats.hicoo import DEFAULT_BLOCK_SIZE

    return config.block_size or DEFAULT_BLOCK_SIZE


def _hicoo(coo: Any, config: TuneConfig):
    from .plans import hicoo_for

    return hicoo_for(coo, _block(config))


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------


def mttkrp(
    x: Any,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    variant: VariantLike = "auto",
    block_size: Optional[int] = None,
    seed: int = 0,
    probe: bool = True,
) -> np.ndarray:
    """Matricized-tensor-times-Khatri-Rao-product with variant dispatch."""
    from ..core.registry import KernelOperands

    rank = int(np.asarray(factors[0]).shape[1])
    config = resolve_config(
        x,
        "MTTKRP",
        variant=variant,
        block_size=block_size,
        mode=mode,
        rank=rank,
        seed=seed,
        probe=probe,
    )
    return run_config(
        x, "MTTKRP", config, KernelOperands(factors=tuple(factors)), mode=mode
    )


def ttv(
    x: Any,
    vector: np.ndarray,
    mode: int,
    *,
    variant: VariantLike = "auto",
    block_size: Optional[int] = None,
    seed: int = 0,
    probe: bool = True,
) -> Any:
    """Tensor-times-vector with variant dispatch.

    The output format follows the chosen variant (COO for ``coo``/``csf``,
    HiCOO for ``hicoo``), exactly as a direct call would return.
    """
    from ..core.registry import KernelOperands

    config = resolve_config(
        x,
        "TTV",
        variant=variant,
        block_size=block_size,
        mode=mode,
        seed=seed,
        probe=probe,
    )
    return run_config(x, "TTV", config, KernelOperands(vector=vector), mode=mode)


def ttm(
    x: Any,
    matrix: np.ndarray,
    mode: int,
    *,
    variant: VariantLike = "auto",
    block_size: Optional[int] = None,
    seed: int = 0,
    probe: bool = True,
) -> Any:
    """Tensor-times-matrix with variant dispatch (semi-sparse output)."""
    from ..core.registry import KernelOperands

    rank = int(np.asarray(matrix).shape[1])
    config = resolve_config(
        x,
        "TTM",
        variant=variant,
        block_size=block_size,
        mode=mode,
        rank=rank,
        seed=seed,
        probe=probe,
    )
    return run_config(x, "TTM", config, KernelOperands(matrix=matrix), mode=mode)
