"""Shared measurement helpers for benchmarks and the autotuner.

Every timed loop in the suite follows the same discipline: monotonic
``perf_counter`` timestamps, explicit warm-up calls so one-time plan and
conversion costs are paid outside the measured region, and min-of-k (or
median-of-k) aggregation to suppress scheduler noise.  This module is
the single home for that discipline; ``benchmarks/_timing.py`` re-exports
it for scripts that run without ``src`` on ``sys.path`` tweaks.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

__all__ = [
    "warmup",
    "time_once",
    "min_of_k",
    "median_of_k",
    "budgeted_min_seconds",
]


def warmup(fn: Callable[[], object], reps: int = 1) -> None:
    """Invoke ``fn`` ``reps`` times outside any measured region."""
    for _ in range(max(0, int(reps))):
        fn()


def time_once(fn: Callable[[], object]) -> float:
    """One monotonic-clock timing of ``fn()`` in seconds."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def min_of_k(fn: Callable[[], object], reps: int = 5) -> float:
    """Best-of-``reps`` wall time; the standard noise-robust estimator."""
    if reps < 1:
        raise ValueError(f"reps must be positive, got {reps}")
    return min(time_once(fn) for _ in range(reps))


def median_of_k(fn: Callable[[], object], reps: int = 5) -> float:
    """Median-of-``reps`` wall time; robust when outliers cut both ways."""
    if reps < 1:
        raise ValueError(f"reps must be positive, got {reps}")
    samples: List[float] = sorted(time_once(fn) for _ in range(reps))
    mid = len(samples) // 2
    if len(samples) % 2:
        return samples[mid]
    return 0.5 * (samples[mid - 1] + samples[mid])


def budgeted_min_seconds(
    fn: Callable[[], object],
    budget_seconds: float,
    *,
    min_reps: int = 1,
    max_reps: int = 64,
) -> Tuple[float, int]:
    """Repeat ``fn`` until ``budget_seconds`` of wall time is spent.

    Always runs at least ``min_reps`` repetitions (so even a zero budget
    yields a measurement) and at most ``max_reps``.  Returns
    ``(best_seconds, reps)``.
    """
    if min_reps < 1:
        raise ValueError(f"min_reps must be positive, got {min_reps}")
    best = float("inf")
    reps = 0
    deadline = time.perf_counter() + max(0.0, float(budget_seconds))
    while reps < min_reps or (reps < max_reps and time.perf_counter() < deadline):
        best = min(best, time_once(fn))
        reps += 1
    return best, reps
