"""Shared-memory parallel kernel executor with schedule-driven partitioning.

The paper's CPU algorithms are OpenMP parallel loops; the seed executed
every kernel single-threaded even though the :class:`KernelSchedule`
layer models grains and load imbalance.  This module closes that gap
with a persistent pool of worker threads — numpy releases the GIL inside
its inner loops, so chunked gathers/multiplies/reductions genuinely
overlap — driven by the OpenMP-style partitioners in
:mod:`repro.perf.partition`.

Design points:

* **Disjoint output ownership.**  Kernels partition by *output* units
  (MTTKRP's output-row segments, TTV/TTM's fibers, TEW/TS's nonzero
  ranges), so no two workers ever write the same output row.  There are
  no atomics, partial sums accumulate in float64 exactly as the serial
  path does, and every chunk reduces the same elements in the same
  order — parallel results are **bit-identical to serial**.
* **Persistent workers.**  Helper threads are spawned once and kept
  (daemon, idle on a queue); each parallel region enqueues one ticket
  per helper and the calling thread works as worker 0, mirroring an
  OpenMP parallel region.
* **Measured imbalance.**  Each worker records its share's wall time and
  element count; the resulting :class:`ExecutionReport` puts *measured*
  load imbalance next to :meth:`KernelSchedule.load_imbalance`'s
  prediction, closing the loop between machine models and execution.
* **Configuration.**  ``set_num_threads()`` / ``REPRO_NUM_THREADS``
  select the worker count (default 1 = serial, the seed behavior),
  ``set_schedule()`` / ``REPRO_SCHEDULE`` the policy, and small inputs
  stay serial below ``set_min_parallel_nnz()`` /
  ``REPRO_PARALLEL_MIN_NNZ`` — for tiny tensors thread dispatch costs
  more than the kernel itself.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from queue import SimpleQueue
from time import perf_counter
from typing import Any, Callable, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from ..analysis.sanitizer import checked_task, sanitizer_enabled
from .partition import (
    POLICY_DYNAMIC,
    POLICY_STATIC,
    ChunkPlan,
    build_element_chunk_plan,
    check_policy,
    chunk_plan_for,
)

#: Below this many nonzeros a kernel stays serial by default: the numpy
#: calls finish in microseconds and chunk dispatch would dominate.
DEFAULT_MIN_PARALLEL_NNZ = 8192

#: Sentinel distinguishing "leave unchanged" from an explicit ``None``
#: in :func:`parallel_config` (``min_nnz_per_thread=None`` meaningfully
#: restores per-thread tracking of the absolute threshold).
_UNSET = object()


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


_NUM_THREADS = max(1, _env_int("REPRO_NUM_THREADS", 1))
_POLICY = os.environ.get("REPRO_SCHEDULE", POLICY_DYNAMIC)
if _POLICY not in ("static", "dynamic", "guided"):
    _POLICY = POLICY_DYNAMIC
_CHUNK_UNITS: Optional[int] = None
_MIN_PARALLEL_NNZ = max(0, _env_int("REPRO_PARALLEL_MIN_NNZ", DEFAULT_MIN_PARALLEL_NNZ))


def _env_optional_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return max(0, int(raw))
    except ValueError:
        return None


#: Minimum nonzeros each would-be worker must receive before the kernel
#: goes parallel.  ``None`` tracks ``_MIN_PARALLEL_NNZ`` — the knob
#: that cured the 0.98x two-thread regression in ``BENCH_parallel.json``
#: without adding a second default to tune: 2 threads need 2x the serial
#: threshold, 8 threads 8x, and undersized inputs get a *reduced* worker
#: count rather than a binary serial fallback.
_MIN_NNZ_PER_THREAD: Optional[int] = _env_optional_int(
    "REPRO_PARALLEL_MIN_NNZ_PER_THREAD"
)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def get_num_threads() -> int:
    """Worker count parallel kernels use (1 = serial)."""
    return _NUM_THREADS


def set_num_threads(num_threads: int) -> int:
    """Set the worker count; returns the previous value."""
    global _NUM_THREADS
    num_threads = int(num_threads)
    if num_threads < 1:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    previous = _NUM_THREADS
    _NUM_THREADS = num_threads
    return previous


def get_schedule() -> Tuple[str, Optional[int]]:
    """Current ``(policy, chunk_units)`` schedule."""
    return _POLICY, _CHUNK_UNITS


def set_schedule(
    policy: str, chunk_units: Optional[int] = None
) -> Tuple[str, Optional[int]]:
    """Set the OpenMP-style schedule; returns the previous setting."""
    global _POLICY, _CHUNK_UNITS
    check_policy(policy)
    if chunk_units is not None and int(chunk_units) < 1:
        raise ValueError(f"chunk_units must be positive, got {chunk_units}")
    previous = (_POLICY, _CHUNK_UNITS)
    _POLICY = policy
    _CHUNK_UNITS = None if chunk_units is None else int(chunk_units)
    return previous


def get_min_parallel_nnz() -> int:
    """Inputs smaller than this many nonzeros run serial."""
    return _MIN_PARALLEL_NNZ


def set_min_parallel_nnz(min_nnz: int) -> int:
    """Set the serial-fallback threshold; returns the previous value."""
    global _MIN_PARALLEL_NNZ
    min_nnz = int(min_nnz)
    if min_nnz < 0:
        raise ValueError(f"min_nnz must be non-negative, got {min_nnz}")
    previous = _MIN_PARALLEL_NNZ
    _MIN_PARALLEL_NNZ = min_nnz
    return previous


def get_min_nnz_per_thread() -> int:
    """Nonzeros each worker must receive before a kernel parallelizes.

    Defaults to tracking :func:`get_min_parallel_nnz`, so forcing
    ``min_parallel_nnz=0`` (tests, conformance checks) also disables the
    per-thread gate unless it was pinned explicitly.
    """
    if _MIN_NNZ_PER_THREAD is not None:
        return _MIN_NNZ_PER_THREAD
    return _MIN_PARALLEL_NNZ


def set_min_nnz_per_thread(min_nnz: Optional[int]) -> Optional[int]:
    """Pin (or with ``None``, unpin) the per-thread threshold.

    Returns the previous *raw* setting (``None`` when it was tracking
    the absolute threshold) so callers can restore it exactly.
    """
    global _MIN_NNZ_PER_THREAD
    previous = _MIN_NNZ_PER_THREAD
    if min_nnz is None:
        _MIN_NNZ_PER_THREAD = None
    else:
        min_nnz = int(min_nnz)
        if min_nnz < 0:
            raise ValueError(f"min_nnz must be non-negative, got {min_nnz}")
        _MIN_NNZ_PER_THREAD = min_nnz
    return previous


def max_parallel_workers(total_elements: int) -> int:
    """Worker count the cutover model allows for this input size.

    ``total // per_thread`` workers, clamped to the configured thread
    count — an input big enough for 3 productive workers on an 8-thread
    config runs with 3, and one below ``2x`` the per-thread threshold
    returns 1 (serial).  A zero per-thread threshold disables the gate.
    """
    if _NUM_THREADS <= 1:
        return 1
    per_thread = get_min_nnz_per_thread()
    if per_thread <= 0:
        return _NUM_THREADS
    return max(1, min(_NUM_THREADS, int(total_elements) // per_thread))


@contextmanager
def parallel_config(
    num_threads: Optional[int] = None,
    schedule: Optional[str] = None,
    chunk_units: Optional[int] = None,
    min_parallel_nnz: Optional[int] = None,
    min_nnz_per_thread: Any = _UNSET,
) -> Iterator[None]:
    """Run a block under a temporary parallel configuration.

    ``None`` leaves a knob unchanged, so apps can forward their own
    optional ``num_threads=``/``schedule=`` arguments straight through.
    The one exception is ``min_nnz_per_thread``, where ``None`` is a
    meaningful setting (track the absolute threshold) — omit the
    argument to leave it alone.
    """
    prev_threads = set_num_threads(num_threads) if num_threads is not None else None
    prev_schedule = (
        set_schedule(schedule, chunk_units)
        if schedule is not None or chunk_units is not None
        else None
    )
    prev_min = (
        set_min_parallel_nnz(min_parallel_nnz)
        if min_parallel_nnz is not None
        else None
    )
    restore_per_thread = min_nnz_per_thread is not _UNSET
    prev_per_thread = (
        set_min_nnz_per_thread(min_nnz_per_thread)
        if restore_per_thread
        else None
    )
    try:
        yield
    finally:
        if prev_threads is not None:
            set_num_threads(prev_threads)
        if prev_schedule is not None:
            set_schedule(*prev_schedule)
        if prev_min is not None:
            set_min_parallel_nnz(prev_min)
        if restore_per_thread:
            set_min_nnz_per_thread(prev_per_thread)


# ----------------------------------------------------------------------
# Execution reports
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionReport:
    """What one parallel kernel region actually did, per worker.

    ``measured_imbalance`` is the wall-time analogue of
    :meth:`KernelSchedule.load_imbalance`: the slowest worker's share
    time over the mean.  ``element_imbalance`` is the same ratio on
    per-worker element counts — deterministic under the static policy,
    which makes it the quantity tests compare against the model.
    """

    kernel: str
    grain: str
    policy: str
    workers: int
    num_chunks: int
    total_elements: int
    wall_seconds: float
    worker_seconds: Tuple[float, ...] = field(default_factory=tuple)
    worker_elements: Tuple[int, ...] = field(default_factory=tuple)
    worker_chunks: Tuple[int, ...] = field(default_factory=tuple)

    @staticmethod
    def _imbalance(loads: Tuple[float, ...]) -> float:
        if not loads:
            return 1.0
        total = float(sum(loads))
        if total <= 0.0:
            return 1.0
        return max(loads) * len(loads) / total

    @property
    def measured_imbalance(self) -> float:
        """Slowest worker's wall time over the mean (1.0 = perfect)."""
        return self._imbalance(self.worker_seconds)

    @property
    def element_imbalance(self) -> float:
        """Heaviest worker's element count over the mean (deterministic)."""
        return self._imbalance(tuple(float(c) for c in self.worker_elements))


_LAST_REPORT: Optional[ExecutionReport] = None


def last_parallel_report() -> Optional[ExecutionReport]:
    """The most recent parallel region's report (``None`` if none ran)."""
    return _LAST_REPORT


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------

_ACTIVE = threading.local()
_QUEUE: "SimpleQueue[Tuple[_Job, int]]" = SimpleQueue()
_HELPERS: List[threading.Thread] = []
_POOL_LOCK = threading.Lock()


def _in_parallel_region() -> bool:
    return bool(getattr(_ACTIVE, "flag", False))


def _helper_loop() -> None:
    while True:
        job, slot = _QUEUE.get()
        job.run_share(slot)


def _ensure_helpers(count: int) -> None:
    """Grow the persistent helper pool to at least ``count`` threads."""
    with _POOL_LOCK:
        while len(_HELPERS) < count:
            thread = threading.Thread(
                target=_helper_loop,
                name=f"repro-worker-{len(_HELPERS) + 1}",
                daemon=True,
            )
            thread.start()
            _HELPERS.append(thread)


def pool_size() -> int:
    """Number of persistent helper threads currently alive."""
    return len(_HELPERS)


class _Job:
    """One parallel region: tasks, scheduling state, per-worker stats."""

    __slots__ = (
        "plan",
        "task",
        "workers",
        "static",
        "element_counts",
        "worker_seconds",
        "worker_elements",
        "worker_chunks",
        "_next",
        "_lock",
        "_remaining",
        "_done",
        "errors",
    )

    def __init__(
        self,
        plan: ChunkPlan,
        task: Callable[[int, int, int, int, int], None],
        workers: int,
        static: bool,
    ) -> None:
        self.plan = plan
        self.task = task
        self.workers = workers
        self.static = static
        self.element_counts = plan.element_counts()
        self.worker_seconds = [0.0] * workers
        self.worker_elements = [0] * workers
        self.worker_chunks = [0] * workers
        self._next = 0
        self._lock = threading.Lock()
        self._remaining = workers
        self._done = threading.Event()
        self.errors: List[BaseException] = []

    def _run_task(self, index: int, slot: int) -> None:
        bounds = self.plan.unit_bounds
        offsets = self.plan.offsets
        self.task(
            index,
            int(bounds[index]),
            int(bounds[index + 1]),
            int(offsets[index]),
            int(offsets[index + 1]),
        )
        self.worker_elements[slot] += int(self.element_counts[index])
        self.worker_chunks[slot] += 1

    def run_share(self, slot: int) -> None:
        was_active = _in_parallel_region()
        _ACTIVE.flag = True
        start = perf_counter()
        try:
            if self.static:
                # OMP static: chunk i belongs to worker i (round-robin
                # when the partitioner emitted more chunks than workers).
                for index in range(slot, self.plan.num_chunks, self.workers):
                    self._run_task(index, slot)
            else:
                # OMP dynamic/guided: pull the next chunk when free.
                while True:
                    with self._lock:
                        index = self._next
                        self._next += 1
                    if index >= self.plan.num_chunks:
                        break
                    self._run_task(index, slot)
        except BaseException as exc:  # propagate to the caller
            with self._lock:
                self.errors.append(exc)
        finally:
            self.worker_seconds[slot] = perf_counter() - start
            _ACTIVE.flag = was_active
            with self._lock:
                self._remaining -= 1
                if self._remaining == 0:
                    self._done.set()


def run_chunks(
    plan: ChunkPlan,
    task: Callable[[int, int, int, int, int], None],
    *,
    kernel: str = "",
    grain: str = "",
    outputs: Tuple[Tuple[np.ndarray, Any], ...] = (),
) -> ExecutionReport:
    """Execute one chunked kernel region; returns its report.

    ``task(chunk, unit_lo, unit_hi, elem_lo, elem_hi)`` computes one
    chunk; it must write only output owned by units
    ``unit_lo:unit_hi``.  The caller participates as worker 0, helpers
    cover the remaining slots; with one worker (or inside an enclosing
    parallel region) everything runs inline on the calling thread.

    ``outputs`` declares the arrays the task writes and which rows each
    chunk owns (``(array, kind)`` with kind ``"element"``, ``"unit"``,
    or ``("rows", targets)`` — see :mod:`repro.analysis.sanitizer`).
    It is ignored in normal runs; under ``REPRO_SANITIZE=1`` the region
    executes in checked-serial mode, which verifies every chunk claims
    a disjoint region and writes only the rows it owns.  Checked-serial
    results stay bit-identical to both serial and parallel execution.
    """
    global _LAST_REPORT
    start = perf_counter()
    workers = max(1, min(plan.workers, plan.num_chunks))
    if sanitizer_enabled():
        # Checked serial: chunks run in plan order on this thread with
        # ownership claims and complement-snapshot write verification.
        job = _Job(plan, checked_task(task, outputs), 1, True)
        job.run_share(0)
    elif workers <= 1 or _in_parallel_region():
        job = _Job(plan, task, 1, True)
        job.run_share(0)
    else:
        job = _Job(plan, task, workers, plan.policy == POLICY_STATIC)
        _ensure_helpers(workers - 1)
        for slot in range(1, workers):
            _QUEUE.put((job, slot))
        job.run_share(0)
        job._done.wait()
    if job.errors:
        raise job.errors[0]
    report = ExecutionReport(
        kernel=kernel,
        grain=grain,
        policy=plan.policy,
        workers=job.workers,
        num_chunks=plan.num_chunks,
        total_elements=plan.total_elements,
        wall_seconds=perf_counter() - start,
        worker_seconds=tuple(job.worker_seconds),
        worker_elements=tuple(job.worker_elements),
        worker_chunks=tuple(job.worker_chunks),
    )
    _LAST_REPORT = report
    return report


# ----------------------------------------------------------------------
# Kernel-facing gate
# ----------------------------------------------------------------------


def want_parallel(total_elements: int) -> bool:
    """Whether the current config asks for a parallel execution at all.

    Kernels whose parallel path needs extra pre-processing (e.g. an
    uncached MTTKRP building a mode-sort plan) consult this before
    paying for it.
    """
    return (
        _NUM_THREADS > 1
        and total_elements >= max(1, _MIN_PARALLEL_NNZ)
        and max_parallel_workers(total_elements) > 1
        and not _in_parallel_region()
    )


def kernel_chunk_plan(
    tensor: Optional[Any],
    *,
    grain: str,
    key: Hashable = None,
    element_offsets: Optional[np.ndarray] = None,
    total_elements: Optional[int] = None,
) -> Optional[ChunkPlan]:
    """The chunk plan a kernel should execute, or ``None`` to run serial.

    Unit-structured grains (``segment``, ``fiber``, ``block``) pass
    ``element_offsets`` (length ``num_units + 1``) and get a plan
    memoized on ``tensor``; the elementwise ``nonzero`` grain passes
    ``total_elements`` and gets an unmemoized plan (chunking a flat
    range costs nothing to rebuild).
    """
    if element_offsets is not None:
        num_units = int(len(element_offsets)) - 1
        total = int(element_offsets[-1]) if num_units > 0 else 0
    else:
        if total_elements is None:
            raise ValueError("need element_offsets or total_elements")
        total = int(total_elements)
        num_units = total
    if num_units <= 1 or not want_parallel(total):
        return None
    workers = min(max_parallel_workers(total), num_units)
    if element_offsets is None:
        return build_element_chunk_plan(total, workers, _POLICY, _CHUNK_UNITS)
    return chunk_plan_for(
        tensor,
        grain=grain,
        key=key,
        element_offsets=element_offsets,
        workers=workers,
        policy=_POLICY,
        chunk_units=_CHUNK_UNITS,
    )
