"""Compiled C kernel backend (codegen + build cache + ctypes dispatch).

The TACO idea applied to this suite's numpy kernels: specialize each
(kernel × format × order × rank) into a fused C loop nest
(:mod:`~repro.perf.jit.codegen`), compile it once into a
content-addressed shared-object cache (:mod:`~repro.perf.jit.build`),
and call it through ctypes with the same plans, partitions, and
sanitizer ownership declarations as the interpreted path
(:mod:`~repro.perf.jit.kernels`).

Everything degrades gracefully: with no C compiler on PATH, with
``REPRO_JIT=0``, or for an unsupported specialization, every entry
point reports unavailable / returns ``None`` and callers keep the numpy
result.  The autotuner only enumerates ``*_jit`` variants when
:func:`jit_available` is true, and ``dispatch.run_config`` downgrades a
``*_jit`` config to its numpy twin when the compiled call declines —
so a tuning decision cached on a machine with gcc still runs correctly
on one without.
"""

from .build import (
    ENV_JIT,
    ENV_JIT_BUILD,
    ENV_JIT_CACHE,
    PROFILE_RELEASE,
    PROFILE_SANITIZE,
    PROFILE_TSAN,
    PROFILES,
    build_profile,
    cache_entries,
    clear_cache,
    compiler_path,
    entry_profile,
    jit_available,
    jit_enabled,
    object_cache_dir,
    profile_override,
    profile_supported,
    reset,
)
from .kernels import (
    mttkrp_coo,
    mttkrp_coo_mt,
    mttkrp_gram_coo,
    mttkrp_hicoo,
    mttkrp_hicoo_mt,
    tew_values,
    ttm_coo,
    ttm_coo_mt,
    ttv_coo,
    ttv_coo_mt,
)

__all__ = [
    "ENV_JIT",
    "ENV_JIT_BUILD",
    "ENV_JIT_CACHE",
    "PROFILE_RELEASE",
    "PROFILE_SANITIZE",
    "PROFILE_TSAN",
    "PROFILES",
    "build_profile",
    "cache_entries",
    "clear_cache",
    "compiler_path",
    "entry_profile",
    "jit_available",
    "jit_enabled",
    "object_cache_dir",
    "profile_override",
    "profile_supported",
    "reset",
    "mttkrp_coo",
    "mttkrp_coo_mt",
    "mttkrp_gram_coo",
    "mttkrp_hicoo",
    "mttkrp_hicoo_mt",
    "tew_values",
    "ttm_coo",
    "ttm_coo_mt",
    "ttv_coo",
    "ttv_coo_mt",
]
