"""Compile generated C into a content-addressed shared-object cache.

The pipeline is ``source -> sha256(source + machine signature + build
profile) -> ~/.cache/repro/jit/<hash>-<profile>.so -> ctypes.CDLL``.
Hashing the source text means two requests for the same specialization
share one object file, and any change to the generator invalidates old
entries automatically; mixing in
:func:`repro.perf.cachedir.machine_signature` keeps objects from
leaking across architectures or toolchains, and mixing in the build
profile keeps a sanitizer-instrumented build from ever serving (or
being served) a release object.

Build profiles (``REPRO_JIT_BUILD``):

``release``
    The default: ``-O3``, the flags benchmarks measure.
``sanitize``
    ``-O1 -g -fsanitize=address,undefined`` with recovery disabled —
    the conformance harness's ``jit_sanitize`` check runs kernels under
    this profile so an out-of-bounds store or undefined arithmetic in
    generated C aborts loudly instead of corrupting silently.  Loading
    an ASan runtime via ``dlopen`` from an uninstrumented host process
    requires ``verify_asan_link_order=0`` — and the runtime reads
    ``ASAN_OPTIONS`` from the *initial* process environment
    (``/proc/self/environ``), so setting it after interpreter start is
    too late.  Instead every instrumented TU gets a
    ``__asan_default_options`` callback compiled in (along with
    ``detect_leaks=0`` so the interpreter's own allocations do not trip
    the leak checker at exit); a user-set ``ASAN_OPTIONS`` still
    overrides individual keys.
``tsan``
    ``-O1 -g -fsanitize=thread`` where the toolchain supports loading
    it as a shared object; probed like ``sanitize``.

Failure handling is deliberately boring: every step that can fail —
no compiler on PATH, ``REPRO_JIT=0``, a missing sanitizer runtime,
read-only cache dir, a corrupt or truncated ``.so`` — resolves to
``None`` from :func:`load_function`, and the caller falls back to the
numpy kernel.  A corrupt cache entry is unlinked and recompiled once
before giving up.
"""

from __future__ import annotations

import contextlib
import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

from .. import cachedir
from ..cachedir import cache_subdir, machine_signature

#: Set to ``0``/``false``/``off``/``no`` to force the numpy path even
#: when a compiler is available.
ENV_JIT = "REPRO_JIT"

#: Override the object-cache directory (tests and benchmarks point this
#: at a tempdir so cold-compile timings are honest).
ENV_JIT_CACHE = "REPRO_JIT_CACHE"

#: Select the build profile (``release``, ``sanitize``, ``tsan``).
ENV_JIT_BUILD = "REPRO_JIT_BUILD"

PROFILE_RELEASE = "release"
PROFILE_SANITIZE = "sanitize"
PROFILE_TSAN = "tsan"
PROFILES = (PROFILE_RELEASE, PROFILE_SANITIZE, PROFILE_TSAN)

_FALSY = {"0", "false", "off", "no"}

_BASE_CFLAGS = ("-O3", "-shared", "-fPIC", "-fno-math-errno")

#: Per-profile compiler flags (before the OpenMP/pthread suffix).
#: ``-fno-sanitize-recover=all`` makes every sanitizer report fatal so
#: an instrumented conformance run fails loudly rather than printing
#: and continuing.
_PROFILE_CFLAGS: Dict[str, Tuple[str, ...]] = {
    PROFILE_RELEASE: _BASE_CFLAGS,
    PROFILE_SANITIZE: (
        "-O1",
        "-g",
        "-shared",
        "-fPIC",
        "-fno-math-errno",
        "-fno-omit-frame-pointer",
        "-fsanitize=address,undefined",
        "-fno-sanitize-recover=all",
    ),
    PROFILE_TSAN: (
        "-O1",
        "-g",
        "-shared",
        "-fPIC",
        "-fno-math-errno",
        "-fno-omit-frame-pointer",
        "-fsanitize=thread",
    ),
}

#: Options an ASan runtime needs when it enters the process through
#: ``dlopen`` rather than ``LD_PRELOAD``; existing user-set keys win.
#: The in-process mechanism is the compiled-in default-options callback
#: (:data:`_SANITIZER_DEFAULTS_SRC`) — the runtime reads these env vars
#: from the *initial* environment only — but merging them here means
#: any worker subprocess this process spawns starts with them set.
_SANITIZER_ENV = {
    "ASAN_OPTIONS": (("verify_asan_link_order", "0"), ("detect_leaks", "0")),
    "UBSAN_OPTIONS": (("print_stacktrace", "1"),),
}

#: Per-profile C prelude prepended to every instrumented TU.  The
#: sanitizer runtimes call these weak hooks during initialization, which
#: is the only reliable way to deliver options to a runtime that enters
#: the process through ``dlopen`` (it reads ``ASAN_OPTIONS`` et al. from
#: ``/proc/self/environ``, frozen at exec time).  Env-var keys the user
#: *did* set at process start still win over these defaults.
_SANITIZER_DEFAULTS_SRC = {
    PROFILE_SANITIZE: (
        "const char *__asan_default_options(void) "
        '{ return "verify_asan_link_order=0:detect_leaks=0"; }\n'
        "const char *__ubsan_default_options(void) "
        '{ return "print_stacktrace=1"; }\n'
    ),
    PROFILE_TSAN: (
        "const char *__tsan_default_options(void) "
        '{ return "halt_on_error=1"; }\n'
    ),
}


def build_profile() -> str:
    """The active build profile; unknown values degrade to release.

    Read dynamically (not cached at import) so tests and the
    conformance harness can switch profiles per run.
    """
    raw = os.environ.get(ENV_JIT_BUILD, PROFILE_RELEASE).strip().lower()
    return raw if raw in PROFILES else PROFILE_RELEASE


@contextlib.contextmanager
def profile_override(profile: str) -> Iterator[None]:
    """Temporarily select a build profile via the environment.

    Used by the ``jit_sanitize`` conformance check and corpus replay;
    restores the previous ``REPRO_JIT_BUILD`` value on exit.
    """
    previous = os.environ.get(ENV_JIT_BUILD)
    os.environ[ENV_JIT_BUILD] = profile
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_JIT_BUILD, None)
        else:
            os.environ[ENV_JIT_BUILD] = previous


def compile_flags(profile: Optional[str] = None) -> tuple:
    """Compiler flags for this host's toolchain and build profile.

    ``-fopenmp`` when the probe in :mod:`repro.perf.cachedir` links an
    OpenMP TU (the generated team runner then uses ``#pragma omp
    parallel``), otherwise ``-pthread`` for the hand-rolled pthreads
    team the same sources fall back to under ``#ifndef _OPENMP``.
    """
    base = _PROFILE_CFLAGS[profile or build_profile()]
    if cachedir.openmp_available():
        return base + ("-fopenmp",)
    return base + ("-pthread",)

# Process-local memo: (function name, profile) -> ctypes function (or
# None when a previous attempt failed).  Loaded libraries are pinned
# separately so their function pointers stay valid for the process
# lifetime.
_functions: Dict[Tuple[str, str], Optional[Callable]] = {}
_libraries: Dict[Tuple[str, str], ctypes.CDLL] = {}
_compiler_memo: Optional[tuple] = None
_fallback_dir: Optional[Path] = None
_profile_probe: Dict[str, bool] = {}


def jit_enabled() -> bool:
    """False when ``REPRO_JIT`` is set to a falsy value."""
    return os.environ.get(ENV_JIT, "1").strip().lower() not in _FALSY


def compiler_path() -> Optional[str]:
    """Path to a usable C compiler, memoized; ``None`` when absent."""
    global _compiler_memo
    if _compiler_memo is None:
        _compiler_memo = (shutil.which("gcc") or shutil.which("cc"),)
    return _compiler_memo[0]


def _ensure_sanitizer_env() -> None:
    """Merge the dlopen-friendly sanitizer options into the environment.

    This cannot configure the *current* process's runtime (it reads the
    initial environment only — the compiled-in default-options hooks do
    that job); it exists so worker subprocesses spawned after this point
    inherit the right options.  Keys the user already set are left
    alone.
    """
    for variable, required in _SANITIZER_ENV.items():
        existing = os.environ.get(variable, "")
        present = {
            entry.split("=", 1)[0]
            for entry in existing.replace(",", ":").split(":")
            if entry
        }
        additions = [
            f"{key}={value}" for key, value in required if key not in present
        ]
        if additions:
            merged = ":".join(additions + ([existing] if existing else []))
            os.environ[variable] = merged


def profile_supported(profile: Optional[str] = None) -> bool:
    """Whether objects built under ``profile`` can load on this host.

    Release needs only a compiler.  Sanitizer profiles additionally
    need their runtime library to be present *and* loadable through
    ``dlopen`` from an uninstrumented process, so the probe compiles a
    trivial instrumented TU and actually loads it — memoized per
    process (cleared by :func:`reset`).
    """
    profile = profile or build_profile()
    if compiler_path() is None:
        return False
    if profile == PROFILE_RELEASE:
        return True
    if profile not in _profile_probe:
        _profile_probe[profile] = _probe_profile(profile)
    return _profile_probe[profile]


def _probe_profile(profile: str) -> bool:
    """Compile a one-function TU under ``profile`` and load-test it.

    The ``dlopen`` happens in a child interpreter: a sanitizer runtime
    that cannot initialize through ``dlopen`` (TSan on most glibc
    setups, ASan under a hostile ``ASAN_OPTIONS``) may abort the whole
    process rather than fail the load, and that must take down the
    probe child, not the host.
    """
    cc = compiler_path()
    if cc is None:
        return False
    source = "int repro_profile_probe(int x) { return x + 1; }\n"
    try:
        with tempfile.TemporaryDirectory(prefix="repro-jit-probe-") as tmp:
            c_path = os.path.join(tmp, "probe.c")
            so_path = os.path.join(tmp, "probe.so")
            with open(c_path, "w") as handle:
                handle.write(_SANITIZER_DEFAULTS_SRC.get(profile, "") + source)
            proc = subprocess.run(
                [cc, *compile_flags(profile), "-o", so_path, c_path],
                capture_output=True,
                timeout=60,
            )
            if proc.returncode != 0:
                return False
            _ensure_sanitizer_env()
            loader = (
                "import ctypes, sys\n"
                f"lib = ctypes.CDLL({so_path!r})\n"
                "sys.exit(0 if lib.repro_profile_probe(41) == 42 else 1)\n"
            )
            check = subprocess.run(
                [sys.executable, "-c", loader],
                capture_output=True,
                timeout=60,
            )
            return check.returncode == 0
    except (OSError, subprocess.SubprocessError):
        return False


def jit_available() -> bool:
    """True when compiled kernels can actually be produced right now.

    Under a sanitizer profile this includes the runtime-library probe,
    so a host without libasan degrades to the numpy path instead of
    failing every load.
    """
    return (
        jit_enabled()
        and compiler_path() is not None
        and profile_supported(build_profile())
    )


def reset() -> None:
    """Drop all process-local memos (compiler probe, loaded functions).

    Tests use this after monkeypatching ``shutil.which`` or the cache
    env vars; already-loaded ``CDLL`` handles are released to the GC but
    any outstanding function pointers remain valid until then.
    """
    global _compiler_memo, _fallback_dir
    _compiler_memo = None
    _fallback_dir = None
    _functions.clear()
    _libraries.clear()
    _profile_probe.clear()
    cachedir.reset_toolchain()


def object_cache_dir() -> Path:
    """Directory holding compiled ``.so`` files (created best-effort)."""
    override = os.environ.get(ENV_JIT_CACHE)
    if override:
        path = Path(override)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass
        return path
    return cache_subdir("jit")


def _writable_cache_dir() -> Path:
    """The object cache dir, or a process tempdir when it is read-only."""
    global _fallback_dir
    primary = object_cache_dir()
    if os.access(primary, os.W_OK):
        return primary
    if _fallback_dir is None:
        _fallback_dir = Path(tempfile.mkdtemp(prefix="repro-jit-"))
    return _fallback_dir


def source_key(source: str, profile: Optional[str] = None) -> str:
    """Content address for one translation unit on this machine.

    The active build profile is both hashed in and appended as a
    human-readable suffix, so ``repro jit-cache`` can attribute entries
    to a profile and a sanitize build can never collide with (or serve)
    a release object for the same source.
    """
    profile = profile or build_profile()
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\0")
    digest.update(machine_signature().encode("utf-8"))
    digest.update(b"\0")
    digest.update(profile.encode("utf-8"))
    return f"{digest.hexdigest()[:24]}-{profile}"


def entry_profile(path: Path) -> str:
    """Build profile a cache entry was compiled under, from its name.

    Entries written before profiles existed have a bare-hash stem and
    report ``release`` (the only profile that ever produced them).
    """
    stem = path.stem
    for profile in PROFILES:
        if stem.endswith(f"-{profile}"):
            return profile
    return PROFILE_RELEASE


def _compile(source: str, out_path: Path, profile: Optional[str] = None) -> bool:
    """Compile ``source`` to ``out_path``; False on any failure.

    Under a sanitizer profile the TU is prefixed with the runtime's
    default-options hooks (see :data:`_SANITIZER_DEFAULTS_SRC`) so the
    resulting object is loadable via ``dlopen`` regardless of the host
    process's initial environment.
    """
    cc = compiler_path()
    if cc is None:
        return False
    profile = profile or build_profile()
    workdir = out_path.parent
    try:
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=workdir)
    except OSError:
        return False
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(_SANITIZER_DEFAULTS_SRC.get(profile, "") + source)
        tmp_so = Path(c_path).with_suffix(".so.tmp")
        proc = subprocess.run(
            [cc, *compile_flags(profile), "-o", str(tmp_so), c_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        # Atomic publish so a concurrent process never loads a half-
        # written object.
        os.replace(tmp_so, out_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (Path(c_path), Path(c_path).with_suffix(".so.tmp")):
            try:
                leftover.unlink(missing_ok=True)
            except OSError:
                pass


def _try_load(so_path: Path, name: str, profile: Optional[str] = None) -> Optional[Callable]:
    """Load ``name`` from ``so_path``; None when the entry is unusable."""
    profile = profile or build_profile()
    if profile != PROFILE_RELEASE:
        _ensure_sanitizer_env()
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = getattr(lib, name)
    except (OSError, AttributeError):
        return None
    # Pin the owning library for the process lifetime so the function
    # pointer stays valid even if the memo is cleared mid-call.
    _libraries[(name, profile)] = lib
    return fn


def _load_via_unique_copy(so_path: Path, name: str) -> Optional[Callable]:
    """Load through a uniquely-named copy of ``so_path``.

    ``dlopen`` dedupes by pathname, so once a stale object has been
    mapped from the canonical path, reloading a recompiled replacement
    from that same path silently returns the old mapping.  A one-off
    copy gets a fresh pathname; unlinking it immediately is safe because
    the mapping outlives the directory entry.
    """
    try:
        fd, copy_path = tempfile.mkstemp(suffix=".so", dir=so_path.parent)
        os.close(fd)
        shutil.copyfile(so_path, copy_path)
    except OSError:
        return None
    try:
        return _try_load(Path(copy_path), name)
    finally:
        try:
            os.unlink(copy_path)
        except OSError:
            pass


def load_function(
    name: str,
    source: str,
    argtypes: Sequence,
    restype=None,
) -> Optional[Callable]:
    """Return the compiled function for ``source``, or None.

    Compilation results — including failures — are memoized per process
    and per build profile, so a missing compiler costs one ``which``
    probe, not one subprocess per kernel call, and switching
    ``REPRO_JIT_BUILD`` mid-process never serves an object built under
    the other profile.  ctypes foreign calls release the GIL, which is
    what lets the worker pool drive these concurrently.
    """
    memo_key = (name, build_profile())
    if memo_key in _functions:
        return _functions[memo_key]
    fn = _load_uncached(name, source, argtypes, restype)
    _functions[memo_key] = fn
    return fn


def _load_uncached(name, source, argtypes, restype) -> Optional[Callable]:
    if not jit_available():
        return None
    so_path = _writable_cache_dir() / f"{source_key(source)}.so"
    fn = None
    stale_mapped = False
    if so_path.exists():
        fn = _try_load(so_path, name)
        if fn is None:
            # Corrupt or stale entry (truncated write, wrong symbol from
            # a hash collision with an older generator): recompile once.
            # If the bad object was a valid library that merely lacked
            # the symbol, dlopen has already mapped the canonical path
            # and will keep returning that stale mapping.
            stale_mapped = True
            try:
                so_path.unlink(missing_ok=True)
            except OSError:
                return None
    if fn is None:
        if not _compile(source, so_path):
            return None
        loader = _load_via_unique_copy if stale_mapped else _try_load
        fn = loader(so_path, name)
        if fn is None:
            return None
    fn.argtypes = list(argtypes)
    fn.restype = restype
    return fn


def cache_entries() -> list:
    """(path, size_bytes, mtime) for each cached object, sorted by name."""
    entries = []
    root = object_cache_dir()
    try:
        paths = sorted(root.glob("*.so"))
    except OSError:
        return entries
    for path in paths:
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((path, stat.st_size, stat.st_mtime))
    return entries


def clear_cache() -> int:
    """Delete every cached object; returns the number removed."""
    removed = 0
    for path, _, _ in cache_entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    _functions.clear()
    _libraries.clear()
    return removed
