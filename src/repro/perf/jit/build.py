"""Compile generated C into a content-addressed shared-object cache.

The pipeline is ``source -> sha256(source + machine signature) ->
~/.cache/repro/jit/<hash>.so -> ctypes.CDLL``.  Hashing the source text
means two requests for the same specialization share one object file,
and any change to the generator invalidates old entries automatically;
mixing in :func:`repro.perf.cachedir.machine_signature` keeps objects
from leaking across architectures or toolchains.

Failure handling is deliberately boring: every step that can fail —
no compiler on PATH, ``REPRO_JIT=0``, read-only cache dir, a corrupt or
truncated ``.so`` — resolves to ``None`` from :func:`load_function`, and
the caller falls back to the numpy kernel.  A corrupt cache entry is
unlinked and recompiled once before giving up.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from .. import cachedir
from ..cachedir import cache_subdir, machine_signature

#: Set to ``0``/``false``/``off``/``no`` to force the numpy path even
#: when a compiler is available.
ENV_JIT = "REPRO_JIT"

#: Override the object-cache directory (tests and benchmarks point this
#: at a tempdir so cold-compile timings are honest).
ENV_JIT_CACHE = "REPRO_JIT_CACHE"

_FALSY = {"0", "false", "off", "no"}

_BASE_CFLAGS = ("-O3", "-shared", "-fPIC", "-fno-math-errno")


def compile_flags() -> tuple:
    """Compiler flags for this host's toolchain.

    ``-fopenmp`` when the probe in :mod:`repro.perf.cachedir` links an
    OpenMP TU (the generated team runner then uses ``#pragma omp
    parallel``), otherwise ``-pthread`` for the hand-rolled pthreads
    team the same sources fall back to under ``#ifndef _OPENMP``.
    """
    if cachedir.openmp_available():
        return _BASE_CFLAGS + ("-fopenmp",)
    return _BASE_CFLAGS + ("-pthread",)

# Process-local memo: function name -> ctypes function (or None when a
# previous attempt failed).  Loaded libraries are pinned separately so
# their function pointers stay valid for the process lifetime.
_functions: Dict[str, Optional[Callable]] = {}
_libraries: Dict[str, ctypes.CDLL] = {}
_compiler_memo: Optional[tuple] = None
_fallback_dir: Optional[Path] = None


def jit_enabled() -> bool:
    """False when ``REPRO_JIT`` is set to a falsy value."""
    return os.environ.get(ENV_JIT, "1").strip().lower() not in _FALSY


def compiler_path() -> Optional[str]:
    """Path to a usable C compiler, memoized; ``None`` when absent."""
    global _compiler_memo
    if _compiler_memo is None:
        _compiler_memo = (shutil.which("gcc") or shutil.which("cc"),)
    return _compiler_memo[0]


def jit_available() -> bool:
    """True when compiled kernels can actually be produced right now."""
    return jit_enabled() and compiler_path() is not None


def reset() -> None:
    """Drop all process-local memos (compiler probe, loaded functions).

    Tests use this after monkeypatching ``shutil.which`` or the cache
    env vars; already-loaded ``CDLL`` handles are released to the GC but
    any outstanding function pointers remain valid until then.
    """
    global _compiler_memo, _fallback_dir
    _compiler_memo = None
    _fallback_dir = None
    _functions.clear()
    _libraries.clear()
    cachedir.reset_toolchain()


def object_cache_dir() -> Path:
    """Directory holding compiled ``.so`` files (created best-effort)."""
    override = os.environ.get(ENV_JIT_CACHE)
    if override:
        path = Path(override)
        try:
            path.mkdir(parents=True, exist_ok=True)
        except OSError:
            pass
        return path
    return cache_subdir("jit")


def _writable_cache_dir() -> Path:
    """The object cache dir, or a process tempdir when it is read-only."""
    global _fallback_dir
    primary = object_cache_dir()
    if os.access(primary, os.W_OK):
        return primary
    if _fallback_dir is None:
        _fallback_dir = Path(tempfile.mkdtemp(prefix="repro-jit-"))
    return _fallback_dir


def source_key(source: str) -> str:
    """Content address for one translation unit on this machine."""
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\0")
    digest.update(machine_signature().encode("utf-8"))
    return digest.hexdigest()[:24]


def _compile(source: str, out_path: Path) -> bool:
    """Compile ``source`` to ``out_path``; False on any failure."""
    cc = compiler_path()
    if cc is None:
        return False
    workdir = out_path.parent
    try:
        fd, c_path = tempfile.mkstemp(suffix=".c", dir=workdir)
    except OSError:
        return False
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(source)
        tmp_so = Path(c_path).with_suffix(".so.tmp")
        proc = subprocess.run(
            [cc, *compile_flags(), "-o", str(tmp_so), c_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        # Atomic publish so a concurrent process never loads a half-
        # written object.
        os.replace(tmp_so, out_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        for leftover in (Path(c_path), Path(c_path).with_suffix(".so.tmp")):
            try:
                leftover.unlink(missing_ok=True)
            except OSError:
                pass


def _try_load(so_path: Path, name: str) -> Optional[Callable]:
    """Load ``name`` from ``so_path``; None when the entry is unusable."""
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = getattr(lib, name)
    except (OSError, AttributeError):
        return None
    # Pin the owning library for the process lifetime so the function
    # pointer stays valid even if the memo is cleared mid-call.
    _libraries[name] = lib
    return fn


def _load_via_unique_copy(so_path: Path, name: str) -> Optional[Callable]:
    """Load through a uniquely-named copy of ``so_path``.

    ``dlopen`` dedupes by pathname, so once a stale object has been
    mapped from the canonical path, reloading a recompiled replacement
    from that same path silently returns the old mapping.  A one-off
    copy gets a fresh pathname; unlinking it immediately is safe because
    the mapping outlives the directory entry.
    """
    try:
        fd, copy_path = tempfile.mkstemp(suffix=".so", dir=so_path.parent)
        os.close(fd)
        shutil.copyfile(so_path, copy_path)
    except OSError:
        return None
    try:
        return _try_load(Path(copy_path), name)
    finally:
        try:
            os.unlink(copy_path)
        except OSError:
            pass


def load_function(
    name: str,
    source: str,
    argtypes: Sequence,
    restype=None,
) -> Optional[Callable]:
    """Return the compiled function for ``source``, or None.

    Compilation results — including failures — are memoized per process
    so a missing compiler costs one ``which`` probe, not one subprocess
    per kernel call.  ctypes foreign calls release the GIL, which is
    what lets the worker pool drive these concurrently.
    """
    if name in _functions:
        return _functions[name]
    fn = _load_uncached(name, source, argtypes, restype)
    _functions[name] = fn
    return fn


def _load_uncached(name, source, argtypes, restype) -> Optional[Callable]:
    if not jit_available():
        return None
    so_path = _writable_cache_dir() / f"{source_key(source)}.so"
    fn = None
    stale_mapped = False
    if so_path.exists():
        fn = _try_load(so_path, name)
        if fn is None:
            # Corrupt or stale entry (truncated write, wrong symbol from
            # a hash collision with an older generator): recompile once.
            # If the bad object was a valid library that merely lacked
            # the symbol, dlopen has already mapped the canonical path
            # and will keep returning that stale mapping.
            stale_mapped = True
            try:
                so_path.unlink(missing_ok=True)
            except OSError:
                return None
    if fn is None:
        if not _compile(source, so_path):
            return None
        loader = _load_via_unique_copy if stale_mapped else _try_load
        fn = loader(so_path, name)
        if fn is None:
            return None
    fn.argtypes = list(argtypes)
    fn.restype = restype
    return fn


def cache_entries() -> list:
    """(path, size_bytes, mtime) for each cached object, sorted by name."""
    entries = []
    root = object_cache_dir()
    try:
        paths = sorted(root.glob("*.so"))
    except OSError:
        return entries
    for path in paths:
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((path, stat.st_size, stat.st_mtime))
    return entries


def clear_cache() -> int:
    """Delete every cached object; returns the number removed."""
    removed = 0
    for path, _, _ in cache_entries():
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    _functions.clear()
    _libraries.clear()
    return removed
