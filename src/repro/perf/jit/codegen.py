"""C code generation: fused loop nests specialized per kernel instance.

Each generator emits one self-contained translation unit holding one
``void`` function.  The loop nests mirror the numpy kernels' iteration
grain exactly — MTTKRP walks the mode-sort plan's output segments,
TTV/TTM walk fiber runs, TEW walks a nonzero range, and the blocked
HiCOO MTTKRP replays Algorithm 3's per-block windows — so a compiled
chunk and a numpy chunk reduce the same elements in the same order.
Accumulation is ``double`` wherever the numpy path accumulates in
float64, and outputs are stored once per owned unit, which is what lets
the parallel executor drive compiled chunks with the same disjoint
ownership declarations as the interpreted kernels.

Specialization axes follow the TACO thesis scaled to this suite's needs:
tensor ``order`` and factor ``rank`` are baked into the source (the
compiler fully unrolls the rank loop), while array extents stay runtime
arguments.  Dtypes are fixed by the formats layer — float32 values,
int32 coordinates, int64 offsets, uint8 element indices — and appear
literally in the signatures.

Every generator returns ``(function_name, c_source)``; the build layer
hashes the source, so two calls asking for the same specialization reuse
one shared object.
"""

from __future__ import annotations

from typing import Tuple

_PRELUDE = """\
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef uint8_t u8;
"""


def _check_order(order: int, minimum: int = 1) -> int:
    order = int(order)
    if order < minimum:
        raise ValueError(f"order must be >= {minimum}, got {order}")
    if order > 16:
        raise ValueError(f"order {order} is beyond any supported tensor")
    return order


def _check_rank(rank: int) -> int:
    rank = int(rank)
    if not 1 <= rank <= 4096:
        raise ValueError(f"rank must be in [1, 4096], got {rank}")
    return rank


def mttkrp_coo_source(order: int, rank: int) -> Tuple[str, str]:
    """Segmented COO MTTKRP over a mode-sort plan, one call per chunk.

    The caller passes the ``order - 1`` non-target index rows and factor
    matrices (ascending mode order; the elementwise product commutes) and
    absolute segment offsets, so parallel chunks invoke the same function
    on their own ``[u0, u1)`` segment range.  Each segment accumulates in
    ``double`` and stores its float32 output row exactly once.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_coo_o{order}_r{rank}"
    idx_args = ", ".join(f"const i32 *restrict idx{m}" for m in range(k))
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    gather = "\n".join(
        f"            const f32 *restrict row{m} = "
        f"fac{m} + (i64)idx{m}[e] * {rank};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict seg_offsets,
            const i32 *restrict targets,
            const f32 *restrict vals,
            {idx_args},
            {fac_args},
            f32 *restrict out)
{{
    for (i64 s = u0; s < u1; ++s) {{
        f64 acc[{rank}] = {{0.0}};
        const i64 lo = seg_offsets[s];
        const i64 hi = seg_offsets[s + 1];
        for (i64 e = lo; e < hi; ++e) {{
{gather}
            const f64 v = (f64)vals[e];
            for (int r = 0; r < {rank}; ++r)
                acc[r] += v * {product};
        }}
        f32 *restrict orow = out + (i64)targets[s] * {rank};
        for (int r = 0; r < {rank}; ++r)
            orow[r] = (f32)acc[r];
    }}
}}
"""
    return name, source


def mttkrp_hicoo_source(order: int, rank: int) -> Tuple[str, str]:
    """Blocked HiCOO MTTKRP (Algorithm 3 shape), serial over blocks.

    Argument convention: ``order`` (binds, einds) pairs with the *output
    mode last*, and ``order - 1`` factors for the non-output modes in the
    same ascending order as the index pairs.  The output array is
    ``double`` — blocks sharing an output window accumulate into it
    directly, which is also why this variant stays serial.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_hicoo_o{order}_r{rank}"
    bind_args = ", ".join(
        f"const i32 *restrict binds{m}, const u8 *restrict einds{m}"
        for m in range(order)
    )
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    bases = "\n".join(
        f"        const i64 base{m} = (i64)binds{m}[b] * block_size;"
        for m in range(order)
    )
    gather = "\n".join(
        f"            const f32 *restrict row{m} = "
        f"fac{m} + (base{m} + (i64)einds{m}[e]) * {rank};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    source = f"""{_PRELUDE}
void {name}(i64 b0, i64 b1,
            const i64 *restrict bptr,
            i64 block_size,
            const f32 *restrict vals,
            {bind_args},
            {fac_args},
            f64 *restrict out)
{{
    for (i64 b = b0; b < b1; ++b) {{
        const i64 lo = bptr[b];
        const i64 hi = bptr[b + 1];
{bases}
        for (i64 e = lo; e < hi; ++e) {{
{gather}
            const f64 v = (f64)vals[e];
            f64 *restrict orow = out + (base{k} + (i64)einds{k}[e]) * {rank};
            for (int r = 0; r < {rank}; ++r)
                orow[r] += v * {product};
        }}
    }}
}}
"""
    return name, source


def ttv_source() -> Tuple[str, str]:
    """Fiber-grain TTV: one double reduction per fiber, any order.

    Order never appears — the fiber plan already isolated the product
    mode's indices — so a single specialization serves every tensor.
    """
    name = "repro_ttv_fiber"
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict fptr,
            const f32 *restrict vals,
            const i32 *restrict prod_idx,
            const f32 *restrict vec,
            f64 *restrict sums)
{{
    for (i64 f = u0; f < u1; ++f) {{
        f64 acc = 0.0;
        const i64 lo = fptr[f];
        const i64 hi = fptr[f + 1];
        for (i64 e = lo; e < hi; ++e)
            acc += (f64)vals[e] * (f64)vec[prod_idx[e]];
        sums[f] = acc;
    }}
}}
"""
    return name, source


def ttm_source(rank: int) -> Tuple[str, str]:
    """Fiber-grain TTM: accumulate ``value * U[i_n, :]`` rows per fiber."""
    rank = _check_rank(rank)
    name = f"repro_ttm_fiber_r{rank}"
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict fptr,
            const f32 *restrict vals,
            const i32 *restrict prod_idx,
            const f32 *restrict mat,
            f64 *restrict rows)
{{
    for (i64 f = u0; f < u1; ++f) {{
        f64 *restrict orow = rows + f * {rank};
        for (int r = 0; r < {rank}; ++r)
            orow[r] = 0.0;
        const i64 lo = fptr[f];
        const i64 hi = fptr[f + 1];
        for (i64 e = lo; e < hi; ++e) {{
            const f64 v = (f64)vals[e];
            const f32 *restrict mrow = mat + (i64)prod_idx[e] * {rank};
            for (int r = 0; r < {rank}; ++r)
                orow[r] += v * (f64)mrow[r];
        }}
    }}
}}
"""
    return name, source


#: TEW operation name -> C infix operator.
TEW_OPS = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


def tew_source(op: str) -> Tuple[str, str]:
    """Elementwise float32 op over a nonzero range, specialized per op.

    Single-precision IEEE ``+ - * /`` are exactly defined, so the
    compiled result is bit-identical to the numpy ufunc — including
    inf/nan from division by zero.
    """
    if op not in TEW_OPS:
        raise ValueError(f"unknown TEW op {op!r}; use one of {sorted(TEW_OPS)}")
    name = f"repro_tew_{op}"
    source = f"""{_PRELUDE}
void {name}(i64 e0, i64 e1,
            const f32 *restrict x,
            const f32 *restrict y,
            f32 *restrict out)
{{
    for (i64 e = e0; e < e1; ++e)
        out[e] = x[e] {TEW_OPS[op]} y[e];
}}
"""
    return name, source
