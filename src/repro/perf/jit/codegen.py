"""C code generation: fused loop nests specialized per kernel instance.

Each generator emits one self-contained translation unit holding one
``void`` function.  The loop nests mirror the numpy kernels' iteration
grain exactly — MTTKRP walks the mode-sort plan's output segments,
TTV/TTM walk fiber runs, TEW walks a nonzero range, and the blocked
HiCOO MTTKRP replays Algorithm 3's per-block windows — so a compiled
chunk and a numpy chunk reduce the same elements in the same order.
Accumulation is ``double`` wherever the numpy path accumulates in
float64, and outputs are stored once per owned unit, which is what lets
the parallel executor drive compiled chunks with the same disjoint
ownership declarations as the interpreted kernels.

Specialization axes follow the TACO thesis scaled to this suite's needs:
tensor ``order`` and factor ``rank`` are baked into the source (the
compiler fully unrolls the rank loop), while array extents stay runtime
arguments.  Dtypes are fixed by the formats layer — float32 values,
int32 coordinates, int64 offsets, uint8 element indices — and appear
literally in the signatures.

Every generator returns ``(function_name, c_source)``; the build layer
hashes the source, so two calls asking for the same specialization reuse
one shared object.  The ``*_artifact`` variants additionally return a
:class:`repro.perf.jit.effects.EffectSummary` describing every loop,
local index definition, and load/store the kernel performs.  Summary
and source are built from the *same* snippet helpers (:func:`_loop`,
:func:`_gather_offset`, :func:`_store_offset`, :func:`_blocked_offset`),
so they cannot drift independently — a mutation to a helper changes both
the emitted C and the claims :mod:`repro.analysis.kernelcheck` must
verify, which is exactly how the planted-bug drills work.

In-kernel parallelism: every translation unit also exports a
``<name>_par`` entry that takes the *entire* chunk table from
:mod:`repro.perf.partition` (``num_chunks + 1`` absolute unit bounds),
the thread count, and the schedule kind, and runs the serial loop nest
over those chunks on an in-process thread team — ``#pragma omp
parallel`` when the toolchain probe found OpenMP, a hand-rolled
pthreads team otherwise.  Chunks own disjoint output units (the same
ownership declarations the write sanitizer checks), so the team needs
no atomics and every thread interleaving produces bit-identical output.
One ctypes call per kernel invocation replaces one call per chunk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .effects import (
    CAP_BLOCK,
    CAP_COUNT,
    CAP_I32,
    Access,
    Def,
    EffectSummary,
    KernelArtifact,
    Loop,
    Param,
)

_PRELUDE = """\
#include <stdint.h>

typedef float f32;
typedef double f64;
typedef int32_t i32;
typedef int64_t i64;
typedef uint8_t u8;
"""


def _loop(width: str, var: str, lo, hi) -> str:
    """The canonical loop header every generated nest uses.

    Shared between the C source and nothing else (the effect summary
    records ``lo``/``hi`` separately), so a mutated comparator here is
    source-only drift that kernelcheck must detect by re-parsing the C.
    """
    return f"for ({width} {var} = {lo}; {var} < {hi}; ++{var})"


def _gather_offset(index: str, scale) -> str:
    """Offset of a gathered row: ``(i64)index * scale`` (load side)."""
    return f"(i64){index} * {scale}"


def _store_offset(index: str, scale) -> str:
    """Offset of an owned output row: ``(i64)index * scale`` (store side).

    Used for both the C source and the summary's store access, so a
    mutation here (dropping the cast, adding a stray term) lands in the
    compiled kernel *and* in the claim kernelcheck verifies.
    """
    return f"(i64){index} * {scale}"


def _blocked_offset(base: str, eind: str, scale) -> str:
    """HiCOO row offset: ``(base + (i64)eind) * scale``."""
    return f"({base} + (i64){eind}) * {scale}"


# The thread team shared by every ``_par`` entry point.  Schedule kind
# 0 is the executor's static policy (chunk c runs on thread c mod T, so
# work shares are a pure function of the chunk table and thread count);
# any other kind is a pull queue (dynamic and guided — the decreasing
# chunk sizes of guided are already baked into the bounds).  Chunks own
# disjoint output units, so scheduling only changes timing, never
# results.
_TEAM_RUNNER = """\

typedef void (*repro_chunk_fn)(void *ctx, i64 chunk);

typedef struct {
    repro_chunk_fn run;
    void *ctx;
    i64 num_chunks;
    i64 num_threads;
    i32 sched; /* 0 = static round-robin, otherwise pull queue */
    i64 next;
} repro_team;

static void repro_team_member(repro_team *team, i64 tid)
{
    if (team->sched == 0) {
        for (i64 c = tid; c < team->num_chunks; c += team->num_threads)
            team->run(team->ctx, c);
    } else {
        for (;;) {
            i64 c = __atomic_fetch_add(&team->next, 1, __ATOMIC_RELAXED);
            if (c >= team->num_chunks)
                break;
            team->run(team->ctx, c);
        }
    }
}

#if defined(_OPENMP)
#include <omp.h>

static void repro_team_run(repro_team *team)
{
    #pragma omp parallel num_threads((int)team->num_threads)
    {
        /* The runtime may grant fewer threads than requested; stride
           over the logical tids so every static share still runs. */
        i64 granted = (i64)omp_get_num_threads();
        for (i64 tid = (i64)omp_get_thread_num();
             tid < team->num_threads; tid += granted)
            repro_team_member(team, tid);
    }
}

#else
#include <pthread.h>

typedef struct {
    repro_team *team;
    i64 tid;
} repro_team_slot;

static void *repro_team_thread(void *arg)
{
    repro_team_slot *slot = (repro_team_slot *)arg;
    repro_team_member(slot->team, slot->tid);
    return 0;
}

#define REPRO_MAX_HELPERS 255

static void repro_team_run(repro_team *team)
{
    pthread_t threads[REPRO_MAX_HELPERS];
    repro_team_slot slots[REPRO_MAX_HELPERS];
    i64 helpers = 0;
    if (team->num_threads > REPRO_MAX_HELPERS + 1)
        team->num_threads = REPRO_MAX_HELPERS + 1;
    for (i64 tid = 1; tid < team->num_threads; ++tid) {
        slots[helpers].team = team;
        slots[helpers].tid = tid;
        if (pthread_create(&threads[helpers], 0, repro_team_thread,
                           &slots[helpers]) != 0)
            break;
        ++helpers;
    }
    repro_team_member(team, 0);
    /* Cover the shares of helpers that failed to spawn: static shares
       depend only on the logical tid, and the pull queue just drains. */
    for (i64 tid = helpers + 1; tid < team->num_threads; ++tid)
        repro_team_member(team, tid);
    for (i64 h = 0; h < helpers; ++h)
        pthread_join(threads[h], 0);
}
#endif
"""


def _parallel_entry(
    name: str,
    params: List[Tuple[str, str]],
    overrides: Optional[Dict[str, str]] = None,
) -> str:
    """Emit the ctx struct, chunk trampoline, and ``<name>_par`` entry.

    ``params`` lists the serial function's tail parameters (everything
    after the ``(u0, u1)`` unit range) as ``(c_type, name)`` pairs.
    ``overrides`` maps a parameter name to the expression the trampoline
    should pass instead of the stored field — used by the fused Gram
    kernel to hand each chunk its own partial-result slab (``a`` is the
    ctx pointer and ``c`` the chunk index in that expression).
    """
    overrides = dict(overrides or {})
    fields = "\n".join(
        f"    {ctype.replace('restrict ', '')}{pname};"
        for ctype, pname in params
    )
    call_args = ", ".join(
        overrides.get(pname, f"a->{pname}") for _, pname in params
    )
    sig_params = ",\n".join(
        f"                 {ctype}{pname}" for ctype, pname in params
    )
    ctx_init = "\n".join(
        f"    ctx.{pname} = {pname};" for _, pname in params
    )
    return f"""
typedef struct {{
    const i64 *chunk_bounds;
{fields}
}} {name}_ctx;

static void {name}_chunk(void *p, i64 c)
{{
    {name}_ctx *a = ({name}_ctx *)p;
    {name}(a->chunk_bounds[c], a->chunk_bounds[c + 1],
           {call_args});
}}

void {name}_par(i64 num_chunks, const i64 *restrict chunk_bounds,
                 i64 num_threads, i32 sched,
{sig_params})
{{
    {name}_ctx ctx;
    ctx.chunk_bounds = chunk_bounds;
{ctx_init}
    repro_team team;
    team.run = {name}_chunk;
    team.ctx = &ctx;
    team.num_chunks = num_chunks;
    team.num_threads = num_threads < 1 ? 1 : num_threads;
    team.sched = sched;
    team.next = 0;
    repro_team_run(&team);
}}
"""


def _check_order(order: int, minimum: int = 1) -> int:
    order = int(order)
    if order < minimum:
        raise ValueError(f"order must be >= {minimum}, got {order}")
    if order > 16:
        raise ValueError(f"order {order} is beyond any supported tensor")
    return order


def _check_rank(rank: int) -> int:
    rank = int(rank)
    if not 1 <= rank <= 4096:
        raise ValueError(f"rank must be in [1, 4096], got {rank}")
    return rank


def _unit_params(lo: str, hi: str, count: str) -> Tuple[Param, Param]:
    """The ``(u0, u1)`` unit-range scalars bounded by the unit count."""
    return (
        Param(lo, "i64", value_min="0", value_max=count),
        Param(hi, "i64", value_min="0", value_max=count),
    )


def mttkrp_coo_artifact(order: int, rank: int) -> KernelArtifact:
    """Segmented COO MTTKRP over a mode-sort plan, one call per chunk.

    The caller passes the ``order - 1`` non-target index rows and factor
    matrices (ascending mode order; the elementwise product commutes) and
    absolute segment offsets, so parallel chunks invoke the same function
    on their own ``[u0, u1)`` segment range.  Each segment accumulates in
    ``double`` and stores its float32 output row exactly once.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_coo_o{order}_r{rank}"
    idx_args = ", ".join(f"const i32 *restrict idx{m}" for m in range(k))
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    gather = "\n".join(
        f"            const f32 *restrict row{m} = "
        f"fac{m} + {_gather_offset(f'idx{m}[e]', rank)};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict seg_offsets,
            const i32 *restrict targets,
            const f32 *restrict vals,
            {idx_args},
            {fac_args},
            f32 *restrict out)
{{
    {_loop("i64", "s", "u0", "u1")} {{
        f64 acc[{rank}] = {{0.0}};
        const i64 lo = seg_offsets[s];
        const i64 hi = seg_offsets[s + 1];
        {_loop("i64", "e", "lo", "hi")} {{
{gather}
            const f64 v = (f64)vals[e];
            {_loop("int", "r", "0", rank)}
                acc[r] += v * {product};
        }}
        f32 *restrict orow = out + {_store_offset("targets[s]", rank)};
        {_loop("int", "r", "0", rank)}
            orow[r] = (f32)acc[r];
    }}
}}
"""
    par_params = [
        ("const i64 *restrict ", "seg_offsets"),
        ("const i32 *restrict ", "targets"),
        ("const f32 *restrict ", "vals"),
        *(("const i32 *restrict ", f"idx{m}") for m in range(k)),
        *(("const f32 *restrict ", f"fac{m}") for m in range(k)),
        ("f32 *restrict ", "out"),
    ]
    source += _TEAM_RUNNER + _parallel_entry(name, par_params)
    symbols = {"num_units": CAP_COUNT, "nnz": CAP_COUNT, "out_rows": CAP_I32}
    symbols.update({f"dim{m}": CAP_I32 for m in range(k)})
    effects = EffectSummary(
        kernel="mttkrp_coo",
        name=name,
        order=order,
        rank=rank,
        unit_var="s",
        symbols=symbols,
        params=(
            *_unit_params("u0", "u1", "num_units"),
            Param("seg_offsets", "const i64 *", extent="num_units + 1",
                  value_min="0", value_max="nnz", props=("nondecreasing",)),
            Param("targets", "const i32 *", extent="num_units",
                  value_min="0", value_max="out_rows - 1",
                  props=("strictly_increasing",)),
            Param("vals", "const f32 *", extent="nnz"),
            *(Param(f"idx{m}", "const i32 *", extent="nnz",
                    value_min="0", value_max=f"dim{m} - 1")
              for m in range(k)),
            *(Param(f"fac{m}", "const f32 *", extent=f"dim{m} * {rank}")
              for m in range(k)),
            Param("out", "f32 *", extent=f"out_rows * {rank}"),
        ),
        loops=(
            Loop("s", "u0", "u1"),
            Loop("e", "lo", "hi"),
            Loop("r", "0", str(rank), "int"),
        ),
        defs=(
            Def("lo", "seg_offsets[s]"),
            Def("hi", "seg_offsets[s + 1]"),
        ),
        accesses=(
            Access("seg_offsets", "s", 1, "load"),
            Access("seg_offsets", "s + 1", 1, "load"),
            Access("targets", "s", 1, "load"),
            Access("vals", "e", 1, "load"),
            *(Access(f"idx{m}", "e", 1, "load") for m in range(k)),
            *(Access(f"fac{m}", _gather_offset(f"idx{m}[e]", rank),
                     rank, "load") for m in range(k)),
            Access("out", _store_offset("targets[s]", rank), rank, "store"),
        ),
        ownership=("rows", "targets"),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in par_params),
    )
    return KernelArtifact(name, source, effects)


def mttkrp_coo_source(order: int, rank: int) -> Tuple[str, str]:
    artifact = mttkrp_coo_artifact(order, rank)
    return artifact.name, artifact.source


mttkrp_coo_source.__doc__ = mttkrp_coo_artifact.__doc__


def _hicoo_symbols(order: int) -> Dict[str, int]:
    symbols = {"nblocks": CAP_COUNT, "nnz": CAP_COUNT, "block_size": CAP_BLOCK}
    symbols.update({f"dim{m}": CAP_I32 for m in range(order)})
    return symbols


def _hicoo_params(order: int, rank: int) -> Tuple[Param, ...]:
    """The shared HiCOO tail: bptr, block_size, vals, pairs, facs, out.

    Pair ``m == order - 1`` is the output mode (the kernels take pairs
    output-mode-last); ``einds`` values are u8 block-local coordinates,
    which is where the ``block_size <= 256`` cap comes from.
    """
    k = order - 1
    return (
        Param("bptr", "const i64 *", extent="nblocks + 1",
              value_min="0", value_max="nnz", props=("nondecreasing",)),
        Param("block_size", "i64", value_min="1", value_max="block_size"),
        Param("vals", "const f32 *", extent="nnz"),
        *(param
          for m in range(order)
          for param in (
              Param(f"binds{m}", "const i32 *", extent="nblocks",
                    value_min="0", value_max=f"dim{m} - 1",
                    props=("window_row",) if m == k else ()),
              Param(f"einds{m}", "const u8 *", extent="nnz",
                    value_min="0", value_max="block_size - 1"),
          )),
        *(Param(f"fac{m}", "const f32 *", extent=f"dim{m} * {rank}")
          for m in range(k)),
        Param("out", "f64 *", extent=f"dim{k} * {rank}"),
    )


def _hicoo_pairs(order: int) -> Tuple[Tuple[str, str, str, str], ...]:
    """The format invariant kernelcheck may assume for blocked indexing.

    ``out`` and the factors are *not* padded to a block-size multiple,
    so ``binds[b] * block_size + einds[e]`` is only in bounds because
    the format never stores a nonzero outside the tensor: the pair sum
    is at most ``dim - 1`` by construction of the HiCOO conversion.
    """
    return tuple(
        (f"binds{m}", "block_size", f"einds{m}", f"dim{m} - 1")
        for m in range(order)
    )


def mttkrp_hicoo_artifact(order: int, rank: int) -> KernelArtifact:
    """Blocked HiCOO MTTKRP (Algorithm 3 shape), serial over blocks.

    Argument convention: ``order`` (binds, einds) pairs with the *output
    mode last*, and ``order - 1`` factors for the non-output modes in the
    same ascending order as the index pairs.  The output array is
    ``double`` — blocks sharing an output window accumulate into it
    directly, which is why this variant stays serial; the parallel form
    is :func:`mttkrp_hicoo_owned_source`, which regroups blocks by
    output window first.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_hicoo_o{order}_r{rank}"
    bind_args = ", ".join(
        f"const i32 *restrict binds{m}, const u8 *restrict einds{m}"
        for m in range(order)
    )
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    bases = "\n".join(
        f"        const i64 base{m} = "
        f"{_gather_offset(f'binds{m}[b]', 'block_size')};"
        for m in range(order)
    )
    gather = "\n".join(
        f"            const f32 *restrict row{m} = "
        f"fac{m} + {_blocked_offset(f'base{m}', f'einds{m}[e]', rank)};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    store = _blocked_offset(f"base{k}", f"einds{k}[e]", rank)
    source = f"""{_PRELUDE}
void {name}(i64 b0, i64 b1,
            const i64 *restrict bptr,
            i64 block_size,
            const f32 *restrict vals,
            {bind_args},
            {fac_args},
            f64 *restrict out)
{{
    {_loop("i64", "b", "b0", "b1")} {{
        const i64 lo = bptr[b];
        const i64 hi = bptr[b + 1];
{bases}
        {_loop("i64", "e", "lo", "hi")} {{
{gather}
            const f64 v = (f64)vals[e];
            f64 *restrict orow = out + {store};
            {_loop("int", "r", "0", rank)}
                orow[r] += v * {product};
        }}
    }}
}}
"""
    effects = EffectSummary(
        kernel="mttkrp_hicoo",
        name=name,
        order=order,
        rank=rank,
        unit_var="b",
        symbols=_hicoo_symbols(order),
        params=(
            *_unit_params("b0", "b1", "nblocks"),
            *_hicoo_params(order, rank),
        ),
        loops=(
            Loop("b", "b0", "b1"),
            Loop("e", "lo", "hi"),
            Loop("r", "0", str(rank), "int"),
        ),
        defs=(
            Def("lo", "bptr[b]"),
            Def("hi", "bptr[b + 1]"),
            *(Def(f"base{m}", _gather_offset(f"binds{m}[b]", "block_size"))
              for m in range(order)),
        ),
        accesses=(
            Access("bptr", "b", 1, "load"),
            Access("bptr", "b + 1", 1, "load"),
            Access("vals", "e", 1, "load"),
            *(Access(f"fac{m}",
                     _blocked_offset(f"base{m}", f"einds{m}[e]", rank),
                     rank, "load") for m in range(k)),
            Access("out", store, rank, "store"),
        ),
        ownership=("serial",),
        pairs=_hicoo_pairs(order),
    )
    return KernelArtifact(name, source, effects)


def mttkrp_hicoo_source(order: int, rank: int) -> Tuple[str, str]:
    artifact = mttkrp_hicoo_artifact(order, rank)
    return artifact.name, artifact.source


mttkrp_hicoo_source.__doc__ = mttkrp_hicoo_artifact.__doc__


def mttkrp_hicoo_owned_artifact(order: int, rank: int) -> KernelArtifact:
    """Ownership-partitioned HiCOO MTTKRP: windows of blocks, any thread.

    The ownership plan (:func:`repro.perf.plans.build_hicoo_ownership_plan`)
    groups blocks by their output-mode block coordinate with a *stable*
    sort, so within each output window blocks keep their Morton order and
    the ``double`` accumulation per output row happens in exactly the
    serial kernel's order — parallel results are bit-identical.  The unit
    of work is one window; windows own disjoint ``block_size`` output row
    ranges, which is the atomic-free guarantee the sanitizer's
    ``row_blocks`` ownership kind checks.

    Arguments are the plain HiCOO kernel's plus ``win_ptr`` (window ->
    position range) and ``block_perm`` (position -> block id); the unit
    range ``(w0, w1)`` indexes windows rather than raw blocks.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_hicoo_own_o{order}_r{rank}"
    bind_args = ", ".join(
        f"const i32 *restrict binds{m}, const u8 *restrict einds{m}"
        for m in range(order)
    )
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    bases = "\n".join(
        f"            const i64 base{m} = "
        f"{_gather_offset(f'binds{m}[b]', 'block_size')};"
        for m in range(order)
    )
    gather = "\n".join(
        f"                const f32 *restrict row{m} = "
        f"fac{m} + {_blocked_offset(f'base{m}', f'einds{m}[e]', rank)};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    store = _blocked_offset(f"base{k}", f"einds{k}[e]", rank)
    source = f"""{_PRELUDE}
void {name}(i64 w0, i64 w1,
            const i64 *restrict win_ptr,
            const i64 *restrict block_perm,
            const i64 *restrict bptr,
            i64 block_size,
            const f32 *restrict vals,
            {bind_args},
            {fac_args},
            f64 *restrict out)
{{
    {_loop("i64", "w", "w0", "w1")} {{
        {_loop("i64", "p", "win_ptr[w]", "win_ptr[w + 1]")} {{
            const i64 b = block_perm[p];
            const i64 lo = bptr[b];
            const i64 hi = bptr[b + 1];
{bases}
            {_loop("i64", "e", "lo", "hi")} {{
{gather}
                const f64 v = (f64)vals[e];
                f64 *restrict orow =
                    out + {store};
                {_loop("int", "r", "0", rank)}
                    orow[r] += v * {product};
            }}
        }}
    }}
}}
"""
    params = [
        ("const i64 *restrict ", "win_ptr"),
        ("const i64 *restrict ", "block_perm"),
        ("const i64 *restrict ", "bptr"),
        ("i64 ", "block_size"),
        ("const f32 *restrict ", "vals"),
    ]
    for m in range(order):
        params.append(("const i32 *restrict ", f"binds{m}"))
        params.append(("const u8 *restrict ", f"einds{m}"))
    params.extend(("const f32 *restrict ", f"fac{m}") for m in range(k))
    params.append(("f64 *restrict ", "out"))
    source += _TEAM_RUNNER + _parallel_entry(name, params)
    symbols = _hicoo_symbols(order)
    symbols["num_windows"] = CAP_COUNT
    effects = EffectSummary(
        kernel="mttkrp_hicoo_owned",
        name=name,
        order=order,
        rank=rank,
        unit_var="w",
        symbols=symbols,
        params=(
            *_unit_params("w0", "w1", "num_windows"),
            Param("win_ptr", "const i64 *", extent="num_windows + 1",
                  value_min="0", value_max="nblocks",
                  props=("nondecreasing",)),
            Param("block_perm", "const i64 *", extent="nblocks",
                  value_min="0", value_max="nblocks - 1"),
            *_hicoo_params(order, rank),
        ),
        loops=(
            Loop("w", "w0", "w1"),
            Loop("p", "win_ptr[w]", "win_ptr[w + 1]"),
            Loop("e", "lo", "hi"),
            Loop("r", "0", str(rank), "int"),
        ),
        defs=(
            Def("b", "block_perm[p]"),
            Def("lo", "bptr[b]"),
            Def("hi", "bptr[b + 1]"),
            *(Def(f"base{m}", _gather_offset(f"binds{m}[b]", "block_size"))
              for m in range(order)),
        ),
        accesses=(
            Access("win_ptr", "w", 1, "load"),
            Access("win_ptr", "w + 1", 1, "load"),
            Access("block_perm", "p", 1, "load"),
            Access("bptr", "b", 1, "load"),
            Access("bptr", "b + 1", 1, "load"),
            Access("vals", "e", 1, "load"),
            *(Access(f"fac{m}",
                     _blocked_offset(f"base{m}", f"einds{m}[e]", rank),
                     rank, "load") for m in range(k)),
            Access("out", store, rank, "store"),
        ),
        ownership=("row_blocks", f"binds{k}", "block_size"),
        pairs=_hicoo_pairs(order),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in params),
    )
    return KernelArtifact(name, source, effects)


def mttkrp_hicoo_owned_source(order: int, rank: int) -> Tuple[str, str]:
    artifact = mttkrp_hicoo_owned_artifact(order, rank)
    return artifact.name, artifact.source


mttkrp_hicoo_owned_source.__doc__ = mttkrp_hicoo_owned_artifact.__doc__


def mttkrp_coo_gram_artifact(order: int, rank: int) -> KernelArtifact:
    """Fused COO MTTKRP + Gram of the output, for the CP-ALS inner loop.

    Identical to :func:`mttkrp_coo_source` — bit-for-bit the same
    ``out`` — plus each segment's stored float32 output row is folded
    into a ``rank x rank`` double Gram accumulator before moving on,
    while the row is still in registers.  Every output row belongs to
    exactly one segment, so the sum over segments is exactly
    ``out.T @ out`` (rows no segment touches are zero and contribute
    nothing).  The ``_par`` entry gives each chunk a private Gram slab
    (``grams`` is ``num_chunks x rank x rank``); the caller reduces the
    slabs, keeping the parallel region atomic-free.
    """
    order = _check_order(order, minimum=2)
    rank = _check_rank(rank)
    k = order - 1
    name = f"repro_mttkrp_coo_gram_o{order}_r{rank}"
    idx_args = ", ".join(f"const i32 *restrict idx{m}" for m in range(k))
    fac_args = ", ".join(f"const f32 *restrict fac{m}" for m in range(k))
    gather = "\n".join(
        f"            const f32 *restrict row{m} = "
        f"fac{m} + {_gather_offset(f'idx{m}[e]', rank)};"
        for m in range(k)
    )
    product = " * ".join(f"(f64)row{m}[r]" for m in range(k))
    gram_offset = f"r1 * {rank} + r2"
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict seg_offsets,
            const i32 *restrict targets,
            const f32 *restrict vals,
            {idx_args},
            {fac_args},
            f32 *restrict out,
            f64 *restrict gram)
{{
    {_loop("i64", "s", "u0", "u1")} {{
        f64 acc[{rank}] = {{0.0}};
        const i64 lo = seg_offsets[s];
        const i64 hi = seg_offsets[s + 1];
        {_loop("i64", "e", "lo", "hi")} {{
{gather}
            const f64 v = (f64)vals[e];
            {_loop("int", "r", "0", rank)}
                acc[r] += v * {product};
        }}
        f32 *restrict orow = out + {_store_offset("targets[s]", rank)};
        {_loop("int", "r", "0", rank)}
            orow[r] = (f32)acc[r];
        {_loop("int", "r1", "0", rank)} {{
            const f64 g1 = (f64)orow[r1];
            {_loop("int", "r2", "0", rank)}
                gram[{gram_offset}] += g1 * (f64)orow[r2];
        }}
    }}
}}
"""
    par_params = [
        ("const i64 *restrict ", "seg_offsets"),
        ("const i32 *restrict ", "targets"),
        ("const f32 *restrict ", "vals"),
        *(("const i32 *restrict ", f"idx{m}") for m in range(k)),
        *(("const f32 *restrict ", f"fac{m}") for m in range(k)),
        ("f32 *restrict ", "out"),
        ("f64 *restrict ", "grams"),
    ]
    overrides = {"grams": f"a->grams + c * {rank * rank}"}
    source += _TEAM_RUNNER + _parallel_entry(name, par_params, overrides)
    symbols = {"num_units": CAP_COUNT, "nnz": CAP_COUNT, "out_rows": CAP_I32}
    symbols.update({f"dim{m}": CAP_I32 for m in range(k)})
    effects = EffectSummary(
        kernel="mttkrp_coo_gram",
        name=name,
        order=order,
        rank=rank,
        unit_var="s",
        symbols=symbols,
        params=(
            *_unit_params("u0", "u1", "num_units"),
            Param("seg_offsets", "const i64 *", extent="num_units + 1",
                  value_min="0", value_max="nnz", props=("nondecreasing",)),
            Param("targets", "const i32 *", extent="num_units",
                  value_min="0", value_max="out_rows - 1",
                  props=("strictly_increasing",)),
            Param("vals", "const f32 *", extent="nnz"),
            *(Param(f"idx{m}", "const i32 *", extent="nnz",
                    value_min="0", value_max=f"dim{m} - 1")
              for m in range(k)),
            *(Param(f"fac{m}", "const f32 *", extent=f"dim{m} * {rank}")
              for m in range(k)),
            Param("out", "f32 *", extent=f"out_rows * {rank}"),
            Param("gram", "f64 *", extent=str(rank * rank)),
        ),
        loops=(
            Loop("s", "u0", "u1"),
            Loop("e", "lo", "hi"),
            Loop("r", "0", str(rank), "int"),
            Loop("r1", "0", str(rank), "int"),
            Loop("r2", "0", str(rank), "int"),
        ),
        defs=(
            Def("lo", "seg_offsets[s]"),
            Def("hi", "seg_offsets[s + 1]"),
        ),
        accesses=(
            Access("seg_offsets", "s", 1, "load"),
            Access("seg_offsets", "s + 1", 1, "load"),
            Access("targets", "s", 1, "load"),
            Access("vals", "e", 1, "load"),
            *(Access(f"idx{m}", "e", 1, "load") for m in range(k)),
            *(Access(f"fac{m}", _gather_offset(f"idx{m}[e]", rank),
                     rank, "load") for m in range(k)),
            Access("out", _store_offset("targets[s]", rank), rank, "store"),
            Access("gram", gram_offset, 1, "store",
                   slab=("grams", rank * rank)),
        ),
        ownership=("rows", "targets"),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in par_params),
        par_overrides=overrides,
    )
    return KernelArtifact(name, source, effects)


def mttkrp_coo_gram_source(order: int, rank: int) -> Tuple[str, str]:
    artifact = mttkrp_coo_gram_artifact(order, rank)
    return artifact.name, artifact.source


mttkrp_coo_gram_source.__doc__ = mttkrp_coo_gram_artifact.__doc__


def ttv_artifact() -> KernelArtifact:
    """Fiber-grain TTV: one double reduction per fiber, any order.

    Order never appears — the fiber plan already isolated the product
    mode's indices — so a single specialization serves every tensor.
    """
    name = "repro_ttv_fiber"
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict fptr,
            const f32 *restrict vals,
            const i32 *restrict prod_idx,
            const f32 *restrict vec,
            f64 *restrict sums)
{{
    {_loop("i64", "f", "u0", "u1")} {{
        f64 acc = 0.0;
        const i64 lo = fptr[f];
        const i64 hi = fptr[f + 1];
        {_loop("i64", "e", "lo", "hi")}
            acc += (f64)vals[e] * (f64)vec[prod_idx[e]];
        sums[f] = acc;
    }}
}}
"""
    par_params = [
        ("const i64 *restrict ", "fptr"),
        ("const f32 *restrict ", "vals"),
        ("const i32 *restrict ", "prod_idx"),
        ("const f32 *restrict ", "vec"),
        ("f64 *restrict ", "sums"),
    ]
    source += _TEAM_RUNNER + _parallel_entry(name, par_params)
    effects = EffectSummary(
        kernel="ttv",
        name=name,
        order=0,
        rank=1,
        unit_var="f",
        symbols={"num_fibers": CAP_COUNT, "nnz": CAP_COUNT, "pdim": CAP_I32},
        params=(
            *_unit_params("u0", "u1", "num_fibers"),
            Param("fptr", "const i64 *", extent="num_fibers + 1",
                  value_min="0", value_max="nnz", props=("nondecreasing",)),
            Param("vals", "const f32 *", extent="nnz"),
            Param("prod_idx", "const i32 *", extent="nnz",
                  value_min="0", value_max="pdim - 1"),
            Param("vec", "const f32 *", extent="pdim"),
            Param("sums", "f64 *", extent="num_fibers"),
        ),
        loops=(
            Loop("f", "u0", "u1"),
            Loop("e", "lo", "hi"),
        ),
        defs=(
            Def("lo", "fptr[f]"),
            Def("hi", "fptr[f + 1]"),
        ),
        accesses=(
            Access("fptr", "f", 1, "load"),
            Access("fptr", "f + 1", 1, "load"),
            Access("vals", "e", 1, "load"),
            Access("vec", "prod_idx[e]", 1, "load"),
            Access("sums", "f", 1, "store"),
        ),
        ownership=("unit",),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in par_params),
    )
    return KernelArtifact(name, source, effects)


def ttv_source() -> Tuple[str, str]:
    artifact = ttv_artifact()
    return artifact.name, artifact.source


ttv_source.__doc__ = ttv_artifact.__doc__


def ttm_artifact(rank: int) -> KernelArtifact:
    """Fiber-grain TTM: accumulate ``value * U[i_n, :]`` rows per fiber."""
    rank = _check_rank(rank)
    name = f"repro_ttm_fiber_r{rank}"
    row_offset = f"f * {rank}"
    source = f"""{_PRELUDE}
void {name}(i64 u0, i64 u1,
            const i64 *restrict fptr,
            const f32 *restrict vals,
            const i32 *restrict prod_idx,
            const f32 *restrict mat,
            f64 *restrict rows)
{{
    {_loop("i64", "f", "u0", "u1")} {{
        f64 *restrict orow = rows + {row_offset};
        {_loop("int", "r", "0", rank)}
            orow[r] = 0.0;
        const i64 lo = fptr[f];
        const i64 hi = fptr[f + 1];
        {_loop("i64", "e", "lo", "hi")} {{
            const f64 v = (f64)vals[e];
            const f32 *restrict mrow = mat + {_gather_offset("prod_idx[e]", rank)};
            {_loop("int", "r", "0", rank)}
                orow[r] += v * (f64)mrow[r];
        }}
    }}
}}
"""
    par_params = [
        ("const i64 *restrict ", "fptr"),
        ("const f32 *restrict ", "vals"),
        ("const i32 *restrict ", "prod_idx"),
        ("const f32 *restrict ", "mat"),
        ("f64 *restrict ", "rows"),
    ]
    source += _TEAM_RUNNER + _parallel_entry(name, par_params)
    effects = EffectSummary(
        kernel="ttm",
        name=name,
        order=0,
        rank=rank,
        unit_var="f",
        symbols={"num_fibers": CAP_COUNT, "nnz": CAP_COUNT, "pdim": CAP_I32},
        params=(
            *_unit_params("u0", "u1", "num_fibers"),
            Param("fptr", "const i64 *", extent="num_fibers + 1",
                  value_min="0", value_max="nnz", props=("nondecreasing",)),
            Param("vals", "const f32 *", extent="nnz"),
            Param("prod_idx", "const i32 *", extent="nnz",
                  value_min="0", value_max="pdim - 1"),
            Param("mat", "const f32 *", extent=f"pdim * {rank}"),
            Param("rows", "f64 *", extent=f"num_fibers * {rank}"),
        ),
        loops=(
            Loop("f", "u0", "u1"),
            Loop("e", "lo", "hi"),
            Loop("r", "0", str(rank), "int"),
        ),
        defs=(
            Def("lo", "fptr[f]"),
            Def("hi", "fptr[f + 1]"),
        ),
        accesses=(
            Access("fptr", "f", 1, "load"),
            Access("fptr", "f + 1", 1, "load"),
            Access("vals", "e", 1, "load"),
            Access("mat", _gather_offset("prod_idx[e]", rank), rank, "load"),
            Access("rows", row_offset, rank, "store"),
        ),
        ownership=("unit",),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in par_params),
    )
    return KernelArtifact(name, source, effects)


def ttm_source(rank: int) -> Tuple[str, str]:
    artifact = ttm_artifact(rank)
    return artifact.name, artifact.source


ttm_source.__doc__ = ttm_artifact.__doc__


#: TEW operation name -> C infix operator.
TEW_OPS = {"add": "+", "sub": "-", "mul": "*", "div": "/"}


def tew_artifact(op: str) -> KernelArtifact:
    """Elementwise float32 op over a nonzero range, specialized per op.

    Single-precision IEEE ``+ - * /`` are exactly defined, so the
    compiled result is bit-identical to the numpy ufunc — including
    inf/nan from division by zero.
    """
    if op not in TEW_OPS:
        raise ValueError(f"unknown TEW op {op!r}; use one of {sorted(TEW_OPS)}")
    name = f"repro_tew_{op}"
    source = f"""{_PRELUDE}
void {name}(i64 e0, i64 e1,
            const f32 *restrict x,
            const f32 *restrict y,
            f32 *restrict out)
{{
    {_loop("i64", "e", "e0", "e1")}
        out[e] = x[e] {TEW_OPS[op]} y[e];
}}
"""
    par_params = [
        ("const f32 *restrict ", "x"),
        ("const f32 *restrict ", "y"),
        ("f32 *restrict ", "out"),
    ]
    source += _TEAM_RUNNER + _parallel_entry(name, par_params)
    effects = EffectSummary(
        kernel=f"tew_{op}",
        name=name,
        order=0,
        rank=1,
        unit_var="e",
        symbols={"nnz": CAP_COUNT},
        params=(
            *_unit_params("e0", "e1", "nnz"),
            Param("x", "const f32 *", extent="nnz"),
            Param("y", "const f32 *", extent="nnz"),
            Param("out", "f32 *", extent="nnz"),
        ),
        loops=(Loop("e", "e0", "e1"),),
        accesses=(
            Access("x", "e", 1, "load"),
            Access("y", "e", 1, "load"),
            Access("out", "e", 1, "store"),
        ),
        ownership=("element",),
        par_name=f"{name}_par",
        par_params=tuple(pname for _, pname in par_params),
    )
    return KernelArtifact(name, source, effects)


def tew_source(op: str) -> Tuple[str, str]:
    artifact = tew_artifact(op)
    return artifact.name, artifact.source


tew_source.__doc__ = tew_artifact.__doc__


#: Orders and ranks kernelcheck verifies by default — the order 2..4
#: span the paper's datasets use, at a small, a typical, and a large
#: factor rank.
REGISTERED_ORDERS = (2, 3, 4)
REGISTERED_RANKS = (1, 4, 32)


def registered_artifacts(
    orders: Tuple[int, ...] = REGISTERED_ORDERS,
    ranks: Tuple[int, ...] = REGISTERED_RANKS,
) -> List[KernelArtifact]:
    """Every kernel template instantiated over the verification matrix.

    This is the population ``repro kernelcheck`` proves properties for:
    each MTTKRP variant per (order, rank), TTM per rank, and the
    order-independent TTV and TEW kernels once each.
    """
    artifacts: List[KernelArtifact] = []
    for order in orders:
        for rank in ranks:
            artifacts.append(mttkrp_coo_artifact(order, rank))
            artifacts.append(mttkrp_hicoo_artifact(order, rank))
            artifacts.append(mttkrp_hicoo_owned_artifact(order, rank))
            artifacts.append(mttkrp_coo_gram_artifact(order, rank))
    for rank in ranks:
        artifacts.append(ttm_artifact(rank))
    artifacts.append(ttv_artifact())
    for op in sorted(TEW_OPS):
        artifacts.append(tew_artifact(op))
    return artifacts
