"""Compiled kernel entry points: numpy marshaling around the C loops.

Every function here returns ``None`` whenever the compiled path cannot
run — no compiler, ``REPRO_JIT=0``, an unsupported specialization — and
the caller (``dispatch.run_config`` or the TEW value chokepoint) falls
back to the numpy kernel.  When it does run, it reuses the *same* plans,
chunk plans, and sanitizer ownership declarations as the numpy path:

* MTTKRP consumes the cached mode-sort plan and partitions by output
  segments (``grain="segment"``, key ``plan.mode``);
* TTV/TTM consume the cached fiber partition and partition by fibers
  (``grain="fiber"``, keys ``("ttv", mode)`` / ``("ttm", mode)``);
* TEW partitions the nonzero range (``grain="nonzero"``).

Parallel chunks call the same compiled function as the serial path on
their own ``[u0, u1)`` unit range, so parallel JIT results are
bit-identical to serial JIT results; ctypes releases the GIL around
each call, so the worker pool gets true concurrency.

The ``*_mt`` entry points go one step further: they hand the *entire*
chunk table to the compiled ``_par`` entry, which runs an in-process
thread team (OpenMP or pthreads, chosen at compile time) — one ctypes
call per kernel invocation instead of one per chunk, with no
interpreter involvement between chunks.  HiCOO MTTKRP becomes
parallelizable through the ownership plan
(:func:`repro.perf.plans.build_hicoo_ownership_plan`), which regroups
blocks into disjoint output windows.  Under ``REPRO_SANITIZE=1`` the
``*_mt`` functions drop back to the chunk-at-a-time executor so the
write sanitizer can observe per-chunk ownership, preserving the checked
semantics bit-for-bit.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Sequence, Tuple

import numpy as np

from ...analysis.sanitizer import sanitizer_enabled
from ...formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from ...formats.hicoo import HicooTensor
from ..parallel import kernel_chunk_plan, run_chunks, want_parallel
from ..partition import POLICY_STATIC, ChunkPlan
from ..plans import (
    build_hicoo_ownership_plan,
    build_mode_sort_plan,
    hicoo_ownership_plan,
    mode_sort_plan,
)
from . import build, codegen

_I64 = ctypes.c_int64
_I32 = ctypes.c_int32
_PTR_F32 = np.ctypeslib.ndpointer(dtype=np.float32, flags="C_CONTIGUOUS")
_PTR_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_PTR_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_PTR_I32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_PTR_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _f32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float32)


def _i32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int32)


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


def _par_argtypes(serial_argtypes: Sequence) -> list:
    """Argtypes of a ``_par`` entry from its serial counterpart's.

    The serial ``(u0, u1)`` unit range becomes ``(num_chunks,
    chunk_bounds, num_threads, sched)``; the tail is unchanged.
    """
    return [_I64, _PTR_I64, _I64, _I32] + list(serial_argtypes[2:])


def _sched_kind(policy: str) -> int:
    """Map an executor policy to the C team's schedule kind.

    Static is the deterministic round-robin; dynamic *and* guided both
    become the pull queue — guided's decreasing chunk sizes are already
    baked into the chunk bounds.
    """
    return 0 if policy == POLICY_STATIC else 1


def _team_call(par_fn, chunks: ChunkPlan, *tail) -> None:
    """One ctypes call running every chunk on the compiled thread team."""
    workers = max(1, min(chunks.workers, chunks.num_chunks))
    par_fn(
        chunks.num_chunks,
        _i64(chunks.unit_bounds),
        workers,
        _sched_kind(chunks.policy),
        *tail,
    )


# ----------------------------------------------------------------------
# MTTKRP
# ----------------------------------------------------------------------


def _mttkrp_coo_fn(order: int, rank: int, parallel: bool = False):
    name, source = codegen.mttkrp_coo_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _PTR_I32, _PTR_F32]
        + [_PTR_I32] * k
        + [_PTR_F32] * k
        + [_PTR_F32]
    )
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def mttkrp_coo(
    x: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """Compiled segmented COO MTTKRP; ``None`` when JIT is unavailable.

    Accepts COO and HiCOO owners (the mode-sort plan expands HiCOO
    coordinates exactly as the numpy kernel does).
    """
    from ...core.mttkrp import check_factors

    order = len(x.shape)
    if order < 2:
        return None
    mode = x.check_mode(mode)
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    fn = _mttkrp_coo_fn(order, rank)
    if fn is None:
        return None
    plan = mode_sort_plan(x, mode)
    if plan is None:
        plan = build_mode_sort_plan(x, mode)
    offsets = _i64(plan.segment_offsets())
    targets = _i32(plan.unique_targets)
    sorted_values = _f32(plan.sorted_values(x.values))
    sorted_indices = plan.sorted_indices
    non_mode = [m for m in range(order) if m != mode]
    idx_arrays = [_i32(sorted_indices[m]) for m in non_mode]
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=VALUE_DTYPE)
    tail = (*idx_arrays, *fac_arrays, out)
    chunks = kernel_chunk_plan(
        x, grain="segment", key=plan.mode, element_offsets=offsets
    )
    if chunks is None:
        fn(0, plan.num_segments, offsets, targets, sorted_values, *tail)
        return out

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        fn(u0, u1, offsets, targets, sorted_values, *tail)

    run_chunks(
        chunks,
        task,
        kernel="MTTKRP-COO-JIT",
        grain="segment",
        outputs=((out, ("rows", targets)),),
    )
    return out


def mttkrp_coo_mt(
    x: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """In-kernel multithreaded COO MTTKRP; ``None`` when unavailable.

    One ctypes call hands the full chunk table to the compiled thread
    team.  Chunks own disjoint output segments, so the result is
    bit-identical to :func:`mttkrp_coo` (serial or chunked) for every
    thread count and schedule.  Serial-sized inputs and sanitized runs
    delegate to :func:`mttkrp_coo`.
    """
    from ...core.mttkrp import check_factors

    order = len(x.shape)
    if order < 2:
        return None
    mode = x.check_mode(mode)
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    par_fn = _mttkrp_coo_fn(order, rank, parallel=True)
    if par_fn is None:
        return None
    if sanitizer_enabled():
        return mttkrp_coo(x, factors, mode)
    plan = mode_sort_plan(x, mode)
    if plan is None:
        plan = build_mode_sort_plan(x, mode)
    offsets = _i64(plan.segment_offsets())
    chunks = kernel_chunk_plan(
        x, grain="segment", key=plan.mode, element_offsets=offsets
    )
    if chunks is None or chunks.num_chunks <= 1:
        return mttkrp_coo(x, factors, mode)
    targets = _i32(plan.unique_targets)
    sorted_values = _f32(plan.sorted_values(x.values))
    sorted_indices = plan.sorted_indices
    non_mode = [m for m in range(order) if m != mode]
    idx_arrays = [_i32(sorted_indices[m]) for m in non_mode]
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=VALUE_DTYPE)
    _team_call(
        par_fn,
        chunks,
        offsets,
        targets,
        sorted_values,
        *idx_arrays,
        *fac_arrays,
        out,
    )
    return out


def _mttkrp_hicoo_fn(order: int, rank: int):
    name, source = codegen.mttkrp_hicoo_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _I64, _PTR_F32]
        + [_PTR_I32, _PTR_U8] * order
        + [_PTR_F32] * k
        + [_PTR_F64]
    )
    return build.load_function(name, source, argtypes)


def mttkrp_hicoo(
    x: HicooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """Compiled blocked HiCOO MTTKRP (Algorithm 3), serial over blocks."""
    from ...core.mttkrp import check_factors

    order = x.order
    if order < 2:
        return None
    mode = mode % order
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    fn = _mttkrp_hicoo_fn(order, rank)
    if fn is None:
        return None
    non_mode = [m for m in range(order) if m != mode]
    pairs = []
    for m in (*non_mode, mode):  # codegen convention: output mode last
        pairs.append(_i32(x.binds[m]))
        pairs.append(np.ascontiguousarray(x.einds[m]))
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=np.float64)
    fn(
        0,
        x.num_blocks,
        _i64(x.bptr),
        int(x.block_size),
        _f32(x.values),
        *pairs,
        *fac_arrays,
        out,
    )
    return out.astype(VALUE_DTYPE)


def _mttkrp_hicoo_own_fn(order: int, rank: int, parallel: bool = False):
    name, source = codegen.mttkrp_hicoo_owned_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _PTR_I64, _PTR_I64, _I64, _PTR_F32]
        + [_PTR_I32, _PTR_U8] * order
        + [_PTR_F32] * k
        + [_PTR_F64]
    )
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def mttkrp_hicoo_mt(
    x: HicooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """Ownership-partitioned multithreaded HiCOO MTTKRP.

    The ownership plan regroups blocks by their output-window block
    coordinate with a stable sort, so windows own disjoint
    ``block_size`` output row ranges and the per-row double accumulation
    order matches :func:`mttkrp_hicoo` exactly — parallel results are
    bit-identical to the serial blocked kernel.  Single-window tensors
    and serial-sized inputs delegate to :func:`mttkrp_hicoo`; sanitized
    runs go through the chunk-at-a-time executor with the ``row_blocks``
    ownership declaration so every write is checked.
    """
    from ...core.mttkrp import check_factors

    order = x.order
    if order < 2:
        return None
    mode = mode % order
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    own_fn = _mttkrp_hicoo_own_fn(order, rank)
    par_fn = _mttkrp_hicoo_own_fn(order, rank, parallel=True)
    if own_fn is None or par_fn is None:
        return None
    plan = hicoo_ownership_plan(x, mode)
    if plan is None:
        plan = build_hicoo_ownership_plan(x, mode)
    if plan.num_windows <= 1:
        return mttkrp_hicoo(x, factors, mode)
    chunks = kernel_chunk_plan(
        x,
        grain="window",
        key=("hicoo_own", mode),
        element_offsets=plan.element_offsets,
    )
    if chunks is None or chunks.num_chunks <= 1:
        return mttkrp_hicoo(x, factors, mode)
    non_mode = [m for m in range(order) if m != mode]
    pairs = []
    for m in (*non_mode, mode):  # codegen convention: output mode last
        pairs.append(_i32(x.binds[m]))
        pairs.append(np.ascontiguousarray(x.einds[m]))
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=np.float64)
    head = (
        _i64(plan.win_ptr),
        _i64(plan.block_perm),
        _i64(x.bptr),
        int(x.block_size),
        _f32(x.values),
    )
    tail = (*pairs, *fac_arrays, out)
    if sanitizer_enabled():

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            own_fn(u0, u1, *head, *tail)

        run_chunks(
            chunks,
            task,
            kernel="MTTKRP-HiCOO-JIT-MT",
            grain="window",
            outputs=(
                (
                    out,
                    (
                        "row_blocks",
                        plan.window_targets,
                        int(x.block_size),
                    ),
                ),
            ),
        )
    else:
        _team_call(par_fn, chunks, *head, *tail)
    return out.astype(VALUE_DTYPE)


def _mttkrp_gram_fn(order: int, rank: int, parallel: bool = False):
    name, source = codegen.mttkrp_coo_gram_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _PTR_I32, _PTR_F32]
        + [_PTR_I32] * k
        + [_PTR_F32] * k
        + [_PTR_F32, _PTR_F64]
    )
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def mttkrp_gram_coo(
    x: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Fused compiled MTTKRP + Gram of the output, for CP-ALS.

    Returns ``(out, gram)`` where ``out`` is bit-identical to
    :func:`mttkrp_coo` and ``gram`` is the float64 ``out.T @ out``
    accumulated inside the same loop nest (to float-associativity of
    the reduction order).  Parallel runs give each chunk a private Gram
    slab and reduce them here, keeping the compiled region atomic-free.
    ``None`` when the JIT is unavailable.
    """
    from ...core.mttkrp import check_factors

    order = len(x.shape)
    if order < 2:
        return None
    mode = x.check_mode(mode)
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    serial_fn = _mttkrp_gram_fn(order, rank)
    if serial_fn is None:
        return None
    plan = mode_sort_plan(x, mode)
    if plan is None:
        plan = build_mode_sort_plan(x, mode)
    offsets = _i64(plan.segment_offsets())
    targets = _i32(plan.unique_targets)
    sorted_values = _f32(plan.sorted_values(x.values))
    sorted_indices = plan.sorted_indices
    non_mode = [m for m in range(order) if m != mode]
    idx_arrays = [_i32(sorted_indices[m]) for m in non_mode]
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=VALUE_DTYPE)
    tail = (*idx_arrays, *fac_arrays, out)
    chunks = kernel_chunk_plan(
        x, grain="segment", key=plan.mode, element_offsets=offsets
    )
    par_fn = (
        _mttkrp_gram_fn(order, rank, parallel=True)
        if chunks is not None and chunks.num_chunks > 1
        else None
    )
    if par_fn is None or sanitizer_enabled():
        gram = np.zeros((rank, rank), dtype=np.float64)
        serial_fn(
            0,
            plan.num_segments,
            offsets,
            targets,
            sorted_values,
            *tail,
            gram,
        )
        return out, gram
    grams = np.zeros((chunks.num_chunks, rank, rank), dtype=np.float64)
    _team_call(
        par_fn, chunks, offsets, targets, sorted_values, *tail, grams
    )
    return out, grams.sum(axis=0, dtype=np.float64)


# ----------------------------------------------------------------------
# TTV / TTM
# ----------------------------------------------------------------------


def _ttv_fn(parallel: bool = False):
    name, source = codegen.ttv_source()
    argtypes = [_I64, _I64, _PTR_I64, _PTR_F32, _PTR_I32, _PTR_F32, _PTR_F64]
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def ttv_coo(x: CooTensor, v: np.ndarray, mode: int) -> Optional[CooTensor]:
    """Compiled fiber-grain COO TTV; same output object shape as numpy."""
    from ...core.ttv import _check_vector

    mode = x.check_mode(mode)
    v = _check_vector(x.shape[mode], v)
    fn = _ttv_fn()
    if fn is None:
        return None
    ordered, fptr = x.fiber_partition(mode)
    other_modes = [m for m in range(x.order) if m != mode]
    out_shape = tuple(x.shape[m] for m in other_modes)
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return CooTensor(
            out_shape,
            np.empty((len(other_modes), 0), dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            validate=False,
        )
    fptr = _i64(fptr)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    vec = _f32(v)
    sums = np.empty(num_fibers, dtype=np.float64)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttv", mode), element_offsets=fptr
    )
    if chunks is None:
        fn(0, num_fibers, fptr, values, product_indices, vec, sums)
    else:

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            fn(u0, u1, fptr, values, product_indices, vec, sums)

        run_chunks(
            chunks,
            task,
            kernel="TTV-COO-JIT",
            grain="fiber",
            outputs=((sums, "unit"),),
        )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return CooTensor(
        out_shape, out_indices, sums.astype(VALUE_DTYPE), validate=False
    )


def ttv_coo_mt(
    x: CooTensor, v: np.ndarray, mode: int
) -> Optional[CooTensor]:
    """In-kernel multithreaded COO TTV; bit-identical to :func:`ttv_coo`.

    Fibers own disjoint output slots, so any schedule and thread count
    reproduces the serial reduction exactly.  Serial-sized inputs and
    sanitized runs delegate to :func:`ttv_coo`.
    """
    from ...core.ttv import _check_vector

    mode = x.check_mode(mode)
    v = _check_vector(x.shape[mode], v)
    par_fn = _ttv_fn(parallel=True)
    if par_fn is None:
        return None
    if sanitizer_enabled():
        return ttv_coo(x, v, mode)
    ordered, fptr = x.fiber_partition(mode)
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return ttv_coo(x, v, mode)
    fptr = _i64(fptr)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttv", mode), element_offsets=fptr
    )
    if chunks is None or chunks.num_chunks <= 1:
        return ttv_coo(x, v, mode)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    vec = _f32(v)
    sums = np.empty(num_fibers, dtype=np.float64)
    _team_call(par_fn, chunks, fptr, values, product_indices, vec, sums)
    other_modes = [m for m in range(x.order) if m != mode]
    out_shape = tuple(x.shape[m] for m in other_modes)
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return CooTensor(
        out_shape, out_indices, sums.astype(VALUE_DTYPE), validate=False
    )


def _ttm_fn(rank: int, parallel: bool = False):
    name, source = codegen.ttm_source(rank)
    argtypes = [_I64, _I64, _PTR_I64, _PTR_F32, _PTR_I32, _PTR_F32, _PTR_F64]
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def ttm_coo(x: CooTensor, matrix: np.ndarray, mode: int):
    """Compiled fiber-grain COO TTM returning the numpy kernel's sCOO."""
    from ...core.ttm import _check_matrix
    from ...formats.scoo import SemiSparseCooTensor

    mode = x.check_mode(mode)
    matrix = _check_matrix(x.shape[mode], matrix)
    rank = matrix.shape[1]
    if rank < 1:
        return None
    fn = _ttm_fn(rank)
    if fn is None:
        return None
    ordered, fptr = x.fiber_partition(mode)
    out_shape = list(x.shape)
    out_shape[mode] = rank
    other_modes = [m for m in range(x.order) if m != mode]
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return SemiSparseCooTensor(
            out_shape,
            [mode],
            np.empty((len(other_modes), 0), dtype=INDEX_DTYPE),
            np.empty((0, rank), dtype=VALUE_DTYPE),
        )
    fptr = _i64(fptr)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    mat = _f32(matrix)
    rows = np.empty((num_fibers, rank), dtype=np.float64)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttm", mode), element_offsets=fptr
    )
    if chunks is None:
        fn(0, num_fibers, fptr, values, product_indices, mat, rows)
    else:

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            fn(u0, u1, fptr, values, product_indices, mat, rows)

        run_chunks(
            chunks,
            task,
            kernel="TTM-COO-JIT",
            grain="fiber",
            outputs=((rows, "unit"),),
        )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return SemiSparseCooTensor(
        out_shape, [mode], out_indices, rows.astype(VALUE_DTYPE)
    )


def ttm_coo_mt(x: CooTensor, matrix: np.ndarray, mode: int):
    """In-kernel multithreaded COO TTM; bit-identical to :func:`ttm_coo`.

    Same fiber-ownership argument as :func:`ttv_coo_mt`; serial-sized
    inputs and sanitized runs delegate to :func:`ttm_coo`.
    """
    from ...core.ttm import _check_matrix
    from ...formats.scoo import SemiSparseCooTensor

    mode = x.check_mode(mode)
    matrix = _check_matrix(x.shape[mode], matrix)
    rank = matrix.shape[1]
    if rank < 1:
        return None
    par_fn = _ttm_fn(rank, parallel=True)
    if par_fn is None:
        return None
    if sanitizer_enabled():
        return ttm_coo(x, matrix, mode)
    ordered, fptr = x.fiber_partition(mode)
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return ttm_coo(x, matrix, mode)
    fptr = _i64(fptr)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttm", mode), element_offsets=fptr
    )
    if chunks is None or chunks.num_chunks <= 1:
        return ttm_coo(x, matrix, mode)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    mat = _f32(matrix)
    rows = np.empty((num_fibers, rank), dtype=np.float64)
    _team_call(par_fn, chunks, fptr, values, product_indices, mat, rows)
    out_shape = list(x.shape)
    out_shape[mode] = rank
    other_modes = [m for m in range(x.order) if m != mode]
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return SemiSparseCooTensor(
        out_shape, [mode], out_indices, rows.astype(VALUE_DTYPE)
    )


# ----------------------------------------------------------------------
# TEW
# ----------------------------------------------------------------------


def _tew_fn(op: str, parallel: bool = False):
    name, source = codegen.tew_source(op)
    argtypes = [_I64, _I64, _PTR_F32, _PTR_F32, _PTR_F32]
    if parallel:
        return build.load_function(
            name + "_par", source, _par_argtypes(argtypes)
        )
    return build.load_function(name, source, argtypes)


def tew_values(
    op: str, x_values: np.ndarray, y_values: np.ndarray, kernel: str
) -> Optional[np.ndarray]:
    """Compiled elementwise op over aligned value arrays.

    Bit-identical to the numpy ufunc (single-precision IEEE arithmetic
    either way), so callers may prefer it unconditionally.  Only worth
    the ctypes round-trip on inputs past the parallel threshold; tiny
    arrays return ``None`` and stay on the (faster) ufunc path.
    """
    if op not in codegen.TEW_OPS:
        return None
    nnz = int(x_values.shape[0])
    if not want_parallel(nnz):
        return None
    fn = _tew_fn(op)
    if fn is None:
        return None
    xs = _f32(x_values)
    ys = _f32(y_values)
    out = np.empty(nnz, dtype=VALUE_DTYPE)
    chunks = kernel_chunk_plan(None, grain="nonzero", total_elements=nnz)
    if chunks is None:
        fn(0, nnz, xs, ys, out)
        return out
    if not sanitizer_enabled() and chunks.num_chunks > 1:
        par_fn = _tew_fn(op, parallel=True)
        if par_fn is not None:
            _team_call(par_fn, chunks, xs, ys, out)
            return out

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        fn(e0, e1, xs, ys, out)

    run_chunks(
        chunks, task, kernel=kernel, grain="nonzero", outputs=((out, "element"),)
    )
    return out
