"""Compiled kernel entry points: numpy marshaling around the C loops.

Every function here returns ``None`` whenever the compiled path cannot
run — no compiler, ``REPRO_JIT=0``, an unsupported specialization — and
the caller (``dispatch.run_config`` or the TEW value chokepoint) falls
back to the numpy kernel.  When it does run, it reuses the *same* plans,
chunk plans, and sanitizer ownership declarations as the numpy path:

* MTTKRP consumes the cached mode-sort plan and partitions by output
  segments (``grain="segment"``, key ``plan.mode``);
* TTV/TTM consume the cached fiber partition and partition by fibers
  (``grain="fiber"``, keys ``("ttv", mode)`` / ``("ttm", mode)``);
* TEW partitions the nonzero range (``grain="nonzero"``).

Parallel chunks call the same compiled function as the serial path on
their own ``[u0, u1)`` unit range, so parallel JIT results are
bit-identical to serial JIT results; ctypes releases the GIL around
each call, so the worker pool gets true concurrency.  The blocked HiCOO
MTTKRP stays serial — its blocks share output windows.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Sequence

import numpy as np

from ...formats.coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from ...formats.hicoo import HicooTensor
from ..parallel import kernel_chunk_plan, run_chunks, want_parallel
from ..plans import build_mode_sort_plan, mode_sort_plan
from . import build, codegen

_I64 = ctypes.c_int64
_PTR_F32 = np.ctypeslib.ndpointer(dtype=np.float32, flags="C_CONTIGUOUS")
_PTR_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_PTR_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_PTR_I32 = np.ctypeslib.ndpointer(dtype=np.int32, flags="C_CONTIGUOUS")
_PTR_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _f32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float32)


def _i32(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int32)


def _i64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int64)


# ----------------------------------------------------------------------
# MTTKRP
# ----------------------------------------------------------------------


def _mttkrp_coo_fn(order: int, rank: int):
    name, source = codegen.mttkrp_coo_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _PTR_I32, _PTR_F32]
        + [_PTR_I32] * k
        + [_PTR_F32] * k
        + [_PTR_F32]
    )
    return build.load_function(name, source, argtypes)


def mttkrp_coo(
    x: CooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """Compiled segmented COO MTTKRP; ``None`` when JIT is unavailable.

    Accepts COO and HiCOO owners (the mode-sort plan expands HiCOO
    coordinates exactly as the numpy kernel does).
    """
    from ...core.mttkrp import check_factors

    order = len(x.shape)
    if order < 2:
        return None
    mode = x.check_mode(mode)
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    fn = _mttkrp_coo_fn(order, rank)
    if fn is None:
        return None
    plan = mode_sort_plan(x, mode)
    if plan is None:
        plan = build_mode_sort_plan(x, mode)
    offsets = _i64(plan.segment_offsets())
    targets = _i32(plan.unique_targets)
    sorted_values = _f32(plan.sorted_values(x.values))
    sorted_indices = plan.sorted_indices
    non_mode = [m for m in range(order) if m != mode]
    idx_arrays = [_i32(sorted_indices[m]) for m in non_mode]
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=VALUE_DTYPE)
    tail = (*idx_arrays, *fac_arrays, out)
    chunks = kernel_chunk_plan(
        x, grain="segment", key=plan.mode, element_offsets=offsets
    )
    if chunks is None:
        fn(0, plan.num_segments, offsets, targets, sorted_values, *tail)
        return out

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        fn(u0, u1, offsets, targets, sorted_values, *tail)

    run_chunks(
        chunks,
        task,
        kernel="MTTKRP-COO-JIT",
        grain="segment",
        outputs=((out, ("rows", targets)),),
    )
    return out


def _mttkrp_hicoo_fn(order: int, rank: int):
    name, source = codegen.mttkrp_hicoo_source(order, rank)
    k = order - 1
    argtypes = (
        [_I64, _I64, _PTR_I64, _I64, _PTR_F32]
        + [_PTR_I32, _PTR_U8] * order
        + [_PTR_F32] * k
        + [_PTR_F64]
    )
    return build.load_function(name, source, argtypes)


def mttkrp_hicoo(
    x: HicooTensor, factors: Sequence[np.ndarray], mode: int
) -> Optional[np.ndarray]:
    """Compiled blocked HiCOO MTTKRP (Algorithm 3), serial over blocks."""
    from ...core.mttkrp import check_factors

    order = x.order
    if order < 2:
        return None
    mode = mode % order
    factors = check_factors(x.shape, factors)
    rank = factors[0].shape[1]
    if rank < 1:
        return None
    fn = _mttkrp_hicoo_fn(order, rank)
    if fn is None:
        return None
    non_mode = [m for m in range(order) if m != mode]
    pairs = []
    for m in (*non_mode, mode):  # codegen convention: output mode last
        pairs.append(_i32(x.binds[m]))
        pairs.append(np.ascontiguousarray(x.einds[m]))
    fac_arrays = [_f32(factors[m]) for m in non_mode]
    out = np.zeros((x.shape[mode], rank), dtype=np.float64)
    fn(
        0,
        x.num_blocks,
        _i64(x.bptr),
        int(x.block_size),
        _f32(x.values),
        *pairs,
        *fac_arrays,
        out,
    )
    return out.astype(VALUE_DTYPE)


# ----------------------------------------------------------------------
# TTV / TTM
# ----------------------------------------------------------------------


def _ttv_fn():
    name, source = codegen.ttv_source()
    argtypes = [_I64, _I64, _PTR_I64, _PTR_F32, _PTR_I32, _PTR_F32, _PTR_F64]
    return build.load_function(name, source, argtypes)


def ttv_coo(x: CooTensor, v: np.ndarray, mode: int) -> Optional[CooTensor]:
    """Compiled fiber-grain COO TTV; same output object shape as numpy."""
    from ...core.ttv import _check_vector

    mode = x.check_mode(mode)
    v = _check_vector(x.shape[mode], v)
    fn = _ttv_fn()
    if fn is None:
        return None
    ordered, fptr = x.fiber_partition(mode)
    other_modes = [m for m in range(x.order) if m != mode]
    out_shape = tuple(x.shape[m] for m in other_modes)
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return CooTensor(
            out_shape,
            np.empty((len(other_modes), 0), dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            validate=False,
        )
    fptr = _i64(fptr)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    vec = _f32(v)
    sums = np.empty(num_fibers, dtype=np.float64)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttv", mode), element_offsets=fptr
    )
    if chunks is None:
        fn(0, num_fibers, fptr, values, product_indices, vec, sums)
    else:

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            fn(u0, u1, fptr, values, product_indices, vec, sums)

        run_chunks(
            chunks,
            task,
            kernel="TTV-COO-JIT",
            grain="fiber",
            outputs=((sums, "unit"),),
        )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return CooTensor(
        out_shape, out_indices, sums.astype(VALUE_DTYPE), validate=False
    )


def _ttm_fn(rank: int):
    name, source = codegen.ttm_source(rank)
    argtypes = [_I64, _I64, _PTR_I64, _PTR_F32, _PTR_I32, _PTR_F32, _PTR_F64]
    return build.load_function(name, source, argtypes)


def ttm_coo(x: CooTensor, matrix: np.ndarray, mode: int):
    """Compiled fiber-grain COO TTM returning the numpy kernel's sCOO."""
    from ...core.ttm import _check_matrix
    from ...formats.scoo import SemiSparseCooTensor

    mode = x.check_mode(mode)
    matrix = _check_matrix(x.shape[mode], matrix)
    rank = matrix.shape[1]
    if rank < 1:
        return None
    fn = _ttm_fn(rank)
    if fn is None:
        return None
    ordered, fptr = x.fiber_partition(mode)
    out_shape = list(x.shape)
    out_shape[mode] = rank
    other_modes = [m for m in range(x.order) if m != mode]
    num_fibers = len(fptr) - 1
    if num_fibers == 0:
        return SemiSparseCooTensor(
            out_shape,
            [mode],
            np.empty((len(other_modes), 0), dtype=INDEX_DTYPE),
            np.empty((0, rank), dtype=VALUE_DTYPE),
        )
    fptr = _i64(fptr)
    values = _f32(ordered.values)
    product_indices = _i32(ordered.indices[mode])
    mat = _f32(matrix)
    rows = np.empty((num_fibers, rank), dtype=np.float64)
    chunks = kernel_chunk_plan(
        x, grain="fiber", key=("ttm", mode), element_offsets=fptr
    )
    if chunks is None:
        fn(0, num_fibers, fptr, values, product_indices, mat, rows)
    else:

        def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
            fn(u0, u1, fptr, values, product_indices, mat, rows)

        run_chunks(
            chunks,
            task,
            kernel="TTM-COO-JIT",
            grain="fiber",
            outputs=((rows, "unit"),),
        )
    out_indices = ordered.indices[other_modes][:, fptr[:-1]]
    return SemiSparseCooTensor(
        out_shape, [mode], out_indices, rows.astype(VALUE_DTYPE)
    )


# ----------------------------------------------------------------------
# TEW
# ----------------------------------------------------------------------


def _tew_fn(op: str):
    name, source = codegen.tew_source(op)
    argtypes = [_I64, _I64, _PTR_F32, _PTR_F32, _PTR_F32]
    return build.load_function(name, source, argtypes)


def tew_values(
    op: str, x_values: np.ndarray, y_values: np.ndarray, kernel: str
) -> Optional[np.ndarray]:
    """Compiled elementwise op over aligned value arrays.

    Bit-identical to the numpy ufunc (single-precision IEEE arithmetic
    either way), so callers may prefer it unconditionally.  Only worth
    the ctypes round-trip on inputs past the parallel threshold; tiny
    arrays return ``None`` and stay on the (faster) ufunc path.
    """
    if op not in codegen.TEW_OPS:
        return None
    nnz = int(x_values.shape[0])
    if not want_parallel(nnz):
        return None
    fn = _tew_fn(op)
    if fn is None:
        return None
    xs = _f32(x_values)
    ys = _f32(y_values)
    out = np.empty(nnz, dtype=VALUE_DTYPE)
    chunks = kernel_chunk_plan(None, grain="nonzero", total_elements=nnz)
    if chunks is None:
        fn(0, nnz, xs, ys, out)
        return out

    def task(chunk: int, u0: int, u1: int, e0: int, e1: int) -> None:
        fn(e0, e1, xs, ys, out)

    run_chunks(
        chunks, task, kernel=kernel, grain="nonzero", outputs=((out, "element"),)
    )
    return out
