"""Machine-readable effect summaries for generated C kernels.

Every generator in :mod:`repro.perf.jit.codegen` emits, alongside the C
translation unit, an :class:`EffectSummary` describing what the kernel
*does* to memory: each parameter's declared extent and value range, the
loop nest, the local index definitions, and every load/store with its
affine offset expression.  The summary is built from the *same* snippet
strings that are interpolated into the C source (see the ``_loop`` /
``_store_offset`` helpers in codegen), so the summary cannot drift from
the code by construction — and a mutation to those helpers (the
planted-bug drills in ``tests/test_kernelcheck.py``) changes both the
emitted C and the claims the checker must falsify.

:mod:`repro.analysis.kernelcheck` consumes these summaries and proves
three properties per kernel: thread-disjoint writes under both
schedules, in-bounds and in-int64 index arithmetic, and serial/parallel
store-sequence equivalence.  It additionally re-parses the loop headers
and local defs out of the C source and cross-checks them against the
summary, so a summary that lies about the source is itself a finding.

Expression snippets use the C spelling the kernels use: ``i64``/``i32``
casts, ``*``, ``+``, ``-``, integer literals, parameter names, and
single-subscript loads like ``targets[s]``.  Extents and value bounds
are expressions over the symbolic sizes in :attr:`EffectSummary.symbols`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Numeric caps used for integer-width checking (see kernelcheck).
CAP_I32 = 2**31 - 1
#: nnz / unit / block counts are bounded well below 2^63 in practice;
#: 2^48 elements is ~256 TiB of indices, far beyond any input the suite
#: loads, and leaves headroom to prove i64 products never overflow.
CAP_COUNT = 2**48
#: HiCOO element indices are u8, so block_size is at most 256.
CAP_BLOCK = 256


@dataclass(frozen=True)
class Param:
    """One formal parameter of a kernel's serial entry point.

    ``extent`` is the number of addressable elements (an expression
    over the summary's symbols) for pointer params; ``None`` for
    scalars.  ``value_min``/``value_max`` bound the *values* stored in
    an integer array (used when the array is loaded as an index).
    ``props`` carries semantic flags the checker relies on:

    ``strictly_increasing``
        consecutive elements strictly increase (e.g. ``targets``), which
        is what makes ``("rows", targets)`` ownership disjoint.
    ``nondecreasing``
        a CSR-style offset array (``seg_offsets``, ``win_ptr``...).
    ``window_row``
        the block-index array whose per-chunk windows are row-disjoint
        under ``("row_blocks", ...)`` ownership.
    """

    name: str
    ctype: str
    extent: Optional[str] = None
    value_min: Optional[str] = None
    value_max: Optional[str] = None
    props: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Loop:
    """One ``for`` loop: ``for (<width> <var> = <lo>; <var> < <hi>; ++<var>)``.

    Bounds are expressions over symbols, params (single subscripts of
    enclosing loop vars), and enclosing loop variables.  The checker
    re-parses the same header out of the C source; the *source* wins on
    mismatch, with a ``kernel-summary`` finding recording the drift.
    """

    var: str
    lo: str
    hi: str
    width: str = "i64"


@dataclass(frozen=True)
class Def:
    """A local ``const <width> <name> = <expr>;`` index definition."""

    name: str
    expr: str
    width: str = "i64"


@dataclass(frozen=True)
class Access:
    """One load or store: ``array[offset .. offset + span)``.

    ``kind`` is ``"load"`` or ``"store"``.  ``span`` is the contiguous
    element count touched per visit (the rank for a row slab, 1 for a
    scalar element).  ``slab``, when set on a store, names a per-chunk
    scratch parameter and its per-chunk element count — the parallel
    entry must rebase that pointer by ``chunk * slab_elems`` (the Gram
    accumulator pattern) for the store to be chunk-disjoint.
    """

    array: str
    offset: str
    span: int
    kind: str = "store"
    slab: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class EffectSummary:
    """Everything kernelcheck needs to know about one kernel.

    ``ownership`` mirrors the runtime declarations consumed by
    :mod:`repro.analysis.sanitizer`:

    - ``("rows", targets)``: chunk owns output rows named by a strictly
      increasing per-unit ``targets`` array.
    - ``("row_blocks", binds, "block_size")``: chunk owns the output
      rows covered by its window's blocks.
    - ``("unit",)`` / ``("element",)``: chunk owns the slot indexed by
      the unit variable itself.
    - ``("serial",)``: kernel has no parallel entry; emitting one is a
      ``kernel-par`` violation.

    ``symbols`` maps each symbolic size (``nnz``, ``dim0``...) to its
    numeric cap for integer-width proofs.  ``pairs`` declares format
    invariants of the shape ``base*scale + fine <= bound`` that the
    bounds engine may assume (HiCOO's unpadded output needs
    ``binds[b]*block_size + einds[e] <= dim - 1``); each entry is
    ``(base_array, scale_symbol, fine_array, bound_expr)``.
    """

    kernel: str
    name: str
    order: int
    rank: int
    unit_var: str
    symbols: Dict[str, int]
    params: Tuple[Param, ...]
    loops: Tuple[Loop, ...]
    defs: Tuple[Def, ...] = ()
    accesses: Tuple[Access, ...] = ()
    ownership: Tuple[str, ...] = ("serial",)
    pairs: Tuple[Tuple[str, str, str, str], ...] = ()
    par_name: Optional[str] = None
    par_params: Tuple[str, ...] = ()
    par_overrides: Dict[str, str] = field(default_factory=dict)

    def param(self, name: str) -> Optional[Param]:
        for param in self.params:
            if param.name == name:
                return param
        return None


@dataclass(frozen=True)
class KernelArtifact:
    """A generated kernel: its C source plus the effect summary."""

    name: str
    source: str
    effects: EffectSummary
