"""Row scatter engine: segmented reduction over pre-sorted nonzeros.

MTTKRP's output update is a scatter-add of per-nonzero rank-``R`` rows
into the output factor.  The seed implemented it as one ``np.bincount``
per rank column; Nisa et al. show the winning formulation is a segmented
reduction over nonzeros pre-sorted by the output index.  With a cached
:class:`~repro.perf.plans.ModeSortPlan` the sort is free after the first
call and the whole scatter is a single ``np.add.reduceat`` across all
rank columns at once.

Three implementations with identical semantics:

* :func:`scatter_rows_segmented` — reduceat over a mode sort plan;
* :func:`scatter_cols_segmented` — the same reduction on a transposed
  ``(rank, nnz)`` operand whose segments are contiguous (the warm path);
* :func:`scatter_rows_bincount` — the seed's per-column bincount (the
  uncached fallback; no sort needed);
* :func:`scatter_rows_add_at` — ``np.add.at`` reference used by tests.

All three accumulate in float64 regardless of input dtype, matching the
seed's numerics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .plans import ModeSortPlan


def scatter_rows_bincount(
    target_indices: np.ndarray, rows: np.ndarray, num_rows: int
) -> np.ndarray:
    """Seed scatter: one ``np.bincount`` per rank column (f64 accumulate)."""
    rank = rows.shape[1]
    out = np.empty((num_rows, rank), dtype=np.float64)
    for r in range(rank):
        out[:, r] = np.bincount(
            target_indices, weights=rows[:, r], minlength=num_rows
        )
    return out


def scatter_rows_add_at(
    target_indices: np.ndarray, rows: np.ndarray, num_rows: int
) -> np.ndarray:
    """Reference scatter via ``np.add.at`` (slow, unconditionally correct)."""
    out = np.zeros((num_rows, rows.shape[1]), dtype=np.float64)
    np.add.at(out, target_indices, rows.astype(np.float64, copy=False))
    return out


def scatter_rows_segmented(
    plan: ModeSortPlan, sorted_rows: np.ndarray, num_rows: int
) -> np.ndarray:
    """Segmented-reduction scatter over rows already in plan sort order.

    ``sorted_rows`` must be permuted by ``plan.perm`` (the kernels build
    them directly from ``plan.sorted_indices`` so no permute is needed).
    ``reduceat`` accumulates in float64 even for float32 rows.
    """
    out = np.zeros((num_rows, sorted_rows.shape[1]), dtype=np.float64)
    if plan.num_segments:
        out[plan.unique_targets] = np.add.reduceat(
            sorted_rows, plan.segment_starts, axis=0, dtype=np.float64
        )
    return out


def scatter_cols_segmented(
    plan: ModeSortPlan, sorted_cols: np.ndarray, num_rows: int
) -> np.ndarray:
    """Segmented scatter over a ``(rank, nnz)`` column-major operand.

    Same reduction as :func:`scatter_rows_segmented`, but each segment is
    contiguous in memory (``reduceat`` along axis 1 of a C-contiguous
    array), which is markedly faster for the wide, shallow shapes MTTKRP
    produces.  Returns the usual ``(num_rows, rank)`` layout.
    """
    out = np.zeros((num_rows, sorted_cols.shape[0]), dtype=np.float64)
    if plan.num_segments:
        out[plan.unique_targets] = np.add.reduceat(
            sorted_cols, plan.segment_starts, axis=1, dtype=np.float64
        ).T
    return out


def scatter_rows(
    target_indices: np.ndarray,
    rows: np.ndarray,
    num_rows: int,
    *,
    plan: Optional[ModeSortPlan] = None,
) -> np.ndarray:
    """Scatter-add rank rows into ``num_rows`` output rows.

    With a plan, ``rows`` are permuted into sort order and reduced with
    ``reduceat``; without one the bincount fallback runs (no sort, same
    result) — the right choice for one-shot, uncached calls.
    """
    if rows.shape[0] == 0:
        return np.zeros((num_rows, rows.shape[1]), dtype=np.float64)
    if plan is not None:
        return scatter_rows_segmented(plan, rows[plan.perm], num_rows)
    return scatter_rows_bincount(target_indices, rows, num_rows)
