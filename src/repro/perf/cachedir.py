"""Shared on-disk cache location and machine identity helpers.

Both persistent caches — the autotuner's tuning file and the JIT
compiler's object cache — key their entries on a coarse machine
signature and live under one per-user cache root.  This module owns
both concerns so the two subsystems cannot drift apart:

* :func:`cache_root` resolves the root directory, honoring
  ``XDG_CACHE_HOME`` and falling back to ``~/.cache/repro``;
* :func:`cache_subdir` creates (best-effort) a named subdirectory,
  returning the path even when the filesystem is read-only — callers
  degrade gracefully when their first write fails, exactly like the
  tuning cache always has;
* :func:`machine_signature` is the host fingerprint persisted next to
  every cached artifact, so entries never leak across architectures,
  Python versions, or numpy builds.
"""

from __future__ import annotations

import os
import platform
import sys
from pathlib import Path

import numpy as np


def cache_root() -> Path:
    """Per-user cache root: ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


def cache_subdir(name: str) -> Path:
    """A named subdirectory of the cache root, created best-effort.

    A read-only home (or any other ``OSError`` from ``mkdir``) is
    tolerated: the path is still returned and the caller's first write
    attempt fails in its own ``try``, degrading to in-process behavior —
    the same contract the tuning cache's ``_disk_store`` follows.
    """
    path = cache_root() / name
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:
        pass
    return path


def machine_signature() -> str:
    """Coarse host identity baked into every persisted cache entry."""
    return "-".join(
        [
            platform.machine() or "unknown",
            f"{os.cpu_count() or 1}cpu",
            f"py{sys.version_info.major}.{sys.version_info.minor}",
            f"np{np.__version__}",
        ]
    )
