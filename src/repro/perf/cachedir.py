"""Shared on-disk cache location and machine identity helpers.

Both persistent caches — the autotuner's tuning file and the JIT
compiler's object cache — key their entries on a coarse machine
signature and live under one per-user cache root.  This module owns
both concerns so the two subsystems cannot drift apart:

* :func:`cache_root` resolves the root directory, honoring
  ``XDG_CACHE_HOME`` and falling back to ``~/.cache/repro``;
* :func:`cache_subdir` creates (best-effort) a named subdirectory,
  returning the path even when the filesystem is read-only — callers
  degrade gracefully when their first write fails, exactly like the
  tuning cache always has;
* :func:`machine_signature` is the host fingerprint persisted next to
  every cached artifact, so entries never leak across architectures,
  Python versions, or numpy builds;
* :func:`toolchain_info` probes the C toolchain once per process —
  compiler identity (name plus a hash of its ``--version`` banner) and
  whether ``-fopenmp`` links — and folds both into the signature, so
  compiled objects and persisted tuning decisions invalidate when the
  compiler is upgraded or OpenMP support appears/disappears.
"""

from __future__ import annotations

import hashlib
import os
import platform
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

#: Source for the OpenMP link probe: touching ``omp_get_max_threads``
#: forces the compiler to actually resolve the OpenMP runtime, not just
#: accept the flag.
_OMP_PROBE_SOURCE = (
    "#include <omp.h>\n"
    "int repro_omp_probe(void) { return omp_get_max_threads(); }\n"
)

_toolchain_memo: Optional[Tuple[str, bool]] = None


def cache_root() -> Path:
    """Per-user cache root: ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``."""
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro"
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


def cache_subdir(name: str) -> Path:
    """A named subdirectory of the cache root, created best-effort.

    A read-only home (or any other ``OSError`` from ``mkdir``) is
    tolerated: the path is still returned and the caller's first write
    attempt fails in its own ``try``, degrading to in-process behavior —
    the same contract the tuning cache's ``_disk_store`` follows.
    """
    path = cache_root() / name
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError:
        pass
    return path


def _probe_openmp(cc: str) -> bool:
    """True when ``cc`` can compile and link an OpenMP translation unit."""
    try:
        with tempfile.TemporaryDirectory(prefix="repro-omp-") as tmp:
            c_path = Path(tmp) / "probe.c"
            c_path.write_text(_OMP_PROBE_SOURCE)
            proc = subprocess.run(
                [
                    cc,
                    "-fopenmp",
                    "-shared",
                    "-fPIC",
                    "-o",
                    str(Path(tmp) / "probe.so"),
                    str(c_path),
                ],
                capture_output=True,
                timeout=60,
            )
            return proc.returncode == 0
    except (OSError, subprocess.SubprocessError):
        return False


def toolchain_info() -> Tuple[str, bool]:
    """``(compiler_identity, openmp_available)``, probed once per process.

    The identity is the compiler basename plus a short hash of the first
    line of ``--version`` output, so a toolchain upgrade (same path, new
    binary) changes the signature.  ``("nocc", False)`` when no compiler
    is on PATH.  Tests that monkeypatch ``shutil.which`` must call
    :func:`reset_toolchain` (``jit.build.reset`` does so).
    """
    global _toolchain_memo
    if _toolchain_memo is not None:
        return _toolchain_memo
    cc = shutil.which("gcc") or shutil.which("cc")
    if cc is None:
        _toolchain_memo = ("nocc", False)
        return _toolchain_memo
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, timeout=30
        )
        banner = proc.stdout.decode("utf-8", "replace").splitlines()
        first = banner[0] if banner else ""
    except (OSError, subprocess.SubprocessError):
        first = ""
    digest = hashlib.sha1(first.encode("utf-8")).hexdigest()[:8]
    identity = f"{Path(cc).name}-{digest}"
    _toolchain_memo = (identity, _probe_openmp(cc))
    return _toolchain_memo


def openmp_available() -> bool:
    """True when the probed toolchain supports ``-fopenmp``."""
    return toolchain_info()[1]


def reset_toolchain() -> None:
    """Drop the toolchain memo (tests monkeypatching ``shutil.which``)."""
    global _toolchain_memo
    _toolchain_memo = None


def machine_signature() -> str:
    """Coarse host identity baked into every persisted cache entry."""
    identity, openmp = toolchain_info()
    return "-".join(
        [
            platform.machine() or "unknown",
            f"{os.cpu_count() or 1}cpu",
            f"py{sys.version_info.major}.{sys.version_info.minor}",
            f"np{np.__version__}",
            f"{identity}+omp" if openmp else identity,
        ]
    )
