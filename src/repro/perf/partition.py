"""OpenMP-style partitioners: tensor structure into per-worker chunks.

The paper's CPU kernels are OpenMP loops over nonzeros, fibers, or
blocks, and its performance discussion repeatedly comes back to *which
iterations land on which thread* — the schedule clause.  PASTA picks a
parallelization grain per kernel; Nisa et al. show the partitioning
strategy is the dominant MTTKRP performance lever.  This module
reproduces that layer for the executor in :mod:`repro.perf.parallel`:

* a *unit* is one indivisible work item a kernel cannot split without
  breaking output ownership — an output-row segment (MTTKRP), a fiber
  (TTV/TTM), or a single nonzero (TEW/TS);
* a :class:`ChunkPlan` cuts the unit range into contiguous chunks with
  one of the OpenMP policies — ``static`` (one even block per worker,
  pre-assigned), ``dynamic`` (fixed-size chunks pulled by whichever
  worker is free), ``guided`` (decreasing chunk sizes, large first);
* because chunks always cover *whole* units, every chunk owns a
  disjoint slice of the output: no atomics are needed and the chunked
  execution is bit-identical to serial.

Chunk boundaries are index-derived (they depend only on the unit
offsets, worker count, and policy), so plans are memoized in the
:mod:`repro.perf.plan_cache` under the structural kind ``"partition"``,
keyed by ``(grain, mode, workers, policy, chunk_units)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from .plan_cache import PlanCache, cache_enabled, get_plan_cache

#: OpenMP schedule policies the partitioners implement.
POLICY_STATIC = "static"
POLICY_DYNAMIC = "dynamic"
POLICY_GUIDED = "guided"
POLICIES = (POLICY_STATIC, POLICY_DYNAMIC, POLICY_GUIDED)

#: Plan-cache kind for memoized chunk plans (index-derived, structural).
KIND_PARTITION = "partition"

#: Default chunks-per-worker for the dynamic policy: enough chunks that
#: a skewed unit distribution can rebalance, few enough that per-chunk
#: dispatch overhead stays negligible next to the numpy work.
DYNAMIC_CHUNKS_PER_WORKER = 8


def check_policy(policy: str) -> str:
    """Validate a schedule policy name, returning it unchanged."""
    if policy not in POLICIES:
        raise ValueError(
            f"unknown schedule policy {policy!r}; use one of {POLICIES}"
        )
    return policy


@dataclass(frozen=True)
class ChunkPlan:
    """Contiguous chunks of a kernel's unit range, ready to execute.

    Attributes
    ----------
    policy:
        The OpenMP schedule policy that produced the chunks.
    workers:
        Worker count the plan was built for.  ``static`` pre-assigns
        chunk ``i`` to worker ``i % workers``; the other policies let
        any worker pull the next chunk.
    unit_bounds:
        ``(num_chunks + 1,)`` boundaries in unit space; chunk ``c``
        covers units ``unit_bounds[c]:unit_bounds[c + 1]``.
    offsets:
        ``(num_chunks + 1,)`` boundaries in element (nonzero) space —
        the slice of the underlying arrays each chunk touches.
    """

    policy: str
    workers: int
    unit_bounds: np.ndarray
    offsets: np.ndarray

    @property
    def num_chunks(self) -> int:
        """Number of chunks (0 for an empty unit range)."""
        return int(self.unit_bounds.shape[0]) - 1

    @property
    def num_units(self) -> int:
        """Number of units covered."""
        return int(self.unit_bounds[-1]) if self.unit_bounds.size else 0

    @property
    def total_elements(self) -> int:
        """Number of elements (nonzeros) covered by all chunks."""
        return int(self.offsets[-1]) if self.offsets.size else 0

    def unit_counts(self) -> np.ndarray:
        """Units per chunk."""
        return np.diff(self.unit_bounds)

    def element_counts(self) -> np.ndarray:
        """Elements per chunk — the per-chunk work sizes."""
        return np.diff(self.offsets)


# ----------------------------------------------------------------------
# Policy chunkers (unit space)
# ----------------------------------------------------------------------


def _static_bounds(num_units: int, workers: int) -> np.ndarray:
    """One contiguous, near-even block of units per worker (OMP static)."""
    chunks = min(workers, num_units)
    if chunks <= 0:
        return np.zeros(1, dtype=np.int64)
    return (np.arange(chunks + 1, dtype=np.int64) * num_units) // chunks


def _dynamic_bounds(
    num_units: int, workers: int, chunk_units: Optional[int]
) -> np.ndarray:
    """Fixed-size chunks, pulled at runtime by whichever worker is free."""
    if num_units <= 0:
        return np.zeros(1, dtype=np.int64)
    if chunk_units is None:
        chunk_units = -(-num_units // (workers * DYNAMIC_CHUNKS_PER_WORKER))
    chunk_units = max(1, int(chunk_units))
    bounds = np.arange(0, num_units, chunk_units, dtype=np.int64)
    return np.append(bounds, num_units)


def _guided_bounds(
    num_units: int, workers: int, chunk_units: Optional[int]
) -> np.ndarray:
    """Decreasing chunk sizes: each is ``ceil(remaining / workers)``."""
    if num_units <= 0:
        return np.zeros(1, dtype=np.int64)
    min_chunk = max(1, int(chunk_units)) if chunk_units is not None else 1
    bounds = [0]
    remaining = num_units
    while remaining > 0:
        step = max(min_chunk, -(-remaining // workers))
        step = min(step, remaining)
        bounds.append(bounds[-1] + step)
        remaining -= step
    return np.asarray(bounds, dtype=np.int64)


_CHUNKERS = {
    POLICY_STATIC: lambda n, w, c: _static_bounds(n, w),
    POLICY_DYNAMIC: _dynamic_bounds,
    POLICY_GUIDED: _guided_bounds,
}


# ----------------------------------------------------------------------
# Plan builders
# ----------------------------------------------------------------------


def build_chunk_plan(
    element_offsets: np.ndarray,
    workers: int,
    policy: str = POLICY_DYNAMIC,
    chunk_units: Optional[int] = None,
) -> ChunkPlan:
    """Chunk a unit range described by its element offsets.

    ``element_offsets`` has length ``num_units + 1``; unit ``u`` spans
    elements ``element_offsets[u]:element_offsets[u + 1]`` of the
    kernel's (sorted) arrays — e.g. a mode-sort plan's segment offsets
    or a fiber pointer array.
    """
    check_policy(policy)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    element_offsets = np.asarray(element_offsets, dtype=np.int64)
    num_units = int(element_offsets.shape[0]) - 1
    unit_bounds = _CHUNKERS[policy](num_units, workers, chunk_units)
    return ChunkPlan(
        policy=policy,
        workers=workers,
        unit_bounds=unit_bounds,
        offsets=element_offsets[unit_bounds],
    )


def build_element_chunk_plan(
    total_elements: int,
    workers: int,
    policy: str = POLICY_DYNAMIC,
    chunk_units: Optional[int] = None,
) -> ChunkPlan:
    """Chunk an elementwise range (unit == element, TEW/TS grain).

    Equivalent to :func:`build_chunk_plan` with identity offsets but
    without materializing an ``arange`` over every nonzero.
    """
    check_policy(policy)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    bounds = _CHUNKERS[policy](int(total_elements), workers, chunk_units)
    return ChunkPlan(
        policy=policy, workers=workers, unit_bounds=bounds, offsets=bounds
    )


def chunk_plan_for(
    tensor: object,
    *,
    grain: str,
    key: Hashable,
    element_offsets: np.ndarray,
    workers: int,
    policy: str = POLICY_DYNAMIC,
    chunk_units: Optional[int] = None,
    cache: Optional[PlanCache] = None,
) -> ChunkPlan:
    """Memoized chunk plan for one tensor's unit structure.

    Keyed by ``(grain, key, workers, policy, chunk_units)`` on top of the
    tensor's identity, so e.g. CP-ALS pays the partitioning once per
    (mode, worker count) for the whole decomposition.  Falls back to an
    uncached build when caching is disabled.
    """

    def build() -> ChunkPlan:
        return build_chunk_plan(element_offsets, workers, policy, chunk_units)

    if not cache_enabled():
        return build()
    cache = cache if cache is not None else get_plan_cache()
    return cache.get(
        tensor,
        KIND_PARTITION,
        (grain, key, int(workers), policy, chunk_units),
        build,
    )
