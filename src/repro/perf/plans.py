"""Kernel plan builders: the cached pre-processing artifacts.

Each plan captures one pre-processing product the paper's suite computes
*outside* the timed kernel region:

* :class:`ModeSortPlan` — nonzeros sorted by one mode's index, with
  segment boundaries, which turns MTTKRP's scattered row updates into a
  single segmented reduction (:mod:`repro.perf.scatter`);
* :class:`FiberPlan` — the fiber partition TTV/TTM pre-processing builds
  (Algorithm 1 line 1): a lexicographic sort permutation plus the fiber
  pointer array;
* :class:`GhicooFiberPlan` — the intra-block fiber grouping of the
  direct gHiCOO TTV/TTM kernels, plus the output's block structure;
* expanded HiCOO indices, Morton sort permutations, and whole cached
  HiCOO/gHiCOO conversions.

Plans are *structural*: they are derived from index arrays only, never
from values, so tensors that share coordinates (e.g. tensor-scalar
results) can share them via :meth:`PlanCache.adopt`.  The two exceptions
— cached HiCOO/gHiCOO conversions — embed values and are marked
value-bearing in :mod:`repro.perf.plan_cache`.

Every ``*_plan`` helper returns ``None`` when caching is disabled; the
matching ``build_*`` function computes the same plan uncached, so
kernels can fall back without duplicating the math.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..formats.coo import INDEX_DTYPE, CooTensor
from ..formats.ghicoo import GHicooTensor
from ..formats.hicoo import HicooTensor
from .plan_cache import PlanCache, cache_enabled, get_plan_cache

KIND_MODE_SORT = "mode_sort"
KIND_FIBER = "fiber_partition"
KIND_EXPANSION = "hicoo_expansion"
KIND_MORTON = "morton_perm"
KIND_GHICOO_FIBER = "ghicoo_fiber_sort"
KIND_GHICOO_BUILD = "ghicoo_build"
KIND_HICOO_BUILD = "hicoo_build"
KIND_EXPANDED_COO = "expanded_coo"
KIND_HICOO_OWNERSHIP = "hicoo_ownership"

_CooLike = Union[CooTensor, HicooTensor]


def _cache(cache: Optional[PlanCache]) -> PlanCache:
    return cache if cache is not None else get_plan_cache()


# ----------------------------------------------------------------------
# Mode sort plans (MTTKRP scatter pre-processing)
# ----------------------------------------------------------------------


class ModeSortPlan:
    """Nonzeros sorted by one mode's index, segmented by output row.

    Attributes
    ----------
    mode:
        The (normalized) mode whose index is the sort key.
    perm:
        Stable permutation sorting nonzeros by ``indices[mode]``.
    sorted_indices:
        The full ``(order, nnz)`` index matrix permuted by ``perm``.
    segment_starts:
        Offsets (into the sorted order) where a new output row begins —
        the ``reduceat`` boundaries.
    unique_targets:
        The output row of each segment (strictly increasing).
    """

    __slots__ = (
        "mode",
        "perm",
        "sorted_indices",
        "segment_starts",
        "unique_targets",
        "_segment_offsets",
    )

    def __init__(
        self,
        mode: int,
        perm: np.ndarray,
        sorted_indices: np.ndarray,
        segment_starts: np.ndarray,
        unique_targets: np.ndarray,
    ) -> None:
        self.mode = mode
        self.perm = perm
        self.sorted_indices = sorted_indices
        self.segment_starts = segment_starts
        self.unique_targets = unique_targets
        self._segment_offsets: Optional[np.ndarray] = None

    @property
    def nnz(self) -> int:
        """Number of nonzeros the plan covers."""
        return int(self.perm.shape[0])

    @property
    def num_segments(self) -> int:
        """Number of distinct output rows (nonempty segments)."""
        return int(self.segment_starts.shape[0])

    def sorted_values(self, values: np.ndarray) -> np.ndarray:
        """Gather a value array into the plan's sorted order."""
        return np.take(values, self.perm)

    def segment_offsets(self) -> np.ndarray:
        """Segment boundaries extended with the end offset.

        Length ``num_segments + 1``: segment ``s`` spans sorted elements
        ``offsets[s]:offsets[s + 1]`` — the unit structure the parallel
        executor partitions.  Built lazily and kept with the plan.
        """
        if self._segment_offsets is None:
            self._segment_offsets = np.concatenate(
                [self.segment_starts, [self.nnz]]
            ).astype(np.int64)
        return self._segment_offsets


def _build_mode_sort(indices: np.ndarray, mode: int) -> ModeSortPlan:
    perm = np.argsort(indices[mode], kind="stable")
    sorted_indices = np.ascontiguousarray(indices[:, perm])
    targets = sorted_indices[mode]
    if targets.size:
        boundary = np.concatenate(([True], targets[1:] != targets[:-1]))
        starts = np.flatnonzero(boundary)
    else:
        starts = np.empty(0, dtype=np.int64)
    return ModeSortPlan(mode, perm, sorted_indices, starts, targets[starts])


def build_mode_sort_plan(tensor: _CooLike, mode: int) -> ModeSortPlan:
    """Build a mode sort plan without touching the cache."""
    return _build_mode_sort(_indices_of(tensor), mode)


def mode_sort_plan(
    tensor: _CooLike, mode: int, *, cache: Optional[PlanCache] = None
) -> Optional[ModeSortPlan]:
    """Cached mode sort plan, or ``None`` when caching is disabled.

    Accepts COO and HiCOO tensors; for HiCOO the sort runs over the
    (cached) expanded coordinates, in the tensor's own storage order, so
    ``plan.perm`` applies directly to ``tensor.values``.
    """
    if not cache_enabled():
        return None
    cache = _cache(cache)
    return cache.get(
        tensor,
        KIND_MODE_SORT,
        int(mode),
        lambda: _build_mode_sort(_indices_of(tensor, cache=cache), mode),
    )


def _indices_of(
    tensor: _CooLike, *, cache: Optional[PlanCache] = None
) -> np.ndarray:
    """Element coordinates of a COO or HiCOO tensor, in storage order."""
    if isinstance(tensor, HicooTensor):
        if cache is not None:
            return cache.get(
                tensor,
                KIND_EXPANSION,
                None,
                lambda: _expand_hicoo_indices(tensor),
            )
        return _expand_hicoo_indices(tensor)
    return tensor.indices


# ----------------------------------------------------------------------
# Fiber partition plans (TTV/TTM pre-processing)
# ----------------------------------------------------------------------


class FiberPlan:
    """Fiber grouping of one product mode (Algorithm 1 line 1).

    ``perm`` sorts nonzeros so each mode-``mode`` fiber is contiguous
    with the product mode varying fastest; ``fptr`` (length
    ``num_fibers + 1``) holds fiber start offsets.
    """

    __slots__ = ("mode", "other_modes", "perm", "sorted_indices", "fptr")

    def __init__(
        self,
        mode: int,
        other_modes: Tuple[int, ...],
        perm: np.ndarray,
        sorted_indices: np.ndarray,
        fptr: np.ndarray,
    ) -> None:
        self.mode = mode
        self.other_modes = other_modes
        self.perm = perm
        self.sorted_indices = sorted_indices
        self.fptr = fptr

    @property
    def num_fibers(self) -> int:
        """Number of nonempty mode-``mode`` fibers (``M_F`` in Table I)."""
        return int(self.fptr.shape[0]) - 1

    def fiber_lengths(self) -> np.ndarray:
        """Nonzeros per fiber — the TTV/TTM work-unit array."""
        return np.diff(self.fptr)

    def ordered_tensor(self, tensor: CooTensor) -> CooTensor:
        """The fiber-sorted tensor (values gathered from ``tensor``)."""
        return CooTensor(
            tensor.shape,
            self.sorted_indices,
            tensor.values[self.perm],
            validate=False,
        )


def build_fiber_plan(tensor: CooTensor, mode: int) -> FiberPlan:
    """Build a fiber partition plan without touching the cache."""
    mode = mode % tensor.order
    other_modes = tuple(m for m in range(tensor.order) if m != mode)
    perm = tensor.lexicographic_order(list(other_modes) + [mode])
    sorted_indices = np.ascontiguousarray(tensor.indices[:, perm])
    nnz = perm.shape[0]
    if nnz == 0:
        return FiberPlan(
            mode, other_modes, perm, sorted_indices, np.zeros(1, dtype=np.int64)
        )
    other = sorted_indices[list(other_modes)]
    boundary = np.any(other[:, 1:] != other[:, :-1], axis=0)
    starts = np.flatnonzero(np.concatenate(([True], boundary)))
    fptr = np.concatenate([starts, [nnz]]).astype(np.int64)
    return FiberPlan(mode, other_modes, perm, sorted_indices, fptr)


def fiber_plan(
    tensor: CooTensor, mode: int, *, cache: Optional[PlanCache] = None
) -> Optional[FiberPlan]:
    """Cached fiber partition plan, or ``None`` when caching is disabled."""
    if not cache_enabled():
        return None
    mode = mode % tensor.order
    return _cache(cache).get(
        tensor, KIND_FIBER, mode, lambda: build_fiber_plan(tensor, mode)
    )


def fiber_fptr(tensor: CooTensor, mode: int) -> np.ndarray:
    """Fiber pointer array of one mode, cached when caching is enabled.

    The ``schedule_*`` functions use this to read fiber counts and
    lengths without gathering values or rebuilding a sorted tensor.
    """
    plan = fiber_plan(tensor, mode)
    if plan is None:
        plan = build_fiber_plan(tensor, mode)
    return plan.fptr


# ----------------------------------------------------------------------
# HiCOO expansion
# ----------------------------------------------------------------------


def _expand_hicoo_indices(tensor: HicooTensor) -> np.ndarray:
    if tensor.num_blocks == 0:
        return np.empty((tensor.order, 0), dtype=INDEX_DTYPE)
    counts = tensor.nnz_per_block()
    expanded = np.repeat(tensor.binds, counts, axis=1).astype(np.int64)
    return (expanded * tensor.block_size + tensor.einds).astype(INDEX_DTYPE)


def expanded_indices(
    tensor: HicooTensor, *, cache: Optional[PlanCache] = None
) -> np.ndarray:
    """HiCOO element coordinates ``(order, nnz)``, cached when enabled.

    The result is in the tensor's own (Morton) storage order, aligned
    with ``tensor.values``.
    """
    if not cache_enabled():
        return _expand_hicoo_indices(tensor)
    return _cache(cache).get(
        tensor, KIND_EXPANSION, None, lambda: _expand_hicoo_indices(tensor)
    )


def expanded_coo(tensor: HicooTensor) -> CooTensor:
    """The HiCOO tensor expanded to COO, memoized per tensor.

    The *wrapper itself* is cached (kind :data:`KIND_EXPANDED_COO`), not
    just the index matrix: downstream per-tensor artifacts — mode-sort
    plans, fiber partitions, autotune decisions — are keyed on the COO
    object, so handing dispatch a fresh wrapper every call silently
    discarded all of them.  Value-bearing (the wrapper embeds the values
    array), so it is dropped rather than transferred on plan adoption.
    With caching disabled a fresh wrapper is built each call.
    """

    def build() -> CooTensor:
        return CooTensor(
            tensor.shape, expanded_indices(tensor), tensor.values, validate=False
        )

    if not cache_enabled():
        return build()
    return _cache(None).get(tensor, KIND_EXPANDED_COO, None, build)


# ----------------------------------------------------------------------
# Morton permutations and format rebuild caching
# ----------------------------------------------------------------------


def morton_perm(
    tensor: CooTensor,
    block_size: int,
    modes: Optional[Sequence[int]] = None,
    *,
    cache: Optional[PlanCache] = None,
) -> np.ndarray:
    """Permutation sorting nonzeros by the Morton code of their block.

    ``modes=None`` blocks every mode (plain HiCOO); a subset gives the
    gHiCOO ordering over the compressed modes only.  Cached per
    ``(block_size, modes)`` when caching is enabled.
    """
    from ..formats.morton import morton_sort_order

    mode_key = None if modes is None else tuple(sorted(modes))

    def build() -> np.ndarray:
        idx = tensor.indices.astype(np.int64)
        if mode_key is not None:
            idx = idx[list(mode_key)]
        return morton_sort_order(idx // block_size)

    if not cache_enabled():
        return build()
    return _cache(cache).get(
        tensor, KIND_MORTON, (int(block_size), mode_key), build
    )


def hicoo_for(
    tensor: CooTensor, block_size: int, *, cache: Optional[PlanCache] = None
) -> HicooTensor:
    """A HiCOO conversion of ``tensor``, memoized per block size.

    Value-bearing: the cached object embeds the tensor's values, so it is
    dropped (not transferred) when plans are adopted by a new tensor.
    """
    if not cache_enabled():
        return HicooTensor.from_coo(tensor, block_size)
    return _cache(cache).get(
        tensor,
        KIND_HICOO_BUILD,
        int(block_size),
        lambda: HicooTensor.from_coo(tensor, block_size),
    )


class HicooOwnershipPlan:
    """Output-ownership regrouping of HiCOO blocks for one mode.

    Groups a HiCOO tensor's blocks by their ``mode`` block coordinate
    ("output window") so every window's blocks write a disjoint
    ``block_size`` range of output rows — the atomic-free decomposition
    the multithreaded compiled MTTKRP runs on.  The grouping sort is
    *stable*: within a window, blocks keep their Morton order, so the
    per-row double accumulation order matches the serial kernel exactly
    and parallel results are bit-identical.

    ``block_perm[win_ptr[w]:win_ptr[w + 1]]`` are the block ids of
    window ``w``; ``element_offsets`` holds cumulative nonzero counts
    per window (the partitioner's load model); ``window_targets`` the
    output-mode block coordinate of each window (the sanitizer's
    ownership declaration).
    """

    __slots__ = (
        "mode",
        "block_perm",
        "win_ptr",
        "element_offsets",
        "window_targets",
    )

    def __init__(
        self,
        mode: int,
        block_perm: np.ndarray,
        win_ptr: np.ndarray,
        element_offsets: np.ndarray,
        window_targets: np.ndarray,
    ) -> None:
        self.mode = mode
        self.block_perm = block_perm
        self.win_ptr = win_ptr
        self.element_offsets = element_offsets
        self.window_targets = window_targets

    @property
    def num_windows(self) -> int:
        """Number of distinct output windows (parallel work units)."""
        return int(self.win_ptr.shape[0]) - 1


def build_hicoo_ownership_plan(
    tensor: HicooTensor, mode: int
) -> HicooOwnershipPlan:
    """Build the ownership plan for one output mode, uncached."""
    mode = mode % tensor.order
    keys = tensor.binds[mode].astype(np.int64)
    num_blocks = int(keys.shape[0])
    if num_blocks == 0:
        zero = np.zeros(1, dtype=np.int64)
        return HicooOwnershipPlan(
            mode,
            np.empty(0, dtype=np.int64),
            zero,
            zero.copy(),
            np.empty(0, dtype=np.int64),
        )
    perm = np.argsort(keys, kind="stable").astype(np.int64)
    sorted_keys = keys[perm]
    boundary = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.flatnonzero(np.concatenate(([True], boundary)))
    win_ptr = np.concatenate([starts, [num_blocks]]).astype(np.int64)
    counts = tensor.nnz_per_block().astype(np.int64)
    csum = np.concatenate([[0], np.cumsum(counts[perm])]).astype(np.int64)
    element_offsets = csum[win_ptr]
    return HicooOwnershipPlan(
        mode, perm, win_ptr, element_offsets, sorted_keys[starts]
    )


def hicoo_ownership_plan(
    tensor: HicooTensor, mode: int, *, cache: Optional[PlanCache] = None
) -> Optional[HicooOwnershipPlan]:
    """Cached ownership plan, or ``None`` when caching is disabled."""
    if not cache_enabled():
        return None
    mode = mode % tensor.order
    return _cache(cache).get(
        tensor,
        KIND_HICOO_OWNERSHIP,
        mode,
        lambda: build_hicoo_ownership_plan(tensor, mode),
    )


def ghicoo_for_mode(
    tensor: Union[CooTensor, HicooTensor, GHicooTensor],
    mode: int,
    block_size: int,
    *,
    cache: Optional[PlanCache] = None,
) -> GHicooTensor:
    """The gHiCOO rebuild TTV/TTM consume: product mode uncompressed.

    Keyed on the *original* tensor object (COO, HiCOO, or a differently
    compressed gHiCOO) so repeated kernel calls get the identical gHiCOO
    object back — which in turn keeps the downstream
    :func:`ghicoo_fiber_plan` warm.
    """
    mode = mode % len(tensor.shape)

    def build() -> GHicooTensor:
        if isinstance(tensor, CooTensor):
            coo = tensor
        elif isinstance(tensor, HicooTensor):
            coo = expanded_coo(tensor)
        else:
            coo = tensor.to_coo()
        compressed = [m for m in range(coo.order) if m != mode]
        return GHicooTensor.from_coo(coo, compressed, block_size)

    if not cache_enabled():
        return build()
    return _cache(cache).get(
        tensor, KIND_GHICOO_BUILD, (mode, int(block_size)), build
    )


# ----------------------------------------------------------------------
# gHiCOO fiber sort plans (direct TTV/TTM kernels)
# ----------------------------------------------------------------------


class GhicooFiberPlan:
    """Intra-block fiber grouping of a gHiCOO tensor, plus the output
    block structure the direct TTV/TTM kernels emit.

    With the product mode uncompressed every fiber lies inside one block
    (paper Section III-D1), so a single sort by (block, compressed
    element indices) makes fibers contiguous while preserving block
    contiguity.  All fields are index-derived; per-call kernels combine
    them with the current values and the dense operand.
    """

    __slots__ = (
        "perm",
        "fiber_starts",
        "product_indices",
        "fiber_einds",
        "out_bptr",
        "out_binds",
        "_fiber_offsets",
    )

    def __init__(
        self,
        perm: np.ndarray,
        fiber_starts: np.ndarray,
        product_indices: np.ndarray,
        fiber_einds: np.ndarray,
        out_bptr: np.ndarray,
        out_binds: np.ndarray,
    ) -> None:
        self.perm = perm
        self.fiber_starts = fiber_starts
        self.product_indices = product_indices
        self.fiber_einds = fiber_einds
        self.out_bptr = out_bptr
        self.out_binds = out_binds
        self._fiber_offsets: Optional[np.ndarray] = None

    @property
    def num_fibers(self) -> int:
        """Number of fibers (output nonzeros / output rows)."""
        return int(self.fiber_starts.shape[0])

    def fiber_offsets(self) -> np.ndarray:
        """Fiber boundaries extended with the end offset (the nnz).

        Length ``num_fibers + 1`` — the unit structure the parallel
        executor partitions.  Built lazily and kept with the plan.
        """
        if self._fiber_offsets is None:
            self._fiber_offsets = np.concatenate(
                [self.fiber_starts, [self.perm.shape[0]]]
            ).astype(np.int64)
        return self._fiber_offsets


def build_ghicoo_fiber_plan(ghicoo: GHicooTensor) -> GhicooFiberPlan:
    """Build the fiber sort plan of a single-uncompressed-mode gHiCOO."""
    block_of = np.repeat(
        np.arange(ghicoo.num_blocks, dtype=np.int64), ghicoo.nnz_per_block()
    )
    sort_keys = tuple(reversed((block_of,) + tuple(ghicoo.einds)))
    perm = np.lexsort(sort_keys)
    block_sorted = block_of[perm]
    einds_sorted = ghicoo.einds[:, perm]
    product_indices = ghicoo.cinds[0][perm]
    changed = block_sorted[1:] != block_sorted[:-1]
    changed |= np.any(einds_sorted[:, 1:] != einds_sorted[:, :-1], axis=0)
    starts = np.flatnonzero(np.concatenate(([True], changed)))
    fiber_blocks = block_sorted[starts]
    fiber_einds = np.ascontiguousarray(einds_sorted[:, starts])
    block_changed = fiber_blocks[1:] != fiber_blocks[:-1]
    out_block_starts = np.flatnonzero(np.concatenate(([True], block_changed)))
    out_bptr = np.concatenate([out_block_starts, [len(starts)]]).astype(np.int64)
    out_binds = np.ascontiguousarray(
        ghicoo.binds[:, fiber_blocks[out_block_starts]]
    )
    return GhicooFiberPlan(
        perm, starts, product_indices, fiber_einds, out_bptr, out_binds
    )


def ghicoo_fiber_plan(
    ghicoo: GHicooTensor, *, cache: Optional[PlanCache] = None
) -> Optional[GhicooFiberPlan]:
    """Cached gHiCOO fiber sort plan, or ``None`` when caching is off."""
    if not cache_enabled():
        return None
    return _cache(cache).get(
        ghicoo, KIND_GHICOO_FIBER, None, lambda: build_ghicoo_fiber_plan(ghicoo)
    )


# ----------------------------------------------------------------------
# Plan adoption (tensor-scalar outputs share the input's structure)
# ----------------------------------------------------------------------


def adopt_plans(child: object, parent: object) -> int:
    """Share the parent's structural plans with a same-structure child.

    Used by the tensor-scalar kernels, whose outputs keep the input's
    coordinates (in the same storage order) and change values only.
    Returns the number of plans shared; a no-op when caching is off.
    """
    if not cache_enabled():
        return 0
    return get_plan_cache().adopt(child, parent)
