"""Roofline performance model (Williams et al.) for the four platforms.

A Roofline plots attainable GFLOPS against operational intensity (OI):
``min(peak, OI * bandwidth)`` for each bandwidth ceiling.  Figure 3 draws,
per platform, the ERT-measured DRAM and LLC ceilings plus the theoretical
peak compute and DRAM lines, and marks the five kernels' OIs on the
ERT-DRAM line.  The "Roofline performance" red line of Figures 4-7 is
``OI * ERT-DRAM bandwidth`` with the OI computed from the *actual* tensor
(exact ``M_F``/``n_b`` terms), as Section V-B specifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..core.analysis import KernelCost
from ..platforms.ert import ErtResult, run_ert
from ..platforms.specs import PlatformSpec, get_platform

#: Table I OIs for cubical third-order tensors, used as Figure 3 markers.
TABLE1_KERNEL_OI = {
    "TEW": 1.0 / 12.0,
    "TS": 1.0 / 8.0,
    "TTV": 1.0 / 6.0,
    "TTM": 1.0 / 2.0,
    "MTTKRP": 1.0 / 4.0,
}


@dataclass(frozen=True)
class RooflineModel:
    """One platform's rooflines.

    ``bandwidth_ceilings_gbs`` maps ceiling names to GB/s; the plot's
    slanted lines.  ``peak_gflops`` is the flat compute roof.
    """

    platform: str
    peak_gflops: float
    bandwidth_ceilings_gbs: Dict[str, float]

    @classmethod
    def for_platform(
        cls, platform: Union[str, PlatformSpec], ert: Optional[ErtResult] = None
    ) -> "RooflineModel":
        """Build the Figure 3 model: ERT ceilings plus theoretical DRAM."""
        spec = get_platform(platform) if isinstance(platform, str) else platform
        if ert is None:
            ert = run_ert(spec)
        return cls(
            platform=spec.name,
            peak_gflops=spec.peak_sp_gflops,
            bandwidth_ceilings_gbs={
                "ERT-LLC": ert.llc_bandwidth_gbs,
                "ERT-DRAM": ert.dram_bandwidth_gbs,
                "Theoretical-DRAM": spec.mem_bw_gbs,
            },
        )

    # ------------------------------------------------------------------

    def attainable_gflops(self, oi: float, ceiling: str = "ERT-DRAM") -> float:
        """``min(peak, OI * bandwidth)`` under the named ceiling."""
        bandwidth = self.bandwidth_ceilings_gbs[ceiling]
        return min(self.peak_gflops, oi * bandwidth)

    def roofline_performance(self, cost: KernelCost, tensor_format: str = "COO") -> float:
        """The figures' red line: exact OI times ERT-DRAM bandwidth."""
        return self.attainable_gflops(cost.operational_intensity(tensor_format))

    def ridge_point(self, ceiling: str = "ERT-DRAM") -> float:
        """OI where the bandwidth roof meets the compute roof."""
        bandwidth = self.bandwidth_ceilings_gbs[ceiling]
        return self.peak_gflops / bandwidth if bandwidth else float("inf")

    def series(
        self,
        ceiling: str,
        oi_range: Tuple[float, float] = (2.0**-6, 2.0**6),
        points: int = 49,
    ) -> List[Tuple[float, float]]:
        """Sampled ``(OI, attainable GFLOPS)`` pairs for plotting a roof."""
        ois = np.geomspace(oi_range[0], oi_range[1], points)
        return [(float(oi), self.attainable_gflops(float(oi), ceiling)) for oi in ois]

    def kernel_markers(self, ceiling: str = "ERT-DRAM") -> Dict[str, Tuple[float, float]]:
        """Figure 3's kernel markers: Table I OI on the chosen ceiling."""
        return {
            kernel: (oi, self.attainable_gflops(oi, ceiling))
            for kernel, oi in TABLE1_KERNEL_OI.items()
        }
