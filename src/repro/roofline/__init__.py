"""Roofline performance models (Figure 3) and their text renderings."""

from .model import TABLE1_KERNEL_OI, RooflineModel
from .report import roofline_ascii, roofline_text

__all__ = ["RooflineModel", "TABLE1_KERNEL_OI", "roofline_text", "roofline_ascii"]
