"""Text rendering of Roofline models (Figure 3 without a plotting stack).

The repository has no matplotlib dependency, so Figure 3 is emitted as
the numeric series a plotting tool would consume plus an ASCII sketch for
quick terminal inspection.
"""

from __future__ import annotations

from typing import List

from .model import RooflineModel


def roofline_text(model: RooflineModel) -> str:
    """Human-readable summary of one platform's rooflines."""
    lines: List[str] = [f"Roofline — {model.platform}"]
    lines.append(f"  peak SP compute: {model.peak_gflops:.0f} GFLOPS")
    for name, bandwidth in model.bandwidth_ceilings_gbs.items():
        ridge = model.ridge_point(name) if bandwidth else float("inf")
        lines.append(
            f"  {name:<16} {bandwidth:7.1f} GB/s   ridge OI = {ridge:6.2f} flops/byte"
        )
    lines.append("  kernel markers on ERT-DRAM:")
    for kernel, (oi, gflops) in model.kernel_markers().items():
        lines.append(f"    {kernel:<7} OI={oi:6.3f}  ->  {gflops:8.1f} GFLOPS")
    return "\n".join(lines)


def roofline_ascii(model: RooflineModel, width: int = 60, height: int = 16) -> str:
    """A log-log ASCII sketch of the ERT-DRAM roofline with markers."""
    import math

    oi_lo, oi_hi = 2.0**-6, 2.0**6
    series = model.series("ERT-DRAM", (oi_lo, oi_hi), width)
    perf_values = [p for _, p in series] + [model.peak_gflops]
    p_lo = min(p for p in perf_values if p > 0) / 2
    p_hi = model.peak_gflops * 2

    def col(oi: float) -> int:
        return int(
            (math.log2(oi) - math.log2(oi_lo))
            / (math.log2(oi_hi) - math.log2(oi_lo))
            * (width - 1)
        )

    def row(perf: float) -> int:
        frac = (math.log2(perf) - math.log2(p_lo)) / (
            math.log2(p_hi) - math.log2(p_lo)
        )
        return height - 1 - int(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for oi, perf in series:
        r, c = row(max(perf, p_lo)), col(oi)
        if 0 <= r < height:
            grid[r][c] = "/" if perf < model.peak_gflops else "-"
    for kernel, (oi, perf) in model.kernel_markers().items():
        r, c = row(max(perf, p_lo)), col(oi)
        if 0 <= r < height and 0 <= c < width:
            grid[r][c] = kernel[0]
    header = (
        f"{model.platform}: GFLOPS (log) vs OI (log), "
        f"markers: T=TEW/TS/TTV/TTM, M=MTTKRP"
    )
    return "\n".join([header] + ["|" + "".join(r) for r in grid] + ["+" + "-" * width])
