"""Semi-sparse HiCOO (sHiCOO) for tensors with dense mode(s).

sHiCOO (paper Section III-C, Figure 2(c)) is HiCOO's counterpart to sCOO:
the sparse modes are block-compressed into ``bptr`` / ``binds`` / ``einds``
while the dense mode(s) are stored as a dense value block per sparse
coordinate.  HiCOO-TTM emits its semi-sparse output in this format.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .modes import ModeValidationMixin, normalize_mode
from .hicoo import (
    BPTR_DTYPE,
    DEFAULT_BLOCK_SIZE,
    ELEMENT_DTYPE,
    _group_sorted_blocks,
    check_block_size,
)
from .morton import morton_sort_order
from .scoo import SemiSparseCooTensor


class SHicooTensor(ModeValidationMixin):
    """A semi-sparse tensor: HiCOO-blocked sparse modes plus dense modes.

    Attributes mirror :class:`~repro.formats.hicoo.HicooTensor` over the
    *sparse* modes, with ``values`` of shape ``(nnz_fibers, *dense_shape)``
    (the dense mode sizes in increasing mode number).
    """

    __slots__ = (
        "shape",
        "block_size",
        "dense_modes",
        "sparse_modes",
        "bptr",
        "binds",
        "einds",
        "values",
        "__weakref__",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        dense_modes: Sequence[int],
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.block_size = check_block_size(block_size)
        order = len(self.shape)
        self.dense_modes: Tuple[int, ...] = tuple(
            sorted({normalize_mode(order, m) for m in dense_modes})
        )
        self.sparse_modes: Tuple[int, ...] = tuple(
            m for m in range(order) if m not in self.dense_modes
        )
        self.bptr = np.ascontiguousarray(bptr, dtype=BPTR_DTYPE)
        self.binds = np.ascontiguousarray(binds, dtype=INDEX_DTYPE)
        self.einds = np.ascontiguousarray(einds, dtype=ELEMENT_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if not self.dense_modes:
            raise ModeError("sHiCOO requires at least one dense mode")
        if any(m < 0 or m >= order for m in self.dense_modes):
            raise ModeError(
                f"dense modes {self.dense_modes} out of range for order {order}"
            )
        if not self.sparse_modes:
            raise ModeError("sHiCOO requires at least one sparse mode")
        ns = len(self.sparse_modes)
        if self.binds.ndim != 2 or self.binds.shape[0] != ns:
            raise TensorShapeError(f"binds must have {ns} rows, got {self.binds.shape}")
        if self.einds.ndim != 2 or self.einds.shape[0] != ns:
            raise TensorShapeError(f"einds must have {ns} rows, got {self.einds.shape}")
        nnz = self.einds.shape[1]
        dense_shape = tuple(self.shape[m] for m in self.dense_modes)
        if self.values.shape != (nnz,) + dense_shape:
            raise TensorShapeError(
                f"values must have shape ({nnz}, *{dense_shape}), got {self.values.shape}"
            )
        nb = self.binds.shape[1]
        if self.bptr.shape != (nb + 1,):
            raise TensorShapeError("bptr length must be num_blocks + 1")
        if nb and (self.bptr[0] != 0 or self.bptr[-1] != nnz):
            raise TensorShapeError("bptr must start at 0 and end at nnz_fibers")

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes, sparse plus dense."""
        return len(self.shape)

    @property
    def nnz_fibers(self) -> int:
        """Number of stored sparse coordinates (dense fibers)."""
        return int(self.einds.shape[1])

    @property
    def nnz(self) -> int:
        """Number of stored scalar values."""
        return int(self.values.size)

    @property
    def num_blocks(self) -> int:
        """Number of nonempty blocks over the sparse modes."""
        return int(self.binds.shape[1])

    def nnz_per_block(self) -> np.ndarray:
        """Fiber count of each block."""
        return np.diff(self.bptr)

    def storage_bytes(self) -> int:
        """Bytes across all index and value arrays."""
        return (
            self.bptr.nbytes + self.binds.nbytes + self.einds.nbytes + self.values.nbytes
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_scoo(
        cls, tensor: SemiSparseCooTensor, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "SHicooTensor":
        """Block-compress the sparse modes of an sCOO tensor."""
        block_size = check_block_size(block_size)
        idx = tensor.indices.astype(np.int64)
        block_coords = idx // block_size
        perm = morton_sort_order(block_coords)
        idx = idx[:, perm]
        block_coords = block_coords[:, perm]
        values = tensor.values[perm]
        starts, bptr = _group_sorted_blocks(block_coords)
        binds = block_coords[:, starts].astype(INDEX_DTYPE)
        einds = (idx % block_size).astype(ELEMENT_DTYPE)
        return cls(
            tensor.shape,
            block_size,
            tensor.dense_modes,
            bptr,
            binds,
            einds,
            values,
            validate=False,
        )

    @classmethod
    def from_coo(
        cls,
        tensor: CooTensor,
        dense_modes: Sequence[int],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "SHicooTensor":
        """Densify the given modes of a COO tensor, blocking the rest."""
        return cls.from_scoo(
            SemiSparseCooTensor.from_coo(tensor, dense_modes), block_size
        )

    def to_scoo(self) -> SemiSparseCooTensor:
        """Expand the blocked sparse modes back to plain sCOO."""
        counts = self.nnz_per_block()
        if self.num_blocks == 0:
            dense_shape = tuple(self.shape[m] for m in self.dense_modes)
            return SemiSparseCooTensor(
                self.shape,
                self.dense_modes,
                np.empty((len(self.sparse_modes), 0), dtype=INDEX_DTYPE),
                np.empty((0,) + dense_shape, dtype=VALUE_DTYPE),
            )
        expanded = np.repeat(self.binds, counts, axis=1).astype(np.int64)
        indices = (expanded * self.block_size + self.einds).astype(INDEX_DTYPE)
        return SemiSparseCooTensor(
            self.shape, self.dense_modes, indices, self.values, validate=False
        )

    def to_coo(self, *, drop_zeros: bool = True) -> CooTensor:
        """Expand to plain COO."""
        return self.to_scoo().to_coo(drop_zeros=drop_zeros)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        return self.to_scoo().to_dense()

    def __repr__(self) -> str:
        return (
            f"SHicooTensor(shape={self.shape}, dense_modes={self.dense_modes}, "
            f"fibers={self.nnz_fibers}, blocks={self.num_blocks})"
        )
