"""Hierarchical COOrdinate (HiCOO) format (Li et al., SC'18).

HiCOO compresses COO indices in units of sparse blocks of a pre-specified
block size ``B``: each nonzero stores only an 8-bit *element index* inside
its block, while each block stores one 32-bit *block index* per mode plus
an entry in the ``bptr`` block pointer array.  Nonzeros are laid out with
blocks in Morton (Z-curve) order, which gives the format mode-generic
locality — one representation serves computations in every mode.

For an order-``N`` tensor with ``M`` nonzeros in ``n_b`` blocks, storage is
``(N + 4) * M`` bytes for elements (``N`` one-byte element indices plus a
4-byte value each) plus ``(4 * N + 8) * n_b + 8`` bytes of block metadata
(``N`` 4-byte block indices and an 8-byte ``bptr`` entry per block).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import FormatParameterError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .modes import ModeValidationMixin

ELEMENT_DTYPE = np.uint8
BPTR_DTYPE = np.int64

#: Block size used throughout the paper's experiments (Section V-A2).
DEFAULT_BLOCK_SIZE = 128

#: Element indices are stored in 8 bits, so blocks cannot exceed 256.
MAX_BLOCK_SIZE = 256


def check_block_size(block_size: int) -> int:
    """Validate a HiCOO block size (power of two, at most 256)."""
    if block_size < 1 or block_size > MAX_BLOCK_SIZE:
        raise FormatParameterError(
            f"block size must be in [1, {MAX_BLOCK_SIZE}], got {block_size}"
        )
    if block_size & (block_size - 1):
        raise FormatParameterError(f"block size must be a power of two, got {block_size}")
    return block_size


def _group_sorted_blocks(block_coords: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Given per-nonzero block coords already sorted so equal blocks are
    contiguous, return ``(block_starts, bptr)``."""
    nnz = block_coords.shape[1]
    if nnz == 0:
        return np.empty(0, dtype=np.int64), np.zeros(1, dtype=BPTR_DTYPE)
    boundary = np.any(block_coords[:, 1:] != block_coords[:, :-1], axis=0)
    starts = np.flatnonzero(np.concatenate(([True], boundary)))
    bptr = np.concatenate([starts, [nnz]]).astype(BPTR_DTYPE)
    return starts, bptr


def _check_index_width(shape: Sequence[int]) -> None:
    """Fail loudly when a shape exceeds the narrow index storage.

    Block coordinates and ``binds`` live in ``INDEX_DTYPE`` (int32); a
    mode size past ``2**31`` would wrap during the block-key packing and
    produce a valid-looking, silently wrong block structure.
    """
    limit = int(np.iinfo(INDEX_DTYPE).max)
    for mode, size in enumerate(shape):
        if int(size) - 1 > limit:
            raise TensorShapeError(
                f"mode-{mode} size {size} exceeds the {np.dtype(INDEX_DTYPE).name} "
                f"index storage (max coordinate {limit}); HiCOO block "
                f"indices would wrap"
            )


def _scalar_block_keys(
    block_coords: np.ndarray, shape: Sequence[int], block_size: int
) -> Optional[np.ndarray]:
    """Mixed-radix packing of per-mode block coords into one int64 key.

    Injective whenever the block-grid volume fits in 63 bits, which
    covers every realistic tensor; returns ``None`` otherwise so callers
    fall back to row-wise coordinate comparison.
    """
    radices = [max(1, -(-int(s) // block_size)) for s in shape]
    volume = 1
    for radix in radices:
        volume *= radix
        if volume >= 1 << 62:
            return None
    keys = block_coords[0].astype(np.int64, copy=True)
    for mode in range(1, block_coords.shape[0]):
        keys *= radices[mode]
        keys += block_coords[mode]
    return keys


class HicooTensor(ModeValidationMixin):
    """An arbitrary-order sparse tensor in HiCOO format.

    Attributes
    ----------
    shape:
        Dimension sizes.
    block_size:
        Edge length ``B`` of the cubical index blocks.
    bptr:
        ``(num_blocks + 1,)`` nonzero offsets of each block.
    binds:
        ``(order, num_blocks)`` block indices (coordinates ``// B``).
    einds:
        ``(order, nnz)`` 8-bit element indices (coordinates ``% B``).
    values:
        ``(nnz,)`` nonzero values.
    """

    __slots__ = (
        "shape",
        "block_size",
        "bptr",
        "binds",
        "einds",
        "values",
        "__weakref__",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.block_size = check_block_size(block_size)
        self.bptr = np.ascontiguousarray(bptr, dtype=BPTR_DTYPE)
        self.binds = np.ascontiguousarray(binds, dtype=INDEX_DTYPE)
        self.einds = np.ascontiguousarray(einds, dtype=ELEMENT_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if self.binds.ndim != 2 or self.binds.shape[0] != order:
            raise TensorShapeError(
                f"binds must have shape ({order}, num_blocks), got {self.binds.shape}"
            )
        if self.einds.ndim != 2 or self.einds.shape[0] != order:
            raise TensorShapeError(
                f"einds must have shape ({order}, nnz), got {self.einds.shape}"
            )
        nb = self.binds.shape[1]
        nnz = self.einds.shape[1]
        if self.bptr.shape != (nb + 1,):
            raise TensorShapeError(
                f"bptr must have length num_blocks + 1 = {nb + 1}, got {self.bptr.shape}"
            )
        if self.values.shape != (nnz,):
            raise TensorShapeError(
                f"values must have length {nnz}, got {self.values.shape}"
            )
        if nb and (self.bptr[0] != 0 or self.bptr[-1] != nnz):
            raise TensorShapeError("bptr must start at 0 and end at nnz")
        if np.any(np.diff(self.bptr) <= 0):
            raise TensorShapeError("bptr must be strictly increasing (no empty blocks)")
        if nnz and self.einds.max() >= self.block_size:
            raise TensorShapeError("element indices must be < block_size")

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.einds.shape[1])

    @property
    def num_blocks(self) -> int:
        """Number of nonempty index blocks (``n_b`` in Table I)."""
        return int(self.binds.shape[1])

    def nnz_per_block(self) -> np.ndarray:
        """Nonzero count of each block, in storage order."""
        return np.diff(self.bptr)

    def average_block_occupancy(self) -> float:
        """Mean nonzeros per block; the HiCOO paper's compression driver."""
        if self.num_blocks == 0:
            return 0.0
        return self.nnz / self.num_blocks

    def storage_bytes(self) -> int:
        """Bytes across ``bptr``, ``binds``, ``einds`` and values."""
        return (
            self.bptr.nbytes + self.binds.nbytes + self.einds.nbytes + self.values.nbytes
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        tensor: CooTensor,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "HicooTensor":
        """Convert a COO tensor to HiCOO with the given block size.

        This is the autotuner's re-blocking hot path (sweeping ``B``
        rebuilds the format), so everything after the cached Morton sort
        is shift/mask arithmetic and narrow gathers: element indices are
        computed pre-permutation so the post-sort gather moves one byte
        per entry instead of eight, block boundaries are detected on a
        single packed int64 key array instead of an ``(order, nnz)``
        row-wise comparison, and block indices are gathered only at the
        ``num_blocks`` segment starts.
        """
        from ..perf.plans import morton_perm

        block_size = check_block_size(block_size)
        _check_index_width(tensor.shape)
        shift = block_size.bit_length() - 1
        idx = tensor.indices
        # Element offsets fit in uint8 (B <= 256); masking before the
        # permutation keeps the gather below 1 byte/mode/entry.
        einds = (idx & (block_size - 1)).astype(ELEMENT_DTYPE)  # repro: ignore[index-width]
        block_coords = idx >> shift
        perm = morton_perm(tensor, block_size)
        nnz = idx.shape[1]
        if nnz == 0:
            starts = np.empty(0, dtype=np.int64)
            bptr = np.zeros(1, dtype=BPTR_DTYPE)
        else:
            keys = _scalar_block_keys(block_coords, tensor.shape, block_size)
            if keys is not None:
                keys = keys[perm]
                boundary = keys[1:] != keys[:-1]
                starts = np.flatnonzero(np.concatenate(([True], boundary)))
                bptr = np.concatenate([starts, [nnz]]).astype(BPTR_DTYPE)
            else:
                starts, bptr = _group_sorted_blocks(block_coords[:, perm])
        # Safe narrowing: block coords come from int32 inputs shifted
        # right, so they always fit INDEX_DTYPE (see _check_index_width).
        binds = block_coords[:, perm[starts]].astype(INDEX_DTYPE, copy=False)  # repro: ignore[index-width]
        return cls(
            tensor.shape,
            block_size,
            bptr,
            binds,
            einds[:, perm],
            tensor.values[perm],
            validate=False,
        )

    @classmethod
    def _from_coo_reference(
        cls,
        tensor: CooTensor,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "HicooTensor":
        """The original conversion; ground truth for the vectorized path."""
        from ..perf.plans import morton_perm

        block_size = check_block_size(block_size)
        idx = tensor.indices.astype(np.int64)
        block_coords = idx // block_size
        perm = morton_perm(tensor, block_size)
        idx = idx[:, perm]
        block_coords = block_coords[:, perm]
        values = tensor.values[perm]
        starts, bptr = _group_sorted_blocks(block_coords)
        # Safe narrowing: int32 coords // B and % B stay in range.
        binds = block_coords[:, starts].astype(INDEX_DTYPE)  # repro: ignore[index-width]
        einds = (idx % block_size).astype(ELEMENT_DTYPE)  # repro: ignore[index-width]
        return cls(
            tensor.shape, block_size, bptr, binds, einds, values, validate=False
        )

    def to_coo(self) -> CooTensor:
        """Expand back to COO (nonzeros stay in HiCOO's Morton order)."""
        counts = self.nnz_per_block()
        if self.num_blocks == 0:
            return CooTensor.empty(self.shape)
        expanded_binds = np.repeat(self.binds, counts, axis=1).astype(np.int64)
        indices = expanded_binds * self.block_size + self.einds
        # Safe narrowing: bind * B + eind reconstructs the original
        # int32 coordinate (shape checked at construction).
        return CooTensor(
            self.shape, indices.astype(INDEX_DTYPE), self.values, validate=False  # repro: ignore[index-width]
        )

    def block_of_nonzero(self) -> np.ndarray:
        """For each nonzero, the index of the block containing it."""
        return np.repeat(
            np.arange(self.num_blocks, dtype=np.int64), self.nnz_per_block()
        )

    def full_indices(self) -> np.ndarray:
        """Reconstructed ``(order, nnz)`` element coordinates."""
        return self.to_coo().indices

    def compression_ratio(self) -> float:
        """COO bytes divided by HiCOO bytes for this tensor (> 1 is a win)."""
        coo_bytes = 4 * (self.order + 1) * self.nnz
        own = self.storage_bytes()
        return coo_bytes / own if own else float("inf")

    def __repr__(self) -> str:
        return (
            f"HicooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"blocks={self.num_blocks}, B={self.block_size})"
        )


def blocks_histogram(tensor: HicooTensor, bins: Optional[Sequence[int]] = None):
    """Histogram of block occupancies, for compression/imbalance studies.

    Returns ``(counts, edges)`` as :func:`numpy.histogram` does.  The
    default bin edges separate near-empty blocks (1, 2-3, 4-7, ...) in
    powers of two up to the block capacity.
    """
    occupancy = tensor.nnz_per_block()
    if bins is None:
        capacity = tensor.block_size ** tensor.order
        edges = [1]
        while edges[-1] < min(capacity, 2**20):
            edges.append(edges[-1] * 2)
        edges.append(max(capacity, edges[-1]) + 1)
        bins = edges
    return np.histogram(occupancy, bins=np.asarray(bins))
