"""Tensor reordering (index relabeling) for data locality studies.

The paper notes that kernel data reuse "could happen if its access has or
gains a good localized pattern naturally or from reordering techniques"
(Section III, citing Li et al. ICS'19).  This module provides the
relabeling schemes such studies sweep:

* ``random_relabel`` — destroys locality (the ablation baseline);
* ``degree_relabel`` — hubs first: sorts each mode's labels by nonzero
  count so heavy fibers share index neighborhoods;
* ``block_density_relabel`` — greedy clustering that packs labels
  co-occurring in the same fibers next to each other, increasing HiCOO
  block occupancy.

Every scheme is a pure relabeling: the returned tensor holds the same
values at permuted coordinates, so kernel outputs are equal up to the
same relabeling (tests verify this).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModeError
from .coo import INDEX_DTYPE, CooTensor
from .hicoo import DEFAULT_BLOCK_SIZE, HicooTensor


def apply_relabeling(
    tensor: CooTensor, permutations: Sequence[Optional[np.ndarray]]
) -> CooTensor:
    """Relabel each mode's indices by the given permutations.

    ``permutations[m][old_label] == new_label``; ``None`` leaves a mode
    untouched.  Raises if a permutation has the wrong length or is not a
    bijection.
    """
    if len(permutations) != tensor.order:
        raise ModeError(
            f"need one permutation per mode ({tensor.order}), got {len(permutations)}"
        )
    indices = tensor.indices.copy()
    for mode, perm in enumerate(permutations):
        if perm is None:
            continue
        perm = np.asarray(perm, dtype=np.int64)
        size = tensor.shape[mode]
        if perm.shape != (size,) or not np.array_equal(
            np.sort(perm), np.arange(size)
        ):
            raise ModeError(f"mode {mode}: not a permutation of range({size})")
        indices[mode] = perm[indices[mode]].astype(INDEX_DTYPE)
    return CooTensor(tensor.shape, indices, tensor.values, validate=False)


def random_relabel(
    tensor: CooTensor, *, seed: int = 0
) -> Tuple[CooTensor, list]:
    """Shuffle every mode's labels uniformly (the worst-locality baseline)."""
    rng = np.random.default_rng(seed)
    perms = [rng.permutation(size) for size in tensor.shape]
    return apply_relabeling(tensor, perms), perms


def degree_relabel(tensor: CooTensor) -> Tuple[CooTensor, list]:
    """Relabel each mode so the busiest indices get the smallest labels.

    Concentrates the hubs of power-law tensors into a corner of the
    index space, which packs them into few HiCOO blocks.
    """
    perms = []
    for mode in range(tensor.order):
        degrees = np.bincount(tensor.indices[mode], minlength=tensor.shape[mode])
        order = np.argsort(-degrees, kind="stable")
        perm = np.empty(tensor.shape[mode], dtype=np.int64)
        perm[order] = np.arange(tensor.shape[mode])
        perms.append(perm)
    return apply_relabeling(tensor, perms), perms


def block_density_relabel(
    tensor: CooTensor, block_size: int = DEFAULT_BLOCK_SIZE
) -> Tuple[CooTensor, list]:
    """Greedy locality relabeling: order labels by first appearance along
    the Morton curve of the current blocking.

    Labels that co-occur in nearby blocks end up adjacent, so re-blocking
    after the relabeling yields denser blocks.  A cheap stand-in for the
    BFS/Lexi-order schemes of the reordering literature.
    """
    morton_sorted = tensor.sorted_morton(block_size)
    perms = []
    for mode in range(tensor.order):
        size = tensor.shape[mode]
        column = morton_sorted.indices[mode]
        first_positions = np.full(size, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(first_positions, column, np.arange(column.shape[0]))
        order = np.argsort(first_positions, kind="stable")
        perm = np.empty(size, dtype=np.int64)
        perm[order] = np.arange(size)
        perms.append(perm)
    return apply_relabeling(tensor, perms), perms


def locality_metrics(
    tensor: CooTensor, block_size: int = DEFAULT_BLOCK_SIZE
) -> Dict[str, float]:
    """Locality figures of merit for a (possibly relabeled) tensor.

    ``block_occupancy`` is mean nonzeros per HiCOO block (higher is
    better for HiCOO); ``storage_ratio`` is COO bytes over HiCOO bytes.
    """
    hicoo = HicooTensor.from_coo(tensor, block_size)
    return {
        "num_blocks": float(hicoo.num_blocks),
        "block_occupancy": hicoo.average_block_occupancy(),
        "storage_ratio": hicoo.compression_ratio(),
    }
