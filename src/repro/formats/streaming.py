"""Streaming (chunk-at-a-time) COO → HiCOO / CSF conversion.

The in-RAM converters (:meth:`HicooTensor.from_coo`,
:meth:`CsfTensor.from_coo`) sort the whole coordinate list at once —
impossible when the tensor lives on disk and only a bounded window may
be resident.  This module rebuilds both conversions as external merge
sorts over per-chunk *runs*, the coordinate-remapping structure of Chou
et al.'s format-conversion passes:

1. **per chunk**: compute the conversion's sort key (Morton block code
   for HiCOO, mixed-radix packed coordinates for CSF), stable-sort the
   chunk, and keep the key-sorted run plus whatever per-nonzero payload
   the target format stores (8-bit element offsets for HiCOO, full
   coordinates for CSF);
2. **merge**: pairwise stable merges of adjacent runs (left run wins
   ties) until one run remains — because each chunk sort is stable and
   chunks are merged in file order, the final order is *identical* to a
   single stable sort of the whole tensor;
3. **assemble**: detect group boundaries on the merged key array and
   reuse the in-RAM builders' assembly machinery (Morton decode for
   block indices, :func:`repro.formats.csf._levels_from_sorted` for the
   fiber forest).

Step 2's tie/stability equivalence is what makes the streaming output
**bit-for-bit equal** to the in-RAM conversion of the concatenated
chunks — the conformance tests fuzz chunk boundaries against exactly
that property.  Peak resident memory is the output representation plus
one merge copy, independent of how the input was chunked.

Sources may be a :class:`~repro.io.binfile.MmapCooTensor` (chunks come
from disk), an in-RAM :class:`CooTensor` (optionally re-chunked with
``chunk_nnz`` — the fuzz hook), or any iterable of same-shape
``CooTensor`` pieces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .csf import CsfTensor, _levels_from_sorted
from .hicoo import (
    BPTR_DTYPE,
    DEFAULT_BLOCK_SIZE,
    ELEMENT_DTYPE,
    HicooTensor,
    _check_index_width,
    check_block_size,
)
from .modes import check_mode
from .morton import bits_needed, morton_decode, morton_encode

#: A run: the chunk's payload arrays sorted by ``"keys"``.  1-D arrays
#: are per-nonzero vectors, 2-D arrays are ``(rows, nnz)`` matrices.
_Run = Dict[str, np.ndarray]

ChunkSource = Union[CooTensor, Iterable[CooTensor], object]


def _chunk_stream(
    source: ChunkSource, chunk_nnz: Optional[int]
) -> Tuple[Tuple[int, ...], Iterator[Tuple[np.ndarray, np.ndarray]]]:
    """Resolve a source into ``(shape, iterator of (int64 idx, values))``.

    Chunks are yielded in storage (file) order; their concatenation is
    the tensor the conversion is equivalent to converting in RAM.
    """
    from ..io.binfile import MmapCooTensor

    if isinstance(source, MmapCooTensor):
        def mmap_chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
            for c in range(source.num_chunks):
                yield source.chunk_indices(c), source.chunk_values(c)

        return source.shape, mmap_chunks()
    if isinstance(source, CooTensor):
        step = source.nnz if chunk_nnz is None else max(1, int(chunk_nnz))

        def coo_chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
            for lo in range(0, source.nnz, step) if source.nnz else ():
                hi = min(lo + step, source.nnz)
                yield (
                    source.indices[:, lo:hi].astype(np.int64),  # repro: ignore[dtype]
                    source.values[lo:hi],
                )

        return source.shape, coo_chunks()
    pieces = list(source)
    if not pieces:
        raise TensorShapeError("need at least one chunk to convert")
    shape = pieces[0].shape
    for piece in pieces[1:]:
        if piece.shape != shape:
            raise TensorShapeError("all chunks must share a shape")

    def piece_chunks() -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        for piece in pieces:
            yield piece.indices.astype(np.int64), piece.values  # repro: ignore[dtype]

    return shape, piece_chunks()


# ----------------------------------------------------------------------
# Stable external merge
# ----------------------------------------------------------------------


def _stable_merge(a: _Run, b: _Run) -> _Run:
    """Merge two key-sorted runs, run ``a`` winning ties.

    Output positions come from two ``searchsorted`` rank computations:
    element ``i`` of ``a`` lands at ``i +`` (count of ``b`` keys strictly
    below it), element ``j`` of ``b`` at ``j +`` (count of ``a`` keys at
    or below it).  Ties therefore keep every ``a`` element ahead of every
    equal ``b`` element — the merge is stable.
    """
    ka, kb = a["keys"], b["keys"]
    pos_a = np.arange(ka.shape[0], dtype=np.int64)
    pos_a += np.searchsorted(kb, ka, side="left")
    pos_b = np.arange(kb.shape[0], dtype=np.int64)
    pos_b += np.searchsorted(ka, kb, side="right")
    out: _Run = {}
    for name, arr_a in a.items():
        arr_b = b[name]
        total = arr_a.shape[-1] + arr_b.shape[-1]
        if arr_a.ndim == 1:
            merged = np.empty(total, dtype=arr_a.dtype)
            merged[pos_a] = arr_a
            merged[pos_b] = arr_b
        else:
            merged = np.empty((arr_a.shape[0], total), dtype=arr_a.dtype)
            merged[:, pos_a] = arr_a
            merged[:, pos_b] = arr_b
        out[name] = merged
    return out


def _merge_runs(runs: List[_Run]) -> _Run:
    """Pairwise-adjacent tournament merge of chunk-ordered stable runs.

    Adjacent pairing preserves file order between rounds, so with the
    left-priority tie rule of :func:`_stable_merge` the result equals a
    single stable sort of the concatenated chunks.
    """
    while len(runs) > 1:
        nxt = [
            _stable_merge(runs[i], runs[i + 1])
            for i in range(0, len(runs) - 1, 2)
        ]
        if len(runs) % 2:
            nxt.append(runs[-1])
        runs = nxt
    return runs[0]


def _group_starts(keys: np.ndarray) -> np.ndarray:
    boundary = keys[1:] != keys[:-1]
    return np.flatnonzero(np.concatenate(([True], boundary)))


# ----------------------------------------------------------------------
# HiCOO
# ----------------------------------------------------------------------


def streaming_hicoo(
    source: ChunkSource,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    chunk_nnz: Optional[int] = None,
) -> HicooTensor:
    """Build a HiCOO tensor chunk-at-a-time, bit-for-bit vs ``from_coo``.

    The per-chunk key is the Morton code of the block coordinates —
    *independent* of the chunk's coordinate range (bit ``j`` of mode
    ``m`` always lands at code bit ``j * order + m``), so per-chunk codes
    are globally comparable and merging them reproduces the in-RAM
    Morton sort exactly, including its stable tie order.
    """
    block_size = check_block_size(block_size)
    shape, chunks = _chunk_stream(source, chunk_nnz)
    _check_index_width(shape)
    order = len(shape)
    shift = block_size.bit_length() - 1
    mask = block_size - 1
    runs: List[_Run] = []
    max_block = 0
    for idx, vals in chunks:
        if idx.shape[1] == 0:
            continue
        idx64 = np.asarray(idx).astype(np.int64, copy=False)  # repro: ignore[dtype]
        block_coords = idx64 >> shift
        codes = morton_encode(block_coords)
        perm = np.argsort(codes, kind="stable")
        einds = (idx64 & mask).astype(ELEMENT_DTYPE)  # repro: ignore[index-width, dtype]
        runs.append(
            {
                "keys": codes[perm],
                "einds": np.ascontiguousarray(einds[:, perm]),
                "values": np.asarray(vals, dtype=VALUE_DTYPE)[perm],
            }
        )
        max_block = max(max_block, int(block_coords.max()))
    if not runs:
        return HicooTensor(
            shape,
            block_size,
            np.zeros(1, dtype=BPTR_DTYPE),
            np.empty((order, 0), dtype=INDEX_DTYPE),
            np.empty((order, 0), dtype=ELEMENT_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
            validate=False,
        )
    merged = _merge_runs(runs)
    keys = merged["keys"]
    starts = _group_starts(keys)
    bptr = np.concatenate([starts, [keys.shape[0]]]).astype(BPTR_DTYPE)
    # Codes are injective over block coordinates (the encoder rejects
    # > 62-bit interleaves), so decoding the group keys recovers the
    # exact block indices the in-RAM path gathers at segment starts.
    binds = morton_decode(keys[starts], order, bits_needed(max_block))
    return HicooTensor(
        shape,
        block_size,
        bptr,
        binds.astype(INDEX_DTYPE),  # repro: ignore[index-width]
        merged["einds"],
        merged["values"],
        validate=False,
    )


# ----------------------------------------------------------------------
# CSF
# ----------------------------------------------------------------------


def streaming_csf(
    source: ChunkSource,
    mode_order: Optional[Sequence[int]] = None,
    *,
    chunk_nnz: Optional[int] = None,
) -> CsfTensor:
    """Build a CSF tree chunk-at-a-time, bit-for-bit vs ``from_coo``.

    The per-chunk key packs the (tree-ordered) coordinates into one
    mixed-radix int64, so sorting by it is lexicographic sorting by
    ``mode_order``.  After the stable merge, duplicate coordinates are
    adjacent *in file order* — the same grouping and summation order
    ``sum_duplicates`` produces — so the reduced values match the in-RAM
    conversion bit-for-bit.  Falls back to materializing the tensor when
    the coordinate space exceeds the 62-bit packing (astronomical
    shapes only).
    """
    shape, chunks = _chunk_stream(source, chunk_nnz)
    order = len(shape)
    if mode_order is None:
        mode_order = tuple(range(order))
    mode_order = tuple(check_mode(order, m) for m in mode_order)
    if sorted(mode_order) != list(range(order)):
        raise ModeError(f"{mode_order} is not a permutation of the modes")
    _check_index_width(shape)
    radices = [int(shape[m]) for m in mode_order]
    volume = 1
    for radix in radices:
        volume *= radix
    if volume >= 1 << 62:
        # No injective scalar key: fall back to the in-RAM conversion.
        pieces = [
            CooTensor(shape, idx, vals, validate=False)
            for idx, vals in chunks
        ]
        whole = (
            _concatenate(shape, pieces) if pieces else CooTensor.empty(shape)
        )
        return CsfTensor.from_coo(whole, mode_order)
    runs: List[_Run] = []
    for idx, vals in chunks:
        if idx.shape[1] == 0:
            continue
        idx64 = np.asarray(idx).astype(np.int64, copy=False)  # repro: ignore[dtype]
        permuted = idx64[list(mode_order)]
        keys = permuted[0].astype(np.int64, copy=True)  # repro: ignore[dtype]
        for level in range(1, order):
            keys *= radices[level]
            keys += permuted[level]
        perm = np.argsort(keys, kind="stable")
        runs.append(
            {
                "keys": keys[perm],
                "indices": np.ascontiguousarray(idx64[:, perm]),
                "values": np.asarray(vals, dtype=VALUE_DTYPE)[perm],
            }
        )
    if not runs:
        empty = np.empty((order, 0), dtype=np.int64)
        fids, fptr = _levels_from_sorted(empty)
        return CsfTensor(
            shape,
            mode_order,
            fids,
            fptr,
            np.empty(0, dtype=VALUE_DTYPE),
            validate=False,
        )
    merged = _merge_runs(runs)
    starts = _group_starts(merged["keys"])
    # Duplicates are adjacent in file order; float64 reduceat then a
    # float32 cast is exactly sum_duplicates' arithmetic.
    values = np.add.reduceat(
        merged["values"].astype(np.float64), starts
    ).astype(VALUE_DTYPE)
    unique = merged["indices"][:, starts]
    fids, fptr = _levels_from_sorted(unique[list(mode_order)])
    return CsfTensor(shape, mode_order, fids, fptr, values, validate=False)


def _concatenate(
    shape: Sequence[int], pieces: List[CooTensor]
) -> CooTensor:
    indices = np.concatenate([p.indices for p in pieces], axis=1)
    values = np.concatenate([p.values for p in pieces])
    return CooTensor(shape, indices, values, validate=False)


__all__ = ["streaming_hicoo", "streaming_csf"]
