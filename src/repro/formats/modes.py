"""Shared mode-index validation for every tensor format.

Each format used to carry its own copy of the "negative modes wrap, out
of range raises" logic, and the kernels copied it again with a different
exception type.  This module is the single implementation: formats raise
:class:`~repro.errors.ModeError`, kernels pass
``exc=IncompatibleOperandsError`` to keep their documented error type.
"""

from __future__ import annotations

from typing import Type

from ..errors import ModeError, PastaError


def check_mode(order: int, mode: int, *, exc: Type[PastaError] = ModeError) -> int:
    """Validate a mode index, supporting negatives, and return it normalized.

    Raises ``exc`` (default :class:`ModeError`) when ``mode`` is outside
    ``[-order, order)``.
    """
    if not -order <= mode < order:
        raise exc(f"mode {mode} out of range for order-{order} tensor")
    return mode % order


def normalize_mode(order: int, mode: int) -> int:
    """Best-effort normalization: wrap in-range negatives, never raise.

    Out-of-range modes are returned unchanged so the caller's later
    validation (with its own exception type) still sees the original
    value.
    """
    return mode % order if -order <= mode < order else mode


class ModeValidationMixin:
    """``check_mode`` for any format class exposing an ``order`` property.

    Every tensor format validates caller-supplied mode indices the same
    way; inheriting this mixin replaces the per-class copies so the
    error message (and the negative-mode wrapping rule) cannot drift
    between formats.
    """

    __slots__ = ()

    def check_mode(self, mode: int) -> int:
        """Validate a mode index, supporting negatives, and return it."""
        return check_mode(self.order, mode)
