"""Conversions between the suite's tensor formats.

All conversions round-trip numerically (HiCOO changes the nonzero order to
Morton order, which is invisible through :meth:`CooTensor.allclose`).
:func:`choose_format` implements the paper's format-selection heuristic:
HiCOO compresses well unless the tensor is hyper-sparse (blocks nearly
always hold a single nonzero), in which case gHiCOO or plain COO wins.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..errors import FormatParameterError
from .coo import CooTensor
from .ghicoo import GHicooTensor
from .hicoo import DEFAULT_BLOCK_SIZE, HicooTensor
from .scoo import SemiSparseCooTensor
from .shicoo import SHicooTensor

AnySparse = Union[CooTensor, HicooTensor, GHicooTensor, SemiSparseCooTensor, SHicooTensor]


def to_coo(tensor: AnySparse) -> CooTensor:
    """Convert any supported format to plain COO."""
    if isinstance(tensor, CooTensor):
        return tensor
    if isinstance(tensor, (HicooTensor, GHicooTensor)):
        return tensor.to_coo()
    if isinstance(tensor, SemiSparseCooTensor):
        return tensor.to_coo()
    if isinstance(tensor, SHicooTensor):
        return tensor.to_coo()
    raise TypeError(f"unsupported tensor type: {type(tensor).__name__}")


def to_hicoo(tensor: AnySparse, block_size: int = DEFAULT_BLOCK_SIZE) -> HicooTensor:
    """Convert any supported general sparse format to HiCOO.

    Always builds a fresh tensor the caller owns outright.  The plan
    cache still makes repeats cheap (the Morton permutation is
    memoized); the kernel dispatch layer, whose outputs are never
    mutated, additionally memoizes whole conversions via ``hicoo_for``.
    """
    if isinstance(tensor, HicooTensor) and tensor.block_size == block_size:
        return tensor
    return HicooTensor.from_coo(to_coo(tensor), block_size)


def to_ghicoo(
    tensor: AnySparse,
    compressed_modes: Sequence[int],
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> GHicooTensor:
    """Convert any supported general sparse format to gHiCOO."""
    return GHicooTensor.from_coo(to_coo(tensor), compressed_modes, block_size)


def convert(tensor: AnySparse, target: str, **kwargs) -> AnySparse:
    """Convert by format name: ``coo``, ``hicoo``, ``ghicoo``, ``scoo``, ``shicoo``.

    ``ghicoo`` requires ``compressed_modes=...``; ``scoo``/``shicoo``
    require ``dense_modes=...``.  ``block_size`` is honored by the HiCOO
    family.
    """
    name = target.lower()
    if name == "coo":
        return to_coo(tensor)
    if name == "hicoo":
        return to_hicoo(tensor, kwargs.get("block_size", DEFAULT_BLOCK_SIZE))
    if name == "ghicoo":
        if "compressed_modes" not in kwargs:
            raise FormatParameterError("gHiCOO conversion needs compressed_modes=...")
        return to_ghicoo(
            tensor,
            kwargs["compressed_modes"],
            kwargs.get("block_size", DEFAULT_BLOCK_SIZE),
        )
    if name == "scoo":
        if "dense_modes" not in kwargs:
            raise FormatParameterError("sCOO conversion needs dense_modes=...")
        return SemiSparseCooTensor.from_coo(to_coo(tensor), kwargs["dense_modes"])
    if name == "shicoo":
        if "dense_modes" not in kwargs:
            raise FormatParameterError("sHiCOO conversion needs dense_modes=...")
        return SHicooTensor.from_coo(
            to_coo(tensor),
            kwargs["dense_modes"],
            kwargs.get("block_size", DEFAULT_BLOCK_SIZE),
        )
    raise FormatParameterError(f"unknown format name: {target!r}")


def choose_format(
    tensor: CooTensor,
    block_size: int = DEFAULT_BLOCK_SIZE,
    *,
    min_occupancy: float = 1.25,
) -> str:
    """Pick ``"hicoo"`` or ``"coo"`` for a tensor by block occupancy.

    The HiCOO paper observes the format "could not be beneficial for
    hyper-sparse tensors where most tensor blocks only consist of one or
    few non-zeros"; below ``min_occupancy`` average nonzeros per block the
    block metadata outweighs the element-index savings and COO is the
    better choice.
    """
    hicoo = HicooTensor.from_coo(tensor, block_size)
    if hicoo.average_block_occupancy() >= min_occupancy:
        return "hicoo"
    return "coo"
