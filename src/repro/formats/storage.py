"""Analytic storage accounting for the suite's tensor formats.

These formulas restate the paper's storage math so tests can pin the byte
counts of real arrays against the closed-form expressions:

* COO: ``4 * (N + 1) * M`` — ``N`` 32-bit index arrays plus 32-bit values.
* HiCOO: ``(N + 4) * M`` element bytes plus ``(4N + 8) * n_b + 8`` block
  metadata bytes (Table I's ``20 * n_b`` term for ``N = 3``).
* sCOO: sparse-mode indices plus one dense value block per fiber.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .coo import CooTensor
from .ghicoo import GHicooTensor
from .hicoo import HicooTensor
from .scoo import SemiSparseCooTensor
from .shicoo import SHicooTensor

AnyTensor = Union[CooTensor, SemiSparseCooTensor, HicooTensor, GHicooTensor, SHicooTensor]

INDEX_BYTES = 4
VALUE_BYTES = 4
ELEMENT_INDEX_BYTES = 1
BPTR_BYTES = 8


@dataclass(frozen=True)
class StorageBreakdown:
    """Bytes per structural component of a stored tensor."""

    index_bytes: int
    value_bytes: int
    metadata_bytes: int

    @property
    def total(self) -> int:
        """All bytes of the representation."""
        return self.index_bytes + self.value_bytes + self.metadata_bytes


def coo_storage_bytes(order: int, nnz: int) -> int:
    """Closed-form COO bytes: ``4 * (order + 1) * nnz``."""
    return INDEX_BYTES * (order + 1) * nnz


def hicoo_storage_bytes(order: int, nnz: int, num_blocks: int) -> int:
    """Closed-form HiCOO bytes for ``nnz`` nonzeros in ``num_blocks`` blocks."""
    element_bytes = (ELEMENT_INDEX_BYTES * order + VALUE_BYTES) * nnz
    block_bytes = (INDEX_BYTES * order + BPTR_BYTES) * num_blocks + BPTR_BYTES
    return element_bytes + block_bytes


def ghicoo_storage_bytes(
    num_compressed: int, num_uncompressed: int, nnz: int, num_blocks: int
) -> int:
    """Closed-form gHiCOO bytes: blocked modes plus raw COO modes."""
    element_bytes = (
        ELEMENT_INDEX_BYTES * num_compressed + INDEX_BYTES * num_uncompressed + VALUE_BYTES
    ) * nnz
    block_bytes = (INDEX_BYTES * num_compressed + BPTR_BYTES) * num_blocks + BPTR_BYTES
    return element_bytes + block_bytes


def breakdown(tensor: AnyTensor) -> StorageBreakdown:
    """Split a tensor's storage into index, value, and metadata bytes."""
    if isinstance(tensor, CooTensor):
        return StorageBreakdown(tensor.indices.nbytes, tensor.values.nbytes, 0)
    if isinstance(tensor, SemiSparseCooTensor):
        return StorageBreakdown(tensor.indices.nbytes, tensor.values.nbytes, 0)
    if isinstance(tensor, HicooTensor):
        return StorageBreakdown(
            tensor.einds.nbytes,
            tensor.values.nbytes,
            tensor.binds.nbytes + tensor.bptr.nbytes,
        )
    if isinstance(tensor, GHicooTensor):
        return StorageBreakdown(
            tensor.einds.nbytes + tensor.cinds.nbytes,
            tensor.values.nbytes,
            tensor.binds.nbytes + tensor.bptr.nbytes,
        )
    if isinstance(tensor, SHicooTensor):
        return StorageBreakdown(
            tensor.einds.nbytes,
            tensor.values.nbytes,
            tensor.binds.nbytes + tensor.bptr.nbytes,
        )
    raise TypeError(f"unsupported tensor type: {type(tensor).__name__}")


def storage_bytes(tensor: AnyTensor) -> int:
    """Total bytes of any supported tensor representation."""
    return breakdown(tensor).total
