"""Flagged COO (F-COO) format (Liu et al., CLUSTER'17).

F-COO is listed among the formats the paper surveys (Section III).  It
is a GPU-oriented variant of COO built for *one* operation mode: the
indices of the product mode are stored per nonzero, while the remaining
modes are replaced by two flag arrays —

* ``bit_flags`` — 1 where a nonzero *starts a new fiber* (the previous
  nonzero belongs to a different combination of non-product indices);
* ``start_flags`` — the retained (non-product) indices, stored *only*
  for fiber starts.

Kernels then run as a segmented reduction over the bit flags, which maps
onto GPU segmented-scan primitives without any atomics; the flags make
the format smaller than COO whenever fibers are longer than one nonzero.
Like CSF (and unlike COO/HiCOO), F-COO is mode-specific: one instance
serves one product mode.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .modes import ModeValidationMixin


class FcooTensor(ModeValidationMixin):
    """A sparse tensor in F-COO form for one product mode.

    Attributes
    ----------
    shape:
        Full dimension sizes (original mode numbering).
    product_mode:
        The mode whose index is kept per nonzero.
    product_indices:
        ``(nnz,)`` indices of the product mode.
    bit_flags:
        ``(nnz,)`` boolean; True where a new fiber starts.
    start_indices:
        ``(order - 1, num_fibers)`` retained indices of each fiber, in
        ascending original mode order.
    values:
        ``(nnz,)`` nonzero values, fiber-contiguous.
    """

    __slots__ = (
        "shape",
        "product_mode",
        "product_indices",
        "bit_flags",
        "start_indices",
        "values",
    )

    def __init__(
        self,
        shape: Sequence[int],
        product_mode: int,
        product_indices: np.ndarray,
        bit_flags: np.ndarray,
        start_indices: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.product_mode = int(product_mode)
        self.product_indices = np.ascontiguousarray(
            product_indices, dtype=INDEX_DTYPE
        )
        self.bit_flags = np.ascontiguousarray(bit_flags, dtype=bool)
        self.start_indices = np.ascontiguousarray(
            start_indices, dtype=INDEX_DTYPE
        )
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if not 0 <= self.product_mode < order:
            raise ModeError(
                f"product mode {self.product_mode} out of range for order {order}"
            )
        nnz = self.values.shape[0]
        if self.product_indices.shape != (nnz,):
            raise TensorShapeError("product_indices must have one entry per nonzero")
        if self.bit_flags.shape != (nnz,):
            raise TensorShapeError("bit_flags must have one entry per nonzero")
        if nnz and not self.bit_flags[0]:
            raise TensorShapeError("the first nonzero must start a fiber")
        fibers = int(self.bit_flags.sum())
        if self.start_indices.shape != (order - 1, fibers):
            raise TensorShapeError(
                f"start_indices must have shape ({order - 1}, {fibers}), "
                f"got {self.start_indices.shape}"
            )

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.values.shape[0])

    @property
    def num_fibers(self) -> int:
        """Number of product-mode fibers (flagged starts)."""
        return int(self.bit_flags.sum())

    def fiber_pointer(self) -> np.ndarray:
        """Start offsets of each fiber plus the terminating nnz."""
        starts = np.flatnonzero(self.bit_flags)
        return np.concatenate([starts, [self.nnz]]).astype(np.int64)

    def storage_bytes(self) -> int:
        """Bytes across values, product indices, flags (1 bit/8 here as
        one byte, the practical packing), and fiber-start indices."""
        return (
            self.values.nbytes
            + self.product_indices.nbytes
            + self.bit_flags.nbytes // 8 + 1
            + self.start_indices.nbytes
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(cls, tensor: CooTensor, product_mode: int) -> "FcooTensor":
        """Build F-COO for one product mode (fiber-sorts the nonzeros)."""
        product_mode = tensor.check_mode(product_mode)
        ordered, fptr = tensor.fiber_partition(product_mode)
        other = [m for m in range(tensor.order) if m != product_mode]
        nnz = ordered.nnz
        flags = np.zeros(nnz, dtype=bool)
        if nnz:
            flags[fptr[:-1]] = True
        start_indices = ordered.indices[other][:, fptr[:-1]]
        return cls(
            tensor.shape,
            product_mode,
            ordered.indices[product_mode],
            flags,
            start_indices,
            ordered.values,
            validate=False,
        )

    def to_coo(self) -> CooTensor:
        """Expand back to plain COO."""
        if self.nnz == 0:
            return CooTensor.empty(self.shape)
        fiber_of = np.cumsum(self.bit_flags) - 1
        other = [m for m in range(self.order) if m != self.product_mode]
        indices = np.empty((self.order, self.nnz), dtype=INDEX_DTYPE)
        for row, mode in enumerate(other):
            indices[mode] = self.start_indices[row][fiber_of]
        indices[self.product_mode] = self.product_indices
        return CooTensor(self.shape, indices, self.values, validate=False)

    def __repr__(self) -> str:
        return (
            f"FcooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"product_mode={self.product_mode}, fibers={self.num_fibers})"
        )


def segmented_sum(values: np.ndarray, bit_flags: np.ndarray) -> np.ndarray:
    """Segmented reduction over flag-delimited segments.

    The primitive F-COO kernels are built on (a segmented scan's final
    per-segment values); one output per flagged start.
    """
    values = np.asarray(values)
    bit_flags = np.asarray(bit_flags, dtype=bool)
    if values.shape[0] != bit_flags.shape[0]:
        raise TensorShapeError("values and flags must align")
    if values.shape[0] == 0:
        return np.empty((0,) + values.shape[1:], dtype=values.dtype)
    if not bit_flags[0]:
        raise TensorShapeError("the first element must start a segment")
    starts = np.flatnonzero(bit_flags)
    return np.add.reduceat(values, starts, axis=0)


def ttv_fcoo(fcoo: FcooTensor, vector: np.ndarray) -> CooTensor:
    """F-COO TTV: one segmented sum over the flags, no atomics.

    Contracts the instance's product mode with ``vector``; the output's
    nonzeros are exactly the flagged fiber starts.
    """
    vector = np.asarray(vector, dtype=VALUE_DTYPE)
    if vector.shape != (fcoo.shape[fcoo.product_mode],):
        raise TensorShapeError(
            f"vector must have length {fcoo.shape[fcoo.product_mode]}"
        )
    out_shape = tuple(
        s for m, s in enumerate(fcoo.shape) if m != fcoo.product_mode
    )
    if fcoo.nnz == 0:
        return CooTensor.empty(out_shape)
    contributions = fcoo.values.astype(np.float64) * vector[
        fcoo.product_indices
    ]
    sums = segmented_sum(contributions, fcoo.bit_flags)
    return CooTensor(
        out_shape,
        fcoo.start_indices,
        sums.astype(VALUE_DTYPE),
        validate=False,
    )


def ttm_fcoo(fcoo: FcooTensor, matrix: np.ndarray):
    """F-COO TTM: segmented sum of ``value * U[i_n, :]`` rows.

    Returns the semi-sparse output as an
    :class:`~repro.formats.scoo.SemiSparseCooTensor`.
    """
    from .scoo import SemiSparseCooTensor

    matrix = np.asarray(matrix, dtype=VALUE_DTYPE)
    if matrix.ndim != 2 or matrix.shape[0] != fcoo.shape[fcoo.product_mode]:
        raise TensorShapeError(
            f"matrix must have {fcoo.shape[fcoo.product_mode]} rows"
        )
    rank = matrix.shape[1]
    out_shape = list(fcoo.shape)
    out_shape[fcoo.product_mode] = rank
    if fcoo.nnz == 0:
        return SemiSparseCooTensor(
            out_shape,
            [fcoo.product_mode],
            np.empty((fcoo.order - 1, 0), dtype=INDEX_DTYPE),
            np.empty((0, rank), dtype=VALUE_DTYPE),
        )
    rows = fcoo.values[:, None].astype(np.float64) * matrix[fcoo.product_indices]
    sums = segmented_sum(rows, fcoo.bit_flags)
    return SemiSparseCooTensor(
        out_shape,
        [fcoo.product_mode],
        fcoo.start_indices,
        sums.astype(VALUE_DTYPE),
    )
