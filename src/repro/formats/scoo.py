"""Semi-sparse COO (sCOO) for tensors with dense mode(s).

A mode is *dense* when every fiber along it is a dense vector.  sCOO
(paper Figure 1(b), after Li et al. IA^3'16) stores the dense mode(s) as a
dense value block per remaining sparse coordinate and keeps COO index
arrays only for the sparse modes.  The output of TTM is exactly such a
tensor: the product mode becomes a dense mode of length ``R``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .modes import ModeValidationMixin, normalize_mode


class SemiSparseCooTensor(ModeValidationMixin):
    """A tensor with some modes sparse (COO indices) and some dense.

    Parameters
    ----------
    shape:
        Full dimension sizes, covering sparse and dense modes.
    dense_modes:
        Modes stored densely.  Must be nonempty and within range.
    indices:
        ``(num_sparse_modes, nnz)`` coordinates for the sparse modes, in
        increasing mode number.
    values:
        ``(nnz, *dense_shape)`` dense value block per sparse coordinate,
        where ``dense_shape`` lists the dense mode sizes in increasing
        mode number.
    """

    __slots__ = (
        "shape",
        "dense_modes",
        "sparse_modes",
        "indices",
        "values",
        "__weakref__",
    )

    def __init__(
        self,
        shape: Sequence[int],
        dense_modes: Sequence[int],
        indices: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        order = len(self.shape)
        normalized = sorted({normalize_mode(order, m) for m in dense_modes})
        self.dense_modes: Tuple[int, ...] = tuple(normalized)
        self.sparse_modes: Tuple[int, ...] = tuple(
            m for m in range(order) if m not in self.dense_modes
        )
        self.indices = np.ascontiguousarray(indices, dtype=INDEX_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if not self.dense_modes:
            raise ModeError("sCOO requires at least one dense mode")
        if any(m < 0 or m >= order for m in self.dense_modes):
            raise ModeError(f"dense modes {self.dense_modes} out of range for order {order}")
        if not self.sparse_modes:
            raise ModeError("sCOO requires at least one sparse mode")
        if self.indices.ndim != 2 or self.indices.shape[0] != len(self.sparse_modes):
            raise TensorShapeError(
                f"indices must have shape ({len(self.sparse_modes)}, nnz), "
                f"got {self.indices.shape}"
            )
        expected_dense = tuple(self.shape[m] for m in self.dense_modes)
        if self.values.shape != (self.indices.shape[1],) + expected_dense:
            raise TensorShapeError(
                f"values must have shape (nnz, *{expected_dense}), got {self.values.shape}"
            )
        for row, mode in enumerate(self.sparse_modes):
            column = self.indices[row]
            if column.size and (column.min() < 0 or column.max() >= self.shape[mode]):
                raise TensorShapeError(f"mode-{mode} indices out of range")

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes, counting sparse and dense."""
        return len(self.shape)

    @property
    def nnz_fibers(self) -> int:
        """Number of stored sparse coordinates (dense fibers)."""
        return int(self.indices.shape[1])

    @property
    def nnz(self) -> int:
        """Number of stored scalar values (fibers times dense block size)."""
        return int(self.values.size)

    def dense_block_size(self) -> int:
        """Product of the dense mode sizes."""
        size = 1
        for m in self.dense_modes:
            size *= self.shape[m]
        return size

    def storage_bytes(self) -> int:
        """Bytes of index plus value storage."""
        return self.indices.nbytes + self.values.nbytes

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls, tensor: CooTensor, dense_modes: Sequence[int]
    ) -> "SemiSparseCooTensor":
        """Densify the given modes of a COO tensor.

        Every distinct combination of sparse-mode coordinates becomes one
        dense block; missing positions inside a block are zero-filled.
        """
        order = tensor.order
        dense = sorted({tensor.check_mode(m) for m in dense_modes})
        sparse = [m for m in range(order) if m not in dense]
        if not sparse:
            raise ModeError("at least one mode must stay sparse")
        ordered = tensor.sorted_lexicographic(sparse + dense)
        if ordered.nnz == 0:
            dense_shape = tuple(tensor.shape[m] for m in dense)
            return cls(
                tensor.shape,
                dense,
                np.empty((len(sparse), 0), dtype=INDEX_DTYPE),
                np.empty((0,) + dense_shape, dtype=VALUE_DTYPE),
            )
        sparse_idx = ordered.indices[sparse]
        boundary = np.any(sparse_idx[:, 1:] != sparse_idx[:, :-1], axis=0)
        starts = np.flatnonzero(np.concatenate(([True], boundary)))
        fiber_of_nnz = np.cumsum(np.concatenate(([False], boundary)))
        dense_shape = tuple(tensor.shape[m] for m in dense)
        values = np.zeros((len(starts),) + dense_shape, dtype=VALUE_DTYPE)
        dense_coords = tuple(ordered.indices[m] for m in dense)
        np.add.at(values, (fiber_of_nnz,) + dense_coords, ordered.values)
        return cls(tensor.shape, dense, sparse_idx[:, starts], values)

    def to_coo(self, *, drop_zeros: bool = True) -> CooTensor:
        """Expand to plain COO (optionally keeping explicit zeros)."""
        nnz = self.nnz_fibers
        block = self.dense_block_size()
        if nnz == 0:
            return CooTensor.empty(self.shape)
        dense_shape = tuple(self.shape[m] for m in self.dense_modes)
        dense_grid = np.indices(dense_shape).reshape(len(self.dense_modes), -1)
        order = self.order
        full = np.empty((order, nnz * block), dtype=INDEX_DTYPE)
        for row, mode in enumerate(self.sparse_modes):
            full[mode] = np.repeat(self.indices[row], block)
        for row, mode in enumerate(self.dense_modes):
            full[mode] = np.tile(dense_grid[row], nnz).astype(INDEX_DTYPE)
        values = self.values.reshape(-1)
        if drop_zeros:
            keep = values != 0
            full = full[:, keep]
            values = values[keep]
        return CooTensor(self.shape, full, values, validate=False)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense numpy array."""
        return self.to_coo(drop_zeros=False).to_dense()

    def allclose(
        self, other: "SemiSparseCooTensor", *, rtol: float = 1e-5, atol: float = 1e-6
    ) -> bool:
        """Numeric equality via dense materialization."""
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return (
            f"SemiSparseCooTensor(shape={self.shape}, dense_modes={self.dense_modes}, "
            f"fibers={self.nnz_fibers})"
        )
