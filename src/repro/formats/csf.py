"""Compressed Sparse Fiber (CSF) format (Smith & Karypis, SPLATT).

The paper lists CSF among the formats "considered for our benchmark
suite in the near future" (Sections III and VII).  CSF stores a sparse
tensor as a forest: level 0 holds the distinct root-mode indices, each
deeper level the distinct index extensions, and the leaf level one entry
per nonzero.  Per level ``l`` the arrays are

* ``fids[l]`` — the index value of each node at level ``l``;
* ``fptr[l]`` — for ``l < order-1``, the children range of each node
  (``fptr[l][k] .. fptr[l][k+1]`` indexes level ``l+1``).

Unlike COO/HiCOO, CSF is **mode-specific**: a tree rooted at mode ``n``
serves mode-``n`` computations best, which is exactly the mode-
orientation trade-off the paper discusses (Section I).  Use
:meth:`CsfTensor.from_coo` with an explicit ``mode_order`` or
:func:`csf_for_mode` to root the tree at a kernel's target mode.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .modes import ModeValidationMixin

PTR_DTYPE = np.int64


def _prefix_boundaries(sorted_indices: np.ndarray, depth: int) -> np.ndarray:
    """Start offsets of distinct prefixes of the first ``depth`` rows."""
    nnz = sorted_indices.shape[1]
    if nnz == 0:
        return np.empty(0, dtype=PTR_DTYPE)
    prefix = sorted_indices[:depth]
    boundary = np.any(prefix[:, 1:] != prefix[:, :-1], axis=0)
    return np.flatnonzero(np.concatenate(([True], boundary))).astype(PTR_DTYPE)


def _levels_from_sorted(
    permuted: np.ndarray,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    """Build the per-level ``(fids, fptr)`` arrays of a CSF forest.

    ``permuted`` is the ``(order, nnz)`` index matrix already permuted to
    tree-level order (row 0 is the root mode) and sorted
    lexicographically by that order, duplicates removed.  Shared by the
    in-RAM :meth:`CsfTensor.from_coo` and the chunk-at-a-time
    :func:`repro.formats.streaming.streaming_csf`, so the two paths
    cannot drift.
    """
    order = permuted.shape[0]
    fids: List[np.ndarray] = []
    fptr: List[np.ndarray] = []
    previous_starts: Optional[np.ndarray] = None
    level_starts = [
        _prefix_boundaries(permuted, depth) for depth in range(1, order + 1)
    ]
    for level in range(order):
        starts = level_starts[level]
        fids.append(permuted[level][starts].astype(INDEX_DTYPE))  # repro: ignore[dtype]
        if previous_starts is not None:
            # Children pointers: positions of this level's starts
            # within the previous level's grouping.
            child_index = np.searchsorted(starts, previous_starts)
            fptr.append(
                np.concatenate([child_index, [starts.shape[0]]]).astype(PTR_DTYPE)  # repro: ignore[dtype]
            )
        previous_starts = starts
    return fids, fptr


class CsfTensor(ModeValidationMixin):
    """A sparse tensor as a compressed sparse fiber tree.

    Attributes
    ----------
    shape:
        Dimension sizes in *original* mode numbering.
    mode_order:
        Tree level per original mode: ``mode_order[0]`` is the root mode.
    fids:
        One index array per level; ``fids[-1]`` has one entry per nonzero.
    fptr:
        One children-pointer array per non-leaf level, each of length
        ``len(fids[l]) + 1``.
    values:
        Nonzero values, aligned with the leaf level.
    """

    __slots__ = ("shape", "mode_order", "fids", "fptr", "values")

    def __init__(
        self,
        shape: Sequence[int],
        mode_order: Sequence[int],
        fids: List[np.ndarray],
        fptr: List[np.ndarray],
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.mode_order: Tuple[int, ...] = tuple(int(m) for m in mode_order)
        self.fids = [np.ascontiguousarray(f, dtype=INDEX_DTYPE) for f in fids]
        self.fptr = [np.ascontiguousarray(p, dtype=PTR_DTYPE) for p in fptr]
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if sorted(self.mode_order) != list(range(order)):
            raise ModeError(f"mode_order {self.mode_order} is not a permutation")
        if len(self.fids) != order:
            raise TensorShapeError(f"need {order} fid levels, got {len(self.fids)}")
        if len(self.fptr) != order - 1:
            raise TensorShapeError(
                f"need {order - 1} fptr levels, got {len(self.fptr)}"
            )
        if self.values.shape != (self.fids[-1].shape[0],):
            raise TensorShapeError("values must align with the leaf level")
        for level in range(order - 1):
            nodes = self.fids[level].shape[0]
            if self.fptr[level].shape != (nodes + 1,):
                raise TensorShapeError(
                    f"fptr[{level}] must have length {nodes + 1}"
                )
            if nodes and (
                self.fptr[level][0] != 0
                or self.fptr[level][-1] != self.fids[level + 1].shape[0]
            ):
                raise TensorShapeError(f"fptr[{level}] must span level {level + 1}")
            if np.any(np.diff(self.fptr[level]) <= 0):
                raise TensorShapeError(f"fptr[{level}] must be strictly increasing")

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.values.shape[0])

    @property
    def root_mode(self) -> int:
        """The original mode at the top of the tree."""
        return self.mode_order[0]

    def nodes_per_level(self) -> Tuple[int, ...]:
        """Node counts level by level (root first)."""
        return tuple(f.shape[0] for f in self.fids)

    def storage_bytes(self) -> int:
        """Bytes across all fid/fptr/value arrays."""
        total = self.values.nbytes
        total += sum(f.nbytes for f in self.fids)
        total += sum(p.nbytes for p in self.fptr)
        return total

    def leaf_counts_per_root(self) -> np.ndarray:
        """Nonzeros under each root node (the work-unit distribution)."""
        counts = np.ones(self.fids[-1].shape[0], dtype=np.int64)
        for level in range(self.order - 2, -1, -1):
            counts = np.add.reduceat(counts, self.fptr[level][:-1])
        return counts

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        tensor: CooTensor,
        mode_order: Optional[Sequence[int]] = None,
    ) -> "CsfTensor":
        """Build the CSF tree for a mode order (default: natural order)."""
        if mode_order is None:
            mode_order = tuple(range(tensor.order))
        mode_order = tuple(tensor.check_mode(m) for m in mode_order)
        if sorted(mode_order) != list(range(tensor.order)):
            raise ModeError(f"{mode_order} is not a permutation of the modes")
        ordered = tensor.sum_duplicates().sorted_lexicographic(mode_order)
        permuted = ordered.indices[list(mode_order)]
        fids, fptr = _levels_from_sorted(permuted)
        return cls(
            tensor.shape, mode_order, fids, fptr, ordered.values, validate=False
        )

    def expand_level(self, level: int) -> np.ndarray:
        """The level's index value expanded to one entry per nonzero."""
        if not 0 <= level < self.order:
            raise ModeError(f"level {level} out of range")
        expanded = self.fids[level]
        for l in range(level, self.order - 1):
            counts = np.diff(self.fptr[l])
            expanded = np.repeat(expanded, counts)
        return expanded

    def to_coo(self) -> CooTensor:
        """Expand back to COO (original mode numbering)."""
        order = self.order
        indices = np.empty((order, self.nnz), dtype=INDEX_DTYPE)
        for level, mode in enumerate(self.mode_order):
            indices[mode] = self.expand_level(level)
        return CooTensor(self.shape, indices, self.values, validate=False)

    def __repr__(self) -> str:
        return (
            f"CsfTensor(shape={self.shape}, nnz={self.nnz}, "
            f"mode_order={self.mode_order}, nodes={self.nodes_per_level()})"
        )


def csf_for_mode(tensor: CooTensor, mode: int) -> CsfTensor:
    """A CSF tree rooted at ``mode`` (remaining modes in natural order).

    This is the representation mode-``mode`` MTTKRP/TTV want; building
    one tree per mode is CSF's storage-for-speed trade-off versus the
    mode-generic COO/HiCOO (paper Section III).
    """
    mode = tensor.check_mode(mode)
    rest = [m for m in range(tensor.order) if m != mode]
    return CsfTensor.from_coo(tensor, [mode] + rest)


def csf_storage_bytes(
    order: int, nnz: int, nodes_per_level: Sequence[int]
) -> int:
    """Closed-form CSF bytes for given per-level node counts."""
    total = 4 * nnz  # values
    for level, nodes in enumerate(nodes_per_level):
        total += 4 * nodes  # fids
        if level < order - 1:
            total += 8 * (nodes + 1)  # fptr
    return total
