"""Generalized HiCOO (gHiCOO): block-compress only a subset of modes.

gHiCOO (paper Section III-C, Figure 2(b)) generalizes HiCOO by letting the
caller choose which modes are compressed into block/element index pairs and
which stay as plain COO index arrays.  Two motivations from the paper:

* hyper-sparse tensors, where most HiCOO blocks would hold one nonzero, can
  keep their sparsest mode(s) in COO to avoid block-metadata blow-up; and
* TTV/TTM leave the product mode uncompressed so the kernel can read the
  product-mode coordinate directly and "bypass the blocking nature of
  HiCOO", avoiding inter-block data races.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .coo import INDEX_DTYPE, VALUE_DTYPE, CooTensor
from .hicoo import (
    BPTR_DTYPE,
    DEFAULT_BLOCK_SIZE,
    ELEMENT_DTYPE,
    _group_sorted_blocks,
    check_block_size,
)
from .modes import ModeValidationMixin, normalize_mode


class GHicooTensor(ModeValidationMixin):
    """A sparse tensor with HiCOO blocking on selected modes only.

    Attributes
    ----------
    shape:
        Dimension sizes for all modes.
    compressed_modes:
        Modes stored as block + element indices (sorted ascending).
    uncompressed_modes:
        Modes stored as full 32-bit COO index arrays.
    bptr / binds / einds / values:
        As in :class:`~repro.formats.hicoo.HicooTensor`, but ``binds`` and
        ``einds`` cover only the compressed modes.  Blocks are defined by
        the compressed-mode coordinates alone.
    cinds:
        ``(num_uncompressed, nnz)`` COO indices of the uncompressed modes.
    """

    __slots__ = (
        "shape",
        "block_size",
        "compressed_modes",
        "uncompressed_modes",
        "bptr",
        "binds",
        "einds",
        "cinds",
        "values",
        "__weakref__",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        compressed_modes: Sequence[int],
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        cinds: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.block_size = check_block_size(block_size)
        order = len(self.shape)
        self.compressed_modes: Tuple[int, ...] = tuple(sorted(compressed_modes))
        self.uncompressed_modes: Tuple[int, ...] = tuple(
            m for m in range(order) if m not in self.compressed_modes
        )
        self.bptr = np.ascontiguousarray(bptr, dtype=BPTR_DTYPE)
        self.binds = np.ascontiguousarray(binds, dtype=INDEX_DTYPE)
        self.einds = np.ascontiguousarray(einds, dtype=ELEMENT_DTYPE)
        self.cinds = np.ascontiguousarray(cinds, dtype=INDEX_DTYPE)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        order = len(self.shape)
        if not self.compressed_modes:
            raise ModeError("gHiCOO requires at least one compressed mode")
        if any(m < 0 or m >= order for m in self.compressed_modes):
            raise ModeError(
                f"compressed modes {self.compressed_modes} out of range for order {order}"
            )
        nc = len(self.compressed_modes)
        nu = len(self.uncompressed_modes)
        if self.binds.ndim != 2 or self.binds.shape[0] != nc:
            raise TensorShapeError(f"binds must have {nc} rows, got {self.binds.shape}")
        if self.einds.ndim != 2 or self.einds.shape[0] != nc:
            raise TensorShapeError(f"einds must have {nc} rows, got {self.einds.shape}")
        nnz = self.einds.shape[1]
        if self.cinds.shape != (nu, nnz):
            raise TensorShapeError(
                f"cinds must have shape ({nu}, {nnz}), got {self.cinds.shape}"
            )
        if self.values.shape != (nnz,):
            raise TensorShapeError(f"values must have length {nnz}")
        nb = self.binds.shape[1]
        if self.bptr.shape != (nb + 1,):
            raise TensorShapeError("bptr length must be num_blocks + 1")
        if nb and (self.bptr[0] != 0 or self.bptr[-1] != nnz):
            raise TensorShapeError("bptr must start at 0 and end at nnz")
        if np.any(np.diff(self.bptr) <= 0):
            raise TensorShapeError("bptr must be strictly increasing")

    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes, compressed plus uncompressed."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(self.values.shape[0])

    @property
    def num_blocks(self) -> int:
        """Number of nonempty blocks over the compressed modes."""
        return int(self.binds.shape[1])

    def nnz_per_block(self) -> np.ndarray:
        """Nonzero count of each block."""
        return np.diff(self.bptr)

    def storage_bytes(self) -> int:
        """Bytes across all index and value arrays."""
        return (
            self.bptr.nbytes
            + self.binds.nbytes
            + self.einds.nbytes
            + self.cinds.nbytes
            + self.values.nbytes
        )

    # ------------------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        tensor: CooTensor,
        compressed_modes: Sequence[int],
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "GHicooTensor":
        """Convert COO to gHiCOO compressing only the given modes."""
        block_size = check_block_size(block_size)
        comp = sorted({tensor.check_mode(m) for m in compressed_modes})
        if not comp:
            raise ModeError("must compress at least one mode")
        uncomp = [m for m in range(tensor.order) if m not in comp]
        from ..perf.plans import morton_perm

        idx = tensor.indices.astype(np.int64)
        block_coords = idx[comp] // block_size
        perm = morton_perm(tensor, block_size, comp)
        idx = idx[:, perm]
        block_coords = block_coords[:, perm]
        values = tensor.values[perm]
        starts, bptr = _group_sorted_blocks(block_coords)
        binds = block_coords[:, starts].astype(INDEX_DTYPE)
        einds = (idx[comp] % block_size).astype(ELEMENT_DTYPE)
        cinds = idx[uncomp].astype(INDEX_DTYPE)
        return cls(
            tensor.shape, block_size, comp, bptr, binds, einds, cinds, values,
            validate=False,
        )

    def to_coo(self) -> CooTensor:
        """Expand back to COO."""
        if self.nnz == 0:
            return CooTensor.empty(self.shape)
        counts = self.nnz_per_block()
        expanded = np.repeat(self.binds, counts, axis=1).astype(np.int64)
        full = np.empty((self.order, self.nnz), dtype=INDEX_DTYPE)
        for row, mode in enumerate(self.compressed_modes):
            full[mode] = (expanded[row] * self.block_size + self.einds[row]).astype(
                INDEX_DTYPE
            )
        for row, mode in enumerate(self.uncompressed_modes):
            full[mode] = self.cinds[row]
        return CooTensor(self.shape, full, self.values, validate=False)

    def uncompressed_index(self, mode: int) -> np.ndarray:
        """The full COO index array of an uncompressed mode.

        This is the fast path TTV/TTM rely on: the product mode is left
        uncompressed so its coordinates are read directly here.
        """
        mode = normalize_mode(self.order, mode)
        if mode not in self.uncompressed_modes:
            raise ModeError(f"mode {mode} is compressed; its index is blocked")
        return self.cinds[self.uncompressed_modes.index(mode)]

    def __repr__(self) -> str:
        return (
            f"GHicooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"blocks={self.num_blocks}, compressed={self.compressed_modes})"
        )
