"""Coordinate (COO) format for arbitrary-order sparse tensors.

COO is the suite's baseline mode-generic format (paper Section III-A): one
index array per mode plus one value array, with no ordering requirement.
We store indices as an ``int32`` matrix of shape ``(order, nnz)`` and values
as ``float32``, matching the paper's storage accounting of
``4 * (N + 1) * M`` bytes for an ``N``-order tensor with ``M`` nonzeros.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModeError, TensorShapeError
from .modes import ModeValidationMixin
from .morton import morton_sort_order

INDEX_DTYPE = np.int32
VALUE_DTYPE = np.float32


def _as_index_matrix(indices: np.ndarray) -> np.ndarray:
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise TensorShapeError(
            f"indices must have shape (order, nnz), got ndim={indices.ndim}"
        )
    if (
        indices.size
        and np.issubdtype(indices.dtype, np.integer)
        and indices.dtype.itemsize > np.dtype(INDEX_DTYPE).itemsize
    ):
        # A wider input cast to int32 wraps silently, and wrapped
        # coordinates can still pass the per-mode bounds check — fail
        # loudly instead of storing a valid-looking wrong tensor.
        limit = np.iinfo(INDEX_DTYPE)
        lo = indices.min(axis=1).min()
        hi = indices.max(axis=1).max()
        if lo < limit.min or hi > limit.max:
            raise TensorShapeError(
                f"coordinate {int(hi if hi > limit.max else lo)} does not "
                f"fit the {np.dtype(INDEX_DTYPE).name} index storage "
                f"(range [{limit.min}, {limit.max}])"
            )
    return np.ascontiguousarray(indices, dtype=INDEX_DTYPE)


class CooTensor(ModeValidationMixin):
    """An arbitrary-order sparse tensor in coordinate format.

    Parameters
    ----------
    shape:
        Dimension sizes, one per mode.
    indices:
        Integer array of shape ``(order, nnz)``; ``indices[m, x]`` is the
        mode-``m`` coordinate of nonzero ``x``.
    values:
        Array of ``nnz`` nonzero values (stored as ``float32``).
    validate:
        When true (the default), check index bounds and array consistency.
    """

    __slots__ = ("shape", "indices", "values", "__weakref__")

    def __init__(
        self,
        shape: Sequence[int],
        indices: np.ndarray,
        values: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.indices = _as_index_matrix(indices)
        self.values = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if validate:
            self._validate()

    def _validate(self) -> None:
        if len(self.shape) == 0:
            raise TensorShapeError("tensor must have at least one mode")
        if any(s <= 0 for s in self.shape):
            raise TensorShapeError(f"all dimensions must be positive, got {self.shape}")
        order, nnz = self.indices.shape
        if order != len(self.shape):
            raise TensorShapeError(
                f"indices have {order} modes but shape has {len(self.shape)}"
            )
        if self.values.ndim != 1 or self.values.shape[0] != nnz:
            raise TensorShapeError(
                f"values must be a vector of length {nnz}, got shape {self.values.shape}"
            )
        for mode, size in enumerate(self.shape):
            column = self.indices[mode]
            if column.size and (column.min() < 0 or column.max() >= size):
                raise TensorShapeError(
                    f"mode-{mode} indices out of range [0, {size})"
                )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of modes (dimensions)."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored nonzero entries."""
        return int(self.indices.shape[1])

    @property
    def density(self) -> float:
        """Fraction of possible positions that hold a stored nonzero."""
        total = 1.0
        for s in self.shape:
            total *= float(s)
        return self.nnz / total if total else 0.0

    def storage_bytes(self) -> int:
        """Bytes for COO storage: ``4 * (order + 1) * nnz`` (paper III-A)."""
        return self.indices.nbytes + self.values.nbytes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_dense(cls, array: np.ndarray) -> "CooTensor":
        """Build a COO tensor from a dense numpy array (zeros dropped)."""
        array = np.asarray(array)
        coords = np.nonzero(array)
        indices = np.vstack([c.astype(INDEX_DTYPE) for c in coords])
        return cls(array.shape, indices, array[coords])

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "CooTensor":
        """An all-zero tensor of the given shape."""
        order = len(shape)
        return cls(
            shape,
            np.empty((order, 0), dtype=INDEX_DTYPE),
            np.empty(0, dtype=VALUE_DTYPE),
        )

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        nnz: int,
        *,
        seed: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "CooTensor":
        """A random sparse tensor with ``nnz`` distinct uniform positions.

        Values are drawn uniformly from ``[0.5, 1.5)`` so element-wise
        division never sees a zero operand.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        shape = tuple(int(s) for s in shape)
        capacity = 1
        for s in shape:
            capacity *= s
        if nnz > capacity:
            raise TensorShapeError(
                f"cannot place {nnz} distinct nonzeros in a tensor of {capacity} cells"
            )
        indices = _sample_distinct_positions(shape, nnz, rng)
        values = rng.uniform(0.5, 1.5, size=nnz).astype(VALUE_DTYPE)
        return cls(shape, indices, values).sorted_lexicographic()

    # ------------------------------------------------------------------
    # Conversions and rearrangement
    # ------------------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense array (duplicates are summed)."""
        out = np.zeros(self.shape, dtype=np.float64)
        np.add.at(out, tuple(self.indices), self.values.astype(np.float64))
        return out.astype(VALUE_DTYPE)

    def copy(self) -> "CooTensor":
        """A deep copy of the tensor."""
        return CooTensor(
            self.shape, self.indices.copy(), self.values.copy(), validate=False
        )

    def permute_modes(self, mode_order: Sequence[int]) -> "CooTensor":
        """Reorder the tensor's modes (a generalized transpose)."""
        perm = [self.check_mode(m) for m in mode_order]
        if sorted(perm) != list(range(self.order)):
            raise ModeError(f"{mode_order} is not a permutation of the modes")
        shape = tuple(self.shape[m] for m in perm)
        return CooTensor(shape, self.indices[perm], self.values, validate=False)

    def lexicographic_order(
        self, mode_order: Optional[Sequence[int]] = None
    ) -> np.ndarray:
        """Permutation sorting nonzeros lexicographically by mode order.

        The first mode in ``mode_order`` is the most significant sort key.
        """
        if mode_order is None:
            mode_order = range(self.order)
        keys = [self.indices[self.check_mode(m)] for m in mode_order]
        # numpy.lexsort treats the *last* key as primary, so reverse.
        return np.lexsort(tuple(reversed(keys)))

    def sorted_lexicographic(
        self, mode_order: Optional[Sequence[int]] = None
    ) -> "CooTensor":
        """A copy with nonzeros sorted lexicographically by mode order."""
        perm = self.lexicographic_order(mode_order)
        return CooTensor(
            self.shape, self.indices[:, perm], self.values[perm], validate=False
        )

    def sorted_morton(self, block_size: int = 1) -> "CooTensor":
        """A copy sorted along the Z-curve of ``index // block_size``.

        With ``block_size == 1`` this is plain Morton order of the element
        coordinates; larger block sizes order whole blocks along the curve
        while keeping each block's elements contiguous, which is the
        nonzero order HiCOO stores.
        """
        if block_size < 1:
            raise TensorShapeError(f"block_size must be >= 1, got {block_size}")
        block_coords = self.indices.astype(np.int64) // block_size
        perm = morton_sort_order(block_coords)
        return CooTensor(
            self.shape, self.indices[:, perm], self.values[perm], validate=False
        )

    def sum_duplicates(self) -> "CooTensor":
        """Combine duplicate coordinates by summing their values."""
        if self.nnz == 0:
            return self.copy()
        ordered = self.sorted_lexicographic()
        same_as_prev = np.all(
            ordered.indices[:, 1:] == ordered.indices[:, :-1], axis=0
        )
        group_starts = np.flatnonzero(~np.concatenate(([False], same_as_prev)))
        summed = np.add.reduceat(ordered.values.astype(np.float64), group_starts)
        return CooTensor(
            self.shape,
            ordered.indices[:, group_starts],
            summed.astype(VALUE_DTYPE),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Fibers
    # ------------------------------------------------------------------

    def fiber_partition(self, mode: int) -> Tuple["CooTensor", np.ndarray]:
        """Group nonzeros into mode-``mode`` fibers.

        A mode-``n`` fiber is the set of nonzeros sharing every index
        except the mode-``n`` one.  Returns ``(sorted_tensor, fptr)`` where
        ``sorted_tensor`` has each fiber contiguous (product mode varying
        fastest) and ``fptr`` of length ``num_fibers + 1`` gives fiber
        start offsets.  This is the pre-processing step of the paper's
        TTV/TTM algorithms (Algorithm 1, line 1).
        """
        from ..perf.plans import build_fiber_plan, fiber_plan

        mode = self.check_mode(mode)
        plan = fiber_plan(self, mode)
        if plan is None:
            plan = build_fiber_plan(self, mode)
        return plan.ordered_tensor(self), plan.fptr

    def num_fibers(self, mode: int) -> int:
        """Number of nonempty mode-``mode`` fibers (``M_F`` in Table I)."""
        from ..perf.plans import fiber_fptr

        return len(fiber_fptr(self, self.check_mode(mode))) - 1

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------

    def pattern_equals(self, other: "CooTensor") -> bool:
        """Whether two tensors have identical shape and coordinate lists.

        Order of the stored nonzeros is ignored; duplicates are not
        combined first.
        """
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        mine = self.sorted_lexicographic().indices
        theirs = other.sorted_lexicographic().indices
        return bool(np.array_equal(mine, theirs))

    def allclose(self, other: "CooTensor", *, rtol: float = 1e-5, atol: float = 1e-6) -> bool:
        """Numeric equality modulo nonzero ordering and explicit zeros."""
        if self.shape != other.shape:
            return False
        a = self.sum_duplicates().sorted_lexicographic()
        b = other.sum_duplicates().sorted_lexicographic()
        if not np.array_equal(a.indices, b.indices):
            # Fall back to dense comparison so explicit zeros don't matter.
            return bool(
                np.allclose(self.to_dense(), other.to_dense(), rtol=rtol, atol=atol)
            )
        return bool(np.allclose(a.values, b.values, rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        return (
            f"CooTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )


def _sample_distinct_positions(
    shape: Tuple[int, ...], nnz: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``nnz`` distinct coordinates uniformly from the index space."""
    order = len(shape)
    if nnz == 0:
        return np.empty((order, 0), dtype=INDEX_DTYPE)
    capacity = 1
    for s in shape:
        capacity *= s
    if capacity <= 2**62:
        # Sample linear offsets without replacement, then unravel.
        dense_enough = nnz > capacity // 2
        if dense_enough:
            flat = rng.permutation(capacity)[:nnz]
        else:
            flat = _sample_distinct_integers(capacity, nnz, rng)
        coords = np.unravel_index(flat, shape)
        return np.vstack([c.astype(INDEX_DTYPE) for c in coords])
    # Astronomically large index space: collisions are impossible in practice.
    columns = [rng.integers(0, s, size=nnz, dtype=np.int64) for s in shape]
    return np.vstack(columns).astype(INDEX_DTYPE)


def _sample_distinct_integers(
    capacity: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Rejection-sample ``count`` distinct integers in ``[0, capacity)``."""
    chosen: np.ndarray = np.empty(0, dtype=np.int64)
    while chosen.size < count:
        need = count - chosen.size
        batch = rng.integers(0, capacity, size=2 * need + 16, dtype=np.int64)
        chosen = np.unique(np.concatenate([chosen, batch]))
    return rng.permutation(chosen)[:count]


def concatenate_tensors(tensors: Iterable[CooTensor]) -> CooTensor:
    """Stack the nonzeros of same-shape tensors into one COO tensor."""
    tensors = list(tensors)
    if not tensors:
        raise TensorShapeError("need at least one tensor to concatenate")
    shape = tensors[0].shape
    for t in tensors[1:]:
        if t.shape != shape:
            raise TensorShapeError("all tensors must share a shape")
    indices = np.concatenate([t.indices for t in tensors], axis=1)
    values = np.concatenate([t.values for t in tensors])
    return CooTensor(shape, indices, values, validate=False)
