"""Sparse tensor storage formats: COO, sCOO, HiCOO, gHiCOO, sHiCOO.

The two headline formats are :class:`CooTensor` (the mode-generic baseline)
and :class:`HicooTensor` (block-compressed hierarchical coordinates); the
semi-sparse variants carry dense mode(s) for TTM outputs, and gHiCOO blocks
only a chosen subset of modes.
"""

from .coo import CooTensor, concatenate_tensors
from .convert import choose_format, convert, to_coo, to_ghicoo, to_hicoo
from .csf import CsfTensor, csf_for_mode, csf_storage_bytes
from .fcoo import FcooTensor, segmented_sum, ttm_fcoo, ttv_fcoo
from .ghicoo import GHicooTensor
from .hicoo import DEFAULT_BLOCK_SIZE, MAX_BLOCK_SIZE, HicooTensor, blocks_histogram
from .morton import morton_decode, morton_encode, morton_sort_order
from .reorder import (
    apply_relabeling,
    block_density_relabel,
    degree_relabel,
    locality_metrics,
    random_relabel,
)
from .scoo import SemiSparseCooTensor
from .shicoo import SHicooTensor
from .streaming import streaming_csf, streaming_hicoo
from .storage import (
    StorageBreakdown,
    breakdown,
    coo_storage_bytes,
    ghicoo_storage_bytes,
    hicoo_storage_bytes,
    storage_bytes,
)

__all__ = [
    "CooTensor",
    "SemiSparseCooTensor",
    "HicooTensor",
    "GHicooTensor",
    "SHicooTensor",
    "CsfTensor",
    "csf_for_mode",
    "csf_storage_bytes",
    "FcooTensor",
    "ttv_fcoo",
    "ttm_fcoo",
    "segmented_sum",
    "DEFAULT_BLOCK_SIZE",
    "MAX_BLOCK_SIZE",
    "concatenate_tensors",
    "convert",
    "to_coo",
    "to_hicoo",
    "to_ghicoo",
    "choose_format",
    "morton_encode",
    "morton_decode",
    "morton_sort_order",
    "apply_relabeling",
    "random_relabel",
    "degree_relabel",
    "block_density_relabel",
    "locality_metrics",
    "blocks_histogram",
    "streaming_hicoo",
    "streaming_csf",
    "StorageBreakdown",
    "breakdown",
    "storage_bytes",
    "coo_storage_bytes",
    "hicoo_storage_bytes",
    "ghicoo_storage_bytes",
]
