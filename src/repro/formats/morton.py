"""Morton (Z-order) encoding for arbitrary-order block indices.

HiCOO sorts tensor blocks in Morton order so that blocks adjacent in the
storage are also adjacent in the index space of *every* mode, which is what
gives the format its mode-generic locality (Li et al., SC'18).  This module
provides vectorized encode/decode between N-dimensional integer coordinates
and their interleaved-bit Morton codes.

The encoding interleaves bits round-robin across modes, least-significant
bit first: for coordinates ``(x, y, z)`` the code is
``x0 y0 z0 x1 y1 z1 ...`` reading from the least-significant code bit.

Two implementations share this contract:

* the production path interleaves whole bytes at a time through
  per-order 256-entry lookup tables (one table lookup spreads 8
  coordinate bits at stride ``order``), so the Python-level loop runs
  over bytes, not bits;
* :func:`morton_encode_reference` / :func:`morton_decode_reference` keep
  the original bit-by-bit loops as the ground truth the tests compare
  against.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import TensorShapeError

#: Number of code bits consumed per mode.  48 bits across all modes keeps
#: the interleaved code inside an int64 for tensors up to order 6 with
#: 8M-per-mode block grids, which covers every dataset in the paper.
_MAX_CODE_BITS = 62


def bits_needed(max_value: int) -> int:
    """Return how many bits are needed to represent ``max_value``.

    ``bits_needed(0) == 1`` so that a degenerate single-block mode still
    consumes one interleave slot and round-trips through decode.
    """
    if max_value < 0:
        raise TensorShapeError(f"coordinate values must be non-negative, got {max_value}")
    return max(int(max_value).bit_length(), 1)


# ----------------------------------------------------------------------
# Byte-interleave lookup tables (cached per order)
# ----------------------------------------------------------------------

_ENCODE_LUTS: Dict[int, np.ndarray] = {}
_DECODE_LUTS: Dict[int, np.ndarray] = {}


def _encode_lut(order: int) -> np.ndarray:
    """256-entry table spreading a byte's bits to stride ``order``.

    ``lut[b]`` places bit ``j`` of ``b`` at bit ``j * order``, so a whole
    byte of one mode's coordinate interleaves in a single lookup.
    """
    lut = _ENCODE_LUTS.get(order)
    if lut is None:
        bytes_ = np.arange(256, dtype=np.uint64)
        lut = np.zeros(256, dtype=np.uint64)
        for j in range(8):
            lut |= ((bytes_ >> np.uint64(j)) & np.uint64(1)) << np.uint64(j * order)
        _ENCODE_LUTS[order] = lut
    return lut


def _decode_lut(order: int) -> np.ndarray:
    """Tables gathering one code byte back into per-mode coordinate bits.

    ``lut[phase, mode, b]`` collects the bits of code byte value ``b``
    that belong to ``mode`` when the byte starts at code-bit offset
    ``phase (mod order)``, already shifted to their relative coordinate
    position.  The caller shifts by the byte's whole-stride offset.
    """
    lut = _DECODE_LUTS.get(order)
    if lut is None:
        bytes_ = np.arange(256, dtype=np.uint64)
        lut = np.zeros((order, order, 256), dtype=np.uint64)
        for phase in range(order):
            for j in range(8):
                mode = (phase + j) % order
                coord_bit = (phase + j) // order
                lut[phase, mode] |= (
                    (bytes_ >> np.uint64(j)) & np.uint64(1)
                ) << np.uint64(coord_bit)
        _DECODE_LUTS[order] = lut
    return lut


def _validate_coords(coords: np.ndarray) -> Tuple[np.ndarray, int, int]:
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise TensorShapeError(
            f"coords must have shape (order, n), got ndim={coords.ndim}"
        )
    order, n = coords.shape
    if order == 0:
        raise TensorShapeError("coords must have at least one mode")
    if n and np.any(coords < 0):
        raise TensorShapeError("coordinates must be non-negative")
    return coords, order, n


def _check_code_width(order: int, per_mode_bits: int) -> None:
    if per_mode_bits * order > _MAX_CODE_BITS:
        raise TensorShapeError(
            f"Morton code overflow: {order} modes x {per_mode_bits} bits "
            f"exceeds {_MAX_CODE_BITS} bits"
        )


def morton_encode(coords: np.ndarray) -> np.ndarray:
    """Encode integer coordinates into Morton codes.

    Parameters
    ----------
    coords:
        Integer array of shape ``(order, n)``: one row of coordinates per
        mode, one column per point.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of ``n`` Morton codes.  Sorting by these codes
        orders the points along the Z-order space-filling curve.
    """
    coords, order, n = _validate_coords(coords)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    per_mode_bits = bits_needed(int(coords.max()))
    _check_code_width(order, per_mode_bits)

    lut = _encode_lut(order)
    work = coords.astype(np.uint64, copy=False)
    codes = np.zeros(n, dtype=np.uint64)
    num_bytes = (per_mode_bits + 7) // 8
    for byte_idx in range(num_bytes):
        shift = np.uint64(8 * byte_idx)
        chunk = (work >> shift) & np.uint64(0xFF)
        for mode in range(order):
            codes |= lut[chunk[mode]] << np.uint64(8 * byte_idx * order + mode)
    return codes.astype(np.int64)


def morton_decode(codes: np.ndarray, order: int, per_mode_bits: int) -> np.ndarray:
    """Decode Morton codes back to ``(order, n)`` integer coordinates.

    ``per_mode_bits`` must be at least the value used (implicitly) during
    encoding; extra bits decode to zero and are harmless.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if order <= 0:
        raise TensorShapeError(f"order must be positive, got {order}")
    if per_mode_bits <= 0:
        raise TensorShapeError(f"per_mode_bits must be positive, got {per_mode_bits}")
    _check_code_width(order, per_mode_bits)

    lut = _decode_lut(order)
    work = codes.astype(np.uint64)
    coords = np.zeros((order, codes.shape[0]), dtype=np.uint64)
    total_bits = per_mode_bits * order
    num_bytes = (total_bits + 7) // 8
    for byte_idx in range(num_bytes):
        chunk = (work >> np.uint64(8 * byte_idx)) & np.uint64(0xFF)
        live = total_bits - 8 * byte_idx
        if live < 8:
            # Ignore code bits past per_mode_bits per mode, matching the
            # bit-loop reference.
            chunk &= np.uint64((1 << live) - 1)
        phase = (8 * byte_idx) % order
        stride_shift = np.uint64((8 * byte_idx) // order)
        coords |= lut[phase][:, chunk] << stride_shift
    return coords.astype(np.int64)


# ----------------------------------------------------------------------
# Bit-by-bit reference implementations (kept for tests)
# ----------------------------------------------------------------------


def morton_encode_reference(coords: np.ndarray) -> np.ndarray:
    """The original bit-loop encoder; ground truth for the LUT path."""
    coords, order, n = _validate_coords(coords)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    per_mode_bits = bits_needed(int(coords.max()))
    _check_code_width(order, per_mode_bits)

    codes = np.zeros(n, dtype=np.int64)
    work = coords.astype(np.int64, copy=True)
    for bit in range(per_mode_bits):
        for mode in range(order):
            codes |= ((work[mode] >> bit) & 1) << (bit * order + mode)
    return codes


def morton_decode_reference(
    codes: np.ndarray, order: int, per_mode_bits: int
) -> np.ndarray:
    """The original bit-loop decoder; ground truth for the LUT path."""
    codes = np.asarray(codes, dtype=np.int64)
    if order <= 0:
        raise TensorShapeError(f"order must be positive, got {order}")
    if per_mode_bits <= 0:
        raise TensorShapeError(f"per_mode_bits must be positive, got {per_mode_bits}")
    _check_code_width(order, per_mode_bits)
    coords = np.zeros((order, codes.shape[0]), dtype=np.int64)
    for bit in range(per_mode_bits):
        for mode in range(order):
            coords[mode] |= ((codes >> (bit * order + mode)) & 1) << bit
    return coords


def morton_sort_order(coords: np.ndarray) -> np.ndarray:
    """Return the permutation that sorts points into Morton (Z-curve) order.

    Ties (identical coordinates) keep their original relative order because
    the underlying sort is stable.
    """
    codes = morton_encode(coords)
    return np.argsort(codes, kind="stable")
