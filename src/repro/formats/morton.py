"""Morton (Z-order) encoding for arbitrary-order block indices.

HiCOO sorts tensor blocks in Morton order so that blocks adjacent in the
storage are also adjacent in the index space of *every* mode, which is what
gives the format its mode-generic locality (Li et al., SC'18).  This module
provides vectorized encode/decode between N-dimensional integer coordinates
and their interleaved-bit Morton codes.

The encoding interleaves bits round-robin across modes, least-significant
bit first: for coordinates ``(x, y, z)`` the code is
``x0 y0 z0 x1 y1 z1 ...`` reading from the least-significant code bit.
"""

from __future__ import annotations

import numpy as np

from ..errors import TensorShapeError

#: Number of code bits consumed per mode.  48 bits across all modes keeps
#: the interleaved code inside an int64 for tensors up to order 6 with
#: 8M-per-mode block grids, which covers every dataset in the paper.
_MAX_CODE_BITS = 62


def bits_needed(max_value: int) -> int:
    """Return how many bits are needed to represent ``max_value``.

    ``bits_needed(0) == 1`` so that a degenerate single-block mode still
    consumes one interleave slot and round-trips through decode.
    """
    if max_value < 0:
        raise TensorShapeError(f"coordinate values must be non-negative, got {max_value}")
    return max(int(max_value).bit_length(), 1)


def morton_encode(coords: np.ndarray) -> np.ndarray:
    """Encode integer coordinates into Morton codes.

    Parameters
    ----------
    coords:
        Integer array of shape ``(order, n)``: one row of coordinates per
        mode, one column per point.

    Returns
    -------
    numpy.ndarray
        ``int64`` array of ``n`` Morton codes.  Sorting by these codes
        orders the points along the Z-order space-filling curve.
    """
    coords = np.asarray(coords)
    if coords.ndim != 2:
        raise TensorShapeError(
            f"coords must have shape (order, n), got ndim={coords.ndim}"
        )
    order, n = coords.shape
    if order == 0:
        raise TensorShapeError("coords must have at least one mode")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(coords < 0):
        raise TensorShapeError("coordinates must be non-negative")

    per_mode_bits = bits_needed(int(coords.max()))
    if per_mode_bits * order > _MAX_CODE_BITS:
        raise TensorShapeError(
            f"Morton code overflow: {order} modes x {per_mode_bits} bits "
            f"exceeds {_MAX_CODE_BITS} bits"
        )

    codes = np.zeros(n, dtype=np.int64)
    work = coords.astype(np.int64, copy=True)
    for bit in range(per_mode_bits):
        for mode in range(order):
            codes |= ((work[mode] >> bit) & 1) << (bit * order + mode)
    return codes


def morton_decode(codes: np.ndarray, order: int, per_mode_bits: int) -> np.ndarray:
    """Decode Morton codes back to ``(order, n)`` integer coordinates.

    ``per_mode_bits`` must be at least the value used (implicitly) during
    encoding; extra bits decode to zero and are harmless.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if order <= 0:
        raise TensorShapeError(f"order must be positive, got {order}")
    if per_mode_bits <= 0:
        raise TensorShapeError(f"per_mode_bits must be positive, got {per_mode_bits}")
    if per_mode_bits * order > _MAX_CODE_BITS:
        raise TensorShapeError(
            f"Morton code overflow: {order} modes x {per_mode_bits} bits "
            f"exceeds {_MAX_CODE_BITS} bits"
        )
    coords = np.zeros((order, codes.shape[0]), dtype=np.int64)
    for bit in range(per_mode_bits):
        for mode in range(order):
            coords[mode] |= ((codes >> (bit * order + mode)) & 1) << bit
    return coords


def morton_sort_order(coords: np.ndarray) -> np.ndarray:
    """Return the permutation that sorts points into Morton (Z-curve) order.

    Ties (identical coordinates) keep their original relative order because
    the underlying sort is stable.
    """
    codes = morton_encode(coords)
    return np.argsort(codes, kind="stable")
