"""Ablation: matrix rank R for TTM and MTTKRP.

The paper fixes R = 16 "to reflect the low-rank feature in popular
tensor methods" and notes R < 100 in practice (Section II-D).  This
ablation sweeps R and reports how operational intensity, modeled GFLOPS,
and numpy wall-clock scale — TTM's OI saturates at 1/2 while MTTKRP's
sits near 1/4 for any R, so both stay memory-bound.
"""

import numpy as np
import pytest

from repro.core import kernel_cost, make_schedule, mttkrp_coo, ttm_coo
from repro.formats import CooTensor
from repro.machine import predict

RANKS = (4, 16, 64, 256)


@pytest.fixture(scope="module")
def tensor():
    return CooTensor.random((30_000, 30_000, 30_000), 100_000, seed=0)


@pytest.fixture(scope="module")
def rank_operands(tensor):
    rng = np.random.default_rng(1)
    return {
        rank: {
            "matrix": rng.uniform(0.5, 1.5, size=(tensor.shape[0], rank)).astype(
                np.float32
            ),
            "factors": [
                rng.uniform(0.5, 1.5, size=(s, rank)).astype(np.float32)
                for s in tensor.shape
            ],
        }
        for rank in RANKS
    }


@pytest.mark.parametrize("rank", RANKS)
def test_ttm_wallclock_vs_rank(benchmark, tensor, rank_operands, rank):
    benchmark(ttm_coo, tensor, rank_operands[rank]["matrix"], 0)


@pytest.mark.parametrize("rank", RANKS)
def test_mttkrp_wallclock_vs_rank(benchmark, tensor, rank_operands, rank):
    benchmark(mttkrp_coo, tensor, rank_operands[rank]["factors"], 0)


def test_rank_sweep_report(benchmark, tensor):
    def sweep():
        rows = []
        fibers = tensor.num_fibers(0)
        for rank in RANKS:
            ttm_cost = kernel_cost("TTM", tensor.nnz, num_fibers=fibers, rank=rank)
            mttkrp_cost = kernel_cost("MTTKRP", tensor.nnz, rank=rank)
            ttm_est = predict(
                "dgx1v", make_schedule("COO-TTM-GPU", tensor, mode=0, rank=rank)
            )
            mttkrp_est = predict(
                "dgx1v", make_schedule("COO-MTTKRP-GPU", tensor, mode=0, rank=rank)
            )
            rows.append(
                (
                    rank,
                    ttm_cost.operational_intensity(),
                    ttm_est.gflops,
                    mttkrp_cost.operational_intensity(),
                    mttkrp_est.gflops,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(f"{'R':>4s} {'TTM OI':>8s} {'TTM GF':>8s} {'MTTKRP OI':>10s} {'MTTKRP GF':>10s}")
    for rank, ttm_oi, ttm_gf, mk_oi, mk_gf in rows:
        print(f"{rank:4d} {ttm_oi:8.3f} {ttm_gf:8.1f} {mk_oi:10.3f} {mk_gf:10.1f}")
    # OI grows with R for TTM (toward 1/2) and stays ~1/4 for MTTKRP.
    ttm_ois = [r[1] for r in rows]
    assert ttm_ois == sorted(ttm_ois)
    assert ttm_ois[-1] <= 0.5
    # MTTKRP OI = 3R / (12R + 16) rises from 0.1875 (R=4) toward 0.25.
    mk_ois = [r[3] for r in rows]
    assert mk_ois == sorted(mk_ois)
    for mk_oi in mk_ois:
        assert 0.18 <= mk_oi <= 0.25
