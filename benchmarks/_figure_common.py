"""Shared machinery for the per-figure kernel benchmarks.

Each figure file (``bench_fig4_bluesky.py`` ... ``bench_fig7_dgx1v.py``)
does two things:

1. wall-clock-benchmarks this package's numpy kernel implementations on
   representative Table II tensors (the measurable part of the suite);
2. regenerates the figure's modeled GFLOPS table (kernels x formats x
   all 30 tensors against the Roofline performance line) and prints it.
"""

from __future__ import annotations

from repro.bench.experiments import run_kernel_figure
from repro.bench.harness import BenchmarkHarness, average_efficiency, average_gflops
from repro.core.registry import make_operands, run_algorithm
from repro.datasets import get_dataset


def time_kernel_cell(
    benchmark, harness: BenchmarkHarness, dataset_key: str, kernel: str, fmt: str
) -> None:
    """pytest-benchmark one kernel+format's numpy implementation."""
    spec = get_dataset(dataset_key)
    x = harness.tensor(spec)
    hicoo = harness.hicoo_tensor(spec) if fmt == "HiCOO" else None
    algorithm = f"{fmt}-{kernel}-{harness.target}"
    operands = make_operands(x, kernel, mode=0, rank=harness.rank, seed=0)
    benchmark(
        run_algorithm,
        algorithm,
        x,
        operands,
        mode=0,
        rank=harness.rank,
        block_size=harness.block_size,
        hicoo=hicoo,
    )


def emit_figure_table(benchmark, harness: BenchmarkHarness, figure: str) -> None:
    """Regenerate the modeled figure and print it (one benchmark round)."""

    def build():
        return run_kernel_figure(harness.spec.name, harness=harness)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(result.report)
    averages = average_gflops(result.results)
    efficiencies = average_efficiency(result.results)
    print(f"\n{figure} summary — average over all 30 tensors:")
    for kernel in ("TEW", "TS", "TTV", "TTM", "MTTKRP"):
        coo = averages[(kernel, "COO")]
        hicoo = averages[(kernel, "HiCOO")]
        print(
            f"  {kernel:7s} COO {coo:7.1f} GF "
            f"({efficiencies[(kernel, 'COO')] * 100:4.0f}%)   "
            f"HiCOO {hicoo:7.1f} GF "
            f"({efficiencies[(kernel, 'HiCOO')] * 100:4.0f}%)"
        )
