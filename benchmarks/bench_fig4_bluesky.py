"""Figure 4: five kernels x {COO, HiCOO} on Bluesky.

Regenerates the modeled GFLOPS-vs-Roofline table for all 30 Table II
tensors on the Bluesky platform model, and wall-clock-benchmarks this
package's numpy kernels on three representative tensors.
"""

import pytest

from _figure_common import emit_figure_table, time_kernel_cell
from conftest import REPRESENTATIVE_KEYS
from repro.core.analysis import KERNELS


def test_fig4_report(benchmark, bluesky):
    emit_figure_table(benchmark, bluesky, "Figure 4 (Bluesky)")


@pytest.mark.parametrize("dataset", REPRESENTATIVE_KEYS)
@pytest.mark.parametrize("fmt", ["COO", "HiCOO"])
@pytest.mark.parametrize("kernel", KERNELS)
def test_fig4_kernel_wallclock(benchmark, bluesky, dataset, kernel, fmt):
    time_kernel_cell(benchmark, bluesky, dataset, kernel, fmt)
